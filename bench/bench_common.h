// Shared harness for the paper-reproduction benches (one binary per table /
// figure; see DESIGN.md §3).
//
// All benches run scaled-down versions of the paper's experiments so the full
// suite finishes on one CPU core. GMORPH_BENCH_SCALE (a float, default 1.0)
// multiplies dataset sizes and iteration counts: set it to 2-4 for closer-to-
// paper fidelity or 0.5 for a quick smoke run.
#ifndef GMORPH_BENCH_BENCH_COMMON_H_
#define GMORPH_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/abs_graph.h"
#include "src/core/gmorph.h"
#include "src/data/benchmarks.h"
#include "src/data/teacher.h"

namespace gmorph::bench {

// GMORPH_BENCH_SCALE, clamped to [0.25, 8].
double BenchScaleFactor();

// Scales a count by the bench factor with a floor.
int Scaled(int base, int min_value = 1);

// The dataset/model scale used by all benches (paper-shaped, CPU-sized).
BenchmarkScale DefaultScale();

// A benchmark with its teachers pre-trained and scored.
struct PreparedBenchmark {
  BenchmarkDef def;
  std::vector<std::unique_ptr<TaskModel>> teachers;
  std::vector<TaskModel*> teacher_ptrs;
  std::vector<double> teacher_scores;
};

PreparedBenchmark PrepareBenchmark(int index, uint64_t seed, int teacher_epochs = 6);

// Directory for cross-binary caching (teacher checkpoints, search results).
// GMORPH_CACHE_DIR overrides; default "gmorph_bench_cache" under the cwd.
std::string CacheDir();

// Benchmark `index` with teachers trained once per process AND checkpointed
// to the cache dir, so each bench binary pays teacher training at most once
// per suite run. Seeds are fixed (1000 + index) so all benches agree.
PreparedBenchmark& GetBenchmark(int index);

// The GMorph variants evaluated in §6 plus the random-sampling baseline.
enum class Variant { kBase, kP, kPR, kRandom };
std::string VariantName(Variant v);

// One search run's cached summary (everything fig7/fig8/table3/5/7/8/9 need).
//
// Bench searches optimize FLOPs rather than wall-clock latency: FLOPs are
// deterministic and immune to CPU contention, so cached results stay valid.
// `speedup` is the FLOPs ratio; benches that report wall-clock numbers
// measure them live from `best_graph_path` on an idle machine.
struct SearchSummary {
  int64_t original_flops = 0;
  int64_t best_flops = 0;
  double speedup = 1.0;  // original_flops / best_flops
  double search_seconds = 0.0;
  int candidates_finetuned = 0;
  int candidates_filtered = 0;
  int cache_hits = 0;  // candidates served by the evaluation cache this run
  StageSeconds stage_seconds;  // sample/verify/profile/finetune/score breakdown
  std::vector<double> teacher_scores;
  std::vector<double> best_task_scores;
  struct TracePoint {
    double elapsed_seconds = 0.0;
    int64_t best_flops = 0;
    bool cache_hit = false;
  };
  std::vector<TracePoint> trace;
  std::string best_graph_path;  // serialized trained best graph
};

// Rebuilds the original (unfused) graph of a benchmark from its teachers.
AbsGraph OriginalGraph(int bench_index);

// Loads the cached best graph of a search and measures the live wall-clock
// latency of (original, best) on the eager engine. Used by benches that
// report milliseconds.
struct LatencyPair {
  double original_ms = 0.0;
  double best_ms = 0.0;
};
LatencyPair MeasureSummaryLatency(int bench_index, const SearchSummary& summary);

// Runs (or loads from cache) one GMorph search for (benchmark, threshold,
// variant). Deterministic for fixed inputs and GMORPH_BENCH_SCALE.
SearchSummary RunSearchCached(int bench_index, double threshold, Variant variant);

// Search options used by the evaluation benches; `threshold` is the allowed
// accuracy drop (fraction).
GMorphOptions DefaultSearchOptions(double threshold, uint64_t seed);

// Transcript caching for benches whose computation is not otherwise cached
// (fig1-3, table4, serving). If a recorded transcript for `name` exists, it
// is printed and true is returned — the caller should exit immediately.
// Otherwise stdout is redirected into the transcript (committed atomically at
// normal exit) and false is returned.
bool ReplayOrBeginRecord(const std::string& name);

// ---- JSON emission ----

// Single-line JSON object builder for the benches' machine-parseable output
// (micro_ops, table3_engines, serving_throughput all emit through it so the
// line format stays uniform).
class Json {
 public:
  Json& Set(const std::string& key, const std::string& value);
  Json& Set(const std::string& key, const char* value);
  Json& Set(const std::string& key, double value, int precision = 3);
  Json& Set(const std::string& key, int64_t value);
  Json& Set(const std::string& key, int value);
  Json& SetArray(const std::string& key, const std::vector<double>& values, int precision = 3);

  // The assembled object, e.g. {"op": "gemm", "gflops": 1.25}.
  std::string Str() const;

 private:
  void Key(const std::string& key);
  std::string body_;
};

// Prints one JSON line to stdout (flushed). The first call arms the obs
// subsystem from the environment (GMORPH_TRACE / GMORPH_METRICS) and
// registers an atexit hook that appends one final
//   {"metrics_snapshot": {...}}
// line carrying the metrics-registry snapshot, so every bench transcript ends
// with its counters/histograms.
void EmitJsonLine(const Json& json);

// ---- Table formatting ----

// Prints a header like "== Figure 7: ... ==" plus the scale note.
void PrintHeader(const std::string& title, const std::string& paper_ref);

// Prints a row of cells padded to width 12.
void PrintRow(const std::vector<std::string>& cells);

std::string Fmt(double value, int precision = 2);

}  // namespace gmorph::bench

#endif  // GMORPH_BENCH_BENCH_COMMON_H_
