// Ablation (paper §7 Discussion): online model-serving throughput of the
// original multi-DNNs vs the GMorph-fused model. The paper argues the
// one-time search cost buys higher queries-per-second; this bench quantifies
// it with the queueing simulator over calibrated batch latencies, across
// arrival rates and both runtime engines.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/runtime/engine.h"
#include "src/serving/serving_sim.h"

int main() {
  if (gmorph::bench::ReplayOrBeginRecord("serving")) {
    return 0;
  }
  using namespace gmorph;
  using namespace gmorph::bench;
  PrintHeader("Serving throughput: original vs fused (ablation of paper §7)",
              "paper §7 'Applicability of GMorph'");

  SearchSummary s = RunSearchCached(/*bench_index=*/1, /*threshold=*/0.01, Variant::kBase);
  PreparedBenchmark& p = GetBenchmark(1);
  Rng rng(71);
  AbsGraph original_graph = ParseTaskModels(
      std::vector<const TaskModel*>(p.teacher_ptrs.begin(), p.teacher_ptrs.end()));
  AbsGraph best_graph;
  if (!LoadGraph(s.best_graph_path, best_graph)) {
    std::fprintf(stderr, "missing cached best graph; run fig7_speedups first\n");
    return 1;
  }
  MultiTaskModel original_model(original_graph, rng);
  MultiTaskModel fused_model(best_graph, rng);
  const Shape input = original_graph.node(0).output_shape;

  // One JSON line per configuration (machine-parseable, like micro_ops),
  // including the calibrated per-batch-size service times the queueing
  // simulator ran against.
  const auto print_json = [](const std::string& engine, const char* model, double arrival,
                             const ServingStats& st) {
    EmitJsonLine(Json()
                     .Set("engine", engine)
                     .Set("model", model)
                     .Set("arrival_qps", arrival, 0)
                     .Set("throughput_qps", st.throughput_qps, 1)
                     .Set("p50_ms", st.p50_latency_ms, 3)
                     .Set("p95_ms", st.p95_latency_ms, 3)
                     .Set("mean_batch", st.mean_batch_size, 2)
                     .SetArray("service_time_ms", st.service_time_ms, 3));
  };

  PrintRow({"engine", "arrivalQPS", "model", "qps", "p50(ms)", "p95(ms)", "meanBatch"});
  for (EngineKind kind : {EngineKind::kEager, EngineKind::kFused}) {
    auto engine_orig = MakeEngine(kind, &original_model);
    auto engine_fused = MakeEngine(kind, &fused_model);
    for (double qps : {100.0, 400.0, 1600.0}) {
      ServingOptions opts;
      opts.arrival_qps = qps;
      opts.num_requests = Scaled(400);
      opts.max_batch = 8;
      ServingStats orig = SimulateServing(*engine_orig, input, opts);
      ServingStats fused = SimulateServing(*engine_fused, input, opts);
      print_json(engine_orig->Name(), "original", qps, orig);
      print_json(engine_fused->Name(), "fused", qps, fused);
      PrintRow({engine_orig->Name(), Fmt(qps, 0), "original", Fmt(orig.throughput_qps, 0),
                Fmt(orig.p50_latency_ms), Fmt(orig.p95_latency_ms),
                Fmt(orig.mean_batch_size, 1)});
      PrintRow({engine_fused->Name(), Fmt(qps, 0), "fused", Fmt(fused.throughput_qps, 0),
                Fmt(fused.p50_latency_ms), Fmt(fused.p95_latency_ms),
                Fmt(fused.mean_batch_size, 1)});
    }
  }
  std::printf("\nExpected shape: at saturating arrival rates the fused model sustains\n"
              "higher qps and lower tail latency on both engines.\n");
  return 0;
}
