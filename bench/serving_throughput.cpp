// Ablation (paper §7 Discussion): online model-serving throughput of the
// original multi-DNNs vs the GMorph-fused model. The paper argues the
// one-time search cost buys higher queries-per-second; this bench quantifies
// it with the *real threaded server* (src/serving/server.h) under open-loop
// Poisson and bursty load, sweeping arrival rates into saturation, and
// contrasts continuous batching across replicas against serial batch-1
// serving. One JSON line per swept configuration: throughput, latency
// percentiles, mean batch size, shed count — the saturation curves.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/runtime/engine.h"
#include "src/serving/server.h"
#include "src/serving/serving_sim.h"

namespace {

using namespace gmorph;

// Replays an absolute-arrival-time schedule against the wall clock (open
// loop: submission never waits for completions) and drains.
ServingStats RunOpenLoop(ThreadedServer& server, const std::vector<double>& arrivals_ms,
                         const Tensor* sample) {
  const double t0 = server.NowMs();
  for (double arrival : arrivals_ms) {
    const double wait_ms = t0 + arrival - server.NowMs();
    if (wait_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<int64_t>(wait_ms * 1000.0)));
    }
    server.Submit(sample);
  }
  server.Drain();
  server.Stop();
  return server.Stats();
}

}  // namespace

int main() {
  if (gmorph::bench::ReplayOrBeginRecord("serving")) {
    return 0;
  }
  using namespace gmorph::bench;
  PrintHeader("Serving saturation: threaded server, original vs fused (paper §7)",
              "paper §7 'Applicability of GMorph'");

  SearchSummary s = RunSearchCached(/*bench_index=*/1, /*threshold=*/0.01, Variant::kBase);
  PreparedBenchmark& p = GetBenchmark(1);
  AbsGraph original_graph = ParseTaskModels(
      std::vector<const TaskModel*>(p.teacher_ptrs.begin(), p.teacher_ptrs.end()));
  AbsGraph best_graph;
  if (!LoadGraph(s.best_graph_path, best_graph)) {
    std::fprintf(stderr, "missing cached best graph; run fig7_speedups first\n");
    return 1;
  }
  const Shape input = original_graph.node(0).output_shape;
  Rng rng(71);
  const Tensor sample = Tensor::RandomGaussian(input, rng, 0.5f);
  const int num_requests = Scaled(240);
  constexpr int kReplicas = 2;
  constexpr int kMaxBatch = 8;

  const auto print_json = [](const char* mode, const char* model, const char* load,
                             double arrival, const ServingStats& st, int64_t lost) {
    EmitJsonLine(Json()
                     .Set("mode", mode)
                     .Set("model", model)
                     .Set("load", load)
                     .Set("arrival_qps", arrival, 0)
                     .Set("throughput_qps", st.throughput_qps, 1)
                     .Set("p50_ms", st.p50_latency_ms, 3)
                     .Set("p95_ms", st.p95_latency_ms, 3)
                     .Set("p99_ms", st.p99_latency_ms, 3)
                     .Set("mean_batch", st.mean_batch_size, 2)
                     .Set("shed", static_cast<int64_t>(st.num_shed))
                     .Set("lost", lost)
                     .SetArray("service_time_ms", st.service_time_ms, 3));
  };

  PrintRow({"mode", "model", "load", "arrivalQPS", "qps", "p50(ms)", "p99(ms)", "meanBatch",
            "shed"});
  int failures = 0;
  for (const char* which : {"original", "fused"}) {
    const AbsGraph& graph = which[0] == 'o' ? original_graph : best_graph;
    // Shared calibration: one fused-engine replica measured once, and the
    // same table prices both serving modes.
    EngineReplica probe = MakeEngineReplica(EngineKind::kFused, graph, 71);
    const ServiceTimeTable table =
        CalibrateServiceTimes(*probe.engine, input, kMaxBatch, /*repeats=*/2);
    // Sweep arrival rates relative to serial batch-1 capacity so the last
    // point saturates both modes regardless of machine speed.
    const double serial_capacity_qps = 1000.0 / table.BatchMs(1);
    for (double load_factor : {0.5, 1.5, 3.0}) {
      const double qps = serial_capacity_qps * load_factor;
      const std::vector<double> arrivals = GenerateArrivalsMs(qps, num_requests, 71);
      for (const char* mode : {"serial-b1", "threaded"}) {
        const bool serial = mode[0] == 's';
        std::vector<EngineReplica> replicas;
        for (int i = 0; i < (serial ? 1 : kReplicas); ++i) {
          replicas.push_back(
              MakeEngineReplica(EngineKind::kFused, graph, 71 + static_cast<uint64_t>(i)));
        }
        ReplicaPool pool(std::move(replicas), input, serial ? 1 : kMaxBatch);
        ServerOptions options;
        options.max_batch = serial ? 1 : kMaxBatch;
        ThreadedServer server(&pool, table, options);
        const ServingStats st = RunOpenLoop(server, arrivals, &sample);
        const int64_t lost = server.submitted() - server.completed() - server.shed();
        failures += lost != 0 ? 1 : 0;
        print_json(mode, which, "poisson", qps, st, lost);
        PrintRow({mode, which, "poisson", Fmt(qps, 0), Fmt(st.throughput_qps, 0),
                  Fmt(st.p50_latency_ms), Fmt(st.p99_latency_ms), Fmt(st.mean_batch_size, 1),
                  Fmt(static_cast<double>(st.num_shed), 0)});
      }
    }
  }

  // Hot-swap under saturating bursty load on the fused model: replicas are
  // replaced mid-stream while producers flood; zero admitted requests may be
  // lost (FusedInf-style on-demand model exchange).
  {
    EngineReplica probe = MakeEngineReplica(EngineKind::kFused, best_graph, 71);
    const ServiceTimeTable table =
        CalibrateServiceTimes(*probe.engine, input, kMaxBatch, /*repeats=*/2);
    const double qps = 2.0 * 1000.0 / table.BatchMs(1);
    std::vector<EngineReplica> replicas;
    replicas.push_back(MakeEngineReplica(EngineKind::kFused, best_graph, 71));
    replicas.push_back(MakeEngineReplica(EngineKind::kFused, best_graph, 72));
    ReplicaPool pool(std::move(replicas), input, kMaxBatch);
    ServerOptions options;
    options.max_batch = kMaxBatch;
    ThreadedServer server(&pool, table, options);
    const std::vector<double> arrivals =
        GenerateBurstyArrivalsMs(qps, /*burst_factor=*/3.0, /*phase_ms=*/25.0, num_requests, 71);
    std::thread swapper([&] {
      for (int swap = 0; swap < 4; ++swap) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        server.SwapReplica(swap % 2, MakeEngineReplica(EngineKind::kFused, best_graph,
                                                       100 + static_cast<uint64_t>(swap)));
      }
    });
    const ServingStats st = RunOpenLoop(server, arrivals, &sample);
    swapper.join();
    const int64_t lost = server.submitted() - server.completed() - server.shed();
    failures += lost != 0 ? 1 : 0;
    EmitJsonLine(Json()
                     .Set("mode", "threaded-hotswap")
                     .Set("model", "fused")
                     .Set("load", "bursty")
                     .Set("arrival_qps", qps, 0)
                     .Set("throughput_qps", st.throughput_qps, 1)
                     .Set("p50_ms", st.p50_latency_ms, 3)
                     .Set("p95_ms", st.p95_latency_ms, 3)
                     .Set("p99_ms", st.p99_latency_ms, 3)
                     .Set("mean_batch", st.mean_batch_size, 2)
                     .Set("shed", static_cast<int64_t>(st.num_shed))
                     .Set("swaps", pool.swap_count())
                     .Set("lost", lost));
    PrintRow({"threaded-hotswap", "fused", "bursty", Fmt(qps, 0), Fmt(st.throughput_qps, 0),
              Fmt(st.p50_latency_ms), Fmt(st.p99_latency_ms), Fmt(st.mean_batch_size, 1),
              Fmt(static_cast<double>(st.num_shed), 0)});
  }

  std::printf("\nExpected shape: at saturating arrival rates the threaded server out-serves\n"
              "serial batch-1, the fused model out-serves the original, and the hot-swap\n"
              "line reports lost 0.\n");
  if (failures != 0) {
    std::fprintf(stderr, "%d serving run(s) lost admitted requests\n", failures);
    return 1;
  }
  return 0;
}
