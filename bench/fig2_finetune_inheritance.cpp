// Figure 2: fine-tuning time vs speedup for candidates mutated from the
// original multi-DNNs ("From original") vs candidates mutated from an elite
// that already meets the target ("From another"). Elite-derived mutations
// inherit trained weights, so they fine-tune faster and reach higher
// speedups — the insight behind the simulated-annealing policy.
#include <cstdio>
#include <optional>

#include "bench/bench_common.h"
#include "src/core/finetune.h"
#include "src/core/latency.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"

namespace {

using namespace gmorph;
using namespace gmorph::bench;

struct Sample {
  double speedup = 0.0;
  double finetune_s = 0.0;
  bool met = false;
};

Sample EvaluateCandidate(const AbsGraph& graph, PreparedBenchmark& p,
                         const std::vector<Tensor>& teacher_logits, double original_flops,
                         double threshold, Rng& rng, AbsGraph* trained_out) {
  MultiTaskModel candidate(graph, rng);
  FinetuneOptions ft;
  ft.max_epochs = 24;
  ft.eval_interval = 2;
  ft.batch_size = 16;
  ft.lr = 3e-3f;
  ft.target_drop = threshold;
  FinetuneResult r = DistillFinetune(candidate, teacher_logits, p.def.train, p.def.test,
                                     p.teacher_scores, ft);
  if (r.met_target && trained_out != nullptr) {
    *trained_out = candidate.ExportTrainedGraph();
  }
  return {original_flops / static_cast<double>(graph.TotalFlops()), r.seconds, r.met_target};
}

}  // namespace

int main() {
  if (gmorph::bench::ReplayOrBeginRecord("fig2")) {
    return 0;
  }
  PrintHeader("Figure 2: fine-tune time vs speedup, mutating original vs elite",
              "paper Fig. 2");
  PreparedBenchmark& p = GetBenchmark(1);  // 3x VGG-13 face tasks (B1)
  AbsGraph original = ParseTaskModels(
      std::vector<const TaskModel*>(p.teacher_ptrs.begin(), p.teacher_ptrs.end()));
  Rng rng(404);
  const double original_flops = static_cast<double>(original.TotalFlops());
  std::vector<Tensor> teacher_logits;
  for (TaskModel* teacher : p.teacher_ptrs) {
    teacher_logits.push_back(PredictAll(*teacher, p.def.train));
  }

  for (double threshold : {0.01, 0.02}) {
    std::printf("--- accuracy drop = %.0f%% ---\n", threshold * 100);
    PrintRow({"source", "speedup", "finetune(s)", "met"});

    // Phase 1: mutate the original; collect elites.
    std::vector<AbsGraph> elites;
    const int samples = Scaled(5);
    for (int i = 0; i < samples; ++i) {
      std::optional<AbsGraph> mutated =
          SampleMutatePass(original, 1, ShapeSimilarity::kSimilar, rng);
      if (!mutated) {
        continue;
      }
      AbsGraph trained;
      Sample s = EvaluateCandidate(*mutated, p, teacher_logits, original_flops, threshold, rng,
                                   &trained);
      PrintRow({"original", Fmt(s.speedup), Fmt(s.finetune_s, 1), s.met ? "yes" : "no"});
      if (s.met) {
        elites.push_back(std::move(trained));
      }
    }
    // Phase 2: mutate the elites further (weight inheritance).
    if (elites.empty()) {
      std::printf("(no elites found at this threshold; increase GMORPH_BENCH_SCALE)\n\n");
      continue;
    }
    for (int i = 0; i < samples; ++i) {
      const AbsGraph& base = elites[static_cast<size_t>(rng.NextInt(
          static_cast<int>(elites.size())))];
      std::optional<AbsGraph> mutated = SampleMutatePass(base, 1, ShapeSimilarity::kSimilar, rng);
      if (!mutated) {
        continue;
      }
      Sample s =
          EvaluateCandidate(*mutated, p, teacher_logits, original_flops, threshold, rng, nullptr);
      PrintRow({"elite", Fmt(s.speedup), Fmt(s.finetune_s, 1), s.met ? "yes" : "no"});
    }
    std::printf("\n");
  }
  std::printf("Expected shape: 'elite' rows cluster at higher speedups with shorter\n"
              "fine-tune times than 'original' rows (paper Fig. 2).\n");
  return 0;
}
