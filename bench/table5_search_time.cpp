// Table 5: search time (ST) of GMorph vs GMorph w P vs GMorph w P+R per
// benchmark and accuracy threshold, with the savings from predictive
// filtering. Reuses the cached searches shared with fig7_speedups.
//
// Besides the human-readable table it prints one JSON line per search run
// with the per-stage wall-time breakdown and the evaluation-cache hit count
// (machine-parseable, like micro_ops/table3).
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace {

void PrintJson(int bench, double threshold, const std::string& variant,
               const gmorph::bench::SearchSummary& s) {
  std::printf("{\"bench\": \"B%d\", \"threshold\": %.3f, \"variant\": \"%s\", "
              "\"search_seconds\": %.3f, \"finetuned\": %d, \"filtered\": %d, "
              "\"cache_hits\": %d, \"stage_sample_s\": %.3f, \"stage_verify_s\": %.3f, "
              "\"stage_profile_s\": %.3f, \"stage_finetune_s\": %.3f, \"stage_score_s\": %.3f}\n",
              bench, threshold, variant.c_str(), s.search_seconds, s.candidates_finetuned,
              s.candidates_filtered, s.cache_hits, s.stage_seconds.sample, s.stage_seconds.verify,
              s.stage_seconds.profile, s.stage_seconds.finetune, s.stage_seconds.score);
  std::fflush(stdout);
}

}  // namespace

int main() {
  using namespace gmorph;
  using namespace gmorph::bench;
  PrintHeader("Table 5: search time and predictive-filtering savings", "paper Table 5");

  for (double threshold : {0.0, 0.01, 0.02}) {
    std::printf("--- accuracy drop < %.0f%% ---\n", threshold * 100);
    PrintRow({"Benchmark", "ST(s)", "ST w P(s)", "saving", "ST w P+R", "saving",
              "finetuned", "filtered", "cached"});
    for (int b = 1; b <= kNumBenchmarks; ++b) {
      SearchSummary base = RunSearchCached(b, threshold, Variant::kBase);
      SearchSummary p = RunSearchCached(b, threshold, Variant::kP);
      SearchSummary pr = RunSearchCached(b, threshold, Variant::kPR);
      auto saving = [&](double t) {
        return base.search_seconds > 0.0
                   ? Fmt(100.0 * (1.0 - t / base.search_seconds), 0) + "%"
                   : std::string("-");
      };
      PrintRow({"B" + std::to_string(b), Fmt(base.search_seconds, 1),
                Fmt(p.search_seconds, 1), saving(p.search_seconds),
                Fmt(pr.search_seconds, 1), saving(pr.search_seconds),
                std::to_string(pr.candidates_finetuned),
                std::to_string(pr.candidates_filtered),
                std::to_string(pr.cache_hits)});
      PrintJson(b, threshold, "base", base);
      PrintJson(b, threshold, "p", p);
      PrintJson(b, threshold, "pr", pr);
    }
    std::printf("\n");
  }
  return 0;
}
