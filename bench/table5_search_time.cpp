// Table 5: search time (ST) of GMorph vs GMorph w P vs GMorph w P+R per
// benchmark and accuracy threshold, with the savings from predictive
// filtering. Reuses the cached searches shared with fig7_speedups.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gmorph;
  using namespace gmorph::bench;
  PrintHeader("Table 5: search time and predictive-filtering savings", "paper Table 5");

  for (double threshold : {0.0, 0.01, 0.02}) {
    std::printf("--- accuracy drop < %.0f%% ---\n", threshold * 100);
    PrintRow({"Benchmark", "ST(s)", "ST w P(s)", "saving", "ST w P+R", "saving",
              "finetuned", "filtered"});
    for (int b = 1; b <= kNumBenchmarks; ++b) {
      SearchSummary base = RunSearchCached(b, threshold, Variant::kBase);
      SearchSummary p = RunSearchCached(b, threshold, Variant::kP);
      SearchSummary pr = RunSearchCached(b, threshold, Variant::kPR);
      auto saving = [&](double t) {
        return base.search_seconds > 0.0
                   ? Fmt(100.0 * (1.0 - t / base.search_seconds), 0) + "%"
                   : std::string("-");
      };
      PrintRow({"B" + std::to_string(b), Fmt(base.search_seconds, 1),
                Fmt(p.search_seconds, 1), saving(p.search_seconds),
                Fmt(pr.search_seconds, 1), saving(pr.search_seconds),
                std::to_string(pr.candidates_finetuned),
                std::to_string(pr.candidates_filtered)});
    }
    std::printf("\n");
  }
  return 0;
}
