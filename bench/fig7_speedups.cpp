// Figure 7 + Tables 7/8/9: normalized cost and speedup of the three GMorph
// variants on B1-B7 for accuracy-drop thresholds 0%, 1%, 2%.
//
// Search results are cached in GMORPH_CACHE_DIR, so table5_search_time /
// fig8 / table3 reuse these runs instead of repeating them. The cached
// objective is FLOPs (contention-proof); the wall-clock columns are measured
// live from the cached fused model when this binary prints.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gmorph;
  using namespace gmorph::bench;
  const double thresholds[] = {0.0, 0.01, 0.02};
  const Variant variants[] = {Variant::kBase, Variant::kP, Variant::kPR};

  PrintHeader("Figure 7 / Tables 7-9: speedups of GMorph variants",
              "paper Fig. 7 and appendix Tables 7, 8, 9");

  for (double threshold : thresholds) {
    std::printf("--- accuracy drop < %.0f%% ---\n", threshold * 100);
    PrintRow({"Benchmark", "Orig MFLOP", "GMorph", "wP", "wP+R", "lat(ms)", "latFused",
              "latSpeedup"});
    for (int b = 1; b <= kNumBenchmarks; ++b) {
      std::vector<std::string> row = {"B" + std::to_string(b)};
      SearchSummary base;
      bool first = true;
      for (Variant v : variants) {
        SearchSummary s = RunSearchCached(b, threshold, v);
        if (first) {
          base = s;
          row.push_back(Fmt(static_cast<double>(s.original_flops) / 1e6, 2));
          first = false;
        }
        row.push_back(Fmt(s.speedup) + "x");
      }
      const LatencyPair lat = MeasureSummaryLatency(b, base);
      row.push_back(Fmt(lat.original_ms));
      row.push_back(Fmt(lat.best_ms));
      row.push_back(lat.best_ms > 0 ? Fmt(lat.original_ms / lat.best_ms) + "x" : "-");
      PrintRow(row);
    }
    std::printf("\n");
  }
  std::printf("GMorph/wP/wP+R columns: compute speedup (original FLOPs / fused FLOPs) of the\n"
              "best model meeting the threshold; lat* columns: live wall-clock latency of the\n"
              "base variant's fused model (Figure 7's normalized latency = 1/latSpeedup).\n");
  return 0;
}
