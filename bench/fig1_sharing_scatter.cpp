// Figure 1: accuracy drop vs inference speedup for randomly sampled
// feature-sharing configurations, split by whether the shared pair has
// similar input shapes (red points in the paper) or completely different
// shapes (blue points). Demonstrates the similar-shape insight that motivates
// Definition 2: similar-shape sharing dominates the Pareto frontier.
//
// (a) three VGG-16s (B2 teachers); (b) ResNet-34 + ResNet-18 (B4 teachers).
#include <cstdio>
#include <optional>

#include "bench/bench_common.h"
#include "src/core/finetune.h"
#include "src/core/latency.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"

namespace {

using namespace gmorph;
using namespace gmorph::bench;

void RunGroup(const char* label, int bench_index, int num_mutations) {
  PreparedBenchmark& p = GetBenchmark(bench_index);
  AbsGraph original = ParseTaskModels(
      std::vector<const TaskModel*>(p.teacher_ptrs.begin(), p.teacher_ptrs.end()));
  Rng rng(500 + static_cast<uint64_t>(bench_index));
  const double original_mflop = static_cast<double>(original.TotalFlops()) / 1e6;

  std::vector<Tensor> teacher_logits;
  for (TaskModel* teacher : p.teacher_ptrs) {
    teacher_logits.push_back(PredictAll(*teacher, p.def.train));
  }

  std::printf("--- %s (original cost %.1f MFLOP) ---\n", label, original_mflop);
  PrintRow({"shapes", "speedup", "maxDrop(%)"});
  const int samples = Scaled(6);
  for (ShapeSimilarity mode : {ShapeSimilarity::kSimilar, ShapeSimilarity::kDissimilar}) {
    const char* tag = mode == ShapeSimilarity::kSimilar ? "similar" : "different";
    for (int i = 0; i < samples; ++i) {
      std::optional<AbsGraph> mutated = SampleMutatePass(original, num_mutations, mode, rng);
      if (!mutated.has_value()) {
        continue;
      }
      MultiTaskModel candidate(*mutated, rng);
      const double cand_mflop = static_cast<double>(mutated->TotalFlops()) / 1e6;
      FinetuneOptions ft;
      ft.max_epochs = 12;
      ft.eval_interval = 12;
      ft.batch_size = 16;
      ft.lr = 3e-3f;
      ft.early_stop_on_target = false;
      FinetuneResult r = DistillFinetune(candidate, teacher_logits, p.def.train, p.def.test,
                                         p.teacher_scores, ft);
      PrintRow({tag, Fmt(original_mflop / cand_mflop), Fmt(std::max(0.0, r.max_drop) * 100, 1)});
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  if (gmorph::bench::ReplayOrBeginRecord("fig1")) {
    return 0;
  }
  PrintHeader("Figure 1: accuracy drop vs speedup, similar vs different input shapes",
              "paper Fig. 1");
  RunGroup("(a) three VGG-16s", /*bench_index=*/2, /*num_mutations=*/2);
  RunGroup("(b) ResNet-34 + ResNet-18", /*bench_index=*/4, /*num_mutations=*/1);
  std::printf("Expected shape: 'similar' rows reach a given speedup with smaller drops\n"
              "('different' rows populate the high-drop region).\n");
  return 0;
}
