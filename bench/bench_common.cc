#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "src/common/check.h"
#include "src/common/serialization.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace gmorph::bench {

double BenchScaleFactor() {
  static const double factor = [] {
    const char* env = std::getenv("GMORPH_BENCH_SCALE");
    if (env == nullptr) {
      return 1.0;
    }
    const double v = std::atof(env);
    return std::clamp(v > 0.0 ? v : 1.0, 0.25, 8.0);
  }();
  return factor;
}

int Scaled(int base, int min_value) {
  return std::max(min_value, static_cast<int>(base * BenchScaleFactor()));
}

BenchmarkScale DefaultScale() {
  BenchmarkScale s;
  s.train_size = Scaled(128);
  s.test_size = Scaled(160);
  s.cnn_width = 4;
  s.image_size = 32;
  // High enough that teachers land below 100% and accuracy drops are
  // measurable (the paper's tasks sit at 50-92%, Table 6), low enough that
  // teachers are strong distillation sources at this data scale.
  s.noise_stddev = 1.0f;
  return s;
}

PreparedBenchmark PrepareBenchmark(int index, uint64_t seed, int teacher_epochs) {
  PreparedBenchmark p;
  p.def = MakeBenchmark(index, DefaultScale(), seed);
  Rng rng(seed * 977 + 13);
  for (size_t t = 0; t < p.def.tasks.size(); ++t) {
    p.teachers.push_back(std::make_unique<TaskModel>(p.def.tasks[t].model, rng));
    TeacherTrainOptions opts;
    opts.epochs = teacher_epochs;
    const double score = TrainTeacher(*p.teachers.back(), p.def.train, p.def.test, t, opts);
    p.teacher_scores.push_back(score);
    p.teacher_ptrs.push_back(p.teachers.back().get());
  }
  return p;
}

GMorphOptions DefaultSearchOptions(double threshold, uint64_t seed) {
  GMorphOptions o;
  o.accuracy_drop_threshold = threshold;
  o.iterations = Scaled(4);
  o.max_mutations_per_pass = 1;  // deeper sharing accrues via elite chaining
  // FLOPs objective: deterministic under CPU contention (see SearchSummary).
  o.metric = OptimizeMetric::kFlops;
  // Recovering a real cross-branch share at this data scale takes ~8-24
  // epochs (mild candidates early-stop far sooner). eval_interval 3 is the
  // paper's delta; predictive termination can fire from epoch 12 on.
  o.finetune.max_epochs = 10;
  o.finetune.eval_interval = 3;
  o.finetune.batch_size = 16;
  o.finetune.lr = 3e-3f;
  // Stronger exploitation than the paper constants so the switch to elites
  // happens inside a short search budget (see sampling_policy.h).
  o.annealing.alpha = 0.85;
  o.annealing.initial_temp = 1.0;
  o.annealing.max_elites = 4;
  o.latency.measured_runs = 3;
  o.seed = seed;
  return o;
}

std::string CacheDir() {
  static const std::string dir = [] {
    const char* env = std::getenv("GMORPH_CACHE_DIR");
    std::string d = env != nullptr ? env : "gmorph_bench_cache";
    std::error_code ec;
    std::filesystem::create_directories(d, ec);
    return d;
  }();
  return dir;
}

namespace {

std::string ScaleTag() {
  const BenchmarkScale s = DefaultScale();
  std::ostringstream os;
  os << "s" << static_cast<int>(BenchScaleFactor() * 100) << "_n" << s.train_size << "_w"
     << s.cnn_width;
  return os.str();
}

constexpr int kTeacherEpochs = 6;

}  // namespace

PreparedBenchmark& GetBenchmark(int index) {
  static std::map<int, PreparedBenchmark> cache;
  auto it = cache.find(index);
  if (it != cache.end()) {
    return it->second;
  }
  const uint64_t seed = 1000 + static_cast<uint64_t>(index);
  PreparedBenchmark p;
  p.def = MakeBenchmark(index, DefaultScale(), seed);
  Rng rng(seed * 977 + 13);
  for (size_t t = 0; t < p.def.tasks.size(); ++t) {
    p.teachers.push_back(std::make_unique<TaskModel>(p.def.tasks[t].model, rng));
    TaskModel& teacher = *p.teachers.back();
    const std::string ckpt = CacheDir() + "/teacher_b" + std::to_string(index) + "_t" +
                             std::to_string(t) + "_" + ScaleTag() + ".bin";
    std::vector<std::vector<Tensor>> weights;
    bool loaded = false;
    if (LoadWeights(ckpt, weights) && weights.size() == teacher.num_blocks()) {
      try {
        teacher.ImportWeights(weights);
        loaded = true;
      } catch (const CheckError&) {
        loaded = false;  // stale checkpoint from an older format: retrain
      }
    }
    if (loaded) {
      p.teacher_scores.push_back(EvaluateTeacher(teacher, p.def.test, t));
    } else {
      TeacherTrainOptions opts;
      opts.epochs = kTeacherEpochs;
      p.teacher_scores.push_back(TrainTeacher(teacher, p.def.train, p.def.test, t, opts));
      SaveWeights(ckpt, teacher.ExportWeights());
    }
    p.teacher_ptrs.push_back(&teacher);
  }
  return cache.emplace(index, std::move(p)).first->second;
}

std::string VariantName(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "GMorph";
    case Variant::kP:
      return "GMorph w P";
    case Variant::kPR:
      return "GMorph w P+R";
    case Variant::kRandom:
      return "Random";
  }
  return "?";
}

namespace {

std::string VariantTag(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "base";
    case Variant::kP:
      return "p";
    case Variant::kPR:
      return "pr";
    case Variant::kRandom:
      return "rand";
  }
  return "x";
}

// Bumped whenever the summary layout changes; a version mismatch invalidates
// old cached summaries (they are recomputed, not misparsed).
constexpr const char* kSummaryVersion = "gmorph-summary-v2";

bool LoadSummary(const std::string& path, SearchSummary& s) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string version;
  size_t teachers = 0;
  size_t trace = 0;
  in >> version;
  if (version != kSummaryVersion) {
    return false;
  }
  in >> s.original_flops >> s.best_flops >> s.speedup >> s.search_seconds >>
      s.candidates_finetuned >> s.candidates_filtered >> s.cache_hits >> teachers >> trace >>
      s.best_graph_path;
  in >> s.stage_seconds.sample >> s.stage_seconds.verify >> s.stage_seconds.profile >>
      s.stage_seconds.finetune >> s.stage_seconds.score;
  if (!in) {
    return false;
  }
  s.teacher_scores.resize(teachers);
  s.best_task_scores.resize(teachers);
  for (auto& v : s.teacher_scores) {
    in >> v;
  }
  for (auto& v : s.best_task_scores) {
    in >> v;
  }
  s.trace.resize(trace);
  for (auto& point : s.trace) {
    int hit = 0;
    in >> point.elapsed_seconds >> point.best_flops >> hit;
    point.cache_hit = hit != 0;
  }
  return static_cast<bool>(in);
}

void SaveSummary(const std::string& path, const SearchSummary& s) {
  std::ofstream out(path);
  out << kSummaryVersion << "\n";
  out << s.original_flops << " " << s.best_flops << " " << s.speedup << " "
      << s.search_seconds << " " << s.candidates_finetuned << " " << s.candidates_filtered
      << " " << s.cache_hits << " " << s.teacher_scores.size() << " " << s.trace.size() << " "
      << s.best_graph_path << "\n";
  out << s.stage_seconds.sample << " " << s.stage_seconds.verify << " "
      << s.stage_seconds.profile << " " << s.stage_seconds.finetune << " "
      << s.stage_seconds.score << "\n";
  for (double v : s.teacher_scores) {
    out << v << " ";
  }
  out << "\n";
  for (double v : s.best_task_scores) {
    out << v << " ";
  }
  out << "\n";
  for (const auto& point : s.trace) {
    out << point.elapsed_seconds << " " << point.best_flops << " " << (point.cache_hit ? 1 : 0)
        << "\n";
  }
}

}  // namespace

SearchSummary RunSearchCached(int bench_index, double threshold, Variant variant) {
  std::ostringstream key;
  key << "search_b" << bench_index << "_t" << static_cast<int>(threshold * 1000) << "_"
      << VariantTag(variant) << "_" << ScaleTag();
  const std::string summary_path = CacheDir() + "/" + key.str() + ".txt";
  SearchSummary summary;
  if (LoadSummary(summary_path, summary)) {
    return summary;
  }

  PreparedBenchmark& p = GetBenchmark(bench_index);
  GMorphOptions options = DefaultSearchOptions(
      threshold, /*seed=*/static_cast<uint64_t>(bench_index) * 7919 + 17);
  options.predictive_termination = variant == Variant::kP || variant == Variant::kPR;
  options.rule_based_filtering = variant == Variant::kPR;
  if (variant == Variant::kRandom) {
    options.policy = PolicyKind::kRandom;
  }
  // Content-addressed evaluation cache: repeated suite runs (and overlapping
  // variants, which sample many identical candidates) skip re-fine-tuning.
  options.use_eval_cache = true;
  options.cache_dir = CacheDir();
  GMorph gmorph(p.teacher_ptrs, &p.def.train, &p.def.test, options);
  GMorphResult result = gmorph.Run();

  summary.original_flops = result.original_flops;
  summary.best_flops = result.best_flops;
  summary.speedup = static_cast<double>(result.original_flops) /
                    static_cast<double>(std::max<int64_t>(1, result.best_flops));
  summary.search_seconds = result.search_seconds;
  summary.candidates_finetuned = result.candidates_finetuned;
  summary.candidates_filtered = result.candidates_filtered;
  summary.cache_hits = result.cache_hits;
  summary.stage_seconds = result.stage_seconds;
  summary.teacher_scores = result.teacher_scores;
  summary.best_task_scores = result.best_task_scores;
  for (const IterationRecord& rec : result.trace) {
    summary.trace.push_back({rec.elapsed_seconds, rec.best_flops, rec.cache_hit});
  }
  summary.best_graph_path = CacheDir() + "/" + key.str() + "_graph.bin";
  SaveGraph(summary.best_graph_path, result.best_graph);
  SaveSummary(summary_path, summary);
  return summary;
}

AbsGraph OriginalGraph(int bench_index) {
  PreparedBenchmark& p = GetBenchmark(bench_index);
  return ParseTaskModels(
      std::vector<const TaskModel*>(p.teacher_ptrs.begin(), p.teacher_ptrs.end()));
}

LatencyPair MeasureSummaryLatency(int bench_index, const SearchSummary& summary) {
  Rng rng(37);
  AbsGraph original = OriginalGraph(bench_index);
  AbsGraph best;
  if (!LoadGraph(summary.best_graph_path, best)) {
    return {};
  }
  MultiTaskModel original_model(original, rng);
  MultiTaskModel best_model(best, rng);
  LatencyOptions opts;
  opts.measured_runs = 5;
  LatencyPair pair;
  pair.original_ms = MeasureLatencyMs(original_model, opts);
  pair.best_ms = MeasureLatencyMs(best_model, opts);
  return pair;
}

namespace {

std::string g_record_tmp_path;
std::string g_record_final_path;

void CommitTranscript() {
  if (g_record_tmp_path.empty()) {
    return;
  }
  std::fflush(stdout);
  std::error_code ec;
  std::filesystem::rename(g_record_tmp_path, g_record_final_path, ec);
}

}  // namespace

bool ReplayOrBeginRecord(const std::string& name) {
  const std::string path = CacheDir() + "/out_" + name + "_" + ScaleTag() + ".txt";
  std::ifstream cached(path);
  if (cached) {
    std::ostringstream buffer;
    buffer << cached.rdbuf();
    std::fputs(buffer.str().c_str(), stdout);
    std::fputs("(replayed cached transcript; delete the cache dir to recompute)\n", stdout);
    return true;
  }
  g_record_final_path = path;
  g_record_tmp_path = path + ".tmp";
  if (std::freopen(g_record_tmp_path.c_str(), "w", stdout) == nullptr) {
    g_record_tmp_path.clear();
    return false;  // recording unavailable; run normally
  }
  std::atexit(CommitTranscript);
  return false;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

// Arms tracing/metrics from GMORPH_TRACE / GMORPH_METRICS once per process
// and registers the metrics-snapshot trailer line. atexit ordering (LIFO)
// puts the trailer before ReplayOrBeginRecord's transcript commit, so
// recorded transcripts include it.
void InitObsOnce() {
  static const bool done = [] {
    obs::InitTracingFromEnv();
    obs::InitMetricsFromEnv();
    std::atexit([] {
      std::printf("{\"metrics_snapshot\": %s}\n", obs::MetricsRegistry::Global().ToJson().c_str());
      std::fflush(stdout);
    });
    return true;
  }();
  (void)done;
}

}  // namespace

void Json::Key(const std::string& key) {
  if (!body_.empty()) {
    body_ += ", ";
  }
  body_ += '"';
  body_ += JsonEscape(key);
  body_ += "\": ";
}

Json& Json::Set(const std::string& key, const std::string& value) {
  Key(key);
  body_ += '"';
  body_ += JsonEscape(value);
  body_ += '"';
  return *this;
}

Json& Json::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}

Json& Json::Set(const std::string& key, double value, int precision) {
  Key(key);
  body_ += Fmt(value, precision);
  return *this;
}

Json& Json::Set(const std::string& key, int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

Json& Json::Set(const std::string& key, int value) {
  return Set(key, static_cast<int64_t>(value));
}

Json& Json::SetArray(const std::string& key, const std::vector<double>& values, int precision) {
  Key(key);
  body_ += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      body_ += ", ";
    }
    body_ += Fmt(values[i], precision);
  }
  body_ += ']';
  return *this;
}

std::string Json::Str() const { return "{" + body_ + "}"; }

void EmitJsonLine(const Json& json) {
  InitObsOnce();
  std::printf("%s\n", json.Str().c_str());
  std::fflush(stdout);
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  InitObsOnce();
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("(reproduces %s; scaled substrate — compare shapes/ratios, not absolute values;"
              " GMORPH_BENCH_SCALE=%.2f)\n\n",
              paper_ref.c_str(), BenchScaleFactor());
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-13s", cell.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace gmorph::bench
