// Engineering micro-benchmarks for the kernel layer (google-benchmark).
// Not a paper table; kept for performance-regression tracking of the
// substrate the latency estimator depends on.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/nn/attention.h"
#include "src/nn/norm.h"
#include "src/nn/transformer_block.h"
#include "src/tensor/conv_ops.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {
namespace {

void BM_MatmulNN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomGaussian(Shape{n, n}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    MatmulNN(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::RandomGaussian(Shape{1, c, 32, 32}, rng);
  Tensor w = Tensor::RandomGaussian(Shape{c, c, 3, 3}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{c}, rng);
  for (auto _ : state) {
    Tensor y = Conv2dForward(x, w, b, {1, 1});
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * c * c * 9 * 32 * 32);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_BilinearResize(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::RandomGaussian(Shape{1, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = BilinearResizeForward(x, 32, 32);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BilinearResize);

void BM_Attention(benchmark::State& state) {
  const int64_t t = state.range(0);
  Rng rng(4);
  MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::RandomGaussian(Shape{1, t, 32}, rng);
  for (auto _ : state) {
    Tensor y = attn.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Attention)->Arg(16)->Arg(64);

void BM_TransformerBlock(benchmark::State& state) {
  Rng rng(5);
  TransformerBlock block(32, 4, 2, rng);
  Tensor x = Tensor::RandomGaussian(Shape{1, 16, 32}, rng);
  for (auto _ : state) {
    Tensor y = block.Forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TransformerBlock);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(6);
  BatchNorm2d bn(32);
  Tensor x = Tensor::RandomGaussian(Shape{8, 32, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = bn.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

}  // namespace
}  // namespace gmorph

BENCHMARK_MAIN();
