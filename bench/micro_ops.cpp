// Micro-benchmarks for the kernel layer: GEMM variants, conv forward/backward,
// and attention at scaled-down VGG / ResNet / ViT shapes.
//
// For each op it prints one JSON line:
//   {"op": ..., "shape": ..., "gflops": ..., "ref_gflops": ..., "speedup": ...,
//    "bytes_per_op": ...}
// gflops is the blocked/parallel kernel, ref_gflops the retained naive
// reference at the same shape (GEMM only), bytes_per_op the heap bytes newly
// allocated per iteration in steady state (tensor storage + scratch-arena
// growth) — ops whose workspace comes from the reused arena report only their
// output tensor.
//
// GMORPH_NUM_THREADS controls the kernel thread count; run with 1 and N to
// compare threading scale.
//
// --dtype f32|int8 filters which precision's benches run. The int8 lines
// (qgemm_nn_*) benchmark the registry-resolved u8·s8 solver against the f32
// packed path at the same shape and report the effective memory traffic of
// both (`traffic_bytes` / `f32_traffic_bytes` / `traffic_ratio`), so the JSON
// shows the bandwidth win as well as GFLOP/s.
//
// --sweep-solvers switches to the solver-registry sweep: every registered
// GEMM solver is benchmarked (autotuner timing path) on each model shape for
// all three variants, one JSON line per (shape, solver) plus a
// "sweep_selected" line comparing the autotuned winner against the heuristic
// default that the hard-coded dispatch would have picked.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "bench/bench_common.h"
#include "src/common/parallel_for.h"
#include "src/common/rng.h"
#include "src/kernels/autotune.h"
#include "src/kernels/registry.h"
#include "src/kernels/scratch.h"
#include "src/kernels/tune_db.h"
#include "src/nn/attention.h"
#include "src/tensor/conv_ops.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {
namespace {

int64_t HeapBytesNow() { return Tensor::TotalAllocatedBytes() + ScratchArena::TotalHeapBytes(); }

struct BenchResult {
  double seconds_per_iter = 0.0;
  int64_t bytes_per_iter = 0;
};

// Times fn in steady state: warmup passes grow the arenas, then enough
// iterations to cover ~80ms of wall clock.
BenchResult Run(const std::function<void()>& fn) {
  fn();
  fn();
  const int64_t bytes_before = HeapBytesNow();
  const auto probe_start = std::chrono::steady_clock::now();
  fn();
  const double once =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - probe_start).count();
  const int64_t bytes_one = HeapBytesNow() - bytes_before;
  const int iters = std::clamp(static_cast<int>(0.08 / std::max(once, 1e-7)), 3, 20000);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    fn();
  }
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  BenchResult r;
  r.seconds_per_iter = total / iters;
  r.bytes_per_iter = bytes_one;
  return r;
}

void PrintLine(const std::string& op, const std::string& shape, double flops,
               const BenchResult& main, const BenchResult* ref) {
  const double gf = flops / main.seconds_per_iter / 1e9;
  bench::Json line;
  line.Set("op", op).Set("shape", shape).Set("gflops", gf, 2);
  if (ref != nullptr) {
    const double ref_gf = flops / ref->seconds_per_iter / 1e9;
    line.Set("ref_gflops", ref_gf, 2).Set("speedup", gf / ref_gf, 2);
  }
  line.Set("bytes_per_op", main.bytes_per_iter);
  bench::EmitJsonLine(line);
}

void BenchGemm(Rng& rng, const char* name, int64_t m, int64_t k, int64_t n) {
  Tensor a = Tensor::RandomGaussian(Shape{m, k}, rng);
  Tensor b = Tensor::RandomGaussian(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  const double flops = 2.0 * m * k * n;
  char shape[96];
  std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld", static_cast<long long>(m),
                static_cast<long long>(k), static_cast<long long>(n));

  BenchResult blocked = Run([&] { MatmulNN(a.data(), b.data(), c.data(), m, k, n); });
  BenchResult naive = Run([&] { RefMatmulNN(a.data(), b.data(), c.data(), m, k, n); });
  PrintLine(std::string("gemm_nn_") + name, shape, flops, blocked, &naive);

  // The two backward products at the same logical shape.
  Tensor dc = Tensor::RandomGaussian(Shape{m, n}, rng);
  BenchResult nt = Run([&] { MatmulNT(dc.data(), b.data(), a.data(), m, n, k); });
  BenchResult nt_ref = Run([&] { RefMatmulNT(dc.data(), b.data(), a.data(), m, n, k); });
  PrintLine(std::string("gemm_nt_") + name, shape, flops, nt, &nt_ref);
  BenchResult tn = Run([&] { MatmulTN(a.data(), dc.data(), b.data(), m, k, n); });
  BenchResult tn_ref = Run([&] { RefMatmulTN(a.data(), dc.data(), b.data(), m, k, n); });
  PrintLine(std::string("gemm_tn_") + name, shape, flops, tn, &tn_ref);
}

void BenchConv(Rng& rng, const char* name, int64_t batch, int64_t c, int64_t hw, int64_t o,
               int64_t kernel, int64_t stride, int64_t padding) {
  Conv2dArgs args;
  args.stride = stride;
  args.padding = padding;
  Tensor x = Tensor::RandomGaussian(Shape{batch, c, hw, hw}, rng);
  Tensor w = Tensor::RandomGaussian(Shape{o, c, kernel, kernel}, rng, 0.1f);
  Tensor b = Tensor::Zeros(Shape{o});
  const int64_t oh = ConvOutDim(hw, kernel, stride, padding);
  const double fwd_flops = 2.0 * batch * o * c * kernel * kernel * oh * oh;
  char shape[96];
  std::snprintf(shape, sizeof(shape), "n%lld c%lld %lldx%lld o%lld k%lld",
                static_cast<long long>(batch), static_cast<long long>(c),
                static_cast<long long>(hw), static_cast<long long>(hw),
                static_cast<long long>(o), static_cast<long long>(kernel));

  BenchResult fwd = Run([&] { Conv2dForward(x, w, b, args); });
  PrintLine(std::string("conv_fwd_") + name, shape, fwd_flops, fwd, nullptr);

  Tensor y = Conv2dForward(x, w, b, args);
  Tensor grad_w(w.shape());
  Tensor grad_b(b.shape());
  BenchResult bwd = Run([&] { Conv2dBackward(x, w, y, args, grad_w, grad_b); });
  PrintLine(std::string("conv_bwd_") + name, shape, 3.0 * fwd_flops, bwd, nullptr);
}

void BenchAttention(Rng& rng, int64_t batch, int64_t t, int64_t dim, int64_t heads) {
  MultiHeadSelfAttention attn(dim, heads, rng);
  Tensor x = Tensor::RandomGaussian(Shape{batch, t, dim}, rng);
  // qkv + proj GEMMs plus the per-head score/context products.
  const double flops = 2.0 * batch * t * dim * 4 * dim + 4.0 * batch * t * t * dim;
  char shape[96];
  std::snprintf(shape, sizeof(shape), "n%lld t%lld d%lld h%lld", static_cast<long long>(batch),
                static_cast<long long>(t), static_cast<long long>(dim),
                static_cast<long long>(heads));
  BenchResult fwd = Run([&] { attn.Forward(x, /*training=*/false); });
  PrintLine("attention_fwd", shape, flops, fwd, nullptr);
}

// The model shapes the standard GEMM benches cover (logical m x k x n).
struct GemmShape {
  const char* name;
  int64_t m, k, n;
};
constexpr GemmShape kGemmShapes[] = {
    {"sq256", 256, 256, 256},  {"vit_qkv", 17, 32, 96},  {"vit_mlp", 17, 32, 64},
    {"vgg_c1", 8, 27, 1024},   {"vgg_c3", 16, 72, 256},  {"vgg_c8", 64, 288, 16},
};

// Int8 u8·s8 -> s32 GEMM against the f32 packed solver at the same shape
// (solver vs solver — not MatmulNN, whose dispatch may pick a different f32
// winner per shape). The f32-packed comparison is the acceptance bar for the
// quantized engine path, so the line reports it as `speedup` directly;
// `traffic_bytes` is the effective memory traffic of one product (u8 A + s8 B
// + s32 C vs all-f32), which is where int8 actually wins on bandwidth-bound
// shapes.
void BenchQGemm(Rng& rng, const char* name, int64_t m, int64_t k, int64_t n) {
  std::vector<uint8_t> a(static_cast<size_t>(m * k));
  std::vector<int8_t> b(static_cast<size_t>(k * n));
  std::vector<int32_t> c(static_cast<size_t>(m * n));
  for (uint8_t& v : a) {
    v = static_cast<uint8_t>(rng.NextInt(256));
  }
  for (int8_t& v : b) {
    v = static_cast<int8_t>(rng.NextIntRange(-127, 127));
  }
  Tensor a32 = Tensor::RandomGaussian(Shape{m, k}, rng);
  Tensor b32 = Tensor::RandomGaussian(Shape{k, n}, rng);
  Tensor c32(Shape{m, n});

  const kernels::SolverRegistry& registry = kernels::SolverRegistry::Global();
  const kernels::ProblemDesc desc = kernels::QGemmProblem(m, k, n);
  const kernels::ProblemDesc f32_desc =
      kernels::GemmProblem(kernels::OpFamily::kGemmNN, m, k, n);
  const kernels::QGemmSolver* solver = registry.ResolveQGemm(desc);
  const kernels::GemmSolver* f32_solver = registry.FindGemm("gemm.packed");
  const kernels::QGemmCall call{a.data(), b.data(), c.data()};
  const kernels::GemmCall f32_call =
      kernels::MakeGemmCall(f32_desc, a32.data(), b32.data(), c32.data(), false);
  BenchResult q = Run([&] { solver->Run(desc, call); });
  BenchResult f32 = Run([&] { f32_solver->Run(f32_desc, f32_call); });

  const double flops = 2.0 * m * k * n;
  const double gf = flops / q.seconds_per_iter / 1e9;
  const double f32_gf = flops / f32.seconds_per_iter / 1e9;
  const int64_t traffic = m * k + k * n + m * n * 4;        // u8 + s8 + s32
  const int64_t f32_traffic = (m * k + k * n + m * n) * 4;  // all f32
  char shape[96];
  std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld", static_cast<long long>(m),
                static_cast<long long>(k), static_cast<long long>(n));
  bench::EmitJsonLine(bench::Json()
                          .Set("op", std::string("qgemm_nn_") + name)
                          .Set("shape", shape)
                          .Set("dtype", "int8")
                          .Set("solver", solver->name())
                          .Set("gflops", gf, 2)
                          .Set("f32_gflops", f32_gf, 2)
                          .Set("speedup", f32_gf > 0.0 ? gf / f32_gf : 0.0, 2)
                          .Set("traffic_bytes", traffic)
                          .Set("f32_traffic_bytes", f32_traffic)
                          .Set("traffic_ratio",
                               static_cast<double>(f32_traffic) / static_cast<double>(traffic), 2)
                          .Set("bytes_per_op", q.bytes_per_iter));
}

// Benchmarks every applicable solver per (shape, GEMM variant) through the
// autotuner's timing path and reports each candidate plus the selection.
void SweepSolvers() {
  using kernels::OpFamily;
  bench::EmitJsonLine(bench::Json().Set("config", "kernel_threads").Set("value", KernelThreads()));
  const kernels::SolverRegistry& registry = kernels::SolverRegistry::Global();
  kernels::TuneDb db;  // in-memory scratch; the sweep always re-measures
  kernels::AutotuneOptions opts;
  opts.force = true;
  for (const GemmShape& shape : kGemmShapes) {
    for (OpFamily op : {OpFamily::kGemmNN, OpFamily::kGemmNT, OpFamily::kGemmTN}) {
      const kernels::ProblemDesc desc = kernels::GemmProblem(op, shape.m, shape.k, shape.n);
      const std::string heuristic = registry.HeuristicGemm(desc)->name();
      const kernels::TuneResult result = kernels::TuneProblem(desc, db, opts);
      double heuristic_gflops = 0.0;
      for (const kernels::SolverSample& sample : result.samples) {
        if (sample.solver == heuristic) {
          heuristic_gflops = sample.gflops;
        }
        bench::EmitJsonLine(bench::Json()
                                .Set("op", "sweep")
                                .Set("family", kernels::OpFamilyName(op))
                                .Set("shape", shape.name)
                                .Set("solver", sample.solver)
                                .Set("gflops", sample.gflops, 2)
                                .Set("winner", sample.solver == result.winner ? 1 : 0));
      }
      bench::EmitJsonLine(bench::Json()
                              .Set("op", "sweep_selected")
                              .Set("family", kernels::OpFamilyName(op))
                              .Set("shape", shape.name)
                              .Set("solver", result.winner)
                              .Set("gflops", result.winner_gflops, 2)
                              .Set("heuristic", heuristic)
                              .Set("heuristic_gflops", heuristic_gflops, 2)
                              .Set("improvement",
                                   heuristic_gflops > 0.0 ? result.winner_gflops / heuristic_gflops
                                                          : 1.0,
                                   3));
    }
  }
}

void Main(const std::string& dtype_filter) {
  Rng rng(42);
  bench::EmitJsonLine(bench::Json().Set("config", "kernel_threads").Set("value", KernelThreads()));
  const bool run_f32 = dtype_filter.empty() || dtype_filter == "f32";
  const bool run_int8 = dtype_filter.empty() || dtype_filter == "int8";

  // Square GEMM plus the scaled model shapes from the zoo:
  //   ViT (dim 32, 4 heads, 17 tokens): qkv (17,32,96), mlp (17,32,64)
  //   VGG (base width 8, 32x32 input): im2col GEMMs o x ckk x oh*ow
  if (run_f32) {
    for (const GemmShape& shape : kGemmShapes) {
      BenchGemm(rng, shape.name, shape.m, shape.k, shape.n);
    }

    BenchConv(rng, "vgg_first", 8, 3, 32, 8, 3, 1, 1);
    BenchConv(rng, "vgg_mid", 8, 16, 16, 32, 3, 1, 1);
    BenchConv(rng, "resnet_stride", 8, 16, 16, 32, 3, 2, 1);

    BenchAttention(rng, 8, 17, 32, 4);
  }

  if (run_int8) {
    for (const GemmShape& shape : kGemmShapes) {
      BenchQGemm(rng, shape.name, shape.m, shape.k, shape.n);
    }
  }
}

}  // namespace
}  // namespace gmorph

int main(int argc, char** argv) {
  std::string dtype_filter;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep-solvers") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--dtype") == 0 && i + 1 < argc) {
      dtype_filter = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--sweep-solvers] [--dtype f32|int8]\n", argv[0]);
      return 2;
    }
  }
  if (!dtype_filter.empty() && dtype_filter != "f32" && dtype_filter != "int8") {
    std::fprintf(stderr, "unknown --dtype '%s' (want f32 or int8)\n", dtype_filter.c_str());
    return 2;
  }
  if (sweep) {
    gmorph::SweepSolvers();
    return 0;
  }
  gmorph::Main(dtype_filter);
  return 0;
}
