// Table 3: latency of Original vs GMorph-fused models on both inference
// engines (eager = PyTorch stand-in, fused = TensorRT stand-in), at accuracy
// drop < 2%. Shows model fusion is complementary to engine-level graph
// optimization: both engines speed up by a similar factor.
//
// Besides the human-readable table it prints one JSON line per configuration
// (machine-parseable, like micro_ops):
//   {"bench": "B1", "engine": "fused", "model": "orig"|"fused", "batch": 1,
//    "latency_ms": ..., "throughput_qps": ..., "bytes_per_op": ...}
// bytes_per_op is the heap growth (tensor storage + scratch arenas) per Run
// in steady state — 0 for the planned fused engine on fully-lowered graphs.
//
// --autotune benchmarks the kernel solvers on every shape the measured plans
// execute (all batches) before timing, records the winners in the tuning DB
// (GMORPH_TUNE_DB, else <cache dir>/gmorph.tunedb), and measures with tuned
// dispatch. Without the flag, a DB named by GMORPH_TUNE_DB is still honored —
// kernel resolution consults it automatically.
#include <cstdio>
#include <cstring>
#include <set>

#include "bench/bench_common.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/kernels/autotune.h"
#include "src/kernels/scratch.h"
#include "src/kernels/tune_db.h"
#include "src/runtime/engine.h"
#include "src/runtime/fused_engine.h"

namespace {

using namespace gmorph;

int64_t HeapBytesNow() { return Tensor::TotalAllocatedBytes() + ScratchArena::TotalHeapBytes(); }

struct EngineSample {
  double latency_ms = 0.0;
  int64_t bytes_per_run = 0;
};

EngineSample Sample(InferenceEngine& engine, const Tensor& input) {
  EngineSample s;
  engine.Run(input);  // extra warmup so arena/binding growth settles
  const int64_t before = HeapBytesNow();
  engine.Run(input);
  s.bytes_per_run = HeapBytesNow() - before;
  s.latency_ms = MeasureEngineLatencyMs(engine, input, /*warmup=*/1, /*repeats=*/5);
  return s;
}

void PrintJson(int bench, const std::string& engine, const char* model, int64_t batch,
               const EngineSample& s) {
  gmorph::bench::EmitJsonLine(
      gmorph::bench::Json()
          .Set("bench", "B" + std::to_string(bench))
          .Set("engine", engine)
          .Set("model", model)
          .Set("batch", batch)
          .Set("latency_ms", s.latency_ms, 3)
          .Set("throughput_qps",
               s.latency_ms > 0.0 ? 1000.0 / s.latency_ms * static_cast<double>(batch) : 0.0, 1)
          .Set("bytes_per_op", s.bytes_per_run));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmorph::bench;
  const bool autotune = argc > 1 && std::strcmp(argv[1], "--autotune") == 0;
  std::shared_ptr<kernels::TuneDb> tune_db;
  std::string tune_db_path;
  if (autotune) {
    tune_db_path = kernels::ResolveTuneDbPath();
    tune_db = std::make_shared<kernels::TuneDb>();
    tune_db->Load(tune_db_path);
    kernels::SetGlobalTuneDb(tune_db);
  }

  PrintHeader("Table 3: Original vs GMorph on eager and fused engines", "paper Table 3");
  PrintRow({"Benchmark", "eagerOrig", "eagerFused", "speedup", "optOrig", "optFused",
            "speedup"});

  for (int b = 1; b <= kNumBenchmarks; ++b) {
    SearchSummary s = RunSearchCached(b, /*threshold=*/0.02, Variant::kBase);
    Rng rng(41);
    AbsGraph original = OriginalGraph(b);
    AbsGraph best;
    if (!LoadGraph(s.best_graph_path, best)) {
      std::fprintf(stderr, "missing cached graph for B%d\n", b);
      return 1;
    }
    MultiTaskModel original_model(original, rng);
    MultiTaskModel best_model(best, rng);
    const Shape per_sample = original.node(original.root()).output_shape;

    if (autotune) {
      // Tune every kernel shape the measured plans will execute, at every
      // measured batch, so the timed runs below resolve winners from the DB.
      std::set<kernels::ProblemDesc> problems;
      for (MultiTaskModel* model : {&original_model, &best_model}) {
        FusedEngine probe(model);
        for (int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}}) {
          for (const kernels::ProblemDesc& desc : probe.KernelProblems(batch)) {
            problems.insert(desc);
          }
        }
      }
      kernels::TuneProblems(std::vector<kernels::ProblemDesc>(problems.begin(), problems.end()),
                            *tune_db, kernels::AutotuneOptions());
    }

    std::vector<std::string> row = {"B" + std::to_string(b)};
    for (EngineKind kind : {EngineKind::kEager, EngineKind::kFused}) {
      auto engine_orig = MakeEngine(kind, &original_model);
      auto engine_best = MakeEngine(kind, &best_model);
      double batch1_orig = 0.0;
      double batch1_best = 0.0;
      for (int64_t batch : {int64_t{1}, int64_t{4}, int64_t{8}}) {
        const Tensor input = Tensor::Zeros(per_sample.WithBatch(batch));
        const EngineSample so = Sample(*engine_orig, input);
        const EngineSample sb = Sample(*engine_best, input);
        PrintJson(b, engine_orig->Name(), "orig", batch, so);
        PrintJson(b, engine_best->Name(), "fused", batch, sb);
        if (batch == 1) {
          batch1_orig = so.latency_ms;
          batch1_best = sb.latency_ms;
        }
      }
      row.push_back(Fmt(batch1_orig));
      row.push_back(Fmt(batch1_best));
      row.push_back(Fmt(batch1_orig / batch1_best) + "x");
    }
    PrintRow(row);
  }
  if (autotune) {
    if (tune_db->Save(tune_db_path)) {
      std::printf("\nautotuned dispatch: %lld tuned entries -> %s\n",
                  static_cast<long long>(tune_db->size()), tune_db_path.c_str());
    } else {
      std::fprintf(stderr, "warning: failed to save tuning DB to %s\n", tune_db_path.c_str());
    }
  }
  std::printf("\n'eager' executes module-by-module; 'opt' lowers the graph through the\n"
              "execution planner (BN folding, epilogue fusion, static memory planning,\n"
              "branch-parallel scheduling; see src/runtime/fused_engine.h).\n");
  return 0;
}
