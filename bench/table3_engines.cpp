// Table 3: latency of Original vs GMorph-fused models on both inference
// engines (eager = PyTorch stand-in, fused = TensorRT stand-in), at accuracy
// drop < 2%. Shows model fusion is complementary to engine-level graph
// optimization: both engines speed up by a similar factor.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/runtime/engine.h"

int main() {
  using namespace gmorph;
  using namespace gmorph::bench;
  PrintHeader("Table 3: Original vs GMorph on eager and fused engines", "paper Table 3");
  PrintRow({"Benchmark", "eagerOrig", "eagerFused", "speedup", "optOrig", "optFused",
            "speedup"});

  for (int b = 1; b <= kNumBenchmarks; ++b) {
    SearchSummary s = RunSearchCached(b, /*threshold=*/0.02, Variant::kBase);
    Rng rng(41);
    AbsGraph original = OriginalGraph(b);
    AbsGraph best;
    if (!LoadGraph(s.best_graph_path, best)) {
      std::fprintf(stderr, "missing cached graph for B%d\n", b);
      return 1;
    }
    MultiTaskModel original_model(original, rng);
    MultiTaskModel best_model(best, rng);
    const Shape input = original.node(original.root()).output_shape;

    std::vector<std::string> row = {"B" + std::to_string(b)};
    for (EngineKind kind : {EngineKind::kEager, EngineKind::kFused}) {
      auto engine_orig = MakeEngine(kind, &original_model);
      auto engine_best = MakeEngine(kind, &best_model);
      const double lat_orig = MeasureEngineLatencyMs(*engine_orig, input);
      const double lat_best = MeasureEngineLatencyMs(*engine_best, input);
      row.push_back(Fmt(lat_orig));
      row.push_back(Fmt(lat_best));
      row.push_back(Fmt(lat_orig / lat_best) + "x");
    }
    PrintRow(row);
  }
  std::printf("\n'eager' executes module-by-module; 'opt' applies BN folding, conv+ReLU\n"
              "fusion and identity elimination before executing (see src/runtime).\n");
  return 0;
}
