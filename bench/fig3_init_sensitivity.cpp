// Figure 3: for a fixed mutated architecture, different weight
// initializations lead to different final accuracy drops — which is why
// architecture alone cannot predict accuracy and fine-tuning is unavoidable
// (motivates predictive filtering instead of static prediction).
//
// Two fixed architectures are derived from two VGG-13 teachers (age/gender);
// each is re-trained from several perturbed initializations and the drop
// distribution is printed.
#include <cmath>
#include <cstdio>
#include <optional>

#include "bench/bench_common.h"
#include "src/core/finetune.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"

namespace {

using namespace gmorph;
using namespace gmorph::bench;

// Gaussian-perturbs every node weight (fresh "initialization configuration").
AbsGraph PerturbWeights(const AbsGraph& graph, float relative_sigma, Rng& rng) {
  AbsGraph g = graph;
  for (const AbsNode& n : graph.nodes()) {
    if (n.IsRoot() || n.weights.empty()) {
      continue;
    }
    std::vector<Tensor> perturbed;
    for (const Tensor& w : n.weights) {
      Tensor copy = w.Clone();
      double sq = 0.0;
      for (int64_t i = 0; i < copy.size(); ++i) {
        sq += static_cast<double>(copy.at(i)) * copy.at(i);
      }
      const float rms = copy.size() > 0
                            ? static_cast<float>(std::sqrt(sq / static_cast<double>(copy.size())))
                            : 0.0f;
      for (int64_t i = 0; i < copy.size(); ++i) {
        copy.at(i) += relative_sigma * rms * rng.NextGaussian();
      }
      perturbed.push_back(std::move(copy));
    }
    g.mutable_node(n.id).weights = std::move(perturbed);
  }
  return g;
}

}  // namespace

int main() {
  if (gmorph::bench::ReplayOrBeginRecord("fig3")) {
    return 0;
  }
  PrintHeader("Figure 3: accuracy-drop spread across weight initializations",
              "paper Fig. 3");
  PreparedBenchmark& p = GetBenchmark(1);
  // Two VGG-13 teachers: age (task 0) and gender (task 1).
  std::vector<const TaskModel*> two = {p.teacher_ptrs[0], p.teacher_ptrs[1]};
  AbsGraph original = ParseTaskModels(two);
  Rng rng(606);
  std::vector<Tensor> teacher_logits = {PredictAll(*p.teacher_ptrs[0], p.def.train),
                                        PredictAll(*p.teacher_ptrs[1], p.def.train)};
  std::vector<double> teacher_scores = {p.teacher_scores[0], p.teacher_scores[1]};

  for (int arch = 1; arch <= 2; ++arch) {
    // A fixed mutated architecture per panel (deterministic pair choice).
    Rng arch_rng(static_cast<uint64_t>(arch) * 71);
    std::optional<AbsGraph> mutated =
        SampleMutatePass(original, arch, ShapeSimilarity::kSimilar, arch_rng);
    if (!mutated) {
      std::printf("architecture %d: no mutation available\n", arch);
      continue;
    }
    std::printf("--- architecture %d (%d nodes) ---\n", arch, mutated->size());
    PrintRow({"init", "finalDrop(%)"});
    const int inits = Scaled(6);
    for (int run = 0; run < inits; ++run) {
      Rng run_rng(static_cast<uint64_t>(arch) * 1000 + static_cast<uint64_t>(run));
      AbsGraph init = PerturbWeights(*mutated, /*relative_sigma=*/0.25f, run_rng);
      MultiTaskModel candidate(init, run_rng);
      FinetuneOptions ft;
      ft.max_epochs = 4;
      ft.eval_interval = 4;
      ft.early_stop_on_target = false;
      FinetuneResult r = DistillFinetune(candidate, teacher_logits, p.def.train, p.def.test,
                                         teacher_scores, ft);
      PrintRow({std::to_string(run), Fmt(r.max_drop * 100, 2)});
    }
    std::printf("\n");
  }
  std::printf("Expected shape: drops vary across runs for the *same* architecture —\n"
              "accuracy is not predictable from structure alone (paper Fig. 3).\n");
  return 0;
}
