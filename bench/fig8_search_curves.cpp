// Figure 8: best-candidate inference cost as a function of search time on B1,
// for the three GMorph variants and the random-sampling baseline, at each
// accuracy-drop threshold. Prints the (search time, best cost) series each
// curve in the figure plots; cost is FLOPs (see bench_common.h).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gmorph;
  using namespace gmorph::bench;
  PrintHeader("Figure 8: search progress on B1 (cost of best model vs search time)",
              "paper Fig. 8");

  const Variant variants[] = {Variant::kBase, Variant::kP, Variant::kPR, Variant::kRandom};
  for (double threshold : {0.0, 0.01, 0.02}) {
    std::printf("--- accuracy drop < %.0f%% ---\n", threshold * 100);
    for (Variant v : variants) {
      SearchSummary s = RunSearchCached(/*bench_index=*/1, threshold, v);
      std::printf("%-13s total=%6.1fs final=%5.2fx  curve:", VariantName(v).c_str(),
                  s.search_seconds, s.speedup);
      for (size_t i = 0; i < s.trace.size(); ++i) {
        // Thin long traces to at most 8 printed points.
        const size_t stride = std::max<size_t>(1, s.trace.size() / 8);
        if (i % stride == 0 || i + 1 == s.trace.size()) {
          std::printf(" (%.1fs,%.1fMF)", s.trace[i].elapsed_seconds,
                      static_cast<double>(s.trace[i].best_flops) / 1e6);
        }
      }
      std::printf("\n");
      // One JSON line per trace point: the full search-cost trajectory
      // (machine-parseable, like micro_ops/table3).
      for (size_t i = 0; i < s.trace.size(); ++i) {
        std::printf("{\"bench\": \"B1\", \"threshold\": %.3f, \"variant\": \"%s\", "
                    "\"iteration\": %zu, \"elapsed_seconds\": %.3f, \"best_flops\": %lld, "
                    "\"cache_hit\": %s}\n",
                    threshold, VariantName(v).c_str(), i + 1, s.trace[i].elapsed_seconds,
                    static_cast<long long>(s.trace[i].best_flops),
                    s.trace[i].cache_hit ? "true" : "false");
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: the filtered variants (wP, wP+R) reach low-cost candidates in\n"
              "less search time; random sampling converges slowest (paper Fig. 8).\n");
  return 0;
}
