// Table 6 (appendix A): per-task single-model scores for every benchmark.
// Pre-trains each task-specific teacher on its synthetic dataset and reports
// its test score under the task's metric.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace gmorph;
  using namespace gmorph::bench;
  PrintHeader("Table 6: single-task models and scores", "paper Table 6 (appendix A)");
  PrintRow({"Benchmark", "Task", "Model", "Metric", "Score"});

  for (int b = 1; b <= kNumBenchmarks; ++b) {
    const PreparedBenchmark& p = GetBenchmark(b);
    for (size_t t = 0; t < p.def.tasks.size(); ++t) {
      const BenchmarkTask& task = p.def.tasks[t];
      PrintRow({p.def.id, task.name, task.model.name, MetricKindName(task.metric),
                Fmt(p.teacher_scores[t], 3)});
    }
  }
  return 0;
}
