// Table 4: accuracy drop and speedup of the MTL baselines (All-shared,
// TreeMTL) vs GMorph at accuracy drop < 1%. For B5-B7 the architectures share
// no identical layers, so MTL is not applicable ("-"), exactly as in the
// paper.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/mtl_baselines.h"

int main() {
  if (gmorph::bench::ReplayOrBeginRecord("table4")) {
    return 0;
  }
  using namespace gmorph;
  using namespace gmorph::bench;
  PrintHeader("Table 4: MTL baselines vs GMorph (accuracy drop < 1%)", "paper Table 4");
  PrintRow({"Benchmark", "AllShared", "speedup", "TreeMTL", "speedup", "GMorph", "speedup"});

  for (int b = 1; b <= kNumBenchmarks; ++b) {
    PreparedBenchmark& p = GetBenchmark(b);
    MtlBaselineOptions opts;
    opts.finetune.max_epochs = 24;
    opts.finetune.eval_interval = 4;
    opts.finetune.batch_size = 16;
    opts.finetune.lr = 3e-3f;
    opts.probe_epochs = 4;
    opts.target_drop = 0.01;
    opts.latency.measured_runs = 3;

    std::vector<TaskModel*> teachers = p.teacher_ptrs;
    MtlBaselineResult all_shared = RunAllShared(teachers, p.def.train, p.def.test, opts);
    MtlBaselineResult tree_mtl = RunTreeMtl(teachers, p.def.train, p.def.test, opts);
    SearchSummary gm = RunSearchCached(b, 0.01, Variant::kBase);
    double gm_drop = 0.0;
    for (size_t t = 0; t < gm.teacher_scores.size(); ++t) {
      gm_drop = std::max(gm_drop, gm.teacher_scores[t] - gm.best_task_scores[t]);
    }

    auto cell_drop = [](const MtlBaselineResult& r) {
      return r.feasible ? Fmt(r.accuracy_drop * 100, 2) + "%" : std::string("-");
    };
    auto cell_speed = [](const MtlBaselineResult& r) {
      return r.feasible ? Fmt(r.flops_speedup) + "x" : std::string("-");
    };
    PrintRow({"B" + std::to_string(b), cell_drop(all_shared), cell_speed(all_shared),
              cell_drop(tree_mtl), cell_speed(tree_mtl), Fmt(gm_drop * 100, 2) + "%",
              Fmt(gm.speedup) + "x"});
  }
  std::printf("\nDrop = worst task's score drop after training to convergence (baselines)\n"
              "or at the point GMorph's fine-tuning met the 1%% target (GMorph column).\n"
              "Speedups are compute (FLOPs) ratios vs the original multi-DNNs.\n");
  return 0;
}
