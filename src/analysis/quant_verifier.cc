#include "src/analysis/quant_verifier.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "src/common/artifact_header.h"
#include "src/quant/recipe.h"

namespace gmorph {
namespace {

std::string LinePath(int lineno) { return "line " + std::to_string(lineno); }

// The shared parser rejects an out-of-range in_zp with a generic field error.
// Recover the specific token so the finding can carry the quant.zp rule id
// instead of the catch-all quant.entry.
bool ExtractBadZeroPoint(const std::string& line, long long* zp) {
  const size_t pos = line.find("in_zp=");
  if (pos == std::string::npos) {
    return false;
  }
  const char* start = line.c_str() + pos + 6;
  char* end = nullptr;
  const long long v = std::strtoll(start, &end, 10);
  if (end == start || (*end != '\0' && *end != ' ' && *end != '\t')) {
    return false;
  }
  *zp = v;
  return v < 0 || v > 255;
}

}  // namespace

DiagnosticList VerifyQuantRecipeFile(const std::string& path) {
  using quant::StepQuantSpec;

  DiagnosticList diags;
  std::ifstream in(path);
  if (!in) {
    diags.Error("quant.open", path) << "cannot open quantization recipe file";
    return diags;
  }
  std::string line;
  if (!std::getline(in, line)) {
    diags.Error("quant.header", path) << "empty recipe file";
    return diags;
  }
  switch (CheckArtifactHeaderLine(line, kQuantRecipeArtifact)) {
    case HeaderCheck::kMissing:
      diags.Error("quant.header", path)
          << "missing " << kQuantRecipeArtifact.kind << " header";
      return diags;
    case HeaderCheck::kWrongVersion:
      diags.Error("quant.version", path) << "unsupported recipe version '" << line << "'";
      return diags;
    case HeaderCheck::kOk:
      break;
  }

  std::map<int64_t, int> first_line;  // seq -> line that introduced it
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    StepQuantSpec spec;
    std::string error;
    if (!quant::ParseQuantStepLine(line, &spec, &error)) {
      long long zp = 0;
      if (ExtractBadZeroPoint(line, &zp)) {
        diags.Error("quant.zp", LinePath(lineno))
            << "activation zero point " << zp << " outside u8 range [0, 255]";
      } else {
        diags.Error("quant.entry", LinePath(lineno)) << error;
      }
      continue;
    }
    if (!(spec.in_q.scale > 0.0f) || !std::isfinite(spec.in_q.scale)) {
      diags.Error("quant.scale", LinePath(lineno))
          << "activation scale " << spec.in_q.scale
          << " is not positive finite; dequant would produce zeros or NaN";
    }
    for (size_t c = 0; c < spec.w_scales.size(); ++c) {
      const float ws = spec.w_scales[c];
      if (!(ws > 0.0f) || !std::isfinite(ws)) {
        diags.Error("quant.scale", LinePath(lineno))
            << "weight scale for output channel " << c << " is " << ws
            << "; per-channel scales must be positive finite";
      }
    }
    const auto [it, inserted] = first_line.emplace(spec.seq, lineno);
    if (!inserted) {
      diags.Error("quant.duplicate", LinePath(lineno))
          << "duplicate spec for plan step seq=" << spec.seq << " (first at line "
          << it->second << "; FindSeq resolves to the first)";
    }
  }
  if (first_line.empty() && diags.empty()) {
    diags.Warning("quant.entry", path) << "recipe has a valid header but no step lines";
  }
  return diags;
}

}  // namespace gmorph
