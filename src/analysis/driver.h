// The unified analysis driver: one entry point that runs the verifiers as
// passes, applies a severity policy, and renders the result in text, JSON, or
// SARIF 2.1.0.
//
// Pipelines:
//   RunGraphPasses(graph)   GraphVerifier under uniform options — the search
//                           rejects candidates through this entry point;
//   RunPlanPasses(plan)     PlanVerifier + the dtype-propagation analysis +
//                           the peak-memory certifier;
//   AnalyzeFile(path)       sniffs the artifact kind from the file head
//                           (binary graph magic, or the shared
//                           "gmorph-<kind> vN" header line) and runs the
//                           matching linter; unknown files fall back to being
//                           parsed as a search config naming a benchmark.
//
// Severity policy, applied uniformly after the passes run:
//   --Werror=<rule|prefix>  promote matching warnings to errors;
//   --Wno=<rule|prefix>     drop matching warnings/notes (errors cannot be
//                           silenced by flag — only a baseline entry, which
//                           pins an exact finding, can suppress one);
//   baseline file           text file of "rule.id node path" lines (and #
//                           comments) naming known findings to suppress.
// Patterns must select at least one registered rule (see rules.h).
//
// Exit-code policy (uniform across all artifact kinds and formats):
//   0  clean after policy (warnings/notes do not fail);
//   1  at least one error diagnostic survived the policy;
//   2  the input could not be read at all.
#ifndef GMORPH_SRC_ANALYSIS_DRIVER_H_
#define GMORPH_SRC_ANALYSIS_DRIVER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/analysis/graph_verifier.h"
#include "src/analysis/mem_analysis.h"
#include "src/analysis/plan_ir.h"

namespace gmorph {

enum class AnalysisFormat { kText, kJson, kSarif };

struct AnalysisOptions {
  std::vector<std::string> werror;  // promote matching warnings to errors
  std::vector<std::string> wno;     // drop matching warnings/notes
  std::string baseline_path;        // empty: no baseline suppression
  MemAnalysisOptions mem;
  // Lowers a verified graph into a plan for the plan passes (installed by the
  // CLI as FusedEngine::ExportPlan — the analysis layer cannot link the
  // runtime). Empty: graph inputs get graph passes only.
  std::function<PlanIR(const AbsGraph& graph, uint64_t seed)> plan_from_graph;
  uint64_t seed = 42;  // model materialization seed for graph/config inputs
};

// Rejects --Werror=/--Wno= patterns that select no registered rule. Returns
// false with a human-readable reason.
bool ValidateAnalysisOptions(const AnalysisOptions& options, std::string* error);

struct AnalysisReport {
  DiagnosticList diags;        // post-policy findings
  std::string input_path;
  std::string input_kind;      // "plan", "graph", "config", "tunedb", ...
  int suppressed_baseline = 0;
  int suppressed_wno = 0;
  int promoted = 0;            // warnings escalated by --Werror
  bool unreadable = false;     // exit-code-2 condition
  std::string unreadable_reason;

  int exit_code() const {
    return unreadable ? 2 : (diags.ok() ? 0 : 1);
  }
};

// Pass pipelines (no policy applied; callers that want the policy use
// AnalyzeFile or ApplySeverityPolicy).
DiagnosticList RunGraphPasses(const AbsGraph& graph, const GraphVerifyOptions& options = {});
DiagnosticList RunPlanPasses(const PlanIR& plan, const MemAnalysisOptions& mem = {});

// Applies baseline suppression and the --Wno/--Werror policy to `diags`,
// filling the report's counters. The baseline is loaded from
// options.baseline_path; a named-but-unreadable baseline marks the report
// unreadable (a policy the user asked for must not be silently skipped).
void ApplySeverityPolicy(const AnalysisOptions& options, DiagnosticList diags,
                         AnalysisReport* report);

// Full driver: sniff, run passes, apply policy.
AnalysisReport AnalyzeFile(const std::string& path, const AnalysisOptions& options);

// Renderers. Text matches the historical --verify output (one diagnostic per
// line plus a trailer); JSON is a stable machine-readable envelope; SARIF is
// a minimal valid SARIF 2.1.0 log with one run.
std::string RenderAnalysisText(const AnalysisReport& report);
std::string RenderAnalysisJson(const AnalysisReport& report);
std::string RenderAnalysisSarif(const AnalysisReport& report);
std::string RenderAnalysis(const AnalysisReport& report, AnalysisFormat format);

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_DRIVER_H_
