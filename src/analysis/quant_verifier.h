// Strict linter for "gmorph-quant v1" quantization recipe files.
//
// The runtime loader (quant::LoadQuantRecipe) already refuses malformed files
// — a recipe drives numerics, so unlike the tunedb nothing is dropped
// silently. This pass is the diagnostic counterpart wired into
// `gmorph_cli --verify`: instead of one opaque load error it reports every
// finding in the file as a structured diagnostic.
//
//   quant.open       cannot open the file
//   quant.header     missing gmorph-quant header line
//   quant.version    header names an unsupported format version
//   quant.entry      step line fails the strict grammar (shared parser
//                    ParseQuantStepLine, so the linter cannot drift from the
//                    loader)
//   quant.scale      in_scale or a per-channel weight scale is nonpositive or
//                    nonfinite (would denormalize or NaN the dequant epilogue)
//   quant.zp         activation zero point outside the u8 range [0, 255]
//   quant.duplicate  two step lines share one plan seq (Quantize would apply
//                    whichever FindSeq resolves — the duplicate is dead
//                    weight at best, a conflicting spec at worst)
#ifndef GMORPH_SRC_ANALYSIS_QUANT_VERIFIER_H_
#define GMORPH_SRC_ANALYSIS_QUANT_VERIFIER_H_

#include <string>

#include "src/analysis/diagnostics.h"

namespace gmorph {

DiagnosticList VerifyQuantRecipeFile(const std::string& path);

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_QUANT_VERIFIER_H_
