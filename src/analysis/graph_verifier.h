// GraphVerifier: a static-analysis pass over the abstract-graph IR.
//
// Checks any AbsGraph — seed, deserialized, or mutated — against the
// invariants graph mutation and the execution planner rely on, and reports
// each violation as a structured Diagnostic instead of asserting:
//
//   graph.node.index      node/parent/child ids out of range or misnumbered
//   graph.tasks.range     num_tasks inconsistent with the node set
//   graph.root            node 0 is not the placeholder root / extra roots
//   graph.tree.link       parent/children links not mutually consistent
//   graph.tree.reach      node unreachable from the root (orphan or cycle)
//   graph.spec.type       block type outside the BlockType enum
//   graph.shape.edge      node input shape != parent output shape
//   graph.shape.infer     stored output shape disagrees with re-inference
//   graph.capacity.stale  stored capacity disagrees with BlockCapacity(spec)
//   graph.weights.mismatch  carried weights don't add up to the capacity
//   graph.head.count      a task with zero or multiple heads
//   graph.head.task       head task id out of range
//   graph.head.leaf       head with children
//   graph.leaf.dangling   childless non-head internal node
//   graph.rescale.legal   rescale adapter inconsistent or infeasible
//   graph.rescale.identity  identity adapter (warning: wasteful, not wrong)
//   graph.share.dissimilar  adapter between dissimilar shapes (warning: the
//                           search only shares similar shapes, paper §2.2.1)
//   graph.roundtrip       serializer/parser round trip changed the graph
//
// Index-level errors abort the remaining stages (deeper walks would read out
// of bounds); everything else accumulates so one run reports every finding.
#ifndef GMORPH_SRC_ANALYSIS_GRAPH_VERIFIER_H_
#define GMORPH_SRC_ANALYSIS_GRAPH_VERIFIER_H_

#include "src/analysis/diagnostics.h"
#include "src/core/abs_graph.h"

namespace gmorph {

struct GraphVerifyOptions {
  // Also serialize + reload the graph and compare fingerprints. Copies every
  // weight tensor, so it is off by default for the per-candidate search path;
  // the CLI, fuzzers and tests turn it on.
  bool roundtrip = false;
};

DiagnosticList VerifyGraph(const AbsGraph& graph, const GraphVerifyOptions& options = {});

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_GRAPH_VERIFIER_H_
