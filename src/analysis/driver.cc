#include "src/analysis/driver.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/analysis/dtype_analysis.h"
#include "src/analysis/machine_verifier.h"
#include "src/analysis/plan_io.h"
#include "src/analysis/plan_verifier.h"
#include "src/analysis/quant_verifier.h"
#include "src/analysis/rules.h"
#include "src/analysis/tunedb_verifier.h"
#include "src/common/artifact_header.h"
#include "src/common/check.h"
#include "src/common/config.h"
#include "src/core/eval_cache.h"
#include "src/core/graph_io.h"
#include "src/core/model_parser.h"
#include "src/core/search_checkpoint.h"
#include "src/data/benchmarks.h"

namespace gmorph {
namespace {

// One baseline entry: an exact (rule id, node path) pair a previous run
// acknowledged. The file format is one finding per line — the rule id, one
// space, then the node path verbatim (it may itself contain spaces):
//
//   # plan fixtures carry this historical warning
//   plan.value.unused value v7
struct Baseline {
  std::vector<std::pair<std::string, std::string>> entries;

  bool Matches(const Diagnostic& d) const {
    for (const auto& [rule, path] : entries) {
      if (d.rule_id == rule && d.node_path == path) {
        return true;
      }
    }
    return false;
  }
};

bool LoadBaseline(const std::string& path, Baseline* baseline, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open baseline file " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    const size_t space = line.find(' ', start);
    const std::string rule = line.substr(start, space - start);
    if (FindRule(rule) == nullptr) {
      *error = path + ":" + std::to_string(lineno) + ": unknown rule '" + rule + "'";
      return false;
    }
    std::string node_path =
        space == std::string::npos ? std::string() : line.substr(space + 1);
    while (!node_path.empty() && (node_path.back() == ' ' || node_path.back() == '\r')) {
      node_path.pop_back();
    }
    baseline->entries.emplace_back(rule, std::move(node_path));
  }
  return true;
}

bool MatchesAny(const std::string& rule_id, const std::vector<std::string>& patterns) {
  for (const std::string& pattern : patterns) {
    if (RuleMatchesPattern(rule_id, pattern)) {
      return true;
    }
  }
  return false;
}

// ---- JSON string escaping (shared by the JSON and SARIF renderers) ---------
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* SarifLevel(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "none";
}

// The kind word of the first line when it names a known gmorph text artifact.
std::string SniffTextKind(const std::string& head) {
  const size_t eol = head.find('\n');
  std::string first = head.substr(0, eol);
  if (!first.empty() && first.back() == '\r') {
    first.pop_back();
  }
  std::string kind;
  if (!ParseArtifactHeaderLine(first, &kind, nullptr)) {
    // Version-damaged headers ("gmorph-plan vX") still dispatch by prefix so
    // the matching linter reports the version error instead of the config
    // fallback rejecting the file wholesale.
    const size_t space = first.find(' ');
    kind = first.substr(0, space);
  }
  return kind;
}

}  // namespace

bool ValidateAnalysisOptions(const AnalysisOptions& options, std::string* error) {
  for (const std::vector<std::string>* patterns : {&options.werror, &options.wno}) {
    for (const std::string& pattern : *patterns) {
      if (!PatternSelectsAnyRule(pattern)) {
        *error = "pattern '" + pattern + "' selects no registered rule (see --list-rules)";
        return false;
      }
    }
  }
  return true;
}

DiagnosticList RunGraphPasses(const AbsGraph& graph, const GraphVerifyOptions& options) {
  return VerifyGraph(graph, options);
}

DiagnosticList RunPlanPasses(const PlanIR& plan, const MemAnalysisOptions& mem) {
  DiagnosticList diags = VerifyPlan(plan);
  diags.Merge(AnalyzePlanDtypes(plan));
  diags.Merge(AnalyzePlanMemory(plan, mem));
  return diags;
}

void ApplySeverityPolicy(const AnalysisOptions& options, DiagnosticList diags,
                         AnalysisReport* report) {
  Baseline baseline;
  if (!options.baseline_path.empty()) {
    std::string error;
    if (!LoadBaseline(options.baseline_path, &baseline, &error)) {
      report->unreadable = true;
      report->unreadable_reason = error;
      return;
    }
  }
  for (Diagnostic d : diags.items()) {
    if (baseline.Matches(d)) {
      ++report->suppressed_baseline;
      continue;
    }
    if (d.severity != Severity::kError && MatchesAny(d.rule_id, options.wno)) {
      ++report->suppressed_wno;
      continue;
    }
    if (d.severity == Severity::kWarning && MatchesAny(d.rule_id, options.werror)) {
      d.severity = Severity::kError;
      ++report->promoted;
    }
    report->diags.Add(std::move(d));
  }
}

AnalysisReport AnalyzeFile(const std::string& path, const AnalysisOptions& options) {
  AnalysisReport report;
  report.input_path = path;
  std::string patterns_error;
  if (!ValidateAnalysisOptions(options, &patterns_error)) {
    report.unreadable = true;
    report.unreadable_reason = patterns_error;
    return report;
  }

  std::ifstream probe(path, std::ios::binary);
  if (!probe) {
    report.unreadable = true;
    report.unreadable_reason = "cannot open " + path;
    return report;
  }
  std::string head(64, '\0');
  probe.read(head.data(), static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<size_t>(probe.gcount()));
  probe.close();

  DiagnosticList diags;
  if (head.rfind("GMORPHG", 0) == 0 ||
      (head.size() >= 8 && head.compare(0, 8, "1GHPROMG") == 0)) {
    // Binary graph (magic, either byte order): graph passes with the
    // serializer round-trip, then the plan passes when lowering is available.
    report.input_kind = "graph";
    GraphLoadResult loaded = TryLoadGraph(path);
    if (!loaded.ok()) {
      ApplySeverityPolicy(options, std::move(loaded.diagnostics), &report);
      return report;
    }
    GraphVerifyOptions gopts;
    gopts.roundtrip = true;
    diags = RunGraphPasses(*loaded.graph, gopts);
    if (diags.ok() && options.plan_from_graph) {
      try {
        diags.Merge(RunPlanPasses(options.plan_from_graph(*loaded.graph, options.seed),
                                  options.mem));
      } catch (const CheckError& e) {
        diags.Add(Diagnostic::FromCheckError(e));
      }
    }
    ApplySeverityPolicy(options, std::move(diags), &report);
    return report;
  }

  const std::string kind = SniffTextKind(head);
  if (kind == kPlanArtifact.kind) {
    report.input_kind = "plan";
    PlanParseResult parsed = ParsePlanTextFile(path);
    diags = std::move(parsed.diagnostics);
    if (diags.ok()) {
      diags.Merge(RunPlanPasses(parsed.plan, options.mem));
    }
  } else if (kind == kEvalCacheArtifact.kind) {
    report.input_kind = "evalcache";
    diags = VerifyEvalCacheFile(path);
  } else if (kind == kCheckpointArtifact.kind) {
    report.input_kind = "checkpoint";
    diags = VerifyCheckpointFile(path);
  } else if (kind == kTuneDbArtifact.kind) {
    report.input_kind = "tunedb";
    diags = VerifyTuneDbFile(path);
  } else if (kind == kMachineArtifact.kind) {
    report.input_kind = "machine";
    diags = VerifyMachineFile(path);
  } else if (kind == kQuantRecipeArtifact.kind) {
    report.input_kind = "quantrecipe";
    diags = VerifyQuantRecipeFile(path);
  } else {
    // Fall back to treating the file as a search config naming a benchmark
    // (or an input_graph to load).
    report.input_kind = "config";
    Config config;
    try {
      config = Config::FromFile(path);
    } catch (const CheckError& e) {
      report.unreadable = true;
      report.unreadable_reason =
          path + " is neither a gmorph artifact nor a config: " + e.what();
      return report;
    }
    const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));
    AbsGraph graph;
    const std::string graph_path = config.GetString("input_graph", "");
    if (!graph_path.empty()) {
      GraphLoadResult loaded = TryLoadGraph(graph_path);
      if (!loaded.ok()) {
        ApplySeverityPolicy(options, std::move(loaded.diagnostics), &report);
        return report;
      }
      graph = std::move(*loaded.graph);
    } else {
      const int bench_index = static_cast<int>(config.GetInt("benchmark", 1));
      BenchmarkScale scale;
      scale.train_size = 1;  // datasets are unused here; keep it cheap
      scale.test_size = 1;
      scale.cnn_width = config.GetInt("cnn_width", 8);
      BenchmarkDef def = MakeBenchmark(bench_index, scale, seed);
      std::vector<ModelSpec> specs;
      for (const auto& task : def.tasks) {
        specs.push_back(task.model);
      }
      graph = ParseModelSpecs(specs);
    }
    GraphVerifyOptions gopts;
    gopts.roundtrip = true;
    diags = RunGraphPasses(graph, gopts);
    if (diags.ok() && options.plan_from_graph) {
      try {
        diags.Merge(RunPlanPasses(options.plan_from_graph(graph, seed), options.mem));
      } catch (const CheckError& e) {
        diags.Add(Diagnostic::FromCheckError(e));
      }
    }
  }
  ApplySeverityPolicy(options, std::move(diags), &report);
  return report;
}

std::string RenderAnalysisText(const AnalysisReport& report) {
  std::ostringstream os;
  if (report.unreadable) {
    os << "verify: " << report.unreadable_reason << "\n";
    return os.str();
  }
  for (const Diagnostic& d : report.diags.items()) {
    os << d.ToString() << "\n";
  }
  const int suppressed = report.suppressed_baseline + report.suppressed_wno;
  if (suppressed > 0 || report.promoted > 0) {
    os << "verify: " << report.suppressed_baseline << " baselined, " << report.suppressed_wno
       << " disabled, " << report.promoted << " promoted to error\n";
  }
  if (!report.diags.ok()) {
    os << "verify: " << report.diags.error_count() << " error(s)\n";
  } else {
    os << "verify: clean (" << report.diags.size() << " warning(s)/note(s))\n";
  }
  return os.str();
}

std::string RenderAnalysisJson(const AnalysisReport& report) {
  std::ostringstream os;
  os << "{\"file\": \"" << JsonEscape(report.input_path) << "\", \"kind\": \""
     << JsonEscape(report.input_kind) << "\", \"exit_code\": " << report.exit_code()
     << ", \"errors\": " << (report.unreadable ? 0 : report.diags.error_count())
     << ", \"suppressed\": " << report.suppressed_baseline + report.suppressed_wno
     << ", \"promoted\": " << report.promoted;
  if (report.unreadable) {
    os << ", \"unreadable\": \"" << JsonEscape(report.unreadable_reason) << "\"";
  }
  os << ", \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : report.diags.items()) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "{\"severity\": \"" << SeverityName(d.severity) << "\", \"rule\": \""
       << JsonEscape(d.rule_id) << "\", \"path\": \"" << JsonEscape(d.node_path)
       << "\", \"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

std::string RenderAnalysisSarif(const AnalysisReport& report) {
  // Minimal valid SARIF 2.1.0: one run, the fired rules in tool.driver.rules,
  // one result per diagnostic with the node path as a logical location.
  std::vector<std::string> rule_ids;
  const auto rule_index = [&](const std::string& id) {
    for (size_t i = 0; i < rule_ids.size(); ++i) {
      if (rule_ids[i] == id) {
        return static_cast<int>(i);
      }
    }
    rule_ids.push_back(id);
    return static_cast<int>(rule_ids.size()) - 1;
  };
  std::ostringstream results;
  bool first = true;
  for (const Diagnostic& d : report.diags.items()) {
    const int index = rule_index(d.rule_id);
    if (!first) {
      results << ", ";
    }
    first = false;
    results << "{\"ruleId\": \"" << JsonEscape(d.rule_id) << "\", \"ruleIndex\": " << index
            << ", \"level\": \"" << SarifLevel(d.severity) << "\", \"message\": {\"text\": \""
            << JsonEscape(d.message) << "\"}, \"locations\": [{\"physicalLocation\": "
            << "{\"artifactLocation\": {\"uri\": \"" << JsonEscape(report.input_path)
            << "\"}}, \"logicalLocations\": [{\"fullyQualifiedName\": \""
            << JsonEscape(d.node_path) << "\"}]}]}";
  }
  std::ostringstream rules;
  first = true;
  for (const std::string& id : rule_ids) {
    if (!first) {
      rules << ", ";
    }
    first = false;
    rules << "{\"id\": \"" << JsonEscape(id) << "\"";
    if (const RuleInfo* info = FindRule(id)) {
      rules << ", \"shortDescription\": {\"text\": \"" << JsonEscape(info->description)
            << "\"}, \"defaultConfiguration\": {\"level\": \""
            << SarifLevel(info->default_severity) << "\"}";
    }
    rules << "}";
  }
  std::ostringstream os;
  os << "{\"$schema\": "
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
        "sarif-schema-2.1.0.json\", \"version\": \"2.1.0\", \"runs\": [{\"tool\": "
        "{\"driver\": {\"name\": \"gmorph\", \"rules\": ["
     << rules.str() << "]}}, \"results\": [" << results.str() << "]}]}\n";
  return os.str();
}

std::string RenderAnalysis(const AnalysisReport& report, AnalysisFormat format) {
  switch (format) {
    case AnalysisFormat::kText:
      return RenderAnalysisText(report);
    case AnalysisFormat::kJson:
      return RenderAnalysisJson(report);
    case AnalysisFormat::kSarif:
      return RenderAnalysisSarif(report);
  }
  return RenderAnalysisText(report);
}

}  // namespace gmorph
