// Text serialization for PlanIR: a small line-oriented format so execution
// plans can be dumped for inspection and — more importantly — hand-written
// with deliberately seeded defects and linted via `gmorph_cli --verify`.
//
// Format (`gmorph-plan v1`):
//
//   gmorph-plan v1
//   value <id> shape=AxBxC [alias=<id>] [module] [head] [buffer=<id>]
//   step <seq> group=<g> kind=<name> in=<v> out=<v> [skip=<v>]
//        [w=OxCxKhxKw] [stride=N] [pad=N] [relu] [pool_k=N] [pool_s=N]
//   group <id> parent=<p>
//   buffer <id> elems=<n> [dedicated]
//   head <value>
//
// Kind names: conv, linear, maxpool, gap, meanpool, resize, tokresize,
// module. `#` starts a comment. Group step lists are derived from the steps'
// own group= fields (in sequence order); group children from the parent
// links. Ids must be dense from 0.
#ifndef GMORPH_SRC_ANALYSIS_PLAN_IO_H_
#define GMORPH_SRC_ANALYSIS_PLAN_IO_H_

#include <iosfwd>
#include <string>

#include "src/analysis/diagnostics.h"
#include "src/analysis/plan_ir.h"

namespace gmorph {

struct PlanParseResult {
  PlanIR plan;
  DiagnosticList diagnostics;  // rule ids: plan.io.*
  bool ok() const { return diagnostics.ok(); }
};

// Parses the text format above. Syntax/format violations are reported as
// plan.io.* diagnostics; a result with ok()==false still carries whatever
// was parsed so callers can report both parse and verification findings.
PlanParseResult ParsePlanText(std::istream& in);
PlanParseResult ParsePlanTextFile(const std::string& path);

// Writes `plan` in the same format; ParsePlanText inverts it.
void PlanToText(const PlanIR& plan, std::ostream& out);

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_PLAN_IO_H_
