// Strict linter for "gmorph-machine v1" ceiling artifacts (machine.* rules).
// The tolerant loader lives in src/kernels/machine.h; both sides share
// ParseMachineEntryLine so the formats can never drift.
#ifndef GMORPH_SRC_ANALYSIS_MACHINE_VERIFIER_H_
#define GMORPH_SRC_ANALYSIS_MACHINE_VERIFIER_H_

#include <string>

#include "src/analysis/diagnostics.h"

namespace gmorph {

DiagnosticList VerifyMachineFile(const std::string& path);

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_MACHINE_VERIFIER_H_
