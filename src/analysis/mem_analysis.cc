#include "src/analysis/mem_analysis.h"

#include <algorithm>
#include <string>
#include <vector>

namespace gmorph {
namespace {

constexpr int64_t kBytesPerElem = static_cast<int64_t>(sizeof(float));

// Per-root-value sequential live interval [first, last] in step-sequence
// coordinates; heads extend to the end of the run.
struct Interval {
  int64_t bytes = 0;
  int first = -1;
  int last = -1;
};

}  // namespace

MemCertificate CertifyPlanMemory(const PlanIR& plan) {
  MemCertificate cert;
  const int V = static_cast<int>(plan.values.size());
  const int S = static_cast<int>(plan.steps.size());
  const int B = static_cast<int>(plan.buffers.size());
  const auto valid_value = [&](int v) { return v >= 0 && v < V; };

  for (int b = 0; b < B; ++b) {
    cert.arena_bytes += plan.buffers[static_cast<size_t>(b)].elems_per_sample * kBytesPerElem;
  }

  // Alias roots, bounded against cycles (a verifier error; we just skip).
  std::vector<int> root(static_cast<size_t>(V), -1);
  for (int v = 0; v < V; ++v) {
    int cur = v;
    int hops = 0;
    while (valid_value(cur) && plan.values[static_cast<size_t>(cur)].alias_of >= 0 &&
           hops <= V) {
      cur = plan.values[static_cast<size_t>(cur)].alias_of;
      ++hops;
    }
    root[static_cast<size_t>(v)] = (hops > V || !valid_value(cur)) ? -1 : cur;
  }

  // Def/use events recomputed from the steps alone (the planner's own
  // bookkeeping is exactly what this pass must not trust).
  std::vector<Interval> live(static_cast<size_t>(V));
  const auto touch = [&](int r, int seq) {
    if (!valid_value(r)) {
      return;
    }
    Interval& iv = live[static_cast<size_t>(r)];
    if (iv.first < 0 || seq < iv.first) {
      iv.first = seq;
    }
    iv.last = std::max(iv.last, seq);
  };
  for (int s = 0; s < S; ++s) {
    const PlanStep& step = plan.steps[static_cast<size_t>(s)];
    if (valid_value(step.out)) {
      touch(root[static_cast<size_t>(step.out)], s);
    }
    for (int operand : {step.in0, step.skip}) {
      if (valid_value(operand)) {
        touch(root[static_cast<size_t>(operand)], s);
      }
    }
  }

  // Only arena-resident roots occupy planned memory: the plan input and
  // module outputs are external/dynamic, aliases borrow their root's bytes.
  std::vector<int64_t> delta(static_cast<size_t>(S) + 1, 0);
  for (int v = 1; v < V; ++v) {
    const PlanValue& val = plan.values[static_cast<size_t>(v)];
    if (val.alias_of >= 0 || val.from_module || val.buffer < 0 || val.buffer >= B) {
      continue;
    }
    Interval& iv = live[static_cast<size_t>(v)];
    if (iv.first < 0) {
      continue;  // never defined nor used: no live range (verifier warns)
    }
    if (val.is_head) {
      iv.last = S - 1;  // returned tensors survive the rest of the run
    }
    iv.bytes = val.shape.NumElements() * kBytesPerElem;
    delta[static_cast<size_t>(iv.first)] += iv.bytes;
    delta[static_cast<size_t>(iv.last) + 1] -= iv.bytes;
  }
  int64_t running = 0;
  for (int s = 0; s < S; ++s) {
    running += delta[static_cast<size_t>(s)];
    if (running > cert.peak_bytes) {
      cert.peak_bytes = running;
      cert.peak_step = s;
    }
  }
  return cert;
}

DiagnosticList AnalyzePlanMemory(const PlanIR& plan, const MemAnalysisOptions& options) {
  DiagnosticList diags;
  const MemCertificate cert = CertifyPlanMemory(plan);
  const int V = static_cast<int>(plan.values.size());
  const int B = static_cast<int>(plan.buffers.size());

  if (cert.arena_bytes < cert.peak_bytes) {
    diags.Error("plan.mem.arena", "plan")
        << "arena provides " << cert.arena_bytes << " bytes/sample but " << cert.peak_bytes
        << " bytes of values are simultaneously live at step " << cert.peak_step
        << "; no buffer assignment can fit this plan";
  }

  // Dead slots: allocated arena no planned value ever lands in.
  std::vector<bool> occupied(static_cast<size_t>(B), false);
  for (int v = 1; v < V; ++v) {
    const PlanValue& val = plan.values[static_cast<size_t>(v)];
    if (val.alias_of < 0 && val.buffer >= 0 && val.buffer < B) {
      occupied[static_cast<size_t>(val.buffer)] = true;
    }
  }
  for (int b = 0; b < B; ++b) {
    if (!occupied[static_cast<size_t>(b)]) {
      diags.Warning("plan.mem.buffer", "buffer " + std::to_string(b))
          << "allocates " << plan.buffers[static_cast<size_t>(b)].elems_per_sample * 4
          << " bytes/sample but no planned value occupies it";
    }
  }

  const int64_t waste_bound = static_cast<int64_t>(
      options.waste_factor * static_cast<double>(cert.peak_bytes)) + options.slack_bytes;
  if (cert.peak_bytes > 0 && cert.arena_bytes > waste_bound) {
    diags.Warning("plan.mem.waste", "plan")
        << "arena " << cert.arena_bytes << " bytes/sample exceeds " << options.waste_factor
        << "x the certified peak (" << cert.peak_bytes << " bytes + " << options.slack_bytes
        << " slack); the planner is fragmenting";
  }

  if (options.summary) {
    diags.Note("plan.mem.summary", "plan")
        << "certified peak " << cert.peak_bytes << " bytes/sample (step " << cert.peak_step
        << "), arena " << cert.arena_bytes << " bytes/sample";
  }
  return diags;
}

}  // namespace gmorph
