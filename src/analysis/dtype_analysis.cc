#include "src/analysis/dtype_analysis.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gmorph {
namespace {

// The dataflow lattice over storage dtypes.
enum class Fact : uint8_t { kBottom, kF32, kInt8, kTop };

Fact FromDType(kernels::DType d) {
  return d == kernels::DType::kInt8 ? Fact::kInt8 : Fact::kF32;
}

Fact Join(Fact a, Fact b) {
  if (a == b || b == Fact::kBottom) {
    return a;
  }
  if (a == Fact::kBottom) {
    return b;
  }
  return Fact::kTop;
}

const char* FactName(Fact f) {
  switch (f) {
    case Fact::kBottom:
      return "unknown";
    case Fact::kF32:
      return "f32";
    case Fact::kInt8:
      return "int8";
    case Fact::kTop:
      return "conflict";
  }
  return "?";
}

// Storage dtype a step writes. Every current kernel materializes f32: int8
// execution steps carry the dequant epilogue, so even they store f32. A
// future int8-storage or bf16 path changes exactly this function (and
// RequiredInputFact below) and inherits all the boundary checks.
Fact StepOutputFact(const PlanStep& step) {
  (void)step;
  return Fact::kF32;
}

// Storage dtype a step's kernel reads. Quantized conv/linear steps quantize
// u8 from f32 at their input boundary, so they too consume f32 storage.
Fact RequiredInputFact(const PlanStep& step) {
  (void)step;
  return Fact::kF32;
}

std::string StepPath(const PlanIR& plan, int seq) {
  const PlanStep& s = plan.steps[static_cast<size_t>(seq)];
  return "step " + std::to_string(seq) + " [" +
         (s.label.empty() ? PlanOpName(s.kind) : s.label) + "]";
}

std::string ValuePath(int value) {
  return "value v" + std::to_string(value);
}

}  // namespace

DiagnosticList AnalyzePlanDtypes(const PlanIR& plan) {
  DiagnosticList diags;
  const int V = static_cast<int>(plan.values.size());
  const int S = static_cast<int>(plan.steps.size());
  if (V == 0) {
    return diags;  // the verifier owns the empty-plan finding
  }

  const auto valid_value = [&](int v) { return v >= 0 && v < V; };

  // ---- Forward fixpoint: seed input + step outputs, flow through aliases ----
  std::vector<Fact> fact(static_cast<size_t>(V), Fact::kBottom);
  fact[0] = Fact::kF32;  // the plan input is an external f32 tensor
  for (int s = 0; s < S; ++s) {
    const PlanStep& step = plan.steps[static_cast<size_t>(s)];
    if (valid_value(step.out)) {
      fact[static_cast<size_t>(step.out)] =
          Join(fact[static_cast<size_t>(step.out)], StepOutputFact(step));
    }
  }
  // Alias edges form chains (cycles are a verifier error but must not hang
  // us); the lattice is finite and Join monotone, so iterating to a fixpoint
  // terminates — V+1 sweeps bound the longest acyclic chain.
  bool changed = true;
  for (int round = 0; changed && round <= V; ++round) {
    changed = false;
    for (int v = 0; v < V; ++v) {
      const int src = plan.values[static_cast<size_t>(v)].alias_of;
      if (src < 0 || !valid_value(src) || src == v) {
        continue;
      }
      const Fact joined = Join(fact[static_cast<size_t>(v)], fact[static_cast<size_t>(src)]);
      if (joined != fact[static_cast<size_t>(v)]) {
        fact[static_cast<size_t>(v)] = joined;
        changed = true;
      }
    }
  }

  // ---- Declared annotation vs propagated fact ------------------------------
  for (int v = 0; v < V; ++v) {
    const Fact declared = FromDType(plan.values[static_cast<size_t>(v)].dtype);
    const Fact computed = fact[static_cast<size_t>(v)];
    if (computed != Fact::kBottom && computed != Fact::kTop &&
        Join(computed, declared) == Fact::kTop) {
      diags.Error("plan.dtype.mismatch", ValuePath(v))
          << "declared storage dtype " << FactName(declared) << " but dataflow computes "
          << FactName(computed)
          << (v == 0 ? " (the plan input is an external f32 tensor)"
                     : " (every producing kernel writes f32 storage)");
    }
  }

  // ---- Alias edges must preserve the storage dtype -------------------------
  for (int v = 0; v < V; ++v) {
    const PlanValue& val = plan.values[static_cast<size_t>(v)];
    if (val.alias_of < 0 || !valid_value(val.alias_of) || val.alias_of == v) {
      continue;
    }
    const PlanValue& target = plan.values[static_cast<size_t>(val.alias_of)];
    if (FromDType(val.dtype) != FromDType(target.dtype)) {
      diags.Error("plan.dtype.alias", ValuePath(v))
          << "declares " << kernels::DTypeName(val.dtype) << " but aliases v" << val.alias_of
          << " stored " << kernels::DTypeName(target.dtype)
          << "; a reshape view cannot change the storage dtype";
    }
  }

  // ---- Per-step execution dtype + operand boundaries -----------------------
  for (int s = 0; s < S; ++s) {
    const PlanStep& step = plan.steps[static_cast<size_t>(s)];
    if (step.dtype == kernels::DType::kInt8 && step.kind != PlanOp::kConv &&
        step.kind != PlanOp::kLinear) {
      diags.Error("plan.dtype.step", StepPath(plan, s))
          << "kind " << PlanOpName(step.kind)
          << " has no int8 kernel; only conv/linear steps can execute quantized";
    }
    const Fact required = RequiredInputFact(step);
    for (int operand : {step.in0, step.skip}) {
      if (!valid_value(operand)) {
        continue;
      }
      const Fact stored = Join(fact[static_cast<size_t>(operand)],
                               FromDType(plan.values[static_cast<size_t>(operand)].dtype));
      if (stored != required && stored != Fact::kBottom && stored != Fact::kTop) {
        diags.Error("plan.dtype.input", StepPath(plan, s))
            << "reads v" << operand << " stored " << FactName(stored) << " but its kernel"
            << (step.dtype == kernels::DType::kInt8
                    ? " quantizes from f32 at the input boundary"
                    : " consumes f32")
            << "; a well-formed f32<->int8 boundary keeps activations f32 in memory";
      }
    }
  }

  // ---- Heads are returned to callers as f32 scores -------------------------
  for (size_t t = 0; t < plan.head_values.size(); ++t) {
    const int hv = plan.head_values[t];
    if (!valid_value(hv)) {
      continue;
    }
    if (plan.values[static_cast<size_t>(hv)].dtype != kernels::DType::kF32) {
      diags.Error("plan.dtype.head", ValuePath(hv))
          << "task " << t << " head is stored "
          << kernels::DTypeName(plan.values[static_cast<size_t>(hv)].dtype)
          << "; task outputs must be f32";
    }
  }

  // ---- Arena slots are typed: no buffer may mix storage dtypes -------------
  const int B = static_cast<int>(plan.buffers.size());
  std::vector<int> buffer_rep(static_cast<size_t>(B), -1);  // first resident
  for (int v = 0; v < V; ++v) {
    const PlanValue& val = plan.values[static_cast<size_t>(v)];
    if (val.alias_of >= 0 || val.buffer < 0 || val.buffer >= B) {
      continue;
    }
    int& rep = buffer_rep[static_cast<size_t>(val.buffer)];
    if (rep < 0) {
      rep = v;
      continue;
    }
    const PlanValue& first = plan.values[static_cast<size_t>(rep)];
    if (FromDType(first.dtype) != FromDType(val.dtype)) {
      diags.Error("plan.dtype.buffer", "buffer " + std::to_string(val.buffer))
          << "holds v" << rep << " (" << kernels::DTypeName(first.dtype) << ") and v" << v
          << " (" << kernels::DTypeName(val.dtype)
          << "); an arena slot stores exactly one dtype";
    }
  }
  return diags;
}

}  // namespace gmorph
