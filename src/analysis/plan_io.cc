#include "src/analysis/plan_io.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/artifact_header.h"

namespace gmorph {
namespace {

std::optional<PlanOp> PlanOpFromName(const std::string& name) {
  for (PlanOp op : {PlanOp::kConv, PlanOp::kLinear, PlanOp::kMaxPool, PlanOp::kGlobalAvgPool,
                    PlanOp::kMeanPoolTokens, PlanOp::kBilinearResize, PlanOp::kTokenResize,
                    PlanOp::kModule}) {
    if (PlanOpName(op) == name) {
      return op;
    }
  }
  return std::nullopt;
}

std::string ShapeToken(const Shape& shape) {
  if (shape.Rank() == 0) {
    return "scalar";
  }
  std::ostringstream os;
  for (int i = 0; i < shape.Rank(); ++i) {
    os << (i ? "x" : "") << shape[i];
  }
  return os.str();
}

bool ParseShapeToken(const std::string& token, Shape& shape) {
  if (token == "scalar") {
    shape = Shape{};
    return true;
  }
  std::vector<int64_t> dims;
  std::string part;
  std::istringstream is(token);
  while (std::getline(is, part, 'x')) {
    try {
      size_t used = 0;
      dims.push_back(std::stoll(part, &used));
      if (used != part.size()) {
        return false;
      }
    } catch (...) {
      return false;
    }
  }
  if (dims.empty() || dims.size() > 8) {
    return false;
  }
  shape = Shape(std::move(dims));
  return true;
}

// One `key=value` or bare-flag token off a plan line.
struct Field {
  std::string key;
  std::string value;  // empty for bare flags
};

std::vector<Field> SplitFields(std::istringstream& is) {
  std::vector<Field> fields;
  std::string token;
  while (is >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      fields.push_back({token, ""});
    } else {
      fields.push_back({token.substr(0, eq), token.substr(eq + 1)});
    }
  }
  return fields;
}

class Parser {
 public:
  PlanParseResult Run(std::istream& in) {
    std::string line;
    int lineno = 0;
    bool saw_header = false;
    while (std::getline(in, line)) {
      ++lineno;
      const size_t hash = line.find('#');
      if (hash != std::string::npos) {
        line.resize(hash);
      }
      std::istringstream is(line);
      std::string kw;
      if (!(is >> kw)) {
        continue;
      }
      if (!saw_header) {
        std::string version;
        std::string header = kw;
        if (is >> version) {
          header += " " + version;
        }
        if (CheckArtifactHeaderLine(header, kPlanArtifact) != HeaderCheck::kOk) {
          Err(lineno) << "expected header '" << ArtifactHeaderLine(kPlanArtifact) << "'";
          return std::move(result_);
        }
        saw_header = true;
        continue;
      }
      if (kw == "value") {
        ParseValue(is, lineno);
      } else if (kw == "step") {
        ParseStep(is, lineno);
      } else if (kw == "group") {
        ParseGroup(is, lineno);
      } else if (kw == "buffer") {
        ParseBuffer(is, lineno);
      } else if (kw == "head") {
        int v = -1;
        if (!(is >> v)) {
          Err(lineno) << "head needs a value id";
        } else {
          result_.plan.head_values.push_back(v);
        }
      } else {
        Err(lineno) << "unknown directive '" << kw << "'";
      }
    }
    if (!saw_header) {
      result_.diagnostics.Error("plan.io.header", "plan") << "empty input (no header line)";
      return std::move(result_);
    }
    Finish();
    return std::move(result_);
  }

 private:
  DiagnosticBuilder Err(int lineno) {
    return result_.diagnostics.Error("plan.io.parse", "line " + std::to_string(lineno));
  }

  bool ParseInt(const std::string& text, int64_t& out) {
    try {
      size_t used = 0;
      out = std::stoll(text, &used);
      return used == text.size();
    } catch (...) {
      return false;
    }
  }

  // Ids must arrive dense so a typo'd id is a parse error, not a silent gap.
  template <typename T>
  bool Place(std::vector<T>& vec, int64_t id, int lineno, const char* what, T&& item) {
    if (id != static_cast<int64_t>(vec.size())) {
      Err(lineno) << what << " id " << id << " out of order (expected " << vec.size() << ")";
      return false;
    }
    vec.push_back(std::move(item));
    return true;
  }

  void ParseValue(std::istringstream& is, int lineno) {
    int64_t id = -1;
    std::string id_token;
    if (!(is >> id_token) || !ParseInt(id_token, id)) {
      Err(lineno) << "value needs an id";
      return;
    }
    PlanValue v;
    bool have_shape = false;
    for (const Field& f : SplitFields(is)) {
      int64_t n = 0;
      if (f.key == "shape" && ParseShapeToken(f.value, v.shape)) {
        have_shape = true;
      } else if (f.key == "alias" && ParseInt(f.value, n)) {
        v.alias_of = static_cast<int>(n);
      } else if (f.key == "buffer" && ParseInt(f.value, n)) {
        v.buffer = static_cast<int>(n);
      } else if (f.key == "module" && f.value.empty()) {
        v.from_module = true;
      } else if (f.key == "head" && f.value.empty()) {
        v.is_head = true;
      } else if (f.key == "dtype") {
        // Optional storage dtype; absent means f32 (all pre-dtype plans).
        if (!kernels::DTypeFromName(f.value, &v.dtype)) {
          Err(lineno) << "unknown dtype '" << f.value << "'";
          return;
        }
      } else {
        Err(lineno) << "bad value field '" << f.key << (f.value.empty() ? "" : "=") << f.value
                    << "'";
        return;
      }
    }
    if (!have_shape) {
      Err(lineno) << "value " << id << " missing shape=";
      return;
    }
    Place(result_.plan.values, id, lineno, "value", std::move(v));
  }

  void ParseStep(std::istringstream& is, int lineno) {
    int64_t seq = -1;
    std::string seq_token;
    if (!(is >> seq_token) || !ParseInt(seq_token, seq)) {
      Err(lineno) << "step needs a sequence number";
      return;
    }
    PlanStep s;
    bool have_kind = false;
    bool have_in = false;
    bool have_out = false;
    for (const Field& f : SplitFields(is)) {
      int64_t n = 0;
      if (f.key == "kind") {
        if (auto op = PlanOpFromName(f.value)) {
          s.kind = *op;
          have_kind = true;
        } else {
          Err(lineno) << "unknown step kind '" << f.value << "'";
          return;
        }
      } else if (f.key == "group" && ParseInt(f.value, n)) {
        s.group = static_cast<int>(n);
      } else if (f.key == "in" && ParseInt(f.value, n)) {
        s.in0 = static_cast<int>(n);
        have_in = true;
      } else if (f.key == "out" && ParseInt(f.value, n)) {
        s.out = static_cast<int>(n);
        have_out = true;
      } else if (f.key == "skip" && ParseInt(f.value, n)) {
        s.skip = static_cast<int>(n);
      } else if (f.key == "node" && ParseInt(f.value, n)) {
        s.node = static_cast<int>(n);
      } else if (f.key == "w" && ParseShapeToken(f.value, s.weight_shape)) {
        // parsed in place
      } else if (f.key == "stride" && ParseInt(f.value, s.stride)) {
      } else if (f.key == "pad" && ParseInt(f.value, s.padding)) {
      } else if (f.key == "pool_k" && ParseInt(f.value, s.pool_kernel)) {
      } else if (f.key == "pool_s" && ParseInt(f.value, s.pool_stride)) {
      } else if (f.key == "label") {
        s.label = f.value;
      } else if (f.key == "solver" && !f.value.empty()) {
        s.solver = f.value;
      } else if (f.key == "dtype") {
        // Optional: plans written before quantization carry no token and
        // default to f32.
        if (!kernels::DTypeFromName(f.value, &s.dtype)) {
          Err(lineno) << "unknown dtype '" << f.value << "'";
          return;
        }
      } else if (f.key == "relu" && f.value.empty()) {
        s.relu = true;
      } else {
        Err(lineno) << "bad step field '" << f.key << (f.value.empty() ? "" : "=") << f.value
                    << "'";
        return;
      }
    }
    if (!have_kind || !have_in || !have_out) {
      Err(lineno) << "step " << seq << " needs kind=, in= and out=";
      return;
    }
    Place(result_.plan.steps, seq, lineno, "step", std::move(s));
  }

  void ParseGroup(std::istringstream& is, int lineno) {
    int64_t id = -1;
    std::string id_token;
    if (!(is >> id_token) || !ParseInt(id_token, id)) {
      Err(lineno) << "group needs an id";
      return;
    }
    PlanGroup g;
    for (const Field& f : SplitFields(is)) {
      int64_t n = 0;
      if (f.key == "parent" && ParseInt(f.value, n)) {
        g.parent = static_cast<int>(n);
      } else {
        Err(lineno) << "bad group field '" << f.key << "'";
        return;
      }
    }
    Place(result_.plan.groups, id, lineno, "group", std::move(g));
  }

  void ParseBuffer(std::istringstream& is, int lineno) {
    int64_t id = -1;
    std::string id_token;
    if (!(is >> id_token) || !ParseInt(id_token, id)) {
      Err(lineno) << "buffer needs an id";
      return;
    }
    PlanBuffer b;
    bool have_elems = false;
    for (const Field& f : SplitFields(is)) {
      if (f.key == "elems" && ParseInt(f.value, b.elems_per_sample)) {
        have_elems = true;
      } else if (f.key == "dedicated" && f.value.empty()) {
        b.reusable = false;
      } else {
        Err(lineno) << "bad buffer field '" << f.key << "'";
        return;
      }
    }
    if (!have_elems) {
      Err(lineno) << "buffer " << id << " missing elems=";
      return;
    }
    Place(result_.plan.buffers, id, lineno, "buffer", std::move(b));
  }

  // Derive group step lists and child links from the steps' own fields, so a
  // hand-written file cannot declare lists that contradict them.
  void Finish() {
    PlanIR& plan = result_.plan;
    if (plan.groups.empty() && !plan.steps.empty()) {
      plan.groups.push_back(PlanGroup{});  // implicit root group
    }
    const int num_groups = static_cast<int>(plan.groups.size());
    for (int s = 0; s < static_cast<int>(plan.steps.size()); ++s) {
      const int g = plan.steps[static_cast<size_t>(s)].group;
      if (g >= 0 && g < num_groups) {
        plan.groups[static_cast<size_t>(g)].steps.push_back(s);
      }
      // Out-of-range groups are left for the verifier to report.
    }
    for (int g = 1; g < num_groups; ++g) {
      const int p = plan.groups[static_cast<size_t>(g)].parent;
      if (p >= 0 && p < num_groups && p != g) {
        plan.groups[static_cast<size_t>(p)].children.push_back(g);
      }
    }
  }

  PlanParseResult result_;
};

}  // namespace

PlanParseResult ParsePlanText(std::istream& in) {
  return Parser().Run(in);
}

PlanParseResult ParsePlanTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    PlanParseResult result;
    result.diagnostics.Error("plan.io.open", path) << "cannot open plan file";
    return result;
  }
  return ParsePlanText(in);
}

void PlanToText(const PlanIR& plan, std::ostream& out) {
  out << ArtifactHeaderLine(kPlanArtifact) << "\n";
  for (size_t v = 0; v < plan.values.size(); ++v) {
    const PlanValue& val = plan.values[v];
    out << "value " << v << " shape=" << ShapeToken(val.shape);
    if (val.alias_of >= 0) {
      out << " alias=" << val.alias_of;
    }
    if (val.from_module) {
      out << " module";
    }
    if (val.is_head) {
      out << " head";
    }
    if (val.buffer >= 0) {
      out << " buffer=" << val.buffer;
    }
    if (val.dtype != kernels::DType::kF32) {
      out << " dtype=" << kernels::DTypeName(val.dtype);
    }
    out << "\n";
  }
  for (size_t g = 0; g < plan.groups.size(); ++g) {
    out << "group " << g << " parent=" << plan.groups[g].parent << "\n";
  }
  for (size_t b = 0; b < plan.buffers.size(); ++b) {
    const PlanBuffer& buf = plan.buffers[b];
    out << "buffer " << b << " elems=" << buf.elems_per_sample;
    if (!buf.reusable) {
      out << " dedicated";
    }
    out << "\n";
  }
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const PlanStep& step = plan.steps[s];
    out << "step " << s << " group=" << step.group << " kind=" << PlanOpName(step.kind)
        << " in=" << step.in0 << " out=" << step.out;
    if (step.skip >= 0) {
      out << " skip=" << step.skip;
    }
    if (step.node >= 0) {
      out << " node=" << step.node;
    }
    if (!step.label.empty()) {
      std::string label = step.label;  // the format is whitespace-delimited
      std::replace(label.begin(), label.end(), ' ', '_');
      out << " label=" << label;
    }
    if (step.weight_shape.Rank() > 0) {
      out << " w=" << ShapeToken(step.weight_shape);
    }
    if (step.kind == PlanOp::kConv) {
      out << " stride=" << step.stride << " pad=" << step.padding;
    }
    if (step.kind == PlanOp::kMaxPool) {
      out << " pool_k=" << step.pool_kernel << " pool_s=" << step.pool_stride;
    }
    if (!step.solver.empty()) {
      out << " solver=" << step.solver;  // registry names contain no spaces
    }
    if (step.dtype != kernels::DType::kF32) {
      out << " dtype=" << kernels::DTypeName(step.dtype);
    }
    if (step.relu) {
      out << " relu";
    }
    out << "\n";
  }
  for (int hv : plan.head_values) {
    out << "head " << hv << "\n";
  }
}

}  // namespace gmorph
