// Shared diagnostics engine for the static-analysis passes (GraphVerifier,
// PlanVerifier) and the structured-error paths that feed them (graph
// deserialization, fatal GMORPH_CHECK failures).
//
// A Diagnostic is one attributable finding: severity, a stable dotted rule id
// (catalogued in DESIGN.md §5d), the graph/plan location it anchors to, and a
// human-readable message. Verifiers append to a DiagnosticList instead of
// asserting, so callers decide whether a violation is fatal (FusedEngine
// construction), a rejected candidate (search), or a lint finding (CLI).
#ifndef GMORPH_SRC_ANALYSIS_DIAGNOSTICS_H_
#define GMORPH_SRC_ANALYSIS_DIAGNOSTICS_H_

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace gmorph {

enum class Severity { kError, kWarning, kNote };

std::string SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule_id;    // stable dotted id, e.g. "plan.buffer.overlap"
  std::string node_path;  // location, e.g. "node 7 [t1.op3 ConvReLU]" / "step 4"
  std::string message;

  // One line: "error[plan.buffer.overlap] step 4: ...".
  std::string ToString() const;

  // Converts a fatal check into the verifiers' reporting format (rule id
  // "check.failed", node_path = file:line, message = expr — message).
  static Diagnostic FromCheckError(const CheckError& error);
};

class DiagnosticList;

// Streamed message builder; appends to the owning list when it goes out of
// scope (end of the full expression): list.Error(rule, path) << "got " << n;
class DiagnosticBuilder {
 public:
  DiagnosticBuilder(DiagnosticList* list, Severity severity, std::string rule_id,
                    std::string node_path)
      : list_(list) {
    diag_.severity = severity;
    diag_.rule_id = std::move(rule_id);
    diag_.node_path = std::move(node_path);
  }
  DiagnosticBuilder(DiagnosticBuilder&& other) noexcept
      : list_(other.list_), diag_(std::move(other.diag_)), os_(std::move(other.os_)) {
    other.list_ = nullptr;
  }
  DiagnosticBuilder(const DiagnosticBuilder&) = delete;
  DiagnosticBuilder& operator=(const DiagnosticBuilder&) = delete;
  DiagnosticBuilder& operator=(DiagnosticBuilder&&) = delete;
  ~DiagnosticBuilder();

  template <typename T>
  DiagnosticBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  DiagnosticList* list_;
  Diagnostic diag_;
  std::ostringstream os_;
};

// Ordered collector of diagnostics produced by one verification run.
class DiagnosticList {
 public:
  DiagnosticBuilder Error(std::string rule_id, std::string node_path) {
    return {this, Severity::kError, std::move(rule_id), std::move(node_path)};
  }
  DiagnosticBuilder Warning(std::string rule_id, std::string node_path) {
    return {this, Severity::kWarning, std::move(rule_id), std::move(node_path)};
  }
  DiagnosticBuilder Note(std::string rule_id, std::string node_path) {
    return {this, Severity::kNote, std::move(rule_id), std::move(node_path)};
  }

  void Add(Diagnostic diag) { items_.push_back(std::move(diag)); }
  void Merge(const DiagnosticList& other) {
    items_.insert(items_.end(), other.items_.begin(), other.items_.end());
  }

  // True when no *errors* were recorded (warnings/notes don't fail a pass).
  bool ok() const { return error_count() == 0; }
  int error_count() const;
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }

  // True if any diagnostic carries exactly this rule id.
  bool HasRule(const std::string& rule_id) const;

  const std::vector<Diagnostic>& items() const { return items_; }

  // One diagnostic per line; empty string when clean.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_DIAGNOSTICS_H_
