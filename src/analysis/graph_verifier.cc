#include "src/analysis/graph_verifier.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "src/core/graph_io.h"
#include "src/core/shareable.h"
#include "src/models/model_spec.h"

namespace gmorph {
namespace {

bool SpecTypeValid(const BlockSpec& spec) {
  const int t = static_cast<int>(spec.type);
  return t >= 0 && t <= static_cast<int>(BlockType::kRescale);
}

std::string NodePath(const AbsGraph& g, int id) {
  std::ostringstream os;
  os << "node " << id;
  if (id < 0 || id >= g.size()) {
    return os.str();
  }
  const AbsNode& n = g.node(id);
  if (n.IsRoot()) {
    os << " [root]";
  } else if (SpecTypeValid(n.spec)) {
    os << " [t" << n.task_id << ".op" << n.op_id << " " << BlockTypeName(n.spec.type) << "]";
  }
  return os.str();
}

// Stage 1: every id must index into the node array before any walk is safe.
bool CheckIndices(const AbsGraph& g, DiagnosticList& diags) {
  if (g.size() == 0) {
    diags.Error("graph.root", "graph") << "graph has no nodes";
    return false;
  }
  if (g.num_tasks() < 0 || g.num_tasks() > g.size()) {
    diags.Error("graph.tasks.range", "graph")
        << "num_tasks " << g.num_tasks() << " impossible for " << g.size() << " nodes";
    return false;
  }
  bool ok = true;
  for (int id = 0; id < g.size(); ++id) {
    const AbsNode& n = g.node(id);
    if (n.id != id) {
      diags.Error("graph.node.index", NodePath(g, id))
          << "node stores id " << n.id << " but sits at index " << id;
      ok = false;
    }
    if (n.parent < -1 || n.parent >= g.size() || n.parent == id) {
      diags.Error("graph.node.index", NodePath(g, id)) << "parent id " << n.parent
                                                       << " out of range";
      ok = false;
    }
    for (int c : n.children) {
      if (c < 0 || c >= g.size() || c == id) {
        diags.Error("graph.node.index", NodePath(g, id)) << "child id " << c << " out of range";
        ok = false;
      }
    }
  }
  return ok;
}

// Stage 2: tree structure — one root, consistent links, full reachability.
void CheckStructure(const AbsGraph& g, DiagnosticList& diags) {
  if (!g.node(0).IsRoot()) {
    diags.Error("graph.root", NodePath(g, 0))
        << "node 0 must be the input placeholder (parent -1, op -1)";
  }
  for (int id = 1; id < g.size(); ++id) {
    const AbsNode& n = g.node(id);
    if (n.parent == -1) {
      diags.Error("graph.root", NodePath(g, id)) << "secondary root: non-zero node without parent";
      continue;
    }
    const AbsNode& p = g.node(n.parent);
    const auto count = std::count(p.children.begin(), p.children.end(), id);
    if (count != 1) {
      diags.Error("graph.tree.link", NodePath(g, id))
          << "listed " << count << " times in children of parent " << n.parent;
    }
  }
  for (int id = 0; id < g.size(); ++id) {
    for (int c : g.node(id).children) {
      if (g.node(c).parent != id) {
        diags.Error("graph.tree.link", NodePath(g, id))
            << "lists child " << c << " whose parent field is " << g.node(c).parent;
      }
    }
  }
  // TopologicalOrder's visited guard terminates even on cyclic link structures;
  // anything it misses is orphaned or on a cycle.
  std::vector<bool> reached(static_cast<size_t>(g.size()), false);
  for (int id : g.TopologicalOrder()) {
    reached[static_cast<size_t>(id)] = true;
  }
  for (int id = 0; id < g.size(); ++id) {
    if (!reached[static_cast<size_t>(id)]) {
      diags.Error("graph.tree.reach", NodePath(g, id)) << "unreachable from the root";
    }
  }
}

// Stage 3: per-node semantics — shapes, capacities, heads, adapters.
void CheckNodes(const AbsGraph& g, DiagnosticList& diags) {
  std::vector<int> heads(static_cast<size_t>(g.num_tasks()), 0);
  for (int id = 0; id < g.size(); ++id) {
    const AbsNode& n = g.node(id);
    const std::string path = NodePath(g, id);
    if (n.IsRoot()) {
      if (n.input_shape != n.output_shape) {
        diags.Error("graph.shape.infer", path) << "root input/output shapes differ";
      }
      continue;
    }
    if (!SpecTypeValid(n.spec)) {
      diags.Error("graph.spec.type", path)
          << "block type " << static_cast<int>(n.spec.type) << " outside the BlockType enum";
      continue;  // nothing below is meaningful for an unknown block
    }
    if (n.parent >= 0 && g.node(n.parent).output_shape != n.input_shape) {
      diags.Error("graph.shape.edge", path)
          << "consumes " << n.input_shape.ToString() << " but parent " << n.parent
          << " produces " << g.node(n.parent).output_shape.ToString();
    }
    // Full shape re-inference: the stored output shape must match what the
    // spec produces from the stored input shape.
    try {
      const Shape inferred = BlockOutShape(n.spec, n.input_shape);
      if (inferred != n.output_shape) {
        diags.Error("graph.shape.infer", path)
            << "stored output " << n.output_shape.ToString() << " but " << n.spec.ToString()
            << " infers " << inferred.ToString() << " from " << n.input_shape.ToString();
      }
    } catch (const CheckError& e) {
      Diagnostic d = Diagnostic::FromCheckError(e);
      diags.Error("graph.shape.infer", path) << "shape inference failed: " << d.message;
    }
    try {
      const int64_t capacity = BlockCapacity(n.spec);
      if (capacity != n.capacity) {
        diags.Error("graph.capacity.stale", path)
            << "stored capacity " << n.capacity << " but spec has " << capacity;
      }
      if (!n.weights.empty()) {
        int64_t total = 0;
        for (const Tensor& w : n.weights) {
          total += w.size();
        }
        if (total != capacity) {
          diags.Error("graph.weights.mismatch", path)
              << "carries " << total << " weight elements for capacity " << capacity;
        }
      }
    } catch (const CheckError& e) {
      Diagnostic d = Diagnostic::FromCheckError(e);
      diags.Error("graph.capacity.stale", path) << "capacity computation failed: " << d.message;
    }
    if (n.IsHead()) {
      if (n.task_id < 0 || n.task_id >= g.num_tasks()) {
        diags.Error("graph.head.task", path) << "task id " << n.task_id << " out of range";
      } else {
        ++heads[static_cast<size_t>(n.task_id)];
      }
      if (!n.children.empty()) {
        diags.Error("graph.head.leaf", path) << "head has " << n.children.size() << " children";
      }
    } else if (n.children.empty()) {
      diags.Error("graph.leaf.dangling", path) << "childless non-head node (dead branch)";
    }
    if (n.spec.type == BlockType::kRescale) {
      // Rescale-adapter legality at sharing points: the adapter's declared
      // shapes must match its edges and be mappable (same rank 2 or 3).
      if (n.spec.rescale_in != n.input_shape || n.spec.rescale_out != n.output_shape) {
        diags.Error("graph.rescale.legal", path)
            << "adapter declares " << n.spec.rescale_in.ToString() << "->"
            << n.spec.rescale_out.ToString() << " but edges carry "
            << n.input_shape.ToString() << "->" << n.output_shape.ToString();
      } else if (!RescaleFeasible(n.spec.rescale_in, n.spec.rescale_out)) {
        diags.Error("graph.rescale.legal", path)
            << "no adapter can map " << n.spec.rescale_in.ToString() << " to "
            << n.spec.rescale_out.ToString();
      } else if (n.spec.rescale_in == n.spec.rescale_out) {
        diags.Warning("graph.rescale.identity", path)
            << "identity adapter (legal but wasteful; mutation should reparent directly)";
      } else if (!ShapesSimilar(n.spec.rescale_in, n.spec.rescale_out)) {
        diags.Warning("graph.share.dissimilar", path)
            << "adapter bridges dissimilar shapes " << n.spec.rescale_in.ToString() << " and "
            << n.spec.rescale_out.ToString() << "; the search only shares similar shapes";
      }
    }
  }
  for (int t = 0; t < g.num_tasks(); ++t) {
    if (heads[static_cast<size_t>(t)] != 1) {
      diags.Error("graph.head.count", "graph")
          << "task " << t << " has " << heads[static_cast<size_t>(t)] << " heads";
    }
  }
}

void CheckRoundTrip(const AbsGraph& g, DiagnosticList& diags) {
  std::stringstream buffer;
  if (!SaveGraph(buffer, g)) {
    diags.Error("graph.roundtrip", "graph") << "serializer rejected the graph";
    return;
  }
  GraphLoadResult reloaded = TryLoadGraph(buffer);
  if (!reloaded.ok()) {
    diags.Error("graph.roundtrip", "graph")
        << "reload of serialized graph failed: "
        << (reloaded.diagnostics.empty() ? std::string("no diagnostics")
                                         : reloaded.diagnostics.items().front().ToString());
    return;
  }
  if (reloaded.graph->num_tasks() != g.num_tasks() ||
      reloaded.graph->Fingerprint() != g.Fingerprint()) {
    diags.Error("graph.roundtrip", "graph")
        << "round trip changed the graph (fingerprint or task count mismatch)";
  }
}

}  // namespace

DiagnosticList VerifyGraph(const AbsGraph& graph, const GraphVerifyOptions& options) {
  DiagnosticList diags;
  if (!CheckIndices(graph, diags)) {
    return diags;  // deeper walks would index out of bounds
  }
  CheckStructure(graph, diags);
  CheckNodes(graph, diags);
  if (options.roundtrip && diags.ok()) {
    CheckRoundTrip(graph, diags);
  }
  return diags;
}

}  // namespace gmorph
