// Peak-memory certification of a plan's static arena (plan.mem.* rules).
//
// Independently of the engine's planner and of PlanVerifier's pairwise
// overlap checks, this pass recomputes per-value liveness from the steps
// alone and certifies the memory plan at the arena level:
//
//   plan.mem.arena    (error)   the summed arena is smaller than the
//                               certified peak of simultaneously live bytes —
//                               no correct buffer assignment can fit, so the
//                               planner under-allocated somewhere even if
//                               every pairwise overlap test happened to pass;
//   plan.mem.waste    (warning) the arena exceeds the waste bound over the
//                               certified peak (planner fragmentation);
//   plan.mem.buffer   (warning) an arena slot no planned value ever occupies;
//   plan.mem.summary  (note)    the certified numbers for the record.
//
// The certified peak is computed over the *sequential* schedule (steps in
// sequence order; heads stay live to the end of the run). That is a sound
// lower bound for any valid assignment: values whose sequential live
// intervals share a point are pairwise non-disjoint under the fork/join
// happens-before relation too (ordering under happens-before implies
// ordering in sequence), so they form a clique no buffer sharing can break.
// For serial plans the bound is exact; branch-parallel plans may need more
// than the bound, which keeps plan.mem.arena a true error, never noise.
//
// All byte counts are per sample (elements x sizeof(float), the arena's unit:
// every activation is stored f32 today — see dtype_analysis.h).
#ifndef GMORPH_SRC_ANALYSIS_MEM_ANALYSIS_H_
#define GMORPH_SRC_ANALYSIS_MEM_ANALYSIS_H_

#include <cstdint>

#include "src/analysis/diagnostics.h"
#include "src/analysis/plan_ir.h"

namespace gmorph {

struct MemAnalysisOptions {
  // plan.mem.waste fires when arena_bytes > waste_factor * peak_bytes +
  // slack_bytes. The certified peak is a sequential-schedule lower bound;
  // real plans legitimately exceed it (dedicated head buffers, values on
  // sibling branches kept simultaneously resident for parallel group
  // execution). Measured across the seven zoo scenarios' exported plans the
  // arena runs 1.7-5.9x the certified peak, so the threshold sits above that
  // band: it flags pathological assignments, not the planner's normal
  // conservatism. The slack keeps tiny plans (where one head buffer
  // dominates) out of the noise.
  double waste_factor = 8.0;
  int64_t slack_bytes = 4096;
  // Emit the plan.mem.summary note (off in the engine's self-verify path,
  // where only actionable findings matter).
  bool summary = true;
};

// The raw certification result, exposed for tests and calibration.
struct MemCertificate {
  int64_t peak_bytes = 0;      // certified peak live bytes per sample
  int peak_step = -1;          // step at which the peak occurs (-1: none)
  int64_t arena_bytes = 0;     // sum of all arena buffers per sample
};

MemCertificate CertifyPlanMemory(const PlanIR& plan);

DiagnosticList AnalyzePlanMemory(const PlanIR& plan, const MemAnalysisOptions& options = {});

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_MEM_ANALYSIS_H_
