#include "src/analysis/tunedb_verifier.h"

#include <fstream>
#include <map>
#include <string>

#include "src/common/artifact_header.h"
#include "src/kernels/registry.h"
#include "src/kernels/tune_db.h"

namespace gmorph {
namespace {

std::string LinePath(int lineno) { return "line " + std::to_string(lineno); }

}  // namespace

DiagnosticList VerifyTuneDbFile(const std::string& path) {
  using kernels::OpFamily;
  using kernels::ProblemDesc;
  using kernels::SolverRegistry;
  using kernels::TuneDb;

  DiagnosticList diags;
  std::ifstream in(path);
  if (!in) {
    diags.Error("tune.open", path) << "cannot open tuning DB file";
    return diags;
  }
  std::string line;
  if (!std::getline(in, line)) {
    diags.Error("tune.header", path) << "empty tuning DB file";
    return diags;
  }
  switch (CheckArtifactHeaderLine(line, kTuneDbArtifact)) {
    case HeaderCheck::kMissing:
      diags.Error("tune.header", path) << "missing " << kTuneDbArtifact.kind << " header";
      return diags;
    case HeaderCheck::kWrongVersion:
      diags.Error("tune.version", path) << "unsupported tuning DB version '" << line << "'";
      return diags;
    case HeaderCheck::kOk:
      break;
  }

  const SolverRegistry& registry = SolverRegistry::Global();
  std::map<ProblemDesc, int> first_line;  // desc -> line that introduced it
  bool saw_fingerprint = false;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.rfind("fingerprint", 0) == 0) {
      if (saw_fingerprint) {
        diags.Error("tune.fingerprint", LinePath(lineno)) << "repeated fingerprint line";
        continue;
      }
      saw_fingerprint = true;
      if (line.rfind("fingerprint ", 0) != 0 || line.size() != 12 + 16) {
        diags.Error("tune.fingerprint", LinePath(lineno))
            << "malformed fingerprint line (want 'fingerprint <16-hex>')";
        continue;
      }
      if (line.substr(12) != kernels::BuildFingerprint()) {
        diags.Warning("tune.fingerprint", LinePath(lineno))
            << "fingerprint " << line.substr(12) << " differs from this build ("
            << kernels::BuildFingerprint() << "); this binary will ignore all entries";
      }
      continue;
    }
    ProblemDesc desc;
    TuneDb::Entry entry;
    std::string error;
    if (!kernels::ParseTuneEntryLine(line, &desc, &entry, &error)) {
      diags.Error("tune.entry", LinePath(lineno)) << error;
      continue;
    }
    // Registry family is keyed by (op, dtype): int8 entries must name a
    // qgemm.* solver, f32 entries a gemm.* one.
    const kernels::Solver* solver = registry.FindForDesc(desc, entry.solver);
    if (solver == nullptr) {
      diags.Error("tune.solver", LinePath(lineno))
          << "solver '" << entry.solver << "' is not registered for "
          << kernels::OpFamilyName(desc.op) << " " << kernels::DTypeName(desc.dtype);
    } else if (!solver->IsApplicable(desc)) {
      diags.Error("tune.applicable", LinePath(lineno))
          << "solver '" << entry.solver << "' rejects " << kernels::ProblemKey(desc);
    }
    const auto [it, inserted] = first_line.emplace(desc, lineno);
    if (!inserted) {
      diags.Error("tune.duplicate", LinePath(lineno))
          << "duplicate entry for " << kernels::ProblemKey(desc) << " (first at line "
          << it->second << "; the loader keeps the last)";
    }
  }
  if (!saw_fingerprint) {
    diags.Warning("tune.fingerprint", path)
        << "no fingerprint line; entries cannot be matched to a build";
  }
  return diags;
}

}  // namespace gmorph
