// Forward dtype-propagation analysis over plan IR (plan.dtype.* rules).
//
// A fixpoint dataflow pass on the lattice
//
//     bottom (unknown)  <  { f32, int8 }  <  top (conflict)
//
// attached to every plan value's *storage* dtype. Facts are seeded at the
// plan input (external tensors are f32) and at every step output (all
// current kernels — including int8-execution conv/linear steps, which
// quantize u8 at their input boundary and dequantize in their epilogue —
// write f32 storage), then propagated through alias edges to a fixpoint.
// Each value's declared `PlanValue::dtype` annotation is joined against the
// propagated fact; a join to top is a producer/consumer disagreement.
//
// Certified invariants:
//   plan.dtype.mismatch  declared storage dtype conflicts with the producer
//   plan.dtype.input     a step consumes storage its kernel cannot read
//                        (every kernel boundary today reads f32)
//   plan.dtype.step      step kind cannot execute at its kernel dtype
//                        (int8 execution exists only for conv/linear)
//   plan.dtype.alias     alias declares a dtype different from its root
//   plan.dtype.head      head outputs must be f32 (task scores are f32)
//   plan.dtype.buffer    one arena slot holds values of different dtypes
//
// This is the groundwork the ROADMAP's mixed-precision item builds on: when
// bf16/int8 storage lands, the seeding functions here (input dtype, per-step
// output dtype, per-kernel operand requirements) are the single place that
// changes, and the fixpoint + boundary checks stay as the safety net.
//
// The pass is independent of PlanVerifier and tolerates malformed plans
// (out-of-range ids are skipped; the verifier owns those findings).
#ifndef GMORPH_SRC_ANALYSIS_DTYPE_ANALYSIS_H_
#define GMORPH_SRC_ANALYSIS_DTYPE_ANALYSIS_H_

#include "src/analysis/diagnostics.h"
#include "src/analysis/plan_ir.h"

namespace gmorph {

DiagnosticList AnalyzePlanDtypes(const PlanIR& plan);

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_DTYPE_ANALYSIS_H_
