#include "src/analysis/machine_verifier.h"

#include <cmath>
#include <fstream>
#include <map>
#include <string>

#include "src/common/artifact_header.h"
#include "src/kernels/machine.h"
#include "src/kernels/tune_db.h"

namespace gmorph {
namespace {

std::string LinePath(int lineno) { return "line " + std::to_string(lineno); }

}  // namespace

DiagnosticList VerifyMachineFile(const std::string& path) {
  DiagnosticList diags;
  std::ifstream in(path);
  if (!in) {
    diags.Error("machine.open", path) << "cannot open machine ceiling file";
    return diags;
  }
  std::string line;
  if (!std::getline(in, line)) {
    diags.Error("machine.header", path) << "empty machine ceiling file";
    return diags;
  }
  switch (CheckArtifactHeaderLine(line, kMachineArtifact)) {
    case HeaderCheck::kMissing:
      diags.Error("machine.header", path) << "missing " << kMachineArtifact.kind << " header";
      return diags;
    case HeaderCheck::kWrongVersion:
      diags.Error("machine.version", path) << "unsupported machine artifact version '" << line
                                           << "'";
      return diags;
    case HeaderCheck::kOk:
      break;
  }

  std::map<std::string, int> first_line;  // key -> line that introduced it
  bool saw_fingerprint = false;
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.rfind("fingerprint", 0) == 0) {
      if (saw_fingerprint) {
        diags.Error("machine.fingerprint", LinePath(lineno)) << "repeated fingerprint line";
        continue;
      }
      saw_fingerprint = true;
      if (line.rfind("fingerprint ", 0) != 0 || line.size() != 12 + 16) {
        diags.Error("machine.fingerprint", LinePath(lineno))
            << "malformed fingerprint line (want 'fingerprint <16-hex>')";
        continue;
      }
      if (line.substr(12) != kernels::BuildFingerprint()) {
        diags.Warning("machine.fingerprint", LinePath(lineno))
            << "fingerprint " << line.substr(12) << " differs from this build ("
            << kernels::BuildFingerprint() << "); this binary will re-probe";
      }
      continue;
    }
    std::string key, error;
    double value = 0.0;
    if (!kernels::ParseMachineEntryLine(line, &key, &value, &error)) {
      diags.Error("machine.entry", LinePath(lineno)) << error;
      continue;
    }
    if (!(value > 0.0) || !std::isfinite(value)) {
      diags.Error("machine.value", LinePath(lineno))
          << key << " must be positive finite, got " << value;
    }
    const auto [it, inserted] = first_line.emplace(key, lineno);
    if (!inserted) {
      diags.Error("machine.entry", LinePath(lineno))
          << "repeated " << key << " entry (first at line " << it->second << ")";
    }
  }
  if (!saw_fingerprint) {
    diags.Warning("machine.fingerprint", path)
        << "no fingerprint line; ceilings cannot be matched to a build";
  }
  for (const char* required : {"threads", "peak_gflops", "triad_gbps"}) {
    if (first_line.find(required) == first_line.end()) {
      diags.Error("machine.missing", path) << "required entry '" << required << "' absent";
    }
  }
  return diags;
}

}  // namespace gmorph
