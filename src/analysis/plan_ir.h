// PlanIR: a public, self-contained mirror of a FusedEngine execution plan.
//
// FusedEngine::ExportPlan() snapshots its lowered plan into this form so the
// PlanVerifier can symbolically execute it without access to engine
// internals, and so tests (and the CLI's plan-lint mode, see plan_io.h) can
// hand-construct plans with deliberately seeded defects.
//
// The verifier deliberately receives *less* than the engine keeps: no
// liveness events and no def bookkeeping. It recomputes all of that from the
// steps alone, so a bug in the engine's own liveness tracking cannot hide a
// bug in its buffer assignment.
#ifndef GMORPH_SRC_ANALYSIS_PLAN_IR_H_
#define GMORPH_SRC_ANALYSIS_PLAN_IR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernels/solver.h"
#include "src/tensor/shape.h"

namespace gmorph {

enum class PlanOp {
  kConv,           // conv (+skip add)(+ReLU); weight (O,C,KH,KW)
  kLinear,         // linear (+ReLU); weight (in_features, out_features)
  kMaxPool,
  kGlobalAvgPool,  // (C,H,W) -> (C)
  kMeanPoolTokens, // (T,D) -> (D)
  kBilinearResize, // (C,H,W) -> (C,H',W')
  kTokenResize,    // (T,D) -> (T',D)
  kModule,         // opaque fallback; output allocated dynamically
};

std::string PlanOpName(PlanOp op);

// One SSA-style activation. Aliases (flatten, identity rescale) carry no
// buffer of their own; module outputs are bound dynamically (buffer -1).
struct PlanValue {
  Shape shape;         // per-sample
  int alias_of = -1;   // value id this is a reshape view of
  bool from_module = false;
  bool is_head = false;
  int buffer = -1;     // arena slot for planned root values
  // Storage dtype of the value's bytes in memory. Today every activation is
  // stored f32 — quantized steps consume f32 input (u8 quantize at the
  // boundary) and write f32 output (dequant epilogue) — so the engine always
  // exports kF32; the dtype-propagation analysis certifies exactly that
  // invariant, and the field is where a future bf16/int8-storage plan will
  // record per-value precision. Serializes as an optional `dtype=` token.
  kernels::DType dtype = kernels::DType::kF32;
};

struct PlanStep {
  PlanOp kind = PlanOp::kModule;
  int node = -1;       // originating graph node (for attribution only)
  std::string label;
  int in0 = -1;        // value ids
  int skip = -1;       // residual skip input (kConv only)
  int out = -1;
  int group = 0;
  // Kernel signature payload.
  Shape weight_shape;  // kConv / kLinear
  int64_t stride = 1;  // kConv
  int64_t padding = 0; // kConv
  bool relu = false;
  int64_t pool_kernel = 0;  // kMaxPool
  int64_t pool_stride = 0;  // kMaxPool
  // Kernel solver resolved at plan time (registry name, e.g. "gemm.packed");
  // empty for untuned/legacy plans and for step kinds without a tunable
  // kernel. For kConv this names the solver of the per-sample im2col GEMM.
  std::string solver;
  // Execution precision of the step's kernel. kInt8 marks a quantized
  // conv/linear step: its GEMM is the u8·s8 product and — for kConv — runs in
  // the transposed orientation (rows = output pixels), which CheckSolvers
  // accounts for. f32 plans serialize without a dtype token (back-compat).
  kernels::DType dtype = kernels::DType::kF32;
};

// A maximal chain: steps run in listed order, then children fork (possibly in
// parallel). Group 0 is the shared prefix rooted at the plan input.
struct PlanGroup {
  int parent = -1;
  std::vector<int> steps;
  std::vector<int> children;
};

struct PlanBuffer {
  int64_t elems_per_sample = 0;
  bool reusable = true;  // head buffers are dedicated
};

struct PlanIR {
  // Value 0 is the plan input: never defined by a step, live from the start.
  std::vector<PlanValue> values;
  std::vector<PlanStep> steps;
  std::vector<PlanGroup> groups;
  std::vector<PlanBuffer> buffers;
  std::vector<int> head_values;  // per task, in task order
};

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_PLAN_IR_H_
