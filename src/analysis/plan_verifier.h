// PlanVerifier: a static-analysis pass over FusedEngine execution plans.
//
// Symbolically executes a PlanIR: independently recomputes per-value liveness
// from the steps alone, rebuilds the fork/join happens-before relation from
// the group tree, and proves the plan safe under branch-parallel execution.
// Each violation is a structured Diagnostic:
//
//   plan.value.index / plan.step.index / plan.group.index / plan.buffer.index
//                           id out of range (aborts the remaining stages)
//   plan.alias.cycle        alias chain does not terminate
//   plan.alias.shape        alias element count differs from its root
//   plan.alias.stale        alias read after its root's buffer was overwritten
//   plan.value.multidef     value written by more than one step (or input 0
//                           written at all)
//   plan.value.undef        value read but never defined
//   plan.value.unused       defined value never read (warning)
//   plan.step.out.alias     step writes into an alias entry
//   plan.group.tree         group parent links not a tree rooted at group 0
//   plan.group.member       step listed in the wrong group (or not at all)
//   plan.group.order        step sequence disagrees with group execution order
//   plan.race.cross_branch  step reads a value written by a concurrent
//                           sibling branch (static schedule race)
//   plan.race.use_before_def  read ordered before its own write
//   plan.buffer.overlap     two simultaneously-live values share a buffer
//   plan.buffer.size        value does not fit its buffer exactly
//   plan.buffer.head        head value not in a dedicated buffer
//   plan.buffer.alias / plan.buffer.module / plan.buffer.unassigned
//                           buffer assignment on the wrong value class
//   plan.head.flag          head_values entry not marked is_head
//   plan.shape.*            step in/out shapes disagree with the kernel
//                           signature (conv, linear, pool, gap, meanpool,
//                           resize, tokresize, skip)
//   plan.solver.kind        solver named on a step kind without a tunable
//                           kernel
//   plan.solver.unknown     solver name not in the kernel registry
//   plan.solver.applicable  named solver rejects the step's problem shape
#ifndef GMORPH_SRC_ANALYSIS_PLAN_VERIFIER_H_
#define GMORPH_SRC_ANALYSIS_PLAN_VERIFIER_H_

#include "src/analysis/diagnostics.h"
#include "src/analysis/plan_ir.h"

namespace gmorph {

DiagnosticList VerifyPlan(const PlanIR& plan);

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_PLAN_VERIFIER_H_
