// Strict linter for "gmorph-tunedb v1" tuning-DB files.
//
// The runtime loader (kernels::TuneDb::Load) is tolerant by design — it
// silently drops malformed lines so a damaged DB degrades to heuristic
// dispatch instead of crashing a serving process. This pass is the strict
// counterpart wired into `gmorph_cli --verify`: every dropped or suspicious
// line becomes a structured diagnostic.
//
//   tune.open         cannot open the file
//   tune.header       missing gmorph-tunedb header line
//   tune.version      header names an unsupported format version
//   tune.fingerprint  fingerprint differs from this build (warning: entries
//                     are valid but this binary will ignore them), or the
//                     fingerprint line is malformed / repeated (error)
//   tune.entry        entry line fails the strict grammar (shared parser
//                     ParseTuneEntryLine, so the linter cannot drift from the
//                     loader)
//   tune.solver       entry names a solver the registry does not know
//   tune.applicable   named solver rejects the entry's problem descriptor
//   tune.duplicate    two entries share one problem descriptor (the loader
//                     keeps the last; earlier ones are dead weight)
#ifndef GMORPH_SRC_ANALYSIS_TUNEDB_VERIFIER_H_
#define GMORPH_SRC_ANALYSIS_TUNEDB_VERIFIER_H_

#include <string>

#include "src/analysis/diagnostics.h"

namespace gmorph {

DiagnosticList VerifyTuneDbFile(const std::string& path);

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_TUNEDB_VERIFIER_H_
