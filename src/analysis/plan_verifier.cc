#include "src/analysis/plan_verifier.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "src/kernels/registry.h"

namespace gmorph {

std::string PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kConv:
      return "conv";
    case PlanOp::kLinear:
      return "linear";
    case PlanOp::kMaxPool:
      return "maxpool";
    case PlanOp::kGlobalAvgPool:
      return "gap";
    case PlanOp::kMeanPoolTokens:
      return "meanpool";
    case PlanOp::kBilinearResize:
      return "resize";
    case PlanOp::kTokenResize:
      return "tokresize";
    case PlanOp::kModule:
      return "module";
  }
  return "unknown";
}

namespace {

// An event in the symbolic execution: step sequence number + group.
struct Event {
  int seq = -1;
  int group = 0;
};

std::string StepPath(const PlanIR& plan, int seq) {
  std::ostringstream os;
  os << "step " << seq;
  if (seq >= 0 && seq < static_cast<int>(plan.steps.size())) {
    const PlanStep& s = plan.steps[static_cast<size_t>(seq)];
    os << " [" << (s.label.empty() ? PlanOpName(s.kind) : s.label) << "]";
  }
  return os.str();
}

std::string ValuePath(int value) {
  return "value v" + std::to_string(value);
}

class PlanChecker {
 public:
  explicit PlanChecker(const PlanIR& plan) : plan_(plan) {}

  DiagnosticList Run() {
    if (!CheckIndices()) {
      return std::move(diags_);
    }
    ResolveAliases();
    CheckGroups();
    CollectDefsAndUses();
    CheckRaces();
    CheckShapes();
    CheckSolvers();
    CheckBuffers();
    return std::move(diags_);
  }

 private:
  int V() const { return static_cast<int>(plan_.values.size()); }
  int S() const { return static_cast<int>(plan_.steps.size()); }
  int G() const { return static_cast<int>(plan_.groups.size()); }
  int B() const { return static_cast<int>(plan_.buffers.size()); }

  // ---- Stage 1: id ranges --------------------------------------------------
  bool CheckIndices() {
    bool ok = true;
    if (plan_.values.empty()) {
      diags_.Error("plan.value.index", "plan") << "plan has no values (missing input value 0)";
      return false;
    }
    if (plan_.groups.empty()) {
      diags_.Error("plan.group.index", "plan") << "plan has no groups (missing root group 0)";
      return false;
    }
    for (int v = 0; v < V(); ++v) {
      const PlanValue& val = plan_.values[static_cast<size_t>(v)];
      if (val.alias_of < -1 || val.alias_of >= V() || val.alias_of == v) {
        diags_.Error("plan.value.index", ValuePath(v)) << "alias target " << val.alias_of
                                                       << " out of range";
        ok = false;
      }
      if (val.buffer < -1 || val.buffer >= B()) {
        diags_.Error("plan.buffer.index", ValuePath(v)) << "buffer " << val.buffer
                                                        << " out of range";
        ok = false;
      }
    }
    for (int s = 0; s < S(); ++s) {
      const PlanStep& step = plan_.steps[static_cast<size_t>(s)];
      if (step.in0 < 0 || step.in0 >= V() || step.out < 0 || step.out >= V() ||
          step.skip < -1 || step.skip >= V()) {
        diags_.Error("plan.step.index", StepPath(plan_, s)) << "value operand out of range";
        ok = false;
      }
      if (step.group < 0 || step.group >= G()) {
        diags_.Error("plan.group.index", StepPath(plan_, s)) << "group " << step.group
                                                             << " out of range";
        ok = false;
      }
    }
    for (int g = 0; g < G(); ++g) {
      const PlanGroup& grp = plan_.groups[static_cast<size_t>(g)];
      if (grp.parent < -1 || grp.parent >= G() || grp.parent == g) {
        diags_.Error("plan.group.index", "group " + std::to_string(g))
            << "parent " << grp.parent << " out of range";
        ok = false;
      }
      for (int s : grp.steps) {
        if (s < 0 || s >= S()) {
          diags_.Error("plan.step.index", "group " + std::to_string(g))
              << "step id " << s << " out of range";
          ok = false;
        }
      }
      for (int c : grp.children) {
        if (c <= 0 || c >= G()) {
          diags_.Error("plan.group.index", "group " + std::to_string(g))
              << "child group " << c << " out of range";
          ok = false;
        }
      }
    }
    for (int hv : plan_.head_values) {
      if (hv < 0 || hv >= V()) {
        diags_.Error("plan.value.index", "plan") << "head value " << hv << " out of range";
        ok = false;
      }
    }
    return ok;
  }

  // ---- Stage 2: alias resolution -------------------------------------------
  void ResolveAliases() {
    root_.assign(static_cast<size_t>(V()), -1);
    for (int v = 0; v < V(); ++v) {
      int cur = v;
      int hops = 0;
      while (plan_.values[static_cast<size_t>(cur)].alias_of >= 0 && hops <= V()) {
        cur = plan_.values[static_cast<size_t>(cur)].alias_of;
        ++hops;
      }
      if (hops > V()) {
        diags_.Error("plan.alias.cycle", ValuePath(v)) << "alias chain never terminates";
        continue;
      }
      root_[static_cast<size_t>(v)] = cur;
      const PlanValue& val = plan_.values[static_cast<size_t>(v)];
      if (val.alias_of >= 0) {
        const PlanValue& rv = plan_.values[static_cast<size_t>(cur)];
        if (val.shape.NumElements() != rv.shape.NumElements()) {
          diags_.Error("plan.alias.shape", ValuePath(v))
              << "reshapes " << rv.shape.ToString() << " (" << rv.shape.NumElements()
              << " elems) to " << val.shape.ToString() << " (" << val.shape.NumElements()
              << " elems)";
        }
        if (val.buffer >= 0) {
          diags_.Error("plan.buffer.alias", ValuePath(v))
              << "alias must not own a buffer (shares its root's)";
        }
      }
    }
  }

  // ---- Stage 3: group tree + execution-order consistency -------------------
  void CheckGroups() {
    if (plan_.groups[0].parent != -1) {
      diags_.Error("plan.group.tree", "group 0") << "root group must have no parent";
    }
    group_depth_ok_.assign(static_cast<size_t>(G()), true);
    for (int g = 1; g < G(); ++g) {
      if (plan_.groups[static_cast<size_t>(g)].parent < 0) {
        diags_.Error("plan.group.tree", "group " + std::to_string(g))
            << "non-root group without parent";
        group_depth_ok_[static_cast<size_t>(g)] = false;
        continue;
      }
      // Cycle detection: the parent chain must reach group 0 within G hops.
      int cur = g;
      int hops = 0;
      while (cur > 0 && hops <= G()) {
        cur = plan_.groups[static_cast<size_t>(cur)].parent;
        if (cur < 0) {
          break;
        }
        ++hops;
      }
      if (hops > G()) {
        diags_.Error("plan.group.tree", "group " + std::to_string(g))
            << "parent chain never reaches group 0";
        group_depth_ok_[static_cast<size_t>(g)] = false;
      }
    }
    // parent/children link consistency.
    for (int g = 1; g < G(); ++g) {
      const int p = plan_.groups[static_cast<size_t>(g)].parent;
      if (p < 0 || p >= G()) {
        continue;
      }
      const auto& kids = plan_.groups[static_cast<size_t>(p)].children;
      if (std::count(kids.begin(), kids.end(), g) != 1) {
        diags_.Error("plan.group.tree", "group " + std::to_string(g))
            << "not listed exactly once in children of parent " << p;
      }
    }
    // Step membership: each step in exactly the group it names.
    std::vector<int> owner(static_cast<size_t>(S()), -1);
    for (int g = 0; g < G(); ++g) {
      int prev = -1;
      for (int s : plan_.groups[static_cast<size_t>(g)].steps) {
        if (s < 0 || s >= S()) {
          continue;  // reported in stage 1
        }
        if (owner[static_cast<size_t>(s)] != -1) {
          diags_.Error("plan.group.member", StepPath(plan_, s)) << "listed in multiple groups";
        }
        owner[static_cast<size_t>(s)] = g;
        if (plan_.steps[static_cast<size_t>(s)].group != g) {
          diags_.Error("plan.group.member", StepPath(plan_, s))
              << "names group " << plan_.steps[static_cast<size_t>(s)].group
              << " but is listed in group " << g;
        }
        if (s <= prev) {
          diags_.Error("plan.group.order", StepPath(plan_, s))
              << "sequence not increasing within group " << g;
        }
        prev = s;
      }
    }
    for (int s = 0; s < S(); ++s) {
      if (owner[static_cast<size_t>(s)] == -1) {
        diags_.Error("plan.group.member", StepPath(plan_, s)) << "not listed in any group";
      }
    }
    // Children execute strictly after their parent's own steps, so every step
    // of a child group must be sequenced after every step of the parent —
    // otherwise seq-based happens-before disagrees with actual execution.
    for (int g = 1; g < G(); ++g) {
      const PlanGroup& grp = plan_.groups[static_cast<size_t>(g)];
      if (grp.parent < 0 || grp.steps.empty()) {
        continue;
      }
      const PlanGroup& par = plan_.groups[static_cast<size_t>(grp.parent)];
      if (par.steps.empty()) {
        continue;
      }
      const int child_min = *std::min_element(grp.steps.begin(), grp.steps.end());
      const int parent_max = *std::max_element(par.steps.begin(), par.steps.end());
      if (child_min <= parent_max) {
        diags_.Error("plan.group.order", "group " + std::to_string(g))
            << "step " << child_min << " sequenced before parent group's step " << parent_max;
      }
    }
  }

  // True if `anc` is on the parent chain of `g` (or equal). Bounded walk so
  // malformed parent links (already diagnosed) cannot hang the verifier.
  bool GroupOrdersBefore(int anc, int g) const {
    int hops = 0;
    while (g >= 0 && hops <= G()) {
      if (g == anc) {
        return true;
      }
      g = plan_.groups[static_cast<size_t>(g)].parent;
      ++hops;
    }
    return false;
  }

  // The fork/join happens-before relation of the schedule: `e` is ordered
  // before `seq` in group `group` iff it is earlier in sequence AND its group
  // is an ancestor of (or equal to) the target's group. Sibling branches are
  // unordered under branch-parallel execution.
  bool HappensBefore(const Event& e, int seq, int group) const {
    return e.seq < seq && GroupOrdersBefore(e.group, group);
  }

  // ---- Stage 4: defs and uses, recomputed from the steps alone -------------
  void CollectDefsAndUses() {
    def_.assign(static_cast<size_t>(V()), Event{});
    has_def_.assign(static_cast<size_t>(V()), false);
    uses_.assign(static_cast<size_t>(V()), {});
    for (int s = 0; s < S(); ++s) {
      const PlanStep& step = plan_.steps[static_cast<size_t>(s)];
      if (plan_.values[static_cast<size_t>(step.out)].alias_of >= 0) {
        diags_.Error("plan.step.out.alias", StepPath(plan_, s))
            << "writes into alias " << ValuePath(step.out);
      }
      const int out_root = root_[static_cast<size_t>(step.out)];
      if (out_root == 0) {
        diags_.Error("plan.value.multidef", StepPath(plan_, s)) << "writes the plan input";
      } else if (out_root >= 0) {
        if (has_def_[static_cast<size_t>(out_root)]) {
          diags_.Error("plan.value.multidef", ValuePath(out_root))
              << "defined by step " << def_[static_cast<size_t>(out_root)].seq << " and step "
              << s;
        }
        has_def_[static_cast<size_t>(out_root)] = true;
        def_[static_cast<size_t>(out_root)] = Event{s, step.group};
      }
      for (int operand : {step.in0, step.skip}) {
        if (operand < 0) {
          continue;
        }
        const int r = root_[static_cast<size_t>(operand)];
        if (r >= 0) {
          uses_[static_cast<size_t>(r)].push_back(Use{s, step.group, operand});
        }
      }
    }
    for (int v = 0; v < V(); ++v) {
      const PlanValue& val = plan_.values[static_cast<size_t>(v)];
      if (v == 0 || val.alias_of >= 0) {
        continue;
      }
      if (!has_def_[static_cast<size_t>(v)]) {
        if (!uses_[static_cast<size_t>(v)].empty()) {
          diags_.Error("plan.value.undef", ValuePath(v))
              << "read by step " << uses_[static_cast<size_t>(v)].front().seq
              << " but never defined";
        } else {
          diags_.Warning("plan.value.unused", ValuePath(v)) << "never defined and never read";
        }
      } else if (uses_[static_cast<size_t>(v)].empty() && !val.is_head) {
        diags_.Warning("plan.value.unused", ValuePath(v)) << "defined but never read";
      }
    }
  }

  // ---- Stage 5: static race detection over the schedule --------------------
  void CheckRaces() {
    for (int v = 0; v < V(); ++v) {
      if (!has_def_[static_cast<size_t>(v)] && v != 0) {
        continue;  // undef already reported
      }
      for (const Use& use : uses_[static_cast<size_t>(v)]) {
        if (v == 0) {
          continue;  // the plan input is defined before all steps
        }
        const Event& def = def_[static_cast<size_t>(v)];
        if (HappensBefore(def, use.seq, use.group)) {
          continue;
        }
        if (def.seq >= use.seq) {
          diags_.Error("plan.race.use_before_def", StepPath(plan_, use.seq))
              << "reads " << ValuePath(use.via) << " before its definition at step " << def.seq;
        } else {
          diags_.Error("plan.race.cross_branch", StepPath(plan_, use.seq))
              << "reads " << ValuePath(use.via) << " (root v" << v << ") written by step "
              << def.seq << " in concurrent group " << def.group
              << "; groups " << def.group << " and " << use.group
              << " are unordered under branch-parallel execution";
        }
      }
    }
  }

  // ---- Stage 6: kernel shape signatures ------------------------------------
  void CheckShapes() {
    for (int s = 0; s < S(); ++s) {
      const PlanStep& step = plan_.steps[static_cast<size_t>(s)];
      const Shape& in = plan_.values[static_cast<size_t>(step.in0)].shape;
      const Shape& out = plan_.values[static_cast<size_t>(step.out)].shape;
      const std::string path = StepPath(plan_, s);
      switch (step.kind) {
        case PlanOp::kConv: {
          const Shape& w = step.weight_shape;
          if (in.Rank() != 3 || w.Rank() != 4 || w[1] != in[0] || step.stride <= 0) {
            diags_.Error("plan.shape.conv", path)
                << "input " << in.ToString() << " incompatible with weight " << w.ToString()
                << " (stride " << step.stride << ")";
            break;
          }
          const int64_t oh = (in[1] + 2 * step.padding - w[2]) / step.stride + 1;
          const int64_t ow = (in[2] + 2 * step.padding - w[3]) / step.stride + 1;
          if (oh <= 0 || ow <= 0 || out != Shape({w[0], oh, ow})) {
            diags_.Error("plan.shape.conv", path)
                << "produces " << Shape({w[0], oh, ow}).ToString() << " but output value is "
                << out.ToString();
          }
          if (step.skip >= 0 &&
              plan_.values[static_cast<size_t>(step.skip)].shape != out) {
            diags_.Error("plan.shape.skip", path)
                << "skip input " << plan_.values[static_cast<size_t>(step.skip)].shape.ToString()
                << " does not match output " << out.ToString();
          }
          break;
        }
        case PlanOp::kLinear: {
          const Shape& w = step.weight_shape;
          if (w.Rank() != 2 || in.Rank() < 1 || in[-1] != w[0]) {
            diags_.Error("plan.shape.linear", path)
                << "input " << in.ToString() << " incompatible with weight " << w.ToString();
            break;
          }
          bool match = out.Rank() == in.Rank() && out[-1] == w[1];
          for (int d = 0; match && d + 1 < in.Rank(); ++d) {
            match = in[d] == out[d];
          }
          if (!match) {
            diags_.Error("plan.shape.linear", path)
                << "input " << in.ToString() << " x weight " << w.ToString()
                << " cannot produce " << out.ToString();
          }
          break;
        }
        case PlanOp::kMaxPool: {
          if (in.Rank() != 3 || step.pool_kernel <= 0 || step.pool_stride <= 0) {
            diags_.Error("plan.shape.pool", path)
                << "input " << in.ToString() << " with kernel " << step.pool_kernel
                << " stride " << step.pool_stride;
            break;
          }
          const int64_t oh = (in[1] - step.pool_kernel) / step.pool_stride + 1;
          const int64_t ow = (in[2] - step.pool_kernel) / step.pool_stride + 1;
          if (oh <= 0 || ow <= 0 || out != Shape({in[0], oh, ow})) {
            diags_.Error("plan.shape.pool", path)
                << "produces " << Shape({in[0], oh, ow}).ToString() << " but output value is "
                << out.ToString();
          }
          break;
        }
        case PlanOp::kGlobalAvgPool:
          if (in.Rank() != 3 || out != Shape({in[0]})) {
            diags_.Error("plan.shape.gap", path)
                << in.ToString() << " -> " << out.ToString() << " is not (C,H,W) -> (C)";
          }
          break;
        case PlanOp::kMeanPoolTokens:
          if (in.Rank() != 2 || out != Shape({in[1]})) {
            diags_.Error("plan.shape.meanpool", path)
                << in.ToString() << " -> " << out.ToString() << " is not (T,D) -> (D)";
          }
          break;
        case PlanOp::kBilinearResize:
          if (in.Rank() != 3 || out.Rank() != 3 || out[0] != in[0] || out[1] <= 0 ||
              out[2] <= 0) {
            diags_.Error("plan.shape.resize", path)
                << in.ToString() << " -> " << out.ToString() << " is not a spatial resize";
          }
          break;
        case PlanOp::kTokenResize:
          if (in.Rank() != 2 || out.Rank() != 2 || out[1] != in[1] || out[0] <= 0) {
            diags_.Error("plan.shape.tokresize", path)
                << in.ToString() << " -> " << out.ToString() << " is not a token resize";
          }
          break;
        case PlanOp::kModule:
          break;  // opaque
      }
    }
  }

  // ---- Stage 6b: plan-time solver annotations ------------------------------
  // Steps may carry the kernel solver resolved at plan time (tuning DB or
  // heuristic). The annotation must name a registered solver of the step's
  // kernel family that accepts the step's problem shape. Applicability is
  // checked on the per-sample descriptor with threads=1: no registered
  // solver's IsApplicable depends on the thread count, and the plan text does
  // not record the execution-time parallelism.
  void CheckSolvers() {
    const kernels::SolverRegistry& registry = kernels::SolverRegistry::Global();
    for (int s = 0; s < S(); ++s) {
      const PlanStep& step = plan_.steps[static_cast<size_t>(s)];
      if (step.solver.empty()) {
        continue;  // untuned / legacy plan
      }
      const std::string path = StepPath(plan_, s);
      const Shape& in = plan_.values[static_cast<size_t>(step.in0)].shape;
      const Shape& out = plan_.values[static_cast<size_t>(step.out)].shape;
      kernels::ProblemDesc desc;
      desc.dtype = step.dtype;
      desc.threads = 1;
      switch (step.kind) {
        case PlanOp::kConv: {
          const Shape& w = step.weight_shape;
          if (w.Rank() != 4 || out.Rank() != 3) {
            continue;  // malformed signature already reported by plan.shape.*
          }
          desc.op = kernels::OpFamily::kGemmNN;
          if (step.dtype == kernels::DType::kInt8) {
            // Quantized convs run transposed: col_u8[S, CKK] · Wt_s8[CKK, O].
            desc.m = out[1] * out[2];
            desc.k = w[1] * w[2] * w[3];
            desc.n = w[0];
          } else {
            desc.m = w[0];
            desc.k = w[1] * w[2] * w[3];
            desc.n = out[1] * out[2];
          }
          break;
        }
        case PlanOp::kLinear: {
          const Shape& w = step.weight_shape;
          if (w.Rank() != 2 || w[0] <= 0 || in.Rank() < 1) {
            continue;
          }
          desc.op = kernels::OpFamily::kGemmNN;
          desc.m = in.NumElements() / w[0];
          desc.k = w[0];
          desc.n = w[1];
          break;
        }
        case PlanOp::kMaxPool: {
          if (in.Rank() != 3) {
            continue;
          }
          desc.op = kernels::OpFamily::kMaxPool;
          desc.m = in[0];
          desc.k = in[1];
          desc.n = in[2];
          desc.aux0 = step.pool_kernel;
          desc.aux1 = step.pool_stride;
          break;
        }
        default:
          diags_.Error("plan.solver.kind", path)
              << "step kind " << PlanOpName(step.kind) << " has no tunable kernel but names "
              << "solver '" << step.solver << "'";
          continue;
      }
      if (desc.dtype == kernels::DType::kInt8 && desc.op != kernels::OpFamily::kGemmNN) {
        diags_.Error("plan.solver.dtype", path)
            << "dtype int8 is only defined for conv/linear GEMM steps, not "
            << PlanOpName(step.kind);
        continue;
      }
      const kernels::Solver* solver = registry.FindForDesc(desc, step.solver);
      if (solver == nullptr) {
        diags_.Error("plan.solver.unknown", path)
            << "solver '" << step.solver << "' is not registered for "
            << kernels::OpFamilyName(desc.op) << " " << kernels::DTypeName(desc.dtype);
        continue;
      }
      if (!solver->IsApplicable(desc)) {
        diags_.Error("plan.solver.applicable", path)
            << "solver '" << step.solver << "' rejects " << kernels::ProblemKey(desc);
      }
    }
  }

  // ---- Stage 7: buffer assignment — overlap, races, stale aliases ----------
  void CheckBuffers() {
    std::vector<std::vector<int>> by_buffer(static_cast<size_t>(B()));
    for (int v = 1; v < V(); ++v) {
      const PlanValue& val = plan_.values[static_cast<size_t>(v)];
      if (val.alias_of >= 0) {
        continue;  // alias buffer ownership diagnosed in stage 2
      }
      if (val.from_module) {
        if (val.buffer >= 0) {
          diags_.Error("plan.buffer.module", ValuePath(v))
              << "module outputs are bound dynamically and must not own a buffer";
        }
        continue;
      }
      if (val.buffer < 0) {
        diags_.Error("plan.buffer.unassigned", ValuePath(v))
            << "planned value without an arena buffer";
        continue;
      }
      const PlanBuffer& buf = plan_.buffers[static_cast<size_t>(val.buffer)];
      if (val.shape.NumElements() != buf.elems_per_sample) {
        diags_.Error("plan.buffer.size", ValuePath(v))
            << "holds " << val.shape.NumElements() << " elems but buffer " << val.buffer
            << " provides " << buf.elems_per_sample;
      }
      by_buffer[static_cast<size_t>(val.buffer)].push_back(v);
    }
    for (int hv : plan_.head_values) {
      if (!plan_.values[static_cast<size_t>(hv)].is_head) {
        diags_.Error("plan.head.flag", ValuePath(hv)) << "listed as a head but not marked is_head";
      }
    }
    for (int b = 0; b < B(); ++b) {
      const std::vector<int>& residents = by_buffer[static_cast<size_t>(b)];
      const bool has_head = std::any_of(residents.begin(), residents.end(), [&](int v) {
        return plan_.values[static_cast<size_t>(v)].is_head;
      });
      if (has_head && (plan_.buffers[static_cast<size_t>(b)].reusable || residents.size() > 1)) {
        diags_.Error("plan.buffer.head", "buffer " + std::to_string(b))
            << "head output must live alone in a dedicated buffer (returned tensors must "
               "survive the rest of the run)";
        continue;  // overlap against an always-live head is implied
      }
      // Overlap detector: two residents may share the buffer only if every
      // event (def + all uses) of one is ordered before the other's def under
      // the recomputed happens-before relation.
      for (size_t i = 0; i < residents.size(); ++i) {
        for (size_t j = i + 1; j < residents.size(); ++j) {
          CheckPairDisjoint(residents[i], residents[j], b);
        }
      }
    }
    CheckStaleAliases(by_buffer);
  }

  bool AllEventsBefore(int v, const Event& target) const {
    if (!has_def_[static_cast<size_t>(v)] ||
        !HappensBefore(def_[static_cast<size_t>(v)], target.seq, target.group)) {
      return false;
    }
    for (const Use& use : uses_[static_cast<size_t>(v)]) {
      if (!HappensBefore(Event{use.seq, use.group}, target.seq, target.group)) {
        return false;
      }
    }
    return true;
  }

  void CheckPairDisjoint(int v, int w, int buffer) {
    if (!has_def_[static_cast<size_t>(v)] || !has_def_[static_cast<size_t>(w)]) {
      return;  // undef already reported; no live range to reason about
    }
    if (AllEventsBefore(v, def_[static_cast<size_t>(w)]) ||
        AllEventsBefore(w, def_[static_cast<size_t>(v)])) {
      return;
    }
    diags_.Error("plan.buffer.overlap", "buffer " + std::to_string(buffer))
        << ValuePath(v) << " (def step " << def_[static_cast<size_t>(v)].seq << ") and "
        << ValuePath(w) << " (def step " << def_[static_cast<size_t>(w)].seq
        << ") are simultaneously live but share the buffer";
  }

  // Alias steps must never read a buffer that was overwritten (by a later
  // resident) while the alias is live.
  void CheckStaleAliases(const std::vector<std::vector<int>>& by_buffer) {
    for (int v = 0; v < V(); ++v) {
      const int r = root_[static_cast<size_t>(v)];
      if (plan_.values[static_cast<size_t>(v)].alias_of < 0 || r < 0 || r == 0) {
        continue;
      }
      const int b = plan_.values[static_cast<size_t>(r)].buffer;
      if (b < 0 || !has_def_[static_cast<size_t>(r)]) {
        continue;  // dynamic root (module output) or already-diagnosed plan
      }
      for (const Use& use : uses_[static_cast<size_t>(r)]) {
        if (use.via != v) {
          continue;  // only reads routed through this alias
        }
        for (int w : by_buffer[static_cast<size_t>(b)]) {
          if (w == r || !has_def_[static_cast<size_t>(w)]) {
            continue;
          }
          const Event& wd = def_[static_cast<size_t>(w)];
          if (HappensBefore(def_[static_cast<size_t>(r)], wd.seq, wd.group) &&
              HappensBefore(wd, use.seq, use.group)) {
            diags_.Error("plan.alias.stale", StepPath(plan_, use.seq))
                << "reads alias v" << v << " of v" << r << " after buffer " << b
                << " was overwritten by v" << w << " (step " << wd.seq << ")";
          }
        }
      }
    }
  }

  struct Use {
    int seq = -1;
    int group = 0;
    int via = -1;  // the (possibly alias) value id the step actually names
  };

  const PlanIR& plan_;
  DiagnosticList diags_;
  std::vector<int> root_;
  std::vector<bool> group_depth_ok_;
  std::vector<Event> def_;
  std::vector<bool> has_def_;
  std::vector<std::vector<Use>> uses_;
};

}  // namespace

DiagnosticList VerifyPlan(const PlanIR& plan) {
  return PlanChecker(plan).Run();
}

}  // namespace gmorph
