#include "src/analysis/diagnostics.h"

#include <sstream>

namespace gmorph {

std::string SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << "[" << rule_id << "]";
  if (!node_path.empty()) {
    os << " " << node_path << ":";
  }
  os << " " << message;
  return os.str();
}

Diagnostic Diagnostic::FromCheckError(const CheckError& error) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.rule_id = "check.failed";
  std::ostringstream path;
  path << error.file() << ":" << error.line();
  d.node_path = path.str();
  d.message = error.message().empty() ? error.expr() : error.expr() + " — " + error.message();
  return d;
}

DiagnosticBuilder::~DiagnosticBuilder() {
  if (list_ != nullptr) {
    diag_.message = os_.str();
    list_->Add(std::move(diag_));
  }
}

int DiagnosticList::error_count() const {
  int n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == Severity::kError) {
      ++n;
    }
  }
  return n;
}

bool DiagnosticList::HasRule(const std::string& rule_id) const {
  for (const Diagnostic& d : items_) {
    if (d.rule_id == rule_id) {
      return true;
    }
  }
  return false;
}

std::string DiagnosticList::ToString() const {
  std::ostringstream os;
  for (const Diagnostic& d : items_) {
    os << d.ToString() << "\n";
  }
  return os.str();
}

}  // namespace gmorph
