// Central registry of every diagnostic rule the analysis passes can emit.
//
// Each dotted rule id (plan.buffer.overlap, graph.root, tune.entry, ...) is
// registered exactly once with its default severity and a one-line
// description. The registry is the source of truth for:
//   - `gmorph_cli --verify --list-rules` (and the generated docs/RULES.md,
//     kept in sync by the rules_doc_sync ctest entry);
//   - severity-override pattern validation (--Werror=/--Wno= reject patterns
//     that select no registered rule);
//   - the SARIF tool.driver.rules table;
//   - the rule-coverage test, which asserts every registered plan.*/graph.*
//     rule can actually fire (no dead rules).
//
// A rule's *default* severity documents how the passes emit it in the common
// case; a few rules legitimately escalate (e.g. tune.fingerprint is a warning
// on a foreign-build mismatch but an error when the line is malformed). The
// driver's severity policy operates on the emitted severity.
#ifndef GMORPH_SRC_ANALYSIS_RULES_H_
#define GMORPH_SRC_ANALYSIS_RULES_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/diagnostics.h"

namespace gmorph {

struct RuleInfo {
  const char* id;
  Severity default_severity;
  const char* description;
};

// All registered rules, sorted by id.
const std::vector<RuleInfo>& AllRules();

// Registry lookup; nullptr for unknown ids.
const RuleInfo* FindRule(std::string_view id);

// True when `pattern` selects `rule_id`: an exact id, or a dotted prefix
// ("plan.mem" selects every plan.mem.* rule; a trailing "." or ".*" on the
// pattern is tolerated, so "plan.mem." and "plan.mem.*" mean the same).
bool RuleMatchesPattern(std::string_view rule_id, std::string_view pattern);

// True when at least one registered rule matches — how the driver validates
// --Werror=/--Wno= arguments.
bool PatternSelectsAnyRule(std::string_view pattern);

// The full catalog as stable text: one "severity  id  description" line per
// rule. This is both the --list-rules output and the body of docs/RULES.md.
std::string ListRulesText();

}  // namespace gmorph

#endif  // GMORPH_SRC_ANALYSIS_RULES_H_
