#include "src/analysis/rules.h"

#include <algorithm>
#include <sstream>

namespace gmorph {
namespace {

constexpr Severity kErr = Severity::kError;
constexpr Severity kWarn = Severity::kWarning;
constexpr Severity kNote = Severity::kNote;

// Sorted by id (asserted below); one entry per rule the passes can emit.
const RuleInfo kRules[] = {
    {"cache.entry", kErr, "malformed evaluation-cache entry line or met-target entry without a trained graph"},
    {"cache.fingerprint", kErr, "cached trained graph's fingerprint disagrees with its index entry"},
    {"cache.graph", kErr, "entry references a trained-graph file that is missing or unloadable"},
    {"cache.header", kErr, "missing gmorph-evalcache header line"},
    {"cache.open", kErr, "evaluation-cache index file cannot be opened"},
    {"cache.options", kErr, "missing or malformed options-hash line, or hash differs from the active search options"},
    {"cache.summary", kNote, "informational totals for a linted evaluation-cache index"},
    {"cache.version", kErr, "unsupported evaluation-cache format version"},
    {"check.failed", kErr, "fatal GMORPH_CHECK assertion converted into a diagnostic"},
    {"ckpt.bounds", kErr, "checkpoint field value outside its sane range"},
    {"ckpt.magic", kErr, "file is not a gmorph-checkpoint (bad or missing header)"},
    {"ckpt.open", kErr, "checkpoint file cannot be opened"},
    {"ckpt.summary", kNote, "informational totals for a linted checkpoint"},
    {"ckpt.truncated", kErr, "checkpoint ends mid-record"},
    {"ckpt.version", kErr, "unsupported checkpoint format version"},
    {"graph.capacity.stale", kErr, "node's cached channel capacity disagrees with recomputation"},
    {"graph.head.count", kErr, "number of head nodes does not match the number of tasks"},
    {"graph.head.leaf", kErr, "task head is not a leaf node"},
    {"graph.head.task", kErr, "task maps to a head node that does not claim it"},
    {"graph.leaf.dangling", kErr, "leaf node is not any task's head"},
    {"graph.node.index", kErr, "node id or child/parent reference out of range"},
    {"graph.rescale.identity", kWarn, "rescale node is an identity (same shape in and out)"},
    {"graph.rescale.legal", kErr, "rescale between shapes the legality rules forbid"},
    {"graph.root", kErr, "missing root node or root with a parent"},
    {"graph.roundtrip", kErr, "serialize + reload does not reproduce the graph fingerprint"},
    {"graph.shape.edge", kErr, "child's input shape does not match its parent's output shape"},
    {"graph.shape.infer", kErr, "stored output shape disagrees with re-run shape inference"},
    {"graph.share.dissimilar", kWarn, "subtree shared between tasks with dissimilar output semantics"},
    {"graph.spec.type", kErr, "node carries an unknown or ill-formed op spec"},
    {"graph.tasks.range", kErr, "task id out of range for the graph's task count"},
    {"graph.tree.link", kErr, "parent/child links are not a consistent tree"},
    {"graph.tree.reach", kErr, "node unreachable from the root"},
    {"graph.weights.mismatch", kErr, "weight tensor shapes do not match the node's spec"},
    {"io.bounds", kErr, "serialized field value outside its sane range"},
    {"io.header", kErr, "malformed binary-graph header"},
    {"io.magic", kErr, "file does not start with the GMORPHG magic"},
    {"io.open", kErr, "graph file cannot be opened"},
    {"io.truncated", kErr, "binary graph ends mid-record"},
    {"machine.entry", kErr, "malformed, unknown, or repeated machine ceiling entry line"},
    {"machine.fingerprint", kWarn, "fingerprint missing, malformed (as an error), or from a foreign build"},
    {"machine.header", kErr, "missing gmorph-machine header line"},
    {"machine.missing", kErr, "required ceiling entry (threads/peak_gflops/triad_gbps) absent"},
    {"machine.open", kErr, "machine ceiling file cannot be opened"},
    {"machine.value", kErr, "ceiling value is not positive finite"},
    {"machine.version", kErr, "unsupported machine artifact version"},
    {"plan.alias.cycle", kErr, "alias chain never reaches a non-alias root value"},
    {"plan.alias.shape", kErr, "alias reshapes to a different element count than its root"},
    {"plan.alias.stale", kErr, "alias read after its root's buffer was overwritten"},
    {"plan.buffer.alias", kErr, "alias value owns a buffer (aliases share their root's)"},
    {"plan.buffer.head", kErr, "head output does not live alone in a dedicated buffer"},
    {"plan.buffer.index", kErr, "buffer reference out of range"},
    {"plan.buffer.module", kErr, "module output owns an arena buffer (module outputs bind dynamically)"},
    {"plan.buffer.overlap", kErr, "two simultaneously live values share an arena buffer"},
    {"plan.buffer.size", kErr, "value's element count does not fit its buffer"},
    {"plan.buffer.unassigned", kErr, "planned value without an arena buffer"},
    {"plan.dtype.alias", kErr, "alias declares a storage dtype different from its root value"},
    {"plan.dtype.buffer", kErr, "values of different storage dtypes share an arena buffer"},
    {"plan.dtype.head", kErr, "head output's storage dtype is not f32 (task scores are f32)"},
    {"plan.dtype.input", kErr, "step consumes a value whose storage dtype its kernel cannot read"},
    {"plan.dtype.mismatch", kErr, "value's declared storage dtype disagrees with its producer"},
    {"plan.dtype.step", kErr, "step kind cannot execute at its annotated kernel dtype"},
    {"plan.group.index", kErr, "group reference out of range"},
    {"plan.group.member", kErr, "step/group membership lists are inconsistent"},
    {"plan.group.order", kErr, "step sequence numbers violate group execution order"},
    {"plan.group.tree", kErr, "group parent links are not a tree rooted at group 0"},
    {"plan.head.flag", kErr, "value listed as a head but not marked is_head"},
    {"plan.io.header", kErr, "missing gmorph-plan header line"},
    {"plan.io.open", kErr, "plan file cannot be opened"},
    {"plan.io.parse", kErr, "malformed plan-text directive"},
    {"plan.mem.arena", kErr, "arena smaller than the certified peak of live bytes"},
    {"plan.mem.buffer", kWarn, "arena buffer no planned value ever occupies (dead slot)"},
    {"plan.mem.summary", kNote, "certified peak live bytes vs planned arena bytes"},
    {"plan.mem.waste", kWarn, "arena exceeds the waste bound over the certified peak"},
    {"plan.race.cross_branch", kErr, "value read and written by unordered parallel branches"},
    {"plan.race.use_before_def", kErr, "value read before the step that defines it"},
    {"plan.shape.conv", kErr, "conv input/weight/output shape signature is inconsistent"},
    {"plan.shape.gap", kErr, "global-average-pool shapes are not (C,H,W) -> (C)"},
    {"plan.shape.linear", kErr, "linear input/weight/output shape signature is inconsistent"},
    {"plan.shape.meanpool", kErr, "token mean-pool shapes are not (T,D) -> (D)"},
    {"plan.shape.pool", kErr, "max-pool geometry does not produce the output shape"},
    {"plan.shape.resize", kErr, "bilinear resize shapes are not a spatial resize"},
    {"plan.shape.skip", kErr, "residual skip input shape does not match the conv output"},
    {"plan.shape.tokresize", kErr, "token resize shapes are not a token-count resize"},
    {"plan.solver.applicable", kErr, "annotated solver rejects the step's problem shape"},
    {"plan.solver.dtype", kErr, "step dtype is not defined for this kernel family"},
    {"plan.solver.kind", kErr, "step kind has no tunable kernel but names a solver"},
    {"plan.solver.unknown", kErr, "annotated solver is not registered for the step's family"},
    {"plan.step.index", kErr, "step operand or group reference out of range"},
    {"plan.step.out.alias", kErr, "step writes into an alias value"},
    {"plan.value.index", kErr, "value reference out of range"},
    {"plan.value.multidef", kErr, "value defined by more than one step (or a step writes the input)"},
    {"plan.value.undef", kErr, "value read but never defined"},
    {"plan.value.unused", kWarn, "value neither defined nor read (dead plan entry)"},
    {"quant.duplicate", kErr, "two recipe lines quantize the same plan step"},
    {"quant.entry", kErr, "malformed recipe step line (or a recipe with no steps, as a warning)"},
    {"quant.header", kErr, "missing gmorph-quant header line"},
    {"quant.open", kErr, "quantization recipe file cannot be opened"},
    {"quant.scale", kErr, "activation or per-channel weight scale is not positive finite"},
    {"quant.version", kErr, "unsupported recipe format version"},
    {"quant.zp", kErr, "activation zero point outside the u8 range [0, 255]"},
    {"tune.applicable", kErr, "recorded solver rejects the entry's problem shape"},
    {"tune.duplicate", kErr, "two tuning entries describe the same problem descriptor"},
    {"tune.entry", kErr, "malformed tuning-DB entry line"},
    {"tune.fingerprint", kWarn, "fingerprint missing, malformed (as an error), or from a foreign build"},
    {"tune.header", kErr, "missing gmorph-tunedb header line"},
    {"tune.open", kErr, "tuning DB file cannot be opened"},
    {"tune.solver", kErr, "recorded solver is not registered for the entry's family"},
    {"tune.version", kErr, "unsupported tuning-DB format version"},
};

}  // namespace

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> rules = [] {
    std::vector<RuleInfo> r(std::begin(kRules), std::end(kRules));
    GMORPH_CHECK(std::is_sorted(r.begin(), r.end(),
                                [](const RuleInfo& a, const RuleInfo& b) {
                                  return std::string_view(a.id) < std::string_view(b.id);
                                }),
                 "rule registry must stay sorted by id");
    return r;
  }();
  return rules;
}

const RuleInfo* FindRule(std::string_view id) {
  const std::vector<RuleInfo>& rules = AllRules();
  const auto it = std::lower_bound(rules.begin(), rules.end(), id,
                                   [](const RuleInfo& r, std::string_view key) {
                                     return std::string_view(r.id) < key;
                                   });
  if (it == rules.end() || std::string_view(it->id) != id) {
    return nullptr;
  }
  return &*it;
}

bool RuleMatchesPattern(std::string_view rule_id, std::string_view pattern) {
  // Normalize "plan.mem.*" and "plan.mem." to the bare prefix "plan.mem".
  if (pattern.size() >= 2 && pattern.substr(pattern.size() - 2) == ".*") {
    pattern.remove_suffix(2);
  } else if (!pattern.empty() && pattern.back() == '.') {
    pattern.remove_suffix(1);
  }
  if (pattern.empty()) {
    return false;
  }
  if (rule_id == pattern) {
    return true;
  }
  return rule_id.size() > pattern.size() && rule_id.substr(0, pattern.size()) == pattern &&
         rule_id[pattern.size()] == '.';
}

bool PatternSelectsAnyRule(std::string_view pattern) {
  for (const RuleInfo& rule : AllRules()) {
    if (RuleMatchesPattern(rule.id, pattern)) {
      return true;
    }
  }
  return false;
}

std::string ListRulesText() {
  std::ostringstream os;
  os << "# GMorph analysis rule catalog\n"
     << "# Generated by `gmorph_cli --verify --list-rules`; do not edit by hand.\n"
     << "# Severity is the default the passes emit; --Werror=/--Wno= and baseline\n"
     << "# files adjust reporting per run (see README).\n"
     << "# " << AllRules().size() << " rules.\n\n";
  for (const RuleInfo& rule : AllRules()) {
    std::string line = SeverityName(rule.default_severity);
    line.resize(9, ' ');
    line += rule.id;
    if (line.size() < 36) {
      line.resize(36, ' ');
    }
    os << line << " " << rule.description << "\n";
  }
  return os.str();
}

}  // namespace gmorph
