// TaskModel: a single-task DNN materialized from a ModelSpec, with one module
// per BlockSpec so that block index i in the spec always corresponds to module
// i. The model parser relies on this correspondence to attach per-block
// weights to abstract-graph nodes.
#ifndef GMORPH_SRC_MODELS_TASK_MODEL_H_
#define GMORPH_SRC_MODELS_TASK_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/models/model_spec.h"
#include "src/nn/module.h"

namespace gmorph {

class TaskModel {
 public:
  // Instantiates fresh weights for every block.
  TaskModel(ModelSpec spec, Rng& rng);

  Tensor Forward(const Tensor& x, bool training);
  Tensor Backward(const Tensor& grad_out);

  std::vector<Parameter*> Parameters();
  void ZeroGrad();

  const ModelSpec& spec() const { return spec_; }
  size_t num_blocks() const { return modules_.size(); }
  Module& block(size_t i) { return *modules_[i]; }
  const Module& block(size_t i) const { return *modules_[i]; }

  // Per-block deep copies of weights, indexed like spec().blocks.
  std::vector<std::vector<Tensor>> ExportWeights() const;
  void ImportWeights(const std::vector<std::vector<Tensor>>& weights);

  int64_t TotalCapacity() const { return spec_.TotalCapacity(); }

 private:
  ModelSpec spec_;
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_MODELS_TASK_MODEL_H_
