// Declarative model description.
//
// A ModelSpec is an ordered list of BlockSpecs — one per computation block in
// the paper's sense (a VGG conv layer, a ResNet residual block, a transformer
// encoder block, a pooling/reshape step, a task head). The abstract graph
// stores BlockSpecs in its nodes, so a mutated graph can always be
// re-materialized into runnable modules (Model Generator), and capacities /
// FLOPs can be computed without instantiating weights.
#ifndef GMORPH_SRC_MODELS_MODEL_SPEC_H_
#define GMORPH_SRC_MODELS_MODEL_SPEC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/module.h"
#include "src/tensor/shape.h"

namespace gmorph {

enum class BlockType {
  kConvReLU,        // VGG-style conv layer (no BN)
  kConvBNReLU,      // stem conv with BN (ResNet)
  kResidual,        // ResNet basic block
  kMaxPool,
  kGlobalAvgPool,   // (C,H,W) -> (C)
  kFlatten,         // (C,H,W) -> (C*H*W)
  kLinearReLU,      // hidden FC layer
  kHead,            // final Linear producing task logits
  kPatchEmbed,      // ViT stem
  kTokenEmbed,      // BERT stem
  kTransformer,     // encoder block
  kMeanPoolTokens,  // (T,D) -> (D)
  kRescale,         // adapter inserted by graph mutation
};

// Returns a short mnemonic, e.g. "ConvReLU".
std::string BlockTypeName(BlockType type);

struct BlockSpec {
  BlockType type = BlockType::kConvReLU;

  // Convolution / residual parameters.
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = 1;

  // Pooling parameters.
  int64_t pool_kernel = 2;
  int64_t pool_stride = 2;

  // Linear / head parameters.
  int64_t in_features = 0;
  int64_t out_features = 0;

  // Transformer parameters.
  int64_t dim = 0;
  int64_t heads = 0;
  int64_t mlp_ratio = 4;

  // Embedding parameters.
  int64_t vocab = 0;
  int64_t seq_len = 0;
  int64_t image_size = 0;
  int64_t patch = 0;

  // Rescale parameters (per-sample shapes).
  Shape rescale_in;
  Shape rescale_out;

  std::string ToString() const;
};

// Full-field structural equality (weights are not part of a spec). Used by
// the MTL baselines to find identical layers across architectures.
bool SpecEquals(const BlockSpec& a, const BlockSpec& b);

// Convenience constructors.
BlockSpec ConvReLUSpec(int64_t in_c, int64_t out_c, int64_t kernel = 3, int64_t stride = 1,
                       int64_t padding = 1);
BlockSpec ConvBNReLUSpec(int64_t in_c, int64_t out_c, int64_t kernel = 3, int64_t stride = 1,
                         int64_t padding = 1);
BlockSpec ResidualSpec(int64_t in_c, int64_t out_c, int64_t stride = 1);
BlockSpec MaxPoolSpec(int64_t kernel = 2, int64_t stride = 2);
BlockSpec GlobalAvgPoolSpec();
BlockSpec FlattenSpec();
BlockSpec LinearReLUSpec(int64_t in_f, int64_t out_f);
BlockSpec HeadSpec(int64_t in_f, int64_t classes);
BlockSpec PatchEmbedSpec(int64_t in_c, int64_t image_size, int64_t patch, int64_t dim);
BlockSpec TokenEmbedSpec(int64_t vocab, int64_t seq_len, int64_t dim);
BlockSpec TransformerSpec(int64_t dim, int64_t heads, int64_t mlp_ratio = 4);
BlockSpec MeanPoolTokensSpec();
BlockSpec RescaleSpec(const Shape& in, const Shape& out);

// Materializes the block as a trainable module with fresh weights.
std::unique_ptr<Module> MakeModule(const BlockSpec& spec, Rng& rng);

// Per-sample output shape given a per-sample input shape.
Shape BlockOutShape(const BlockSpec& spec, const Shape& in);

// Number of learnable parameters (matches MakeModule(spec)->ParamCount()).
int64_t BlockCapacity(const BlockSpec& spec);

// Forward FLOPs per sample given a per-sample input shape (multiply-adds
// counted as 2 ops, matching common convention).
int64_t BlockFlops(const BlockSpec& spec, const Shape& in);

// A complete single-task architecture.
struct ModelSpec {
  std::string name;
  Shape input_shape;  // per-sample: {C,H,W} for vision, {T} for token ids
  std::vector<BlockSpec> blocks;

  // Per-sample output shape of the whole model.
  Shape OutputShape() const;
  int64_t TotalCapacity() const;
  int64_t TotalFlops() const;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_MODELS_MODEL_SPEC_H_
