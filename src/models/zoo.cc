#include "src/models/zoo.h"

#include <array>

#include "src/common/check.h"

namespace gmorph {
namespace {

// Builds a VGG-style spec from per-stage conv repetition counts.
ModelSpec MakeVgg(const std::string& name, const std::array<int, 5>& reps,
                  const VisionModelOptions& opts) {
  const int64_t w = opts.base_width;
  const std::array<int64_t, 5> widths = {w, 2 * w, 4 * w, 8 * w, 8 * w};
  ModelSpec spec;
  spec.name = name;
  spec.input_shape = Shape{3, opts.image_size, opts.image_size};
  int64_t in_c = 3;
  int64_t hw = opts.image_size;
  for (size_t stage = 0; stage < widths.size(); ++stage) {
    for (int r = 0; r < reps[stage]; ++r) {
      spec.blocks.push_back(ConvReLUSpec(in_c, widths[stage]));
      in_c = widths[stage];
    }
    spec.blocks.push_back(MaxPoolSpec());
    hw /= 2;
  }
  GMORPH_CHECK(hw >= 1, "image too small for 5 pooling stages");
  const int64_t feat = in_c * hw * hw;
  spec.blocks.push_back(FlattenSpec());
  spec.blocks.push_back(LinearReLUSpec(feat, in_c));
  spec.blocks.push_back(HeadSpec(in_c, opts.classes));
  return spec;
}

// Builds a ResNet-style spec from per-stage residual block counts.
ModelSpec MakeResNet(const std::string& name, const std::array<int, 4>& reps,
                     const VisionModelOptions& opts) {
  const int64_t w = opts.base_width;
  const std::array<int64_t, 4> widths = {w, 2 * w, 4 * w, 8 * w};
  ModelSpec spec;
  spec.name = name;
  spec.input_shape = Shape{3, opts.image_size, opts.image_size};
  spec.blocks.push_back(ConvBNReLUSpec(3, w));
  int64_t in_c = w;
  for (size_t stage = 0; stage < widths.size(); ++stage) {
    for (int r = 0; r < reps[stage]; ++r) {
      const int64_t stride = (r == 0 && stage > 0) ? 2 : 1;
      spec.blocks.push_back(ResidualSpec(in_c, widths[stage], stride));
      in_c = widths[stage];
    }
  }
  spec.blocks.push_back(GlobalAvgPoolSpec());
  spec.blocks.push_back(HeadSpec(in_c, opts.classes));
  return spec;
}

}  // namespace

ModelSpec MakeVgg11(const VisionModelOptions& opts) {
  return MakeVgg("VGG-11s", {1, 1, 2, 2, 2}, opts);
}

ModelSpec MakeVgg13(const VisionModelOptions& opts) {
  return MakeVgg("VGG-13s", {2, 2, 2, 2, 2}, opts);
}

ModelSpec MakeVgg16(const VisionModelOptions& opts) {
  return MakeVgg("VGG-16s", {2, 2, 3, 3, 3}, opts);
}

ModelSpec MakeResNet18(const VisionModelOptions& opts) {
  return MakeResNet("ResNet-18s", {2, 2, 2, 2}, opts);
}

ModelSpec MakeResNet34(const VisionModelOptions& opts) {
  return MakeResNet("ResNet-34s", {3, 4, 6, 3}, opts);
}

TransformerModelOptions ViTBaseOptions() {
  TransformerModelOptions o;
  o.dim = 32;
  o.heads = 4;
  o.layers = 4;
  return o;
}

TransformerModelOptions ViTLargeOptions() {
  TransformerModelOptions o;
  o.dim = 48;
  o.heads = 6;
  o.layers = 6;
  return o;
}

TransformerModelOptions BertBaseOptions() {
  TransformerModelOptions o;
  o.dim = 32;
  o.heads = 4;
  o.layers = 4;
  return o;
}

TransformerModelOptions BertLargeOptions() {
  TransformerModelOptions o;
  o.dim = 48;
  o.heads = 6;
  o.layers = 6;
  return o;
}

ModelSpec MakeViT(const std::string& name, const TransformerModelOptions& opts) {
  ModelSpec spec;
  spec.name = name;
  spec.input_shape = Shape{3, opts.image_size, opts.image_size};
  spec.blocks.push_back(PatchEmbedSpec(3, opts.image_size, opts.patch, opts.dim));
  for (int64_t i = 0; i < opts.layers; ++i) {
    spec.blocks.push_back(TransformerSpec(opts.dim, opts.heads, opts.mlp_ratio));
  }
  spec.blocks.push_back(MeanPoolTokensSpec());
  spec.blocks.push_back(HeadSpec(opts.dim, opts.classes));
  return spec;
}

ModelSpec MakeBert(const std::string& name, const TransformerModelOptions& opts) {
  ModelSpec spec;
  spec.name = name;
  spec.input_shape = Shape{opts.seq_len};
  spec.blocks.push_back(TokenEmbedSpec(opts.vocab, opts.seq_len, opts.dim));
  for (int64_t i = 0; i < opts.layers; ++i) {
    spec.blocks.push_back(TransformerSpec(opts.dim, opts.heads, opts.mlp_ratio));
  }
  spec.blocks.push_back(MeanPoolTokensSpec());
  spec.blocks.push_back(HeadSpec(opts.dim, opts.classes));
  return spec;
}

}  // namespace gmorph
