// Model zoo: scaled-down VGG-11/13/16, ResNet-18/34, ViT-Base/Large and
// BERT-Base/Large specs.
//
// The architectures keep the paper models' *block structure* — stage layout,
// relative depths and widths, block types — while shrinking widths and input
// resolution so they train on one CPU core (see DESIGN.md §1). Graph mutation
// only sees block types and shapes, so the search behaviour is preserved.
#ifndef GMORPH_SRC_MODELS_ZOO_H_
#define GMORPH_SRC_MODELS_ZOO_H_

#include <cstdint>

#include "src/models/model_spec.h"

namespace gmorph {

struct VisionModelOptions {
  int64_t base_width = 8;   // paper: 64
  int64_t image_size = 32;  // paper: 224
  int64_t classes = 4;
};

// VGG-<depth>s: stages of (ConvReLU x reps, MaxPool) with doubling widths,
// then Flatten -> LinearReLU -> Head (the paper's two-FC classifier, scaled).
ModelSpec MakeVgg11(const VisionModelOptions& opts);
ModelSpec MakeVgg13(const VisionModelOptions& opts);
ModelSpec MakeVgg16(const VisionModelOptions& opts);

// ResNet-<depth>s: ConvBNReLU stem, four residual stages, global average
// pooling, linear head.
ModelSpec MakeResNet18(const VisionModelOptions& opts);
ModelSpec MakeResNet34(const VisionModelOptions& opts);

struct TransformerModelOptions {
  int64_t dim = 32;
  int64_t heads = 4;
  int64_t layers = 4;
  int64_t mlp_ratio = 2;  // paper: 4; reduced for CPU budget
  int64_t classes = 4;
  // ViT only.
  int64_t image_size = 32;
  int64_t patch = 8;
  // BERT only.
  int64_t vocab = 32;
  int64_t seq_len = 16;
};

// "Base" and "Large" presets mirroring the paper's relative sizes.
TransformerModelOptions ViTBaseOptions();
TransformerModelOptions ViTLargeOptions();
TransformerModelOptions BertBaseOptions();
TransformerModelOptions BertLargeOptions();

ModelSpec MakeViT(const std::string& name, const TransformerModelOptions& opts);
ModelSpec MakeBert(const std::string& name, const TransformerModelOptions& opts);

}  // namespace gmorph

#endif  // GMORPH_SRC_MODELS_ZOO_H_
