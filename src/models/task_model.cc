#include "src/models/task_model.h"

#include "src/common/check.h"

namespace gmorph {

TaskModel::TaskModel(ModelSpec spec, Rng& rng) : spec_(std::move(spec)) {
  modules_.reserve(spec_.blocks.size());
  for (const BlockSpec& b : spec_.blocks) {
    modules_.push_back(MakeModule(b, rng));
  }
}

Tensor TaskModel::Forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& m : modules_) {
    h = m->Forward(h, training);
  }
  return h;
}

Tensor TaskModel::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> TaskModel::Parameters() {
  std::vector<Parameter*> out;
  for (auto& m : modules_) {
    for (Parameter* p : m->Parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

void TaskModel::ZeroGrad() {
  for (auto& m : modules_) {
    m->ZeroGrad();
  }
}

std::vector<std::vector<Tensor>> TaskModel::ExportWeights() const {
  std::vector<std::vector<Tensor>> out;
  out.reserve(modules_.size());
  for (const auto& m : modules_) {
    out.push_back(m->ExportParameters());
  }
  return out;
}

void TaskModel::ImportWeights(const std::vector<std::vector<Tensor>>& weights) {
  GMORPH_CHECK(weights.size() == modules_.size());
  for (size_t i = 0; i < modules_.size(); ++i) {
    modules_[i]->ImportParameters(weights[i]);
  }
}

}  // namespace gmorph
