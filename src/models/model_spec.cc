#include "src/models/model_spec.h"

#include <sstream>

#include "src/common/check.h"
#include "src/nn/activations.h"
#include "src/nn/blocks.h"
#include "src/nn/conv2d.h"
#include "src/nn/embedding.h"
#include "src/nn/linear.h"
#include "src/nn/pooling.h"
#include "src/nn/rescale.h"
#include "src/nn/sequential.h"
#include "src/nn/transformer_block.h"
#include "src/tensor/conv_ops.h"

namespace gmorph {

std::string BlockTypeName(BlockType type) {
  switch (type) {
    case BlockType::kConvReLU:
      return "ConvReLU";
    case BlockType::kConvBNReLU:
      return "ConvBNReLU";
    case BlockType::kResidual:
      return "Residual";
    case BlockType::kMaxPool:
      return "MaxPool";
    case BlockType::kGlobalAvgPool:
      return "GlobalAvgPool";
    case BlockType::kFlatten:
      return "Flatten";
    case BlockType::kLinearReLU:
      return "LinearReLU";
    case BlockType::kHead:
      return "Head";
    case BlockType::kPatchEmbed:
      return "PatchEmbed";
    case BlockType::kTokenEmbed:
      return "TokenEmbed";
    case BlockType::kTransformer:
      return "Transformer";
    case BlockType::kMeanPoolTokens:
      return "MeanPoolTokens";
    case BlockType::kRescale:
      return "Rescale";
  }
  return "Unknown";
}

std::string BlockSpec::ToString() const {
  std::ostringstream os;
  os << BlockTypeName(type);
  switch (type) {
    case BlockType::kConvReLU:
    case BlockType::kConvBNReLU:
    case BlockType::kResidual:
      os << "(" << in_channels << "->" << out_channels << ",s=" << stride << ")";
      break;
    case BlockType::kLinearReLU:
    case BlockType::kHead:
      os << "(" << in_features << "->" << out_features << ")";
      break;
    case BlockType::kTransformer:
      os << "(d=" << dim << ",h=" << heads << ")";
      break;
    case BlockType::kRescale:
      os << rescale_in.ToString() << "->" << rescale_out.ToString();
      break;
    default:
      break;
  }
  return os.str();
}

bool SpecEquals(const BlockSpec& a, const BlockSpec& b) {
  return a.type == b.type && a.in_channels == b.in_channels &&
         a.out_channels == b.out_channels && a.kernel == b.kernel && a.stride == b.stride &&
         a.padding == b.padding && a.pool_kernel == b.pool_kernel &&
         a.pool_stride == b.pool_stride && a.in_features == b.in_features &&
         a.out_features == b.out_features && a.dim == b.dim && a.heads == b.heads &&
         a.mlp_ratio == b.mlp_ratio && a.vocab == b.vocab && a.seq_len == b.seq_len &&
         a.image_size == b.image_size && a.patch == b.patch && a.rescale_in == b.rescale_in &&
         a.rescale_out == b.rescale_out;
}

BlockSpec ConvReLUSpec(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
                       int64_t padding) {
  BlockSpec s;
  s.type = BlockType::kConvReLU;
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.kernel = kernel;
  s.stride = stride;
  s.padding = padding;
  return s;
}

BlockSpec ConvBNReLUSpec(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
                         int64_t padding) {
  BlockSpec s = ConvReLUSpec(in_c, out_c, kernel, stride, padding);
  s.type = BlockType::kConvBNReLU;
  return s;
}

BlockSpec ResidualSpec(int64_t in_c, int64_t out_c, int64_t stride) {
  BlockSpec s;
  s.type = BlockType::kResidual;
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.stride = stride;
  return s;
}

BlockSpec MaxPoolSpec(int64_t kernel, int64_t stride) {
  BlockSpec s;
  s.type = BlockType::kMaxPool;
  s.pool_kernel = kernel;
  s.pool_stride = stride;
  return s;
}

BlockSpec GlobalAvgPoolSpec() {
  BlockSpec s;
  s.type = BlockType::kGlobalAvgPool;
  return s;
}

BlockSpec FlattenSpec() {
  BlockSpec s;
  s.type = BlockType::kFlatten;
  return s;
}

BlockSpec LinearReLUSpec(int64_t in_f, int64_t out_f) {
  BlockSpec s;
  s.type = BlockType::kLinearReLU;
  s.in_features = in_f;
  s.out_features = out_f;
  return s;
}

BlockSpec HeadSpec(int64_t in_f, int64_t classes) {
  BlockSpec s;
  s.type = BlockType::kHead;
  s.in_features = in_f;
  s.out_features = classes;
  return s;
}

BlockSpec PatchEmbedSpec(int64_t in_c, int64_t image_size, int64_t patch, int64_t dim) {
  BlockSpec s;
  s.type = BlockType::kPatchEmbed;
  s.in_channels = in_c;
  s.image_size = image_size;
  s.patch = patch;
  s.dim = dim;
  return s;
}

BlockSpec TokenEmbedSpec(int64_t vocab, int64_t seq_len, int64_t dim) {
  BlockSpec s;
  s.type = BlockType::kTokenEmbed;
  s.vocab = vocab;
  s.seq_len = seq_len;
  s.dim = dim;
  return s;
}

BlockSpec TransformerSpec(int64_t dim, int64_t heads, int64_t mlp_ratio) {
  BlockSpec s;
  s.type = BlockType::kTransformer;
  s.dim = dim;
  s.heads = heads;
  s.mlp_ratio = mlp_ratio;
  return s;
}

BlockSpec MeanPoolTokensSpec() {
  BlockSpec s;
  s.type = BlockType::kMeanPoolTokens;
  return s;
}

BlockSpec RescaleSpec(const Shape& in, const Shape& out) {
  BlockSpec s;
  s.type = BlockType::kRescale;
  s.rescale_in = in;
  s.rescale_out = out;
  return s;
}

std::unique_ptr<Module> MakeModule(const BlockSpec& spec, Rng& rng) {
  switch (spec.type) {
    case BlockType::kConvReLU:
      return std::make_unique<ConvBlock>(spec.in_channels, spec.out_channels, spec.kernel,
                                         spec.stride, spec.padding, /*batch_norm=*/false, rng);
    case BlockType::kConvBNReLU:
      return std::make_unique<ConvBlock>(spec.in_channels, spec.out_channels, spec.kernel,
                                         spec.stride, spec.padding, /*batch_norm=*/true, rng);
    case BlockType::kResidual:
      return std::make_unique<ResidualBlock>(spec.in_channels, spec.out_channels, spec.stride,
                                             rng);
    case BlockType::kMaxPool:
      return std::make_unique<MaxPool2d>(spec.pool_kernel, spec.pool_stride);
    case BlockType::kGlobalAvgPool:
      return std::make_unique<GlobalAvgPool2d>();
    case BlockType::kFlatten:
      return std::make_unique<Flatten>();
    case BlockType::kLinearReLU: {
      auto seq = std::make_unique<Sequential>();
      seq->Append(std::make_unique<Linear>(spec.in_features, spec.out_features, rng));
      seq->Append(std::make_unique<ReLU>());
      return seq;
    }
    case BlockType::kHead:
      return std::make_unique<Linear>(spec.in_features, spec.out_features, rng);
    case BlockType::kPatchEmbed:
      return std::make_unique<PatchEmbed>(spec.in_channels, spec.image_size, spec.patch,
                                          spec.dim, rng);
    case BlockType::kTokenEmbed:
      return std::make_unique<TokenEmbedding>(spec.vocab, spec.seq_len, spec.dim, rng);
    case BlockType::kTransformer:
      return std::make_unique<TransformerBlock>(spec.dim, spec.heads, spec.mlp_ratio, rng);
    case BlockType::kMeanPoolTokens:
      return std::make_unique<MeanPoolTokens>();
    case BlockType::kRescale:
      return std::make_unique<Rescale>(spec.rescale_in, spec.rescale_out, rng);
  }
  GMORPH_CHECK(false, "unknown block type");
  return nullptr;
}

Shape BlockOutShape(const BlockSpec& spec, const Shape& in) {
  switch (spec.type) {
    case BlockType::kConvReLU:
    case BlockType::kConvBNReLU: {
      GMORPH_CHECK(in.Rank() == 3 && in[0] == spec.in_channels,
                       "conv block " << spec.ToString() << " got " << in.ToString());
      const int64_t oh = ConvOutDim(in[1], spec.kernel, spec.stride, spec.padding);
      const int64_t ow = ConvOutDim(in[2], spec.kernel, spec.stride, spec.padding);
      return Shape{spec.out_channels, oh, ow};
    }
    case BlockType::kResidual: {
      GMORPH_CHECK(in.Rank() == 3 && in[0] == spec.in_channels,
                       "residual block " << spec.ToString() << " got " << in.ToString());
      const int64_t oh = ConvOutDim(in[1], 3, spec.stride, 1);
      const int64_t ow = ConvOutDim(in[2], 3, spec.stride, 1);
      return Shape{spec.out_channels, oh, ow};
    }
    case BlockType::kMaxPool: {
      GMORPH_CHECK(in.Rank() == 3);
      return Shape{in[0], ConvOutDim(in[1], spec.pool_kernel, spec.pool_stride, 0),
                   ConvOutDim(in[2], spec.pool_kernel, spec.pool_stride, 0)};
    }
    case BlockType::kGlobalAvgPool:
      GMORPH_CHECK(in.Rank() == 3);
      return Shape{in[0]};
    case BlockType::kFlatten:
      return Shape{in.NumElements()};
    case BlockType::kLinearReLU:
    case BlockType::kHead:
      GMORPH_CHECK(in[-1] == spec.in_features,
                       spec.ToString() << " got " << in.ToString());
      return Shape{spec.out_features};
    case BlockType::kPatchEmbed: {
      const int64_t grid = spec.image_size / spec.patch;
      return Shape{grid * grid, spec.dim};
    }
    case BlockType::kTokenEmbed:
      return Shape{spec.seq_len, spec.dim};
    case BlockType::kTransformer:
      GMORPH_CHECK(in.Rank() == 2 && in[1] == spec.dim,
                       "transformer " << spec.ToString() << " got " << in.ToString());
      return in;
    case BlockType::kMeanPoolTokens:
      GMORPH_CHECK(in.Rank() == 2);
      return Shape{in[1]};
    case BlockType::kRescale:
      GMORPH_CHECK(in == spec.rescale_in,
                       "rescale expected " << spec.rescale_in.ToString() << " got "
                                           << in.ToString());
      return spec.rescale_out;
  }
  GMORPH_CHECK(false, "unknown block type");
  return {};
}

int64_t BlockCapacity(const BlockSpec& spec) {
  switch (spec.type) {
    case BlockType::kConvReLU:
      return spec.out_channels * spec.in_channels * spec.kernel * spec.kernel +
             spec.out_channels;
    case BlockType::kConvBNReLU:
      // conv (no bias) + BN gamma/beta
      return spec.out_channels * spec.in_channels * spec.kernel * spec.kernel +
             2 * spec.out_channels;
    case BlockType::kResidual: {
      const bool proj = spec.stride != 1 || spec.in_channels != spec.out_channels;
      int64_t n = spec.out_channels * spec.in_channels * 9 + 2 * spec.out_channels;  // conv1+bn1
      n += spec.out_channels * spec.out_channels * 9 + 2 * spec.out_channels;        // conv2+bn2
      if (proj) {
        n += spec.out_channels * spec.in_channels + 2 * spec.out_channels;
      }
      return n;
    }
    case BlockType::kMaxPool:
    case BlockType::kGlobalAvgPool:
    case BlockType::kFlatten:
    case BlockType::kMeanPoolTokens:
      return 0;
    case BlockType::kLinearReLU:
    case BlockType::kHead:
      return spec.in_features * spec.out_features + spec.out_features;
    case BlockType::kPatchEmbed: {
      const int64_t grid = spec.image_size / spec.patch;
      return spec.dim * spec.in_channels * spec.patch * spec.patch + spec.dim +
             grid * grid * spec.dim;
    }
    case BlockType::kTokenEmbed:
      return spec.vocab * spec.dim + spec.seq_len * spec.dim;
    case BlockType::kTransformer: {
      const int64_t d = spec.dim;
      const int64_t m = spec.mlp_ratio;
      int64_t n = 2 * 2 * d;                    // two LayerNorms
      n += d * 3 * d + 3 * d + d * d + d;       // qkv + proj
      n += d * m * d + m * d + m * d * d + d;   // mlp fc1 + fc2
      return n;
    }
    case BlockType::kRescale: {
      if (spec.rescale_in.Rank() == 3 && spec.rescale_in[0] != spec.rescale_out[0]) {
        return spec.rescale_out[0] * spec.rescale_in[0] + spec.rescale_out[0];
      }
      if (spec.rescale_in.Rank() == 2 && spec.rescale_in[1] != spec.rescale_out[1]) {
        return spec.rescale_in[1] * spec.rescale_out[1] + spec.rescale_out[1];
      }
      return 0;
    }
  }
  GMORPH_CHECK(false, "unknown block type");
  return 0;
}

int64_t BlockFlops(const BlockSpec& spec, const Shape& in) {
  const Shape out = BlockOutShape(spec, in);
  switch (spec.type) {
    case BlockType::kConvReLU:
    case BlockType::kConvBNReLU: {
      const int64_t spatial = out[1] * out[2];
      int64_t f = 2 * spec.in_channels * spec.kernel * spec.kernel * spec.out_channels * spatial;
      f += 4 * out.NumElements();  // bias/BN + ReLU
      return f;
    }
    case BlockType::kResidual: {
      const int64_t spatial = out[1] * out[2];
      const bool proj = spec.stride != 1 || spec.in_channels != spec.out_channels;
      int64_t f = 2 * spec.in_channels * 9 * spec.out_channels * spatial;
      f += 2 * spec.out_channels * 9 * spec.out_channels * spatial;
      if (proj) {
        f += 2 * spec.in_channels * spec.out_channels * spatial;
      }
      f += 10 * out.NumElements();  // BNs, adds, ReLUs
      return f;
    }
    case BlockType::kMaxPool:
      return in.NumElements();
    case BlockType::kGlobalAvgPool:
    case BlockType::kFlatten:
    case BlockType::kMeanPoolTokens:
      return in.NumElements();
    case BlockType::kLinearReLU:
    case BlockType::kHead:
      return 2 * spec.in_features * spec.out_features;
    case BlockType::kPatchEmbed: {
      const int64_t grid = spec.image_size / spec.patch;
      return 2 * spec.in_channels * spec.patch * spec.patch * spec.dim * grid * grid;
    }
    case BlockType::kTokenEmbed:
      return 2 * spec.seq_len * spec.dim;
    case BlockType::kTransformer: {
      const int64_t t = in[0];
      const int64_t d = spec.dim;
      const int64_t m = spec.mlp_ratio;
      int64_t f = 2 * t * d * 3 * d;  // qkv
      f += 2 * t * t * d * 2;         // scores + context
      f += 2 * t * d * d;             // proj
      f += 2 * t * d * m * d * 2;     // mlp
      f += 12 * t * d;                // norms, residual adds, gelu
      return f;
    }
    case BlockType::kRescale: {
      int64_t f = 8 * out.NumElements();  // interpolation
      if (spec.rescale_in.Rank() == 3 && spec.rescale_in[0] != spec.rescale_out[0]) {
        f += 2 * spec.rescale_in[0] * spec.rescale_out[0] * spec.rescale_out[1] *
             spec.rescale_out[2];
      } else if (spec.rescale_in.Rank() == 2 && spec.rescale_in[1] != spec.rescale_out[1]) {
        f += 2 * spec.rescale_out[0] * spec.rescale_in[1] * spec.rescale_out[1];
      }
      return f;
    }
  }
  GMORPH_CHECK(false, "unknown block type");
  return 0;
}

Shape ModelSpec::OutputShape() const {
  Shape s = input_shape;
  for (const BlockSpec& b : blocks) {
    s = BlockOutShape(b, s);
  }
  return s;
}

int64_t ModelSpec::TotalCapacity() const {
  int64_t n = 0;
  for (const BlockSpec& b : blocks) {
    n += BlockCapacity(b);
  }
  return n;
}

int64_t ModelSpec::TotalFlops() const {
  Shape s = input_shape;
  int64_t f = 0;
  for (const BlockSpec& b : blocks) {
    f += BlockFlops(b, s);
    s = BlockOutShape(b, s);
  }
  return f;
}

}  // namespace gmorph
