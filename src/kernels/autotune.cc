#include "src/kernels/autotune.h"

#include <algorithm>
#include <memory>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/common/rng.h"
#include "src/kernels/registry.h"
#include "src/obs/metrics.h"
#include "src/obs/timing.h"
#include "src/obs/trace.h"

namespace gmorph::kernels {
namespace {

// Deterministic operand fill: the same descriptor always benchmarks on the
// same bits, so repeated tunes rank solvers on identical inputs.
void FillUniform(float* p, int64_t n, uint64_t seed) {
  Rng rng(Rng::MixSeed(0x747561656e646200ull, seed));
  for (int64_t i = 0; i < n; ++i) {
    p[i] = rng.NextFloat() - 0.5f;
  }
}

void FillUniformU8(uint8_t* p, int64_t n, uint64_t seed) {
  Rng rng(Rng::MixSeed(0x747561656e646200ull, seed));
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<uint8_t>(rng.NextFloat() * 256.0f);
  }
}

void FillUniformS8(int8_t* p, int64_t n, uint64_t seed) {
  Rng rng(Rng::MixSeed(0x747561656e646200ull, seed));
  for (int64_t i = 0; i < n; ++i) {
    p[i] = static_cast<int8_t>(static_cast<int>(rng.NextFloat() * 255.0f) - 127);
  }
}

uint64_t DescSeed(const ProblemDesc& desc) {
  return Rng::MixSeed(static_cast<uint64_t>(desc.op),
                      static_cast<uint64_t>(desc.m * 1315423911 + desc.k),
                      static_cast<uint64_t>(desc.n * 2654435761 + desc.aux0 * 97 + desc.aux1));
}

template <typename Fn>
double MeasureRunMs(const ProblemDesc& desc, Fn&& run, const AutotuneOptions& options) {
  if (desc.threads == 1 && KernelThreads() > 1) {
    // Nested-context descriptor: time it the way it runs in production,
    // inside an enclosing parallel region (ParallelFor then stays serial).
    ParallelRegionGuard guard;
    return MedianTimedMs(run, options.warmup, options.repeats);
  }
  return MedianTimedMs(run, options.warmup, options.repeats);
}

double MeasureSolverMs(const ProblemDesc& desc, const Solver* solver, const float* a,
                       const float* b, float* c, const AutotuneOptions& options) {
  return MeasureRunMs(
      desc,
      [&] {
        if (desc.op == OpFamily::kMaxPool) {
          PoolCall call{a, c};
          static_cast<const PoolSolver*>(solver)->Run(desc, call);
        } else {
          const GemmCall call = MakeGemmCall(desc, a, b, c, /*accumulate=*/false);
          static_cast<const GemmSolver*>(solver)->Run(desc, call);
        }
      },
      options);
}

double MeasureQSolverMs(const ProblemDesc& desc, const Solver* solver, const uint8_t* a,
                        const int8_t* b, int32_t* c, const AutotuneOptions& options) {
  const QGemmCall call{a, b, c};
  return MeasureRunMs(
      desc, [&] { static_cast<const QGemmSolver*>(solver)->Run(desc, call); }, options);
}

}  // namespace

TuneResult TuneProblem(const ProblemDesc& desc, TuneDb& db, const AutotuneOptions& options) {
  static obs::Counter& benchmarks = obs::GetCounter("kernels.autotune_benchmarks");
  static obs::Counter& shapes = obs::GetCounter("kernels.autotune_shapes");
  static obs::Counter& cached = obs::GetCounter("kernels.autotune_cached");
  static obs::Histogram& tune_ms = obs::GetHistogram("kernels.autotune_ms");

  TuneResult result;
  result.desc = desc;
  if (!options.force) {
    if (const TuneDb::Entry* e = db.Lookup(desc);
        e != nullptr && e->resolved != nullptr && e->resolved->IsApplicable(desc)) {
      cached.Increment();
      result.reused = true;
      result.winner = e->solver;
      result.winner_gflops = e->gflops;
      return result;
    }
  }

  obs::TraceSpan span("kernel/autotune", obs::TraceCat::kKernel);
  Timer total;

  // Synthetic operands sized for the descriptor, in the descriptor's dtype.
  // For pools, `a` is the input planes and `c` the pooled output; `b` is
  // unused. Int8 descs benchmark on u8 activations and s8 weights.
  std::unique_ptr<float[]> a, b, c;
  std::unique_ptr<uint8_t[]> qa;
  std::unique_ptr<int8_t[]> qb;
  std::unique_ptr<int32_t[]> qc;
  const uint64_t seed = DescSeed(desc);
  if (desc.dtype == DType::kInt8) {
    qa.reset(new uint8_t[static_cast<size_t>(desc.m * desc.k)]);
    qb.reset(new int8_t[static_cast<size_t>(desc.k * desc.n)]);
    qc.reset(new int32_t[static_cast<size_t>(desc.m * desc.n)]);
    FillUniformU8(qa.get(), desc.m * desc.k, seed);
    FillUniformS8(qb.get(), desc.k * desc.n, seed + 1);
  } else {
    int64_t a_floats = 0, b_floats = 0, c_floats = 0;
    if (desc.op == OpFamily::kMaxPool) {
      const int64_t oh = PooledDim(desc.k, desc.aux0, desc.aux1);
      const int64_t ow = PooledDim(desc.n, desc.aux0, desc.aux1);
      GMORPH_CHECK(oh >= 1 && ow >= 1, "untunable pool descriptor " << ProblemKey(desc));
      a_floats = desc.m * desc.k * desc.n;
      c_floats = desc.m * oh * ow;
    } else {
      a_floats = desc.m * desc.k;
      b_floats = desc.k * desc.n;
      c_floats = desc.m * desc.n;
    }
    a.reset(new float[static_cast<size_t>(a_floats)]);
    b.reset(b_floats > 0 ? new float[static_cast<size_t>(b_floats)] : nullptr);
    c.reset(new float[static_cast<size_t>(c_floats)]);
    FillUniform(a.get(), a_floats, seed);
    if (b_floats > 0) {
      FillUniform(b.get(), b_floats, seed + 1);
    }
  }

  const double flops = static_cast<double>(ProblemFlops(desc));
  const std::vector<const Solver*> candidates = SolverRegistry::Global().Applicable(desc);
  GMORPH_CHECK(!candidates.empty(), "no applicable solver for " << ProblemKey(desc));
  const SolverSample* best = nullptr;
  result.samples.reserve(candidates.size());
  for (const Solver* solver : candidates) {
    SolverSample sample;
    sample.solver = solver->name();
    sample.ms = desc.dtype == DType::kInt8
                    ? MeasureQSolverMs(desc, solver, qa.get(), qb.get(), qc.get(), options)
                    : MeasureSolverMs(desc, solver, a.get(), b.get(), c.get(), options);
    sample.gflops = sample.ms > 0.0 ? flops / (sample.ms * 1e6) : 0.0;
    benchmarks.Increment();
    result.samples.push_back(std::move(sample));
    if (best == nullptr || result.samples.back().gflops > best->gflops) {
      best = &result.samples.back();
    }
  }

  result.winner = best->solver;
  result.winner_gflops = best->gflops;
  TuneDb::Entry entry;
  entry.solver = best->solver;
  entry.gflops = best->gflops;
  entry.ms = best->ms;
  db.Record(desc, std::move(entry));
  shapes.Increment();
  tune_ms.Observe(total.Millis());
  return result;
}

std::vector<TuneResult> TuneProblems(const std::vector<ProblemDesc>& descs, TuneDb& db,
                                     const AutotuneOptions& options) {
  std::vector<TuneResult> results;
  results.reserve(descs.size());
  for (const ProblemDesc& desc : descs) {
    results.push_back(TuneProblem(desc, db, options));
  }
  return results;
}

}  // namespace gmorph::kernels
