// The kernel autotuner: benchmarks every applicable solver on a problem
// descriptor (median-of-k timing over deterministic synthetic operands) and
// records the winner in a TuneDb. Warm reruns are free — a descriptor that
// already has a usable entry is skipped unless `force` is set, and the
// "kernels.autotune_benchmarks" counter stays at zero (the autotune smoke
// test asserts exactly that).
//
// Metrics: kernels.autotune_benchmarks (one per solver timed),
// kernels.autotune_shapes (one per descriptor tuned),
// kernels.autotune_cached (one per descriptor skipped as already tuned), and
// the kernels.autotune_ms histogram (wall time per tuned descriptor). Each
// tuned descriptor runs under a "kernel/autotune" trace span.
#ifndef GMORPH_SRC_KERNELS_AUTOTUNE_H_
#define GMORPH_SRC_KERNELS_AUTOTUNE_H_

#include <string>
#include <vector>

#include "src/kernels/solver.h"
#include "src/kernels/tune_db.h"

namespace gmorph::kernels {

struct AutotuneOptions {
  int warmup = 1;    // untimed runs per solver before timing
  int repeats = 5;   // timed runs per solver; the median is kept
  bool force = false;  // re-benchmark descriptors that already have entries
};

struct SolverSample {
  std::string solver;
  double ms = 0.0;
  double gflops = 0.0;
};

struct TuneResult {
  ProblemDesc desc;
  // One sample per applicable solver, in registry order; empty when reused.
  std::vector<SolverSample> samples;
  std::string winner;
  double winner_gflops = 0.0;
  bool reused = false;  // entry already present; nothing was benchmarked
};

// Benchmarks `desc` and records the winner in `db`. Descriptors with
// threads == 1 are timed inside a forced-serial region so the measurement
// matches how nested kernels actually run.
TuneResult TuneProblem(const ProblemDesc& desc, TuneDb& db, const AutotuneOptions& options = {});

// Tunes each descriptor in turn (duplicates collapse via the DB skip).
std::vector<TuneResult> TuneProblems(const std::vector<ProblemDesc>& descs, TuneDb& db,
                                     const AutotuneOptions& options = {});

}  // namespace gmorph::kernels

#endif  // GMORPH_SRC_KERNELS_AUTOTUNE_H_
