// The built-in max-pool solvers: the generic windowed loop and an unrolled
// specialization for the ubiquitous 2x2/stride-2 case (every VGG stage).
// Both run valid pooling (no padding) over contiguous planes and produce
// bitwise-identical maxima, so the autotuner is free to pick either.
#include <algorithm>
#include <limits>

#include "src/common/parallel_for.h"
#include "src/kernels/builtin_solvers.h"
#include "src/kernels/solver.h"

namespace gmorph::kernels {
namespace {

// Plane loops split work so each chunk covers at least this many output
// elements; smaller plans run serially (matches the conv kernels' grain).
int64_t PlaneGrain(int64_t per_plane) {
  return std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, per_plane));
}

class PoolGeneric final : public PoolSolver {
 public:
  const char* name() const override { return "pool.generic"; }
  bool IsApplicable(const ProblemDesc& desc) const override {
    return desc.op == OpFamily::kMaxPool;
  }
  void Run(const ProblemDesc& desc, const PoolCall& call) const override {
    const int64_t h = desc.k;
    const int64_t w = desc.n;
    const int64_t kernel = desc.aux0;
    const int64_t stride = desc.aux1;
    const int64_t oh = PooledDim(h, kernel, stride);
    const int64_t ow = PooledDim(w, kernel, stride);
    const float* px = call.x;
    float* po = call.out;
    ParallelFor(0, desc.m, PlaneGrain(oh * ow), [&](int64_t lo, int64_t hi) {
      for (int64_t p = lo; p < hi; ++p) {
        const float* plane = px + p * h * w;
        int64_t oi = p * oh * ow;
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
            float best = -std::numeric_limits<float>::infinity();
            for (int64_t ky = 0; ky < kernel; ++ky) {
              const float* row = plane + (oy * stride + ky) * w + ox * stride;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                best = std::max(best, row[kx]);
              }
            }
            po[oi] = best;
          }
        }
      }
    });
  }
};

class Pool2x2 final : public PoolSolver {
 public:
  const char* name() const override { return "pool.2x2s2"; }
  bool IsApplicable(const ProblemDesc& desc) const override {
    return desc.op == OpFamily::kMaxPool && desc.aux0 == 2 && desc.aux1 == 2 && desc.k >= 2 &&
           desc.n >= 2;
  }
  void Run(const ProblemDesc& desc, const PoolCall& call) const override {
    const int64_t h = desc.k;
    const int64_t w = desc.n;
    const int64_t oh = PooledDim(h, 2, 2);
    const int64_t ow = PooledDim(w, 2, 2);
    const float* px = call.x;
    float* po = call.out;
    ParallelFor(0, desc.m, PlaneGrain(oh * ow), [&](int64_t lo, int64_t hi) {
      for (int64_t p = lo; p < hi; ++p) {
        const float* plane = px + p * h * w;
        float* out_plane = po + p * oh * ow;
        for (int64_t oy = 0; oy < oh; ++oy) {
          const float* r0 = plane + oy * 2 * w;
          const float* r1 = r0 + w;
          float* dst = out_plane + oy * ow;
          // Same comparison order as the generic loop, so maxima are
          // bitwise identical; the fixed 4-way unroll drops the window
          // loops and their bounds arithmetic.
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * 2;
            float best = r0[ix];
            best = std::max(best, r0[ix + 1]);
            best = std::max(best, r1[ix]);
            best = std::max(best, r1[ix + 1]);
            dst[ox] = best;
          }
        }
      }
    });
  }
};

}  // namespace

const PoolSolver* PoolGenericSolver() {
  static const PoolGeneric solver;
  return &solver;
}

const PoolSolver* Pool2x2Solver() {
  static const Pool2x2 solver;
  return &solver;
}

}  // namespace gmorph::kernels
