// Accessors for the built-in solver singletons. Internal to src/kernels —
// everything above the registry resolves solvers by name or descriptor.
#ifndef GMORPH_SRC_KERNELS_BUILTIN_SOLVERS_H_
#define GMORPH_SRC_KERNELS_BUILTIN_SOLVERS_H_

#include "src/kernels/solver.h"

namespace gmorph::kernels {

const GemmSolver* GemmRefSolver();     // "gemm.ref"
const GemmSolver* GemmDirectSolver();  // "gemm.direct"
const GemmSolver* GemmPackedSolver();  // "gemm.packed"
const GemmSolver* GemmDotSolver();     // "gemm.dot"

const PoolSolver* PoolGenericSolver();  // "pool.generic"
const PoolSolver* Pool2x2Solver();      // "pool.2x2s2"

const QGemmSolver* QGemmRefSolver();     // "qgemm.ref"
const QGemmSolver* QGemmPackedSolver();  // "qgemm.packed"
const QGemmSolver* QGemmVnniSolver();    // "qgemm.vnni" (AVX512-VNNI builds)

}  // namespace gmorph::kernels

#endif  // GMORPH_SRC_KERNELS_BUILTIN_SOLVERS_H_
