// The solver registry: enumerates the solvers that can run a ProblemDesc,
// resolves names from plans and tuning-DB entries, and picks the solver a
// kernel call actually uses — the tuned winner when the global tuning DB has
// an applicable entry, otherwise the shape heuristic that reproduces the
// pre-registry dispatch exactly (so an untuned process is bit-identical to
// the old hard-coded paths).
#ifndef GMORPH_SRC_KERNELS_REGISTRY_H_
#define GMORPH_SRC_KERNELS_REGISTRY_H_

#include <string_view>
#include <vector>

#include "src/kernels/solver.h"

namespace gmorph::kernels {

class SolverRegistry {
 public:
  // The process-wide registry, pre-populated with the built-in solvers.
  static const SolverRegistry& Global();

  const std::vector<const GemmSolver*>& gemm_solvers() const { return gemm_; }
  const std::vector<const PoolSolver*>& pool_solvers() const { return pool_; }
  const std::vector<const QGemmSolver*>& qgemm_solvers() const { return qgemm_; }

  // Name lookup across the family's solver list; nullptr when unknown.
  const GemmSolver* FindGemm(std::string_view name) const;
  const PoolSolver* FindPool(std::string_view name) const;
  const QGemmSolver* FindQGemm(std::string_view name) const;

  // Dispatches on (desc.op, desc.dtype): the registered Solver* with that
  // name that could serve desc's family, or nullptr. The tuning DB and the
  // offline linters resolve names through this so an int8 entry can never
  // alias an f32 solver.
  const Solver* FindForDesc(const ProblemDesc& desc, std::string_view name) const;

  // Every registered solver (of desc's family) with IsApplicable(desc).
  std::vector<const Solver*> Applicable(const ProblemDesc& desc) const;

  // The solver a kernel call uses: the tuning-DB winner when one is loaded,
  // applicable, and resolvable, else the heuristic default. Never null; does
  // no allocation, so it is safe on the steady-state hot path.
  const GemmSolver* ResolveGemm(const ProblemDesc& desc) const;
  const PoolSolver* ResolvePool(const ProblemDesc& desc) const;
  const QGemmSolver* ResolveQGemm(const ProblemDesc& desc) const;

  // The untuned default: reproduces the historical hard-coded dispatch
  // (tiny/narrow -> reference, wide cache-resident -> direct, wide -> packed,
  // narrow-N -> dot; generic pooling).
  const GemmSolver* HeuristicGemm(const ProblemDesc& desc) const;
  const PoolSolver* HeuristicPool(const ProblemDesc& desc) const;
  const QGemmSolver* HeuristicQGemm(const ProblemDesc& desc) const;

 private:
  SolverRegistry();

  std::vector<const GemmSolver*> gemm_;
  std::vector<const PoolSolver*> pool_;
  std::vector<const QGemmSolver*> qgemm_;
};

}  // namespace gmorph::kernels

#endif  // GMORPH_SRC_KERNELS_REGISTRY_H_
