#include "src/kernels/solver.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/common/parallel_for.h"

namespace gmorph::kernels {

const char* OpFamilyName(OpFamily op) {
  switch (op) {
    case OpFamily::kGemmNN:
      return "gemm_nn";
    case OpFamily::kGemmNT:
      return "gemm_nt";
    case OpFamily::kGemmTN:
      return "gemm_tn";
    case OpFamily::kMaxPool:
      return "maxpool";
  }
  return "unknown";
}

bool OpFamilyFromName(std::string_view name, OpFamily* out) {
  if (name == "gemm_nn") {
    *out = OpFamily::kGemmNN;
  } else if (name == "gemm_nt") {
    *out = OpFamily::kGemmNT;
  } else if (name == "gemm_tn") {
    *out = OpFamily::kGemmTN;
  } else if (name == "maxpool") {
    *out = OpFamily::kMaxPool;
  } else {
    return false;
  }
  return true;
}

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kInt8:
      return "int8";
  }
  return "unknown";
}

bool DTypeFromName(std::string_view name, DType* out) {
  if (name == "f32") {
    *out = DType::kF32;
  } else if (name == "int8") {
    *out = DType::kInt8;
  } else {
    return false;
  }
  return true;
}

std::string ProblemKey(const ProblemDesc& desc) {
  char buf[176];
  // f32 keys keep their historical spelling; the dtype token only appears for
  // quantized problems, so pre-dtype diagnostics and goldens are unchanged.
  if (desc.dtype == DType::kF32) {
    std::snprintf(buf, sizeof(buf), "%s m=%lld k=%lld n=%lld aux0=%lld aux1=%lld threads=%d",
                  OpFamilyName(desc.op), static_cast<long long>(desc.m),
                  static_cast<long long>(desc.k), static_cast<long long>(desc.n),
                  static_cast<long long>(desc.aux0), static_cast<long long>(desc.aux1),
                  desc.threads);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%s dtype=%s m=%lld k=%lld n=%lld aux0=%lld aux1=%lld threads=%d",
                  OpFamilyName(desc.op), DTypeName(desc.dtype), static_cast<long long>(desc.m),
                  static_cast<long long>(desc.k), static_cast<long long>(desc.n),
                  static_cast<long long>(desc.aux0), static_cast<long long>(desc.aux1),
                  desc.threads);
  }
  return buf;
}

namespace {

int ContextThreads() { return InParallelRegion() ? 1 : KernelThreads(); }

}  // namespace

ProblemDesc GemmProblem(OpFamily op, int64_t m, int64_t k, int64_t n) {
  ProblemDesc desc;
  desc.op = op;
  desc.m = m;
  desc.k = k;
  desc.n = n;
  desc.threads = ContextThreads();
  return desc;
}

ProblemDesc QGemmProblem(int64_t m, int64_t k, int64_t n) {
  ProblemDesc desc = GemmProblem(OpFamily::kGemmNN, m, k, n);
  desc.dtype = DType::kInt8;
  return desc;
}

ProblemDesc PoolProblem(int64_t planes, int64_t h, int64_t w, int64_t kernel, int64_t stride) {
  ProblemDesc desc;
  desc.op = OpFamily::kMaxPool;
  desc.m = planes;
  desc.k = h;
  desc.n = w;
  desc.aux0 = kernel;
  desc.aux1 = stride;
  desc.threads = ContextThreads();
  return desc;
}

int64_t PooledDim(int64_t in, int64_t kernel, int64_t stride) {
  return (in - kernel) / stride + 1;
}

int64_t ProblemFlops(const ProblemDesc& desc) {
  if (desc.op == OpFamily::kMaxPool) {
    const int64_t oh = PooledDim(desc.k, desc.aux0, desc.aux1);
    const int64_t ow = PooledDim(desc.n, desc.aux0, desc.aux1);
    return desc.m * oh * ow * desc.aux0 * desc.aux0;
  }
  return 2 * desc.m * desc.k * desc.n;
}

GemmCall MakeGemmCall(const ProblemDesc& desc, const float* a, const float* b, float* c,
                      bool accumulate) {
  GemmCall call;
  call.c = c;
  call.accumulate = accumulate;
  switch (desc.op) {
    case OpFamily::kGemmNN:
      call.a = MatView{a, desc.k, 1};
      call.b = MatView{b, desc.n, 1};
      break;
    case OpFamily::kGemmNT:
      call.a = MatView{a, desc.k, 1};
      call.b = MatView{b, 1, desc.k};
      break;
    case OpFamily::kGemmTN:
      call.a = MatView{a, 1, desc.m};
      call.b = MatView{b, desc.n, 1};
      break;
    case OpFamily::kMaxPool:
      GMORPH_CHECK(false, "MakeGemmCall on a pool descriptor");
  }
  return call;
}

}  // namespace gmorph::kernels
