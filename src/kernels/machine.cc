#include "src/kernels/machine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/parallel_for.h"
#include "src/kernels/registry.h"
#include "src/kernels/tune_db.h"
#include "src/obs/timing.h"

namespace gmorph::kernels {
namespace {

// Probe sizes: the GEMM is large enough to reach the blocked/packed solvers'
// steady state but still runs in ~10ms per rep; the triad arrays total ~96MB
// so every pass streams from DRAM, not the LLC.
constexpr int64_t kGemmDim = 512;
constexpr int64_t kTriadElems = int64_t{1} << 23;  // 8M floats per array

double ProbePeakGemmGflops() {
  const int64_t n = kGemmDim;
  std::vector<float> a(static_cast<size_t>(n * n), 1.0f);
  std::vector<float> b(static_cast<size_t>(n * n), 0.5f);
  std::vector<float> c(static_cast<size_t>(n * n), 0.0f);
  const ProblemDesc desc = GemmProblem(OpFamily::kGemmNN, n, n, n);
  const GemmSolver* solver = SolverRegistry::Global().ResolveGemm(desc);
  const GemmCall call = MakeGemmCall(desc, a.data(), b.data(), c.data(), /*accumulate=*/false);
  const double ms = MedianTimedMs([&] { solver->Run(desc, call); }, /*warmup=*/2,
                                  /*repeats=*/5);
  return ms > 0.0 ? static_cast<double>(2 * n * n * n) / (ms * 1e6) : 0.0;
}

double ProbeTriadGbps() {
  std::vector<float> a(static_cast<size_t>(kTriadElems), 0.0f);
  std::vector<float> b(static_cast<size_t>(kTriadElems), 1.0f);
  std::vector<float> c(static_cast<size_t>(kTriadElems), 2.0f);
  const float scale = 3.0f;
  const auto triad = [&] {
    ParallelFor(0, kTriadElems, /*grain=*/int64_t{1} << 16, [&](int64_t lo, int64_t hi) {
      float* pa = a.data();
      const float* pb = b.data();
      const float* pc = c.data();
      for (int64_t i = lo; i < hi; ++i) {
        pa[i] = pb[i] + scale * pc[i];
      }
    });
  };
  const double ms = MedianTimedMs(triad, /*warmup=*/1, /*repeats=*/5);
  // STREAM accounting: two reads + one write per element, no RFO term.
  const double bytes = static_cast<double>(kTriadElems) * 3.0 * sizeof(float);
  return ms > 0.0 ? bytes / (ms * 1e6) : 0.0;
}

}  // namespace

double MachineCeilings::RidgeIntensity() const {
  return triad_gbps > 0.0 ? peak_gflops / triad_gbps : 0.0;
}

MachineCeilings ProbeMachineCeilings() {
  MachineCeilings out;
  out.threads = KernelThreads();
  out.peak_gflops = ProbePeakGemmGflops();
  out.triad_gbps = ProbeTriadGbps();
  return out;
}

bool ParseMachineEntryLine(const std::string& line, std::string* key, double* value,
                           std::string* error) {
  std::istringstream in(line);
  std::string k;
  double v = 0.0;
  if (!(in >> k >> v)) {
    *error = "malformed machine entry (want '<key> <value>'): '" + line + "'";
    return false;
  }
  std::string trailing;
  if (in >> trailing) {
    *error = "trailing content after machine entry value: '" + trailing + "'";
    return false;
  }
  if (k != "threads" && k != "peak_gflops" && k != "triad_gbps") {
    *error = "unknown machine entry key '" + k + "'";
    return false;
  }
  *key = k;
  *value = v;
  return true;
}

MachineLoadResult LoadMachineCeilings(const std::string& path) {
  MachineLoadResult result;
  std::ifstream in(path);
  if (!in) {
    return result;
  }
  std::string line;
  if (!std::getline(in, line) || line != kMachineHeader) {
    return result;
  }
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.rfind("fingerprint ", 0) == 0) {
      if (line.substr(12) != BuildFingerprint()) {
        result.fingerprint_mismatch = true;
      }
      continue;
    }
    std::string key, error;
    double value = 0.0;
    if (!ParseMachineEntryLine(line, &key, &value, &error)) {
      continue;  // tolerant loader: the linter reports these
    }
    if (key == "threads") {
      result.ceilings.threads = static_cast<int>(value);
    } else if (key == "peak_gflops") {
      result.ceilings.peak_gflops = value;
    } else if (key == "triad_gbps") {
      result.ceilings.triad_gbps = value;
    }
  }
  result.ok = result.ceilings.valid();
  return result;
}

bool SaveMachineCeilings(const std::string& path, const MachineCeilings& ceilings) {
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << kMachineHeader << "\n";
    out << "fingerprint " << BuildFingerprint() << "\n";
    out << "threads " << ceilings.threads << "\n";
    out << "peak_gflops " << ceilings.peak_gflops << "\n";
    out << "triad_gbps " << ceilings.triad_gbps << "\n";
    if (!out.good()) {
      return false;
    }
  }
  std::filesystem::rename(tmp, target, ec);
  return !ec;
}

MachineCeilings LoadOrProbeMachineCeilings(const std::string& path, bool* probed) {
  const MachineLoadResult loaded = LoadMachineCeilings(path);
  if (loaded.ok && !loaded.fingerprint_mismatch &&
      loaded.ceilings.threads == KernelThreads()) {
    if (probed != nullptr) {
      *probed = false;
    }
    return loaded.ceilings;
  }
  const MachineCeilings fresh = ProbeMachineCeilings();
  SaveMachineCeilings(path, fresh);
  if (probed != nullptr) {
    *probed = true;
  }
  return fresh;
}

std::string ResolveMachinePath(const std::string& override_path) {
  if (!override_path.empty()) {
    return override_path;
  }
  if (const char* env = std::getenv("GMORPH_MACHINE_DB"); env != nullptr && *env != '\0') {
    return env;
  }
  std::string dir = "gmorph_bench_cache";
  if (const char* env = std::getenv("GMORPH_CACHE_DIR"); env != nullptr && *env != '\0') {
    dir = env;
  }
  return dir + "/gmorph.machine";
}

}  // namespace gmorph::kernels
