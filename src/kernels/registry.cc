#include "src/kernels/registry.h"

#include "src/kernels/builtin_solvers.h"
#include "src/kernels/tune_db.h"
#include "src/obs/metrics.h"

namespace gmorph::kernels {
namespace {

// The historical dispatch thresholds (formerly hard-coded in
// src/tensor/tensor_ops.cc). The heuristic below must reproduce that
// dispatch exactly so an untuned process stays bit-identical to the
// pre-registry kernels.
constexpr int64_t kTinyFlops = 8192;  // below: the reference loops win
constexpr int64_t kWideMinN = 24;     // wide tile needs most of a 32-col strip
constexpr int64_t kDotMinK = 24;      // dot path needs k >= ~16 lanes to win
constexpr int64_t kDirectMaxFloats = 48 * 1024;  // working set of the no-pack path

}  // namespace

SolverRegistry::SolverRegistry() {
  gemm_ = {GemmRefSolver(), GemmDirectSolver(), GemmPackedSolver(), GemmDotSolver()};
  pool_ = {PoolGenericSolver(), Pool2x2Solver()};
  qgemm_ = {QGemmRefSolver(), QGemmPackedSolver(), QGemmVnniSolver()};
}

const SolverRegistry& SolverRegistry::Global() {
  static const SolverRegistry registry;
  return registry;
}

const GemmSolver* SolverRegistry::FindGemm(std::string_view name) const {
  for (const GemmSolver* s : gemm_) {
    if (name == s->name()) {
      return s;
    }
  }
  return nullptr;
}

const PoolSolver* SolverRegistry::FindPool(std::string_view name) const {
  for (const PoolSolver* s : pool_) {
    if (name == s->name()) {
      return s;
    }
  }
  return nullptr;
}

const QGemmSolver* SolverRegistry::FindQGemm(std::string_view name) const {
  for (const QGemmSolver* s : qgemm_) {
    if (name == s->name()) {
      return s;
    }
  }
  return nullptr;
}

const Solver* SolverRegistry::FindForDesc(const ProblemDesc& desc, std::string_view name) const {
  if (desc.op == OpFamily::kMaxPool) {
    return FindPool(name);
  }
  if (desc.dtype == DType::kInt8) {
    return FindQGemm(name);
  }
  return FindGemm(name);
}

std::vector<const Solver*> SolverRegistry::Applicable(const ProblemDesc& desc) const {
  std::vector<const Solver*> out;
  if (desc.op == OpFamily::kMaxPool) {
    for (const PoolSolver* s : pool_) {
      if (s->IsApplicable(desc)) {
        out.push_back(s);
      }
    }
  } else if (desc.dtype == DType::kInt8) {
    for (const QGemmSolver* s : qgemm_) {
      if (s->IsApplicable(desc)) {
        out.push_back(s);
      }
    }
  } else {
    for (const GemmSolver* s : gemm_) {
      if (s->IsApplicable(desc)) {
        out.push_back(s);
      }
    }
  }
  return out;
}

const GemmSolver* SolverRegistry::HeuristicGemm(const ProblemDesc& desc) const {
  if (2 * desc.m * desc.k * desc.n <= kTinyFlops ||
      (desc.n < kWideMinN && desc.k < kDotMinK)) {
    return GemmRefSolver();
  }
  if (desc.n >= kWideMinN) {
    const int64_t footprint = desc.m * desc.k + desc.k * desc.n + desc.m * desc.n;
    if (footprint <= kDirectMaxFloats) {
      return GemmDirectSolver();
    }
    return GemmPackedSolver();
  }
  return GemmDotSolver();
}

const PoolSolver* SolverRegistry::HeuristicPool(const ProblemDesc& desc) const {
  (void)desc;
  return PoolGenericSolver();
}

const QGemmSolver* SolverRegistry::HeuristicQGemm(const ProblemDesc& desc) const {
  // The packed paths' panel setup only loses on problems too small to matter;
  // mirror the f32 tiny-problem cutoff. VNNI beats the portable s16 path
  // whenever the build carries it.
  if (2 * desc.m * desc.k * desc.n <= kTinyFlops) {
    return QGemmRefSolver();
  }
  if (QGemmVnniSolver()->IsApplicable(desc)) {
    return QGemmVnniSolver();
  }
  return QGemmPackedSolver();
}

const GemmSolver* SolverRegistry::ResolveGemm(const ProblemDesc& desc) const {
  if (const TuneDb* db = GlobalTuneDb(); db != nullptr) {
    static obs::Counter& hits = obs::GetCounter("kernels.resolve_db_hits");
    static obs::Counter& misses = obs::GetCounter("kernels.resolve_heuristic");
    if (const TuneDb::Entry* e = db->Lookup(desc);
        e != nullptr && e->resolved != nullptr && e->resolved->IsApplicable(desc)) {
      hits.Increment();
      return static_cast<const GemmSolver*>(e->resolved);
    }
    misses.Increment();
  }
  return HeuristicGemm(desc);
}

const QGemmSolver* SolverRegistry::ResolveQGemm(const ProblemDesc& desc) const {
  if (const TuneDb* db = GlobalTuneDb(); db != nullptr) {
    static obs::Counter& hits = obs::GetCounter("kernels.resolve_db_hits");
    static obs::Counter& misses = obs::GetCounter("kernels.resolve_heuristic");
    if (const TuneDb::Entry* e = db->Lookup(desc);
        e != nullptr && e->resolved != nullptr && e->resolved->IsApplicable(desc)) {
      hits.Increment();
      return static_cast<const QGemmSolver*>(e->resolved);
    }
    misses.Increment();
  }
  return HeuristicQGemm(desc);
}

const PoolSolver* SolverRegistry::ResolvePool(const ProblemDesc& desc) const {
  if (const TuneDb* db = GlobalTuneDb(); db != nullptr) {
    static obs::Counter& hits = obs::GetCounter("kernels.resolve_db_hits");
    static obs::Counter& misses = obs::GetCounter("kernels.resolve_heuristic");
    if (const TuneDb::Entry* e = db->Lookup(desc);
        e != nullptr && e->resolved != nullptr && e->resolved->IsApplicable(desc)) {
      hits.Increment();
      return static_cast<const PoolSolver*>(e->resolved);
    }
    misses.Increment();
  }
  return HeuristicPool(desc);
}

}  // namespace gmorph::kernels
