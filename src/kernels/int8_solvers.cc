// The built-in quantized GEMM solvers: C_s32[M,N] = A_u8[M,K] · B_s8[K,N].
//
// Integer accumulation is exact, so — unlike the f32 family — every solver
// here is bitwise identical by construction; the autotuner ranks them on
// speed alone. The packed path widens B into sign-extended s16 panels in the
// thread-local scratch arena so the micro-kernel's inner loop is a pure
// broadcast-multiply-accumulate over contiguous lanes (u8·s8 products fit in
// s16, pairs accumulate exactly in s32 — the vpmaddwd-shaped recurrence).
#include <algorithm>
#include <cstring>

#include "src/common/parallel_for.h"
#include "src/kernels/builtin_solvers.h"
#include "src/kernels/scratch.h"
#include "src/kernels/solver.h"

#if defined(__AVX512VNNI__) && defined(__AVX512BW__)
#define GMORPH_HAVE_VNNI 1
#include <immintrin.h>
#else
#define GMORPH_HAVE_VNNI 0
#endif

namespace gmorph::kernels {
namespace {

#define GMORPH_RESTRICT __restrict__

// Register tile of the packed micro-kernel: kQMR x kQNR s32 accumulators.
// kQNR matches the f32 family's 32-column strip (one cache line of s8 B).
constexpr int64_t kQNR = 32;
constexpr int64_t kQMR = 4;
constexpr int64_t kQRowGrain = 16;  // ParallelFor grain over output rows

bool IsQGemm(const ProblemDesc& desc) {
  return desc.op == OpFamily::kGemmNN && desc.dtype == DType::kInt8;
}

// ---- Packed path ----------------------------------------------------------

// Packs B[k x n] (row-major s8) into kQNR-column s16 panels, zero-padded, so
// the micro-kernel loads widened lanes straight off contiguous memory.
void QPackB(const int8_t* b, int64_t k, int64_t n, int16_t* dst) {
  for (int64_t jr = 0; jr < n; jr += kQNR) {
    const int64_t nr = std::min(kQNR, n - jr);
    for (int64_t p = 0; p < k; ++p) {
      const int8_t* src = b + p * n + jr;
      int16_t* out = dst + p * kQNR;
      for (int64_t j = 0; j < nr; ++j) {
        out[j] = src[j];
      }
      for (int64_t j = nr; j < kQNR; ++j) {
        out[j] = 0;
      }
    }
    dst += k * kQNR;
  }
}

// MR rows x kQNR cols over a packed s16 B panel; A rows are the caller's
// contiguous u8 rows, read through scalar broadcasts. The p-loop is unrolled
// by 2 so the compiler can fuse each lane's pair of s16 products into a
// single s32 multiply-add (both products fit in s16 range individually and
// their sum in s32 — exact).
template <int MR>
void QPackedTile(int64_t k, const uint8_t* GMORPH_RESTRICT a, int64_t lda,
                 const int16_t* GMORPH_RESTRICT pb, int32_t* GMORPH_RESTRICT acc) {
  int64_t p = 0;
  for (; p + 2 <= k; p += 2) {
    const int16_t* GMORPH_RESTRICT b0 = pb + p * kQNR;
    const int16_t* GMORPH_RESTRICT b1 = b0 + kQNR;
    for (int r = 0; r < MR; ++r) {
      const int32_t a0 = a[r * lda + p];
      const int32_t a1 = a[r * lda + p + 1];
      int32_t* GMORPH_RESTRICT accr = acc + r * kQNR;
      for (int j = 0; j < kQNR; ++j) {
        accr[j] += a0 * b0[j] + a1 * b1[j];
      }
    }
  }
  if (p < k) {
    const int16_t* GMORPH_RESTRICT b0 = pb + p * kQNR;
    for (int r = 0; r < MR; ++r) {
      const int32_t a0 = a[r * lda + p];
      int32_t* GMORPH_RESTRICT accr = acc + r * kQNR;
      for (int j = 0; j < kQNR; ++j) {
        accr[j] += a0 * b0[j];
      }
    }
  }
}

void QGemmPackedImpl(int64_t m, int64_t k, int64_t n, const uint8_t* a, const int8_t* b,
                     int32_t* c) {
  ScratchScope scope;
  const int64_t col_panels = (n + kQNR - 1) / kQNR;
  int16_t* pb_all = scope.Alloc<int16_t>(static_cast<size_t>(col_panels * kQNR * k));
  QPackB(b, k, n, pb_all);
  ParallelFor(0, m, kQRowGrain, [&](int64_t row_lo, int64_t row_hi) {
    int32_t acc[kQMR * kQNR];
    for (int64_t jr = 0; jr < n; jr += kQNR) {
      const int64_t nr = std::min(kQNR, n - jr);
      const int16_t* pb_panel = pb_all + (jr / kQNR) * k * kQNR;
      int64_t ir = row_lo;
      for (; ir + kQMR <= row_hi; ir += kQMR) {
        std::memset(acc, 0, sizeof(acc));
        QPackedTile<kQMR>(k, a + ir * k, k, pb_panel, acc);
        for (int64_t r = 0; r < kQMR; ++r) {
          int32_t* cr = c + (ir + r) * n + jr;
          const int32_t* ar = acc + r * kQNR;
          for (int64_t j = 0; j < nr; ++j) {
            cr[j] = ar[j];
          }
        }
      }
      for (; ir < row_hi; ++ir) {
        std::memset(acc, 0, static_cast<size_t>(kQNR) * sizeof(int32_t));
        QPackedTile<1>(k, a + ir * k, k, pb_panel, acc);
        int32_t* cr = c + ir * n + jr;
        for (int64_t j = 0; j < nr; ++j) {
          cr[j] = acc[j];
        }
      }
    }
  });
}

// ---- VNNI path ------------------------------------------------------------
//
// AVX512-VNNI's vpdpbusd is this product in hardware: each s32 lane
// accumulates four u8·s8 byte products, so one instruction retires 64 MACs.
// B is packed into 64-column panels where every s32 lane holds four
// consecutive K bytes of one column (zero-padded in both K and N); each A row
// contributes a broadcast dword of four consecutive u8 activations. The
// 4-product lane sums are exact and the s32 accumulation wraps identically to
// the scalar loops, so the path is bit-equal to qgemm.ref for any K < 2^16.

#if GMORPH_HAVE_VNNI

constexpr int64_t kVnniNR = 64;  // columns per packed panel: 4 zmm accumulators
constexpr int64_t kVnniMR = 4;   // rows per micro-tile

// Interleaves four 16-byte row fragments into 16 column dwords
// (out dword c = [r0[c], r1[c], r2[c], r3[c]]) — a 4x16 byte transpose in
// eight unpacks instead of 64 scalar stores.
inline void Interleave4x16(__m128i r0, __m128i r1, __m128i r2, __m128i r3, int8_t* out) {
  const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
  const __m128i t1 = _mm_unpackhi_epi8(r0, r1);
  const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
  const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_unpacklo_epi16(t0, t2));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16), _mm_unpackhi_epi16(t0, t2));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32), _mm_unpacklo_epi16(t1, t3));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 48), _mm_unpackhi_epi16(t1, t3));
}

// Packs B[k x n] (row-major s8) into VNNI panels: panel-major over kVnniNR
// columns, then K groups of 4, then 16-column blocks, i.e. byte
// dst[(((g * 4 + blk) * 16) + lane) * 4 + j] = B[4g + j][jr + blk * 16 + lane].
void QPackBVnni(const int8_t* b, int64_t k, int64_t n, int8_t* dst) {
  const int64_t groups = (k + 3) / 4;
  for (int64_t jr = 0; jr < n; jr += kVnniNR) {
    const int64_t nr = std::min(kVnniNR, n - jr);
    for (int64_t g = 0; g < groups; ++g) {
      int8_t* out = dst + g * kVnniNR * 4;
      const int64_t kj = std::min<int64_t>(4, k - g * 4);
      const int8_t* row = b + g * 4 * n + jr;
      if (kj == 4 && nr == kVnniNR) {
        // Hot interior: full 4-row group, full 64-column panel.
        for (int64_t blk = 0; blk < 4; ++blk) {
          const int8_t* src = row + blk * 16;
          Interleave4x16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src)),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + n)),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * n)),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 3 * n)),
                         out + blk * 64);
        }
        continue;
      }
      if (kj == 4 && nr >= 16) {
        int64_t blk = 0;
        for (; (blk + 1) * 16 <= nr; ++blk) {
          const int8_t* src = row + blk * 16;
          Interleave4x16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(src)),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + n)),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * n)),
                         _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 3 * n)),
                         out + blk * 64);
        }
        for (int64_t c = blk * 16; c < kVnniNR; ++c) {
          for (int64_t j = 0; j < 4; ++j) {
            out[c * 4 + j] = c < nr ? row[j * n + c] : 0;
          }
        }
        continue;
      }
      // Edge groups (K tail or narrow panel): scalar with zero padding.
      std::memset(out, 0, static_cast<size_t>(kVnniNR) * 4);
      for (int64_t j = 0; j < kj; ++j) {
        const int8_t* src = row + j * n;
        for (int64_t c = 0; c < nr; ++c) {
          out[c * 4 + j] = src[c];
        }
      }
    }
    dst += groups * kVnniNR * 4;
  }
}

// One A row's broadcast dword for K group g: four consecutive u8, zero-padded
// past the end of the row.
inline uint32_t ARowGroupDword(const uint8_t* row, int64_t k, int64_t g) {
  const int64_t p = g * 4;
  if (p + 4 <= k) {
    uint32_t w;
    std::memcpy(&w, row + p, 4);
    return w;
  }
  uint32_t w = 0;
  for (int64_t j = 0; p + j < k; ++j) {
    w |= static_cast<uint32_t>(row[p + j]) << (8 * j);
  }
  return w;
}

// MR rows x kVnniNR cols over one packed panel; writes only nr valid columns.
template <int MR>
void QVnniTile(int64_t k, const uint8_t* GMORPH_RESTRICT a, int64_t lda,
               const int8_t* GMORPH_RESTRICT panel, int32_t* GMORPH_RESTRICT c, int64_t ldc,
               int64_t nr) {
  const int64_t groups = (k + 3) / 4;
  __m512i acc[MR][4];
  for (int r = 0; r < MR; ++r) {
    for (int blk = 0; blk < 4; ++blk) {
      acc[r][blk] = _mm512_setzero_si512();
    }
  }
  for (int64_t g = 0; g < groups; ++g) {
    const int8_t* pg = panel + g * kVnniNR * 4;
    const __m512i b0 = _mm512_loadu_si512(pg);
    const __m512i b1 = _mm512_loadu_si512(pg + 64);
    const __m512i b2 = _mm512_loadu_si512(pg + 128);
    const __m512i b3 = _mm512_loadu_si512(pg + 192);
    for (int r = 0; r < MR; ++r) {
      const __m512i av = _mm512_set1_epi32(
          static_cast<int32_t>(ARowGroupDword(a + r * lda, k, g)));
      acc[r][0] = _mm512_dpbusd_epi32(acc[r][0], av, b0);
      acc[r][1] = _mm512_dpbusd_epi32(acc[r][1], av, b1);
      acc[r][2] = _mm512_dpbusd_epi32(acc[r][2], av, b2);
      acc[r][3] = _mm512_dpbusd_epi32(acc[r][3], av, b3);
    }
  }
  for (int r = 0; r < MR; ++r) {
    int32_t* cr = c + r * ldc;
    if (nr == kVnniNR) {
      _mm512_storeu_si512(cr, acc[r][0]);
      _mm512_storeu_si512(cr + 16, acc[r][1]);
      _mm512_storeu_si512(cr + 32, acc[r][2]);
      _mm512_storeu_si512(cr + 48, acc[r][3]);
    } else {
      alignas(64) int32_t tmp[kVnniNR];
      _mm512_store_si512(tmp, acc[r][0]);
      _mm512_store_si512(tmp + 16, acc[r][1]);
      _mm512_store_si512(tmp + 32, acc[r][2]);
      _mm512_store_si512(tmp + 48, acc[r][3]);
      for (int64_t j = 0; j < nr; ++j) {
        cr[j] = tmp[j];
      }
    }
  }
}

void QGemmVnniImpl(int64_t m, int64_t k, int64_t n, const uint8_t* a, const int8_t* b,
                   int32_t* c) {
  ScratchScope scope;
  const int64_t groups = (k + 3) / 4;
  const int64_t col_panels = (n + kVnniNR - 1) / kVnniNR;
  int8_t* pb_all = scope.Alloc<int8_t>(static_cast<size_t>(col_panels * groups * kVnniNR * 4));
  QPackBVnni(b, k, n, pb_all);
  ParallelFor(0, m, kQRowGrain, [&](int64_t row_lo, int64_t row_hi) {
    for (int64_t jr = 0; jr < n; jr += kVnniNR) {
      const int64_t nr = std::min(kVnniNR, n - jr);
      const int8_t* panel = pb_all + (jr / kVnniNR) * groups * kVnniNR * 4;
      int64_t ir = row_lo;
      for (; ir + kVnniMR <= row_hi; ir += kVnniMR) {
        QVnniTile<kVnniMR>(k, a + ir * k, k, panel, c + ir * n + jr, n, nr);
      }
      for (; ir < row_hi; ++ir) {
        QVnniTile<1>(k, a + ir * k, k, panel, c + ir * n + jr, n, nr);
      }
    }
  });
}

#endif  // GMORPH_HAVE_VNNI

// ---- Solver wrappers ------------------------------------------------------

class QGemmRef final : public QGemmSolver {
 public:
  const char* name() const override { return "qgemm.ref"; }
  bool IsApplicable(const ProblemDesc& desc) const override { return IsQGemm(desc); }
  void Run(const ProblemDesc& desc, const QGemmCall& call) const override {
    RefQMatmulNN(call.a, call.b, call.c, desc.m, desc.k, desc.n);
  }
};

class QGemmPacked final : public QGemmSolver {
 public:
  const char* name() const override { return "qgemm.packed"; }
  bool IsApplicable(const ProblemDesc& desc) const override { return IsQGemm(desc); }
  int64_t WorkspaceBytes(const ProblemDesc& desc) const override {
    const int64_t col_panels = (desc.n + kQNR - 1) / kQNR;
    return col_panels * kQNR * desc.k * static_cast<int64_t>(sizeof(int16_t));
  }
  void Run(const ProblemDesc& desc, const QGemmCall& call) const override {
    QGemmPackedImpl(desc.m, desc.k, desc.n, call.a, call.b, call.c);
  }
};

// Registered unconditionally so solver lists (and name lookups) are
// build-independent; on non-VNNI builds IsApplicable is always false and the
// build fingerprint keeps foreign tuned entries from resolving to it anyway.
class QGemmVnni final : public QGemmSolver {
 public:
  const char* name() const override { return "qgemm.vnni"; }
  bool IsApplicable(const ProblemDesc& desc) const override {
    return GMORPH_HAVE_VNNI && IsQGemm(desc);
  }
  int64_t WorkspaceBytes(const ProblemDesc& desc) const override {
    const int64_t col_panels = (desc.n + 63) / 64;
    return col_panels * 64 * ((desc.k + 3) / 4) * 4;
  }
  void Run(const ProblemDesc& desc, const QGemmCall& call) const override {
#if GMORPH_HAVE_VNNI
    QGemmVnniImpl(desc.m, desc.k, desc.n, call.a, call.b, call.c);
#else
    (void)desc;
    (void)call;
#endif
  }
};

}  // namespace

const QGemmSolver* QGemmRefSolver() {
  static const QGemmRef solver;
  return &solver;
}

const QGemmSolver* QGemmPackedSolver() {
  static const QGemmPacked solver;
  return &solver;
}

const QGemmSolver* QGemmVnniSolver() {
  static const QGemmVnni solver;
  return &solver;
}

// ---- Reference loop -------------------------------------------------------

void RefQMatmulNN(const uint8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t k,
                  int64_t n) {
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(int32_t));
  for (int64_t i = 0; i < m; ++i) {
    const uint8_t* ai = a + i * k;
    int32_t* ci = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const int32_t av = ai[p];
      if (av == 0) {
        continue;
      }
      const int8_t* bp = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

}  // namespace gmorph::kernels
