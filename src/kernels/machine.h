// Machine-ceiling probe for roofline attribution.
//
// A roofline report needs two hardware ceilings: the peak sustained f32 GEMM
// throughput (GFLOP/s, the compute roof) and the streaming memory bandwidth
// (GB/s, a STREAM-style triad — the memory roof). Probing them costs real
// wall time, so the result is persisted once per machine+build in a
// fingerprinted text artifact next to the tuning DB:
//
//   gmorph-machine v1
//   fingerprint <hex>
//   threads 4
//   peak_gflops 38.2
//   triad_gbps 11.7
//
// The fingerprint is the tuning DB's BuildFingerprint() (compiler + flags +
// target), so ceilings measured by a foreign build are re-probed rather than
// trusted — -O0 "ceilings" would misclassify every step. The strict linter
// (`gmorph_cli --verify`, machine.* rules) shares ParseMachineEntryLine with
// the loader so the two can never drift.
#ifndef GMORPH_SRC_KERNELS_MACHINE_H_
#define GMORPH_SRC_KERNELS_MACHINE_H_

#include <string>

namespace gmorph::kernels {

inline constexpr char kMachineHeaderPrefix[] = "gmorph-machine";
inline constexpr char kMachineHeader[] = "gmorph-machine v1";

struct MachineCeilings {
  double peak_gflops = 0.0;  // best sustained f32 GEMM throughput
  double triad_gbps = 0.0;   // STREAM-triad memory bandwidth
  int threads = 0;           // kernel pool width the probe ran at

  bool valid() const { return peak_gflops > 0.0 && triad_gbps > 0.0 && threads > 0; }

  // Arithmetic intensity (flop/byte) at which the two roofs intersect; steps
  // below it are memory-bound, above it compute-bound.
  double RidgeIntensity() const;
};

// Runs both probes at the current kernel thread count (~a second of wall
// time: a peak-seeking GEMM and a cache-busting triad, both median-of-N).
MachineCeilings ProbeMachineCeilings();

struct MachineLoadResult {
  bool ok = false;                     // file opened, parsed, values sane
  bool fingerprint_mismatch = false;   // foreign build: ceilings not trusted
  MachineCeilings ceilings;
};

// Tolerant loader (missing file is just !ok); the strict linter lives in
// src/analysis/machine_verifier.
MachineLoadResult LoadMachineCeilings(const std::string& path);

// Atomic save (tmp + rename), same discipline as the tuning DB.
bool SaveMachineCeilings(const std::string& path, const MachineCeilings& ceilings);

// Returns trusted cached ceilings when `path` holds a same-build artifact at
// the current thread count, else probes and saves. `*probed` (optional)
// reports whether a fresh probe ran.
MachineCeilings LoadOrProbeMachineCeilings(const std::string& path, bool* probed = nullptr);

// Artifact location: `override_path` if non-empty, else $GMORPH_MACHINE_DB,
// else "<cache dir>/gmorph.machine" next to the tuning DB ($GMORPH_CACHE_DIR
// or gmorph_bench_cache).
std::string ResolveMachinePath(const std::string& override_path = "");

// One "key value" entry line, shared with the analysis-layer linter. Valid
// keys: threads, peak_gflops, triad_gbps.
bool ParseMachineEntryLine(const std::string& line, std::string* key, double* value,
                           std::string* error);

}  // namespace gmorph::kernels

#endif  // GMORPH_SRC_KERNELS_MACHINE_H_
