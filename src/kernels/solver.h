// Solver interface for the kernel registry (DESIGN.md "Solver registry &
// autotuning").
//
// Every tunable kernel family — the three GEMM variants (which also carry the
// im2col convolution product and the attention matmuls) and max-pooling —
// exposes one or more Solver implementations behind a common interface. A
// solver advertises which problems it can handle (IsApplicable), how much
// scratch it packs into the thread-local arena (WorkspaceBytes), and runs the
// problem (Run). The registry (registry.h) enumerates applicable solvers per
// ProblemDesc; the autotuner (autotune.h) benchmarks them and persists the
// winner in the tuning DB (tune_db.h).
//
// The interface is deliberately backend-agnostic: a future SIMD, BLAS, or JIT
// backend plugs in by registering more Solver instances — nothing above this
// layer changes.
#ifndef GMORPH_SRC_KERNELS_SOLVER_H_
#define GMORPH_SRC_KERNELS_SOLVER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace gmorph::kernels {

// The kernel families the registry distinguishes. The GEMM families are named
// after the caller-facing operand layouts; internally every variant is the
// same logical product C[M,N] (+)= A·B over strided views (see MatView).
enum class OpFamily : uint8_t {
  kGemmNN,
  kGemmNT,
  kGemmTN,
  kMaxPool,
};

// Stable text names ("gemm_nn", ..., "maxpool") used by the tuning DB and the
// plan annotations.
const char* OpFamilyName(OpFamily op);
bool OpFamilyFromName(std::string_view name, OpFamily* out);

// Element type of a problem. f32 is the historical default; int8 denotes the
// quantized u8·s8 -> s32 product (A unsigned activations, B signed weights,
// C int32 accumulators — the oneDNN-style asymmetric/symmetric split). The
// tuning DB keys on it so int8 shapes tune independently of their f32 twins.
enum class DType : uint8_t {
  kF32,
  kInt8,
};

// Stable text names ("f32", "int8") for the tuning DB, recipes, and plans.
const char* DTypeName(DType dtype);
bool DTypeFromName(std::string_view name, DType* out);

// The canonical problem descriptor: the key solvers, the autotuner, and the
// tuning DB all agree on. For the GEMM families m/k/n are the *logical*
// product dimensions (C is m x n, the contraction runs over k) — NOT the
// caller-facing argument order of MatmulNT/MatmulTN. For kMaxPool: m = number
// of (sample, channel) planes, k = input height, n = input width,
// aux0 = pool kernel, aux1 = pool stride.
//
// `threads` is the parallelism the call runs under: 1 when the kernel is
// invoked inside an enclosing parallel region (conv's per-sample im2col GEMMs,
// branch-parallel engine groups), otherwise the kernel pool width. The tuning
// DB keys on it because the best solver differs between the serial and the
// parallel regime.
struct ProblemDesc {
  OpFamily op = OpFamily::kGemmNN;
  DType dtype = DType::kF32;
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  int64_t aux0 = 0;
  int64_t aux1 = 0;
  int threads = 1;

  friend bool operator==(const ProblemDesc& a, const ProblemDesc& b) {
    return a.op == b.op && a.dtype == b.dtype && a.m == b.m && a.k == b.k && a.n == b.n &&
           a.aux0 == b.aux0 && a.aux1 == b.aux1 && a.threads == b.threads;
  }
  friend bool operator<(const ProblemDesc& a, const ProblemDesc& b) {
    if (a.op != b.op) return a.op < b.op;
    if (a.dtype != b.dtype) return a.dtype < b.dtype;
    if (a.m != b.m) return a.m < b.m;
    if (a.k != b.k) return a.k < b.k;
    if (a.n != b.n) return a.n < b.n;
    if (a.aux0 != b.aux0) return a.aux0 < b.aux0;
    if (a.aux1 != b.aux1) return a.aux1 < b.aux1;
    return a.threads < b.threads;
  }
};

// "gemm_nn m=17 k=32 n=96 aux0=0 aux1=0 threads=4" — the human-readable key
// the tuning DB and diagnostics print.
std::string ProblemKey(const ProblemDesc& desc);

// Builds a GEMM descriptor from the logical dims, with `threads` resolved from
// the current execution context (1 inside a parallel region).
ProblemDesc GemmProblem(OpFamily op, int64_t m, int64_t k, int64_t n);
// Quantized GEMM descriptor: always the NN layout (row-major u8 A, row-major
// s8 B), dtype = kInt8.
ProblemDesc QGemmProblem(int64_t m, int64_t k, int64_t n);
// Max-pool descriptor; planes = batch * channels.
ProblemDesc PoolProblem(int64_t planes, int64_t h, int64_t w, int64_t kernel, int64_t stride);
// Arithmetic work for throughput reporting: 2*m*k*n for GEMMs, one op per
// pooled window element for kMaxPool.
int64_t ProblemFlops(const ProblemDesc& desc);

// Element (i,j) of a strided matrix view lives at data[i * rs + j * cs].
struct MatView {
  const float* data;
  int64_t rs;
  int64_t cs;
  const float* at(int64_t i, int64_t j) const { return data + i * rs + j * cs; }
};

// A bound GEMM invocation. Views are canonical per family (MakeGemmCall):
//   kGemmNN: a = {a, k, 1}, b = {b, n, 1}    (both row-major)
//   kGemmNT: a = {a, k, 1}, b = {b, 1, k}    (b stored N x K row-major)
//   kGemmTN: a = {a, 1, m}, b = {b, n, 1}    (a stored K x M row-major)
// Solvers may rely on these strides (the reference solver replays the
// original row-major loops straight off the data pointers).
struct GemmCall {
  MatView a;
  MatView b;
  float* c;
  bool accumulate = false;
};

// Builds the canonical views for desc.op over the caller's row-major arrays.
GemmCall MakeGemmCall(const ProblemDesc& desc, const float* a, const float* b, float* c,
                      bool accumulate);

// A bound max-pool invocation: x is m contiguous h x w planes, out is m
// contiguous oh x ow planes (valid pooling, no padding).
struct PoolCall {
  const float* x;
  float* out;
};

// A bound quantized GEMM: C_s32[M,N] = A_u8[M,K] · B_s8[K,N], all row-major
// and contiguous. Integer accumulation is exact, so results are bitwise
// independent of the thread count and the solver choice by construction —
// every int8 solver must produce identical bits. Dequantization is the
// caller's epilogue, not the solver's job.
struct QGemmCall {
  const uint8_t* a;
  const int8_t* b;
  int32_t* c;
};

// Output spatial extent of a valid pooled dimension.
int64_t PooledDim(int64_t in, int64_t kernel, int64_t stride);

class Solver {
 public:
  virtual ~Solver() = default;

  // Stable identifier ("gemm.packed", "pool.2x2s2"); recorded in the tuning
  // DB and in exported plans, so renaming one invalidates tuned entries.
  virtual const char* name() const = 0;

  // Whether this solver can run `desc` at all (correctness, not preference).
  // A GEMM solver serves all three GEMM families; a pool solver only
  // kMaxPool. Must be decidable from the descriptor alone so the verifier
  // can lint plans and tuning DBs offline.
  virtual bool IsApplicable(const ProblemDesc& desc) const = 0;

  // Upper bound on thread-local scratch the solver packs for `desc`, in
  // bytes. Purely informational (the arena grows on demand); the autotuner
  // reports it and tests sanity-check it.
  virtual int64_t WorkspaceBytes(const ProblemDesc& /*desc*/) const { return 0; }
};

class GemmSolver : public Solver {
 public:
  // Requires IsApplicable(desc). Results are bitwise independent of the
  // thread count; determinism tests pin solvers via a frozen tuning DB and
  // compare outputs exactly.
  virtual void Run(const ProblemDesc& desc, const GemmCall& call) const = 0;
};

class PoolSolver : public Solver {
 public:
  virtual void Run(const ProblemDesc& desc, const PoolCall& call) const = 0;
};

class QGemmSolver : public Solver {
 public:
  // Requires IsApplicable(desc) and desc.dtype == kInt8. Always overwrites C
  // (quantized epilogues fold accumulation downstream).
  virtual void Run(const ProblemDesc& desc, const QGemmCall& call) const = 0;
};

// Reference GEMM loops in the caller-facing argument orders (see
// tensor_ops.h for the layout contract). They are the oracle for the
// randomized solver cross-check tests, the tiny-problem fast path, and the
// baseline the micro_ops bench reports speedups against.
void RefMatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate = false);
void RefMatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
                 bool accumulate = false);
void RefMatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate = false);

// Reference u8·s8 -> s32 loop, the oracle for the int8 solver cross-checks.
void RefQMatmulNN(const uint8_t* a, const int8_t* b, int32_t* c, int64_t m, int64_t k,
                  int64_t n);

}  // namespace gmorph::kernels

#endif  // GMORPH_SRC_KERNELS_SOLVER_H_
