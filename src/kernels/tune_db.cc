#include "src/kernels/tune_db.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "src/common/artifact_header.h"
#include "src/kernels/registry.h"

namespace gmorph::kernels {
namespace {

// FNV-1a, as used by the search checkpoints; good enough to distinguish
// toolchains and cheap enough to run at static-init time.
uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string ComputeFingerprint() {
  std::ostringstream os;
#if defined(__VERSION__)
  os << "compiler=" << __VERSION__ << ";";
#endif
#if defined(__OPTIMIZE__)
  os << "opt=1;";
#else
  os << "opt=0;";
#endif
#if defined(NDEBUG)
  os << "ndebug=1;";
#else
  os << "ndebug=0;";
#endif
#if defined(__AVX512F__)
  os << "isa=avx512;";
#elif defined(__AVX2__)
  os << "isa=avx2;";
#elif defined(__AVX__)
  os << "isa=avx;";
#elif defined(__SSE2__)
  os << "isa=sse2;";
#elif defined(__ARM_NEON)
  os << "isa=neon;";
#else
  os << "isa=scalar;";
#endif
  os << "ptr=" << sizeof(void*) * 8;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, Fnv1a(os.str()));
  return buf;
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

const Solver* ResolveName(const ProblemDesc& desc, const std::string& name) {
  return SolverRegistry::Global().FindForDesc(desc, name);
}

}  // namespace

const std::string& BuildFingerprint() {
  static const std::string fp = ComputeFingerprint();
  return fp;
}

bool ParseTuneEntryLine(const std::string& line, ProblemDesc* desc, TuneDb::Entry* entry,
                        std::string* error) {
  std::istringstream is(line);
  std::string tok;
  is >> tok;
  if (tok != "entry") {
    *error = "expected 'entry'";
    return false;
  }
  ProblemDesc d;
  TuneDb::Entry e;
  bool have_op = false, have_m = false, have_k = false, have_n = false, have_threads = false;
  while (is >> tok) {
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      *error = "bad token '" + tok + "'";
      return false;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    int64_t iv = 0;
    if (key == "op") {
      if (!OpFamilyFromName(val, &d.op)) {
        *error = "unknown op '" + val + "'";
        return false;
      }
      have_op = true;
    } else if (key == "dtype") {
      // Optional: v1 DBs written before the dtype dimension carry no token
      // and load as f32 (the ProblemDesc default), so old files stay valid.
      if (!DTypeFromName(val, &d.dtype)) {
        *error = "unknown dtype '" + val + "'";
        return false;
      }
    } else if (key == "m" && ParseInt64(val, &d.m)) {
      have_m = true;
    } else if (key == "k" && ParseInt64(val, &d.k)) {
      have_k = true;
    } else if (key == "n" && ParseInt64(val, &d.n)) {
      have_n = true;
    } else if (key == "aux0" && ParseInt64(val, &d.aux0)) {
    } else if (key == "aux1" && ParseInt64(val, &d.aux1)) {
    } else if (key == "threads" && ParseInt64(val, &iv) && iv >= 1) {
      d.threads = static_cast<int>(iv);
      have_threads = true;
    } else if (key == "solver" && !val.empty()) {
      e.solver = val;
    } else if (key == "gflops" && ParseDouble(val, &e.gflops)) {
    } else if (key == "ms" && ParseDouble(val, &e.ms)) {
    } else {
      *error = "bad entry field '" + tok + "'";
      return false;
    }
  }
  if (!have_op || !have_m || !have_k || !have_n || !have_threads || e.solver.empty()) {
    *error = "missing required field (op/m/k/n/threads/solver)";
    return false;
  }
  if (d.m < 1 || d.k < 1 || d.n < 1) {
    *error = "non-positive dimension";
    return false;
  }
  *desc = d;
  *entry = std::move(e);
  return true;
}

std::string FormatTuneEntryLine(const ProblemDesc& desc, const TuneDb::Entry& entry) {
  std::ostringstream os;
  os << "entry op=" << OpFamilyName(desc.op);
  if (desc.dtype != DType::kF32) {
    // f32 entries keep the historical spelling so pre-dtype DB files and a
    // resave of one stay byte-identical.
    os << " dtype=" << DTypeName(desc.dtype);
  }
  os << " m=" << desc.m << " k=" << desc.k
     << " n=" << desc.n << " aux0=" << desc.aux0 << " aux1=" << desc.aux1
     << " threads=" << desc.threads << " solver=" << entry.solver
     << " gflops=" << FormatDouble(entry.gflops) << " ms=" << FormatDouble(entry.ms);
  return os.str();
}

TuneDb::LoadStats TuneDb::Load(const std::string& path) {
  LoadStats stats;
  std::ifstream in(path);
  if (!in) {
    return stats;  // missing file: empty DB, not an error
  }
  std::string line;
  if (!std::getline(in, line) ||
      CheckArtifactHeaderLine(line, kTuneDbArtifact) != HeaderCheck::kOk) {
    return stats;
  }
  stats.ok = true;
  bool usable = true;
  std::unique_lock<std::shared_mutex> lock(mutex_);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    if (line.rfind("fingerprint ", 0) == 0) {
      if (line.substr(12) != BuildFingerprint()) {
        stats.fingerprint_mismatch = true;
        usable = false;  // foreign build: keep parsing nothing into the map
      }
      continue;
    }
    ProblemDesc desc;
    Entry entry;
    std::string error;
    if (!ParseTuneEntryLine(line, &desc, &entry, &error)) {
      ++stats.skipped;
      continue;
    }
    if (!usable) {
      continue;
    }
    entry.resolved = ResolveName(desc, entry.solver);
    if (entry.resolved == nullptr) {
      ++stats.skipped;  // solver unknown to this build
      continue;
    }
    entries_[desc] = std::move(entry);
    ++stats.entries;
  }
  return stats;
}

bool TuneDb::Save(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << kTuneDbHeader << "\n";
    out << "fingerprint " << BuildFingerprint() << "\n";
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto& [desc, entry] : entries_) {
      out << FormatTuneEntryLine(desc, entry) << "\n";
    }
    if (!out.good()) {
      return false;
    }
  }
  std::filesystem::rename(tmp, target, ec);
  return !ec;
}

const TuneDb::Entry* TuneDb::Lookup(const ProblemDesc& desc) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = entries_.find(desc);
  return it == entries_.end() ? nullptr : &it->second;
}

bool TuneDb::Contains(const ProblemDesc& desc) const { return Lookup(desc) != nullptr; }

void TuneDb::Record(const ProblemDesc& desc, Entry entry) {
  entry.resolved = ResolveName(desc, entry.solver);
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_[desc] = std::move(entry);
}

int64_t TuneDb::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return static_cast<int64_t>(entries_.size());
}

void TuneDb::ForEach(const std::function<void(const ProblemDesc&, const Entry&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (const auto& [desc, entry] : entries_) {
    fn(desc, entry);
  }
}

std::string ResolveTuneDbPath(const std::string& override_path) {
  if (!override_path.empty()) {
    return override_path;
  }
  if (const char* env = std::getenv("GMORPH_TUNE_DB"); env != nullptr && *env != '\0') {
    return env;
  }
  std::string dir = "gmorph_bench_cache";
  if (const char* env = std::getenv("GMORPH_CACHE_DIR"); env != nullptr && *env != '\0') {
    dir = env;
  }
  return dir + "/gmorph.tunedb";
}

namespace {

std::mutex g_global_db_mutex;
std::shared_ptr<TuneDb> g_global_db_owner;
std::atomic<TuneDb*> g_global_db{nullptr};
// Guarded by g_global_db_mutex. Set by the first explicit install or the
// first lazy env probe, whichever comes first: an early SetGlobalTuneDb must
// not be clobbered later by a stale on-disk copy of $GMORPH_TUNE_DB.
bool g_global_db_resolved = false;
// Release-published once resolution happened, so the per-dispatch fast path
// is one atomic load even when no DB is installed (g_global_db stays null).
std::atomic<bool> g_global_db_probed{false};

void InstallGlobalTuneDbLocked(std::shared_ptr<TuneDb> db) {
  g_global_db_resolved = true;
  g_global_db.store(db.get(), std::memory_order_release);
  g_global_db_owner = std::move(db);  // keeps the previous DB alive until here
  g_global_db_probed.store(true, std::memory_order_release);
}

}  // namespace

void SetGlobalTuneDb(std::shared_ptr<TuneDb> db) {
  std::lock_guard<std::mutex> lock(g_global_db_mutex);
  InstallGlobalTuneDbLocked(std::move(db));
}

TuneDb* GlobalTuneDb() {
  if (g_global_db_probed.load(std::memory_order_acquire)) {
    return g_global_db.load(std::memory_order_acquire);
  }
  std::lock_guard<std::mutex> lock(g_global_db_mutex);
  if (!g_global_db_resolved) {
    g_global_db_resolved = true;
    if (const char* env = std::getenv("GMORPH_TUNE_DB"); env != nullptr && *env != '\0') {
      auto db = std::make_shared<TuneDb>();
      db->Load(env);
      InstallGlobalTuneDbLocked(std::move(db));
    }
    g_global_db_probed.store(true, std::memory_order_release);
  }
  return g_global_db.load(std::memory_order_acquire);
}

}  // namespace gmorph::kernels
