// The persistent tuning DB: maps problem descriptors to autotuned solver
// winners so warm processes plan at full speed without re-benchmarking.
//
// On-disk format ("gmorph-tunedb v1", text, one record per line):
//
//   gmorph-tunedb v1
//   fingerprint <hex>
//   entry op=gemm_nn m=8 k=27 n=1024 aux0=0 aux1=0 threads=4
//         solver=gemm.direct gflops=10.5 ms=0.034   (one line on disk)
//
// Entries are content-addressed by the full problem descriptor (family, all
// dims, thread count); the fingerprint line hashes the compiler, optimization
// level, and target architecture, so a DB tuned by a different build is
// ignored rather than trusted. Saves are atomic (tmp + rename), matching the
// evaluation-cache discipline, and the default location sits next to the
// eval cache ($GMORPH_CACHE_DIR, else gmorph_bench_cache/).
//
// Thread safety: Lookup takes a shared lock, Record an exclusive one, so a
// serving process can keep resolving while an autotune pass records winners.
// Entries are never erased and std::map nodes are address-stable, so pointers
// returned by Lookup stay valid for the DB's lifetime.
#ifndef GMORPH_SRC_KERNELS_TUNE_DB_H_
#define GMORPH_SRC_KERNELS_TUNE_DB_H_

#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "src/kernels/solver.h"

namespace gmorph::kernels {

inline constexpr char kTuneDbHeaderPrefix[] = "gmorph-tunedb";
inline constexpr char kTuneDbHeader[] = "gmorph-tunedb v1";

// Hash of the toolchain + target this binary was built with. Tuned winners
// only transfer between identical builds.
const std::string& BuildFingerprint();

class TuneDb {
 public:
  struct Entry {
    std::string solver;  // winner name, e.g. "gemm.packed"
    double gflops = 0.0;
    double ms = 0.0;
    // Registry lookup cached when the entry is inserted; nullptr when the
    // recorded name is unknown to this build (resolution then falls back to
    // the heuristic).
    const Solver* resolved = nullptr;
  };

  struct LoadStats {
    bool ok = false;      // file opened and header parsed
    int entries = 0;      // entries loaded
    int skipped = 0;      // malformed or unresolvable lines dropped
    bool fingerprint_mismatch = false;  // foreign build: entries ignored
  };

  TuneDb() = default;

  // Loads `path`, dropping (not failing on) malformed lines; the strict
  // linter lives in src/analysis/tunedb_verifier. A missing file is not an
  // error — the DB just stays empty.
  LoadStats Load(const std::string& path);

  // Writes the full DB atomically (tmp + rename in the target directory).
  bool Save(const std::string& path) const;

  const Entry* Lookup(const ProblemDesc& desc) const;
  bool Contains(const ProblemDesc& desc) const;
  void Record(const ProblemDesc& desc, Entry entry);
  int64_t size() const;
  void ForEach(const std::function<void(const ProblemDesc&, const Entry&)>& fn) const;

  TuneDb(const TuneDb&) = delete;
  TuneDb& operator=(const TuneDb&) = delete;

 private:
  mutable std::shared_mutex mutex_;
  std::map<ProblemDesc, Entry> entries_;
};

// One entry line, both directions. Shared with the analysis-layer linter so
// the loader and the verifier can never drift on the format.
bool ParseTuneEntryLine(const std::string& line, ProblemDesc* desc, TuneDb::Entry* entry,
                        std::string* error);
std::string FormatTuneEntryLine(const ProblemDesc& desc, const TuneDb::Entry& entry);

// DB location: `override_path` if non-empty, else $GMORPH_TUNE_DB, else
// "<cache dir>/gmorph.tunedb" where the cache dir is $GMORPH_CACHE_DIR or
// gmorph_bench_cache (the evaluation cache's resolution rule).
std::string ResolveTuneDbPath(const std::string& override_path = "");

// The DB kernel resolution consults. Starts null (pure heuristic dispatch);
// the first call loads $GMORPH_TUNE_DB automatically when that is set, so
// every binary honors a tuned DB without wiring. Reading is one atomic load.
TuneDb* GlobalTuneDb();
// Installs (or clears, with nullptr) the global DB. Tests and the CLI use
// this; the shared_ptr keeps the previous DB alive until swapped out.
void SetGlobalTuneDb(std::shared_ptr<TuneDb> db);

}  // namespace gmorph::kernels

#endif  // GMORPH_SRC_KERNELS_TUNE_DB_H_
