// The built-in GEMM solvers: the register-tiled direct path, the
// cache-blocked packed path, the narrow-N dot path, and the reference loops.
// All four compute the same logical product C[M,N] (+)= A·B over the strided
// views in GemmCall and produce results that are bitwise independent of the
// thread count (work is chunked on fixed grains, never on the worker count).
#include <algorithm>
#include <cstring>

#include "src/common/parallel_for.h"
#include "src/kernels/builtin_solvers.h"
#include "src/kernels/scratch.h"
#include "src/kernels/solver.h"

namespace gmorph::kernels {
namespace {

#define GMORPH_RESTRICT __restrict__

// Register tile of the wide-N micro-kernel: MR x 32 accumulators held in
// registers; the j-loop over kNR auto-vectorizes (no branches, restrict
// pointers, fixed trip count).
constexpr int64_t kNR = 32;
constexpr int64_t kPackMR = 6;  // packed path: panels are zero-padded to kPackMR
// Direct path: 8-row tiles (16 accumulator vectors on 8-wide FMA units), then
// 4-row, then single-row for the tail.
constexpr int64_t kDirectMR = 8;
// Cache blocking for the packed path.
constexpr int64_t kMC = 96;
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 1024;
// Dot-product tile: kLanes partial sums vectorize over K; kJB output columns
// share one pass over the A row.
constexpr int64_t kLanes = 16;
constexpr int64_t kJB = 4;
constexpr int64_t kRowGrain = 16;  // ParallelFor grain over output rows
// The direct solver materializes a row-major B for the NT layout; past this
// many scratch floats the packed path is strictly better, so the solver
// declares itself inapplicable rather than thrash the arena.
constexpr int64_t kDirectMaxPackFloats = int64_t{1} << 22;

// The f32 solvers serve any GEMM family, but only f32 problems — int8 descs
// belong to the qgemm solvers (int8_solvers.cc).
bool IsGemmFamily(const ProblemDesc& desc) {
  return (desc.op == OpFamily::kGemmNN || desc.op == OpFamily::kGemmNT ||
          desc.op == OpFamily::kGemmTN) &&
         desc.dtype == DType::kF32;
}

// ---- Direct (unpacked) wide path -----------------------------------------

// MR rows x kNR cols; A is read through scalar broadcasts so any strides work,
// B rows must be contiguous (cs == 1).
template <int MR>
void DirectTile(int64_t k, const float* GMORPH_RESTRICT a, int64_t ars, int64_t acs,
                const float* GMORPH_RESTRICT b, int64_t ldb, float* GMORPH_RESTRICT c,
                int64_t ldc, bool accumulate) {
  float acc[MR * kNR];
  std::memset(acc, 0, sizeof(acc));
  for (int64_t p = 0; p < k; ++p) {
    const float* GMORPH_RESTRICT bp = b + p * ldb;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * ars + p * acs];
      float* GMORPH_RESTRICT accr = acc + r * kNR;
      for (int j = 0; j < kNR; ++j) {
        accr[j] += av * bp[j];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* GMORPH_RESTRICT cr = c + r * ldc;
    const float* GMORPH_RESTRICT ar = acc + r * kNR;
    if (accumulate) {
      for (int j = 0; j < kNR; ++j) {
        cr[j] += ar[j];
      }
    } else {
      for (int j = 0; j < kNR; ++j) {
        cr[j] = ar[j];
      }
    }
  }
}

// Column tail (nr < kNR), one row at a time with a runtime-bound j loop.
void DirectRowStrip(int64_t k, const float* a, int64_t ars, int64_t acs, const float* b,
                    int64_t ldb, int64_t jr, int64_t nr, float* c, bool accumulate) {
  float acc[kNR];
  std::memset(acc, 0, sizeof(acc));
  for (int64_t p = 0; p < k; ++p) {
    const float av = a[ars * 0 + p * acs];
    const float* bp = b + p * ldb + jr;
    for (int64_t j = 0; j < nr; ++j) {
      acc[j] += av * bp[j];
    }
  }
  float* cr = c + jr;
  if (accumulate) {
    for (int64_t j = 0; j < nr; ++j) {
      cr[j] += acc[j];
    }
  } else {
    for (int64_t j = 0; j < nr; ++j) {
      cr[j] = acc[j];
    }
  }
}

// C[M,N] over a B whose rows are contiguous; no packing, so only worthwhile
// when the working set is cache-resident.
void GemmWideDirect(int64_t m, int64_t k, int64_t n, const MatView& a, const float* b,
                    int64_t ldb, float* c, bool accumulate) {
  ParallelFor(0, m, kRowGrain, [&](int64_t row_lo, int64_t row_hi) {
    const int64_t n_full = n - n % kNR;
    for (int64_t jr = 0; jr < n_full; jr += kNR) {
      int64_t ir = row_lo;
      for (; ir + kDirectMR <= row_hi; ir += kDirectMR) {
        DirectTile<kDirectMR>(k, a.at(ir, 0), a.rs, a.cs, b + jr, ldb, c + ir * n + jr, n,
                              accumulate);
      }
      for (; ir + 4 <= row_hi; ir += 4) {
        DirectTile<4>(k, a.at(ir, 0), a.rs, a.cs, b + jr, ldb, c + ir * n + jr, n, accumulate);
      }
      for (; ir < row_hi; ++ir) {
        DirectTile<1>(k, a.at(ir, 0), a.rs, a.cs, b + jr, ldb, c + ir * n + jr, n, accumulate);
      }
    }
    if (n_full < n) {
      for (int64_t ir = row_lo; ir < row_hi; ++ir) {
        DirectRowStrip(k, a.at(ir, 0), a.rs, a.cs, b, ldb, n_full, n - n_full, c + ir * n,
                       accumulate);
      }
    }
  });
}

// ---- Packed (cache-blocked) wide path ------------------------------------

// Packs A block [i0, i0+mc) x [p0, p0+kc) into kPackMR-row panels, zero-padded
// so the micro-kernel never sees a partial panel.
void PackA(const MatView& a, int64_t i0, int64_t mc, int64_t p0, int64_t kc, float* dst) {
  for (int64_t ir = 0; ir < mc; ir += kPackMR) {
    const int64_t mr = std::min(kPackMR, mc - ir);
    for (int64_t p = 0; p < kc; ++p) {
      float* out = dst + p * kPackMR;
      const float* src = a.at(i0 + ir, p0 + p);
      for (int64_t r = 0; r < mr; ++r) {
        out[r] = src[r * a.rs];
      }
      for (int64_t r = mr; r < kPackMR; ++r) {
        out[r] = 0.0f;
      }
    }
    dst += kc * kPackMR;
  }
}

// Packs B block [p0, p0+kc) x [j0, j0+nc) into kNR-column panels, zero-padded.
void PackB(const MatView& b, int64_t p0, int64_t kc, int64_t j0, int64_t nc, float* dst) {
  for (int64_t jr = 0; jr < nc; jr += kNR) {
    const int64_t nr = std::min(kNR, nc - jr);
    if (b.cs == 1) {
      for (int64_t p = 0; p < kc; ++p) {
        float* out = dst + p * kNR;
        const float* src = b.at(p0 + p, j0 + jr);
        for (int64_t j = 0; j < nr; ++j) {
          out[j] = src[j];
        }
        for (int64_t j = nr; j < kNR; ++j) {
          out[j] = 0.0f;
        }
      }
    } else {
      // Transposed source (the NT variant): walk columns so reads stay
      // contiguous in the caller's array.
      for (int64_t j = 0; j < nr; ++j) {
        const float* src = b.at(p0, j0 + jr + j);
        float* out = dst + j;
        for (int64_t p = 0; p < kc; ++p) {
          out[p * kNR] = src[p * b.rs];
        }
      }
      for (int64_t j = nr; j < kNR; ++j) {
        float* out = dst + j;
        for (int64_t p = 0; p < kc; ++p) {
          out[p * kNR] = 0.0f;
        }
      }
    }
    dst += kc * kNR;
  }
}

// kPackMR x kNR micro-kernel over packed panels.
void PackedMicroKernel(int64_t kc, const float* GMORPH_RESTRICT pa,
                       const float* GMORPH_RESTRICT pb, float* GMORPH_RESTRICT acc) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* GMORPH_RESTRICT ap = pa + p * kPackMR;
    const float* GMORPH_RESTRICT bp = pb + p * kNR;
    for (int r = 0; r < kPackMR; ++r) {
      const float av = ap[r];
      float* GMORPH_RESTRICT accr = acc + r * kNR;
      for (int j = 0; j < kNR; ++j) {
        accr[j] += av * bp[j];
      }
    }
  }
}

// C[M,N] with A/B packed into scratch. Row blocks run in parallel; B panels
// are packed once up front and shared read-only across workers.
void GemmWidePacked(int64_t m, int64_t k, int64_t n, const MatView& a, const MatView& b,
                    float* c, bool accumulate) {
  ScratchScope scope;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t col_panels = (nc + kNR - 1) / kNR;
    // Panel layout: all KC-blocks of packed B, back to back.
    float* pb_all = scope.AllocFloats(static_cast<size_t>(col_panels * kNR * k));
    {
      float* dst = pb_all;
      for (int64_t pc = 0; pc < k; pc += kKC) {
        const int64_t kc = std::min(kKC, k - pc);
        PackB(b, pc, kc, jc, nc, dst);
        dst += col_panels * kNR * kc;
      }
    }
    const int64_t row_blocks = (m + kMC - 1) / kMC;
    ParallelFor(0, row_blocks, 1, [&](int64_t blk_lo, int64_t blk_hi) {
      ScratchScope worker_scope;  // workers run on other threads: own arena
      float* pa = worker_scope.AllocFloats(static_cast<size_t>(kMC * kKC));
      float acc[kPackMR * kNR];
      for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
        const int64_t ic = blk * kMC;
        const int64_t mc = std::min(kMC, m - ic);
        const float* pb_block = pb_all;
        for (int64_t pc = 0; pc < k; pc += kKC) {
          const int64_t kc = std::min(kKC, k - pc);
          PackA(a, ic, mc, pc, kc, pa);
          const bool first = pc == 0 && !accumulate;
          for (int64_t jr = 0; jr < nc; jr += kNR) {
            const int64_t nr = std::min(kNR, nc - jr);
            const float* pb_panel = pb_block + (jr / kNR) * kc * kNR;
            for (int64_t ir = 0; ir < mc; ir += kPackMR) {
              const int64_t mr = std::min(kPackMR, mc - ir);
              std::memset(acc, 0, sizeof(acc));
              PackedMicroKernel(kc, pa + ir * kc, pb_panel, acc);
              float* ctile = c + (ic + ir) * n + jc + jr;
              for (int64_t r = 0; r < mr; ++r) {
                float* cr = ctile + r * n;
                const float* ar = acc + r * kNR;
                if (first) {
                  for (int64_t j = 0; j < nr; ++j) {
                    cr[j] = ar[j];
                  }
                } else {
                  for (int64_t j = 0; j < nr; ++j) {
                    cr[j] += ar[j];
                  }
                }
              }
            }
          }
          pb_block += col_panels * kNR * kc;
        }
      }
    });
  }
}

// ---- Narrow-N dot-product path -------------------------------------------

// C[i, j..j+JB) = dot(A row i, B^T rows j..j+JB). The lane accumulators
// vectorize over K; the scalar tail covers K % kLanes.
template <int JB>
void DotTile(int64_t k, const float* GMORPH_RESTRICT a, const float* GMORPH_RESTRICT bt,
             int64_t ldbt, float* GMORPH_RESTRICT c, bool accumulate) {
  float acc[JB][kLanes];
  std::memset(acc, 0, sizeof(acc));
  int64_t p = 0;
  for (; p + kLanes <= k; p += kLanes) {
    const float* GMORPH_RESTRICT ap = a + p;
    for (int jj = 0; jj < JB; ++jj) {
      const float* GMORPH_RESTRICT bp = bt + jj * ldbt + p;
      float* GMORPH_RESTRICT lane = acc[jj];
      for (int l = 0; l < kLanes; ++l) {
        lane[l] += ap[l] * bp[l];
      }
    }
  }
  for (int jj = 0; jj < JB; ++jj) {
    float s = 0.0f;
    for (int l = 0; l < kLanes; ++l) {
      s += acc[jj][l];
    }
    for (int64_t pt = p; pt < k; ++pt) {
      s += a[pt] * bt[jj * ldbt + pt];
    }
    c[jj] = accumulate ? c[jj] + s : s;
  }
}

// C[M,N] for narrow N: needs contiguous A rows and contiguous B^T rows, so
// either operand with the wrong layout is transposed into scratch first.
void GemmDot(int64_t m, int64_t k, int64_t n, const MatView& a, const MatView& b, float* c,
             bool accumulate) {
  ScratchScope scope;
  const float* arows = a.data;
  int64_t lda = a.rs;
  if (a.cs != 1) {
    float* packed = scope.AllocFloats(static_cast<size_t>(m * k));
    // Source columns are contiguous (rs == 1 for the TN view).
    for (int64_t i = 0; i < m; ++i) {
      const float* src = a.at(i, 0);
      float* dst = packed + i * k;
      for (int64_t p = 0; p < k; ++p) {
        dst[p] = src[p * a.cs];
      }
    }
    arows = packed;
    lda = k;
  }
  const float* btrows = b.data;
  int64_t ldbt = b.cs;
  if (b.rs != 1) {
    float* packed = scope.AllocFloats(static_cast<size_t>(n * k));
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b.at(p, 0);
      for (int64_t j = 0; j < n; ++j) {
        packed[j * k + p] = src[j * b.cs];
      }
    }
    btrows = packed;
    ldbt = k;
  }
  ParallelFor(0, m, kRowGrain, [&](int64_t row_lo, int64_t row_hi) {
    for (int64_t i = row_lo; i < row_hi; ++i) {
      const float* ai = arows + i * lda;
      float* ci = c + i * n;
      int64_t j = 0;
      for (; j + kJB <= n; j += kJB) {
        DotTile<kJB>(k, ai, btrows + j * ldbt, ldbt, ci + j, accumulate);
      }
      for (; j < n; ++j) {
        DotTile<1>(k, ai, btrows + j * ldbt, ldbt, ci + j, accumulate);
      }
    }
  });
}

// ---- Solver wrappers ------------------------------------------------------

class GemmRef final : public GemmSolver {
 public:
  const char* name() const override { return "gemm.ref"; }
  bool IsApplicable(const ProblemDesc& desc) const override { return IsGemmFamily(desc); }
  void Run(const ProblemDesc& desc, const GemmCall& call) const override {
    // The views are canonical (MakeGemmCall), so the data pointers are the
    // original row-major arrays and the reference loops replay exactly.
    switch (desc.op) {
      case OpFamily::kGemmNN:
        RefMatmulNN(call.a.data, call.b.data, call.c, desc.m, desc.k, desc.n, call.accumulate);
        break;
      case OpFamily::kGemmNT:
        RefMatmulNT(call.a.data, call.b.data, call.c, desc.m, desc.k, desc.n, call.accumulate);
        break;
      case OpFamily::kGemmTN:
        RefMatmulTN(call.a.data, call.b.data, call.c, desc.k, desc.m, desc.n, call.accumulate);
        break;
      case OpFamily::kMaxPool:
        break;
    }
  }
};

class GemmDirect final : public GemmSolver {
 public:
  const char* name() const override { return "gemm.direct"; }
  bool IsApplicable(const ProblemDesc& desc) const override {
    if (!IsGemmFamily(desc)) {
      return false;
    }
    // The NT layout has strided B rows; the solver materializes a row-major
    // copy, which stops paying off past the arena-friendly bound.
    if (desc.op == OpFamily::kGemmNT) {
      return desc.k * desc.n <= kDirectMaxPackFloats;
    }
    return true;
  }
  int64_t WorkspaceBytes(const ProblemDesc& desc) const override {
    return desc.op == OpFamily::kGemmNT
               ? desc.k * desc.n * static_cast<int64_t>(sizeof(float))
               : 0;
  }
  void Run(const ProblemDesc& desc, const GemmCall& call) const override {
    if (call.b.cs == 1) {
      GemmWideDirect(desc.m, desc.k, desc.n, call.a, call.b.data, call.b.rs, call.c,
                     call.accumulate);
      return;
    }
    // NT: materialize row-major B once, then run the direct kernel over it.
    ScratchScope scope;
    float* bmat = scope.AllocFloats(static_cast<size_t>(desc.k * desc.n));
    for (int64_t j = 0; j < desc.n; ++j) {
      const float* src = call.b.at(0, j);
      for (int64_t p = 0; p < desc.k; ++p) {
        bmat[p * desc.n + j] = src[p * call.b.rs];
      }
    }
    GemmWideDirect(desc.m, desc.k, desc.n, call.a, bmat, desc.n, call.c, call.accumulate);
  }
};

class GemmPacked final : public GemmSolver {
 public:
  const char* name() const override { return "gemm.packed"; }
  bool IsApplicable(const ProblemDesc& desc) const override { return IsGemmFamily(desc); }
  int64_t WorkspaceBytes(const ProblemDesc& desc) const override {
    const int64_t nc = std::min<int64_t>(desc.n, kNC);
    const int64_t col_panels = (nc + kNR - 1) / kNR;
    return (col_panels * kNR * desc.k + kMC * kKC) * static_cast<int64_t>(sizeof(float));
  }
  void Run(const ProblemDesc& desc, const GemmCall& call) const override {
    GemmWidePacked(desc.m, desc.k, desc.n, call.a, call.b, call.c, call.accumulate);
  }
};

class GemmDotSolverImpl final : public GemmSolver {
 public:
  const char* name() const override { return "gemm.dot"; }
  bool IsApplicable(const ProblemDesc& desc) const override { return IsGemmFamily(desc); }
  int64_t WorkspaceBytes(const ProblemDesc& desc) const override {
    int64_t floats = 0;
    if (desc.op == OpFamily::kGemmTN && desc.m > 1) {
      floats += desc.m * desc.k;  // packs A rows contiguous
    }
    if (desc.op != OpFamily::kGemmNT && desc.n > 1) {
      floats += desc.n * desc.k;  // packs B^T rows contiguous
    }
    return floats * static_cast<int64_t>(sizeof(float));
  }
  void Run(const ProblemDesc& desc, const GemmCall& call) const override {
    GemmDot(desc.m, desc.k, desc.n, call.a, call.b, call.c, call.accumulate);
  }
};

}  // namespace

const GemmSolver* GemmRefSolver() {
  static const GemmRef solver;
  return &solver;
}

const GemmSolver* GemmDirectSolver() {
  static const GemmDirect solver;
  return &solver;
}

const GemmSolver* GemmPackedSolver() {
  static const GemmPacked solver;
  return &solver;
}

const GemmSolver* GemmDotSolver() {
  static const GemmDotSolverImpl solver;
  return &solver;
}

// ---- Reference loops ------------------------------------------------------

void RefMatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  }
  // i-k-j order: the inner loop streams over contiguous rows of B and C.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) {
        continue;
      }
      const float* bp = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

void RefMatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
                 bool accumulate) {
  // C[i,p] = sum_j A[i,j] * B[p,j]; the dot product runs over contiguous rows.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * n;
    float* ci = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* bp = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        acc += ai[j] * bp[j];
      }
      ci[p] = accumulate ? ci[p] + acc : acc;
    }
  }
}

void RefMatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(k * n) * sizeof(float));
  }
  // C[p,j] += A[i,p] * B[i,j]; rank-1 updates keep the inner loop contiguous.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    const float* bi = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) {
        continue;
      }
      float* cp = c + p * n;
      for (int64_t j = 0; j < n; ++j) {
        cp[j] += av * bi[j];
      }
    }
  }
}

}  // namespace gmorph::kernels
