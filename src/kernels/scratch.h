// Thread-local scratch arena for kernel workspace (im2col columns, GEMM
// packing panels). Allocation is a bump pointer into blocks that persist for
// the thread's lifetime, so steady-state kernels reuse warm memory instead of
// hitting the heap once per call.
//
// Lifetime rules:
//  - Open a ScratchScope at the top of a kernel; every AllocFloats() through
//    that scope (or a nested one) is released when the scope closes.
//  - Pointers are valid until their scope closes. Never store them across
//    calls and never hand them to another thread: the arena is thread-local,
//    and a parallel worker must open its own scope inside the parallel region.
//  - Scopes nest like a stack; closing out of order is a bug (checked).
#ifndef GMORPH_SRC_KERNELS_SCRATCH_H_
#define GMORPH_SRC_KERNELS_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace gmorph {

class ScratchScope;

class ScratchArena {
 public:
  // The calling thread's arena (created on first use).
  static ScratchArena& ThreadLocal();

  // Bytes of backing memory newly allocated from the heap, across all
  // threads, since process start. Flat after warmup — the benchmark's
  // bytes-per-op metric is a delta of this plus the tensor counter.
  static int64_t TotalHeapBytes();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

 private:
  friend class ScratchScope;

  struct Block {
    std::unique_ptr<float[]> data;
    size_t capacity = 0;  // floats
    size_t used = 0;      // floats
  };

  ScratchArena() = default;

  float* AllocFloats(size_t n);

  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };
  Mark Save() const;
  void Restore(const Mark& mark);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // blocks_[current_] receives the next allocation
};

// RAII window into the thread-local arena.
class ScratchScope {
 public:
  ScratchScope() : arena_(ScratchArena::ThreadLocal()), mark_(arena_.Save()) {}
  ~ScratchScope() { arena_.Restore(mark_); }

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  // Contents are uninitialized (reused allocations carry stale data).
  float* AllocFloats(size_t n) { return arena_.AllocFloats(n); }

  // Typed scratch for the non-f32 kernels (u8/s8 operands, s16 packing
  // panels, s32 accumulators): n elements of T carved from the float arena,
  // rounded up to whole float slots. Same lifetime rules as AllocFloats.
  template <typename T>
  T* Alloc(size_t n) {
    static_assert(std::is_trivial_v<T> && alignof(T) <= alignof(float),
                  "scratch types must pack into the float arena");
    const size_t floats = (n * sizeof(T) + sizeof(float) - 1) / sizeof(float);
    return reinterpret_cast<T*>(arena_.AllocFloats(floats));
  }

 private:
  ScratchArena& arena_;
  ScratchArena::Mark mark_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_KERNELS_SCRATCH_H_
