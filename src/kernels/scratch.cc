#include "src/kernels/scratch.h"

#include <algorithm>
#include <atomic>
#include <new>

#include "src/common/check.h"

namespace gmorph {
namespace {

// Floats per 64-byte cache line; block capacities and allocations are rounded
// up to this so consecutive allocations stay line-aligned.
constexpr size_t kAlignFloats = 16;
constexpr size_t kMinBlockFloats = 1u << 18;  // 1 MiB

std::atomic<int64_t> g_heap_bytes{0};

size_t RoundUp(size_t n) { return (n + kAlignFloats - 1) & ~(kAlignFloats - 1); }

}  // namespace

ScratchArena& ScratchArena::ThreadLocal() {
  static thread_local ScratchArena arena;
  return arena;
}

int64_t ScratchArena::TotalHeapBytes() { return g_heap_bytes.load(std::memory_order_relaxed); }

float* ScratchArena::AllocFloats(size_t n) {
  n = RoundUp(n > 0 ? n : 1);
  // Scan from the current block forward; blocks are only ever appended, so
  // saved marks (block index, used offset) stay valid across growth.
  while (current_ < blocks_.size()) {
    Block& b = blocks_[current_];
    if (b.used + n <= b.capacity) {
      float* p = b.data.get() + b.used;
      b.used += n;
      return p;
    }
    ++current_;
  }
  size_t capacity = std::max(RoundUp(n), kMinBlockFloats);
  if (!blocks_.empty()) {
    capacity = std::max(capacity, blocks_.back().capacity * 2);
  }
  Block block;
  block.data = std::make_unique<float[]>(capacity);
  block.capacity = capacity;
  block.used = n;
  g_heap_bytes.fetch_add(static_cast<int64_t>(capacity * sizeof(float)),
                         std::memory_order_relaxed);
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  return blocks_[current_].data.get();
}

ScratchArena::Mark ScratchArena::Save() const {
  Mark mark;
  mark.block = current_;
  mark.used = current_ < blocks_.size() ? blocks_[current_].used : 0;
  return mark;
}

void ScratchArena::Restore(const Mark& mark) {
  GMORPH_CHECK(mark.block <= current_, "scratch scopes closed out of order");
  for (size_t i = blocks_.size(); i-- > mark.block + 1;) {
    blocks_[i].used = 0;
  }
  if (mark.block < blocks_.size()) {
    blocks_[mark.block].used = mark.used;
  }
  current_ = mark.block;
}

}  // namespace gmorph
