// N independent engine replicas with prebound batch storage and FusedInf-style
// hot-swap (PAPERS.md: swapping fused models in and out under load for
// on-demand scenarios).
//
// Each slot owns an EngineReplica (model + engine, no mutable state shared
// with siblings — see src/runtime/engine.h) plus one preallocated input
// tensor per batch size 1..max_batch. A batch run gathers request rows into
// the prebound input and executes the engine, so the steady-state serving
// path performs zero tensor-storage allocations. A slot mutex serializes the
// slot's worker against Swap(): the incoming engine is warmed before the lock
// is taken and the in-flight batch completes on the old engine, so a swap
// under full load drops no request.
#ifndef GMORPH_SRC_SERVING_REPLICA_POOL_H_
#define GMORPH_SRC_SERVING_REPLICA_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/runtime/engine.h"

namespace gmorph {

class ReplicaPool {
 public:
  // `replicas` must be non-empty; every slot serves `per_sample_input`-shaped
  // requests at batch sizes up to `max_batch`. With `warm` set (the default)
  // each engine runs once per batch size at construction so bindings and
  // scratch arenas are grown before serving starts.
  ReplicaPool(std::vector<EngineReplica> replicas, const Shape& per_sample_input,
              int max_batch, bool warm = true);

  int size() const { return static_cast<int>(slots_.size()); }
  int max_batch() const { return max_batch_; }

  // Executes one batch on `slot`: copies `rows` (per-sample tensors; null
  // entries mean a zero payload) into the slot's prebound batch input of size
  // rows.size() and runs the engine. Called by the slot's worker thread;
  // blocks a concurrent Swap() of the same slot until the batch completes.
  void RunBatch(int slot, const std::vector<const Tensor*>& rows);

  // Hot-swap: atomically replaces `slot`'s replica and returns the previous
  // one. With `warm` set the incoming engine is run once per batch size on
  // its own freshly allocated inputs *before* the slot lock is taken, so the
  // serving path never executes a cold engine (warm-up allocation happens on
  // the swapping control thread, keeping the workers' steady state
  // zero-alloc). The in-flight batch finishes on the old engine untouched.
  EngineReplica Swap(int slot, EngineReplica incoming, bool warm = true);

  int64_t swap_count() const { return swap_count_.load(std::memory_order_relaxed); }

  // Test introspection: the engine currently installed in `slot`. Not safe
  // against a concurrent Swap() of the same slot.
  InferenceEngine* engine(int slot);

 private:
  struct Slot {
    EngineReplica replica;
    std::mutex mu;                     // serializes RunBatch vs Swap
    std::vector<Tensor> batch_inputs;  // [b-1] = prebound input of batch size b
  };

  Shape per_sample_input_;
  int max_batch_ = 1;
  int64_t elems_per_sample_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<int64_t> swap_count_{0};
};

}  // namespace gmorph

#endif  // GMORPH_SRC_SERVING_REPLICA_POOL_H_
