#include "src/serving/scheduler.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/obs/trace.h"

namespace gmorph {

ServiceTimeTable::ServiceTimeTable(std::vector<double> ms) : ms_(std::move(ms)) {
  GMORPH_CHECK(!ms_.empty(), "service-time table must have at least batch size 1");
  min_ms_ = ms_.front();
  for (double m : ms_) {
    GMORPH_CHECK(m > 0.0, "service times must be positive");
    min_ms_ = std::min(min_ms_, m);
  }
}

double ServiceTimeTable::BatchMs(int batch) const {
  GMORPH_CHECK(batch >= 1 && batch <= max_batch());
  return ms_[static_cast<size_t>(batch - 1)];
}

ServiceTimeTable CalibrateServiceTimes(InferenceEngine& engine, const Shape& per_sample_input,
                                       int max_batch, int repeats, int warmup) {
  GMORPH_CHECK(max_batch >= 1 && repeats >= 1);
  obs::TraceSpan calibrate_span("serving/calibrate", obs::TraceCat::kServing);
  std::vector<double> service(static_cast<size_t>(max_batch));
  for (int b = 1; b <= max_batch; ++b) {
    // One preallocated input per batch size, reused across every calibration
    // run — measured times then exclude input-allocation noise and the
    // engine's steady-state (warmed binding) path is what gets calibrated.
    const Tensor input = Tensor::Zeros(per_sample_input.WithBatch(b));
    service[static_cast<size_t>(b - 1)] = MeasureEngineLatencyMs(engine, input, warmup, repeats);
  }
  return ServiceTimeTable(std::move(service));
}

std::vector<double> GenerateArrivalsMs(double arrival_qps, int num_requests, uint64_t seed) {
  GMORPH_CHECK(arrival_qps > 0.0 && num_requests > 0);
  Rng rng(seed);
  std::vector<double> arrival(static_cast<size_t>(num_requests));
  double t = 0.0;
  const double mean_gap_ms = 1000.0 / arrival_qps;
  for (auto& a : arrival) {
    double u = rng.NextDouble();
    while (u <= 1e-12) {
      u = rng.NextDouble();
    }
    t += -std::log(u) * mean_gap_ms;
    a = t;
  }
  return arrival;
}

std::vector<double> GenerateBurstyArrivalsMs(double mean_qps, double burst_factor,
                                             double phase_ms, int num_requests, uint64_t seed) {
  GMORPH_CHECK(mean_qps > 0.0 && num_requests > 0);
  GMORPH_CHECK(burst_factor >= 1.0 && phase_ms > 0.0);
  Rng rng(seed);
  std::vector<double> arrival(static_cast<size_t>(num_requests));
  double t = 0.0;
  bool burst = true;  // start hot, like real diurnal traces replayed from a peak
  double phase_end = phase_ms;
  for (auto& a : arrival) {
    const double rate = burst ? mean_qps * burst_factor : mean_qps / burst_factor;
    double u = rng.NextDouble();
    while (u <= 1e-12) {
      u = rng.NextDouble();
    }
    t += -std::log(u) * (1000.0 / rate);
    while (t > phase_end) {
      burst = !burst;
      phase_end += phase_ms;
    }
    a = t;
  }
  return arrival;
}

bool DeadlineUnmeetable(double now_ms, double deadline_ms, int queued_ahead,
                        const ServiceTimeTable& table, int max_batch, int servers) {
  GMORPH_CHECK(!table.empty());
  GMORPH_CHECK(queued_ahead >= 0 && servers >= 1);
  const int cap = std::max(1, std::min(max_batch, table.max_batch()));
  // Optimistic schedule: the queue ahead packs into completely full batches
  // spread evenly over all replicas, every batch round (including this
  // request's own) runs at the table's fastest service time, and every server
  // is free right now.
  const double batches_ahead = std::floor(static_cast<double>(queued_ahead) / cap);
  const double rounds_ahead = std::floor(batches_ahead / servers);
  const double earliest_completion = now_ms + (rounds_ahead + 1.0) * table.MinMs();
  return earliest_completion > deadline_ms;
}

ServingStats StatsBuilder::Finalize(double makespan_ms, const ServiceTimeTable& table) const {
  ServingStats stats;
  stats.service_time_ms = table.ms();
  stats.num_batches = num_batches_;
  stats.num_completed = static_cast<int>(latencies_.size());
  stats.num_shed = num_shed_;
  if (latencies_.empty()) {
    return stats;
  }
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  // Summing the *sorted* latencies keeps the mean bit-identical to the
  // pre-refactor simulator (floating-point addition order matters).
  double sum = 0.0;
  for (double l : sorted) {
    sum += l;
  }
  auto percentile = [&](double p) {
    const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  stats.mean_latency_ms = sum / static_cast<double>(latencies_.size());
  stats.p50_latency_ms = percentile(0.50);
  stats.p95_latency_ms = percentile(0.95);
  stats.p99_latency_ms = percentile(0.99);
  if (num_batches_ > 0) {
    stats.mean_batch_size =
        static_cast<double>(served_total_) / static_cast<double>(num_batches_);
  }
  stats.throughput_qps = makespan_ms > 0.0
                             ? static_cast<double>(served_total_) / (makespan_ms / 1000.0)
                             : 0.0;
  return stats;
}

ServingMetrics& ServingMetrics::Get() {
  static ServingMetrics* metrics = new ServingMetrics{
      obs::GetHistogram("serving.request_latency_ms"),
      obs::GetHistogram("serving.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256}),
      obs::GetHistogram("serving.queue_depth",
                        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
      obs::GetHistogram("serving.queue_wait_ms"),
      obs::GetCounter("serving.requests"),
      obs::GetCounter("serving.batches"),
      obs::GetCounter("serving.shed"),
      obs::GetCounter("serving.engine_swaps"),
  };
  return *metrics;
}

void NameServingTraceLanes(const char* prefix) {
  obs::SetVirtualLaneName(kServingServerLane, std::string(prefix) + "/server");
  for (int l = 0; l < kServingNumRequestLanes; ++l) {
    obs::SetVirtualLaneName(kServingRequestLaneBase + l,
                            std::string(prefix) + "/requests-" + std::to_string(l));
  }
}

void EmitRequestSpan(double anchor_us, double arrival_ms, double latency_ms,
                     int64_t request_index) {
  obs::RecordManualSpan(
      "request", obs::TraceCat::kServing, anchor_us + arrival_ms * 1e3, latency_ms * 1e3,
      kServingRequestLaneBase + static_cast<int>(request_index % kServingNumRequestLanes));
}

}  // namespace gmorph
