// Scheduler core shared by both serving backends.
//
// The serving layer executes one scheduling policy behind two backends:
//
//   - serving_sim.h   — deterministic virtual-time simulator (paper §7): the
//                       policy replayed over a Poisson arrival schedule with
//                       calibrated service times, bit-for-bit reproducible.
//   - server.h        — real threaded multi-model server: the same policy
//                       driving fused-engine replicas on worker threads under
//                       wall-clock load.
//
// Everything policy-shaped lives here so the two backends cannot drift:
// arrival-schedule generation, the calibrated service-time table (one shared
// calibration path — the sim and the server measure identically), batch
// forming, SLA-aware admission (shed a request whose deadline is provably
// unmeetable from the calibrated service times), the stats aggregation that
// turns per-request latencies into ServingStats, and the obs instruments /
// trace lanes both backends record through.
#ifndef GMORPH_SRC_SERVING_SCHEDULER_H_
#define GMORPH_SRC_SERVING_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "src/obs/metrics.h"
#include "src/runtime/engine.h"

namespace gmorph {

// Options shared by both scheduler backends. The virtual-time simulator uses
// every field; the threaded server takes max_batch / sla_ms from here and gets
// its arrival stream from the load generator.
struct ServingOptions {
  double arrival_qps = 200.0;  // Poisson arrival rate
  int num_requests = 500;
  int max_batch = 8;
  uint64_t seed = 1;
  // Latency calibration repetitions per batch size.
  int calibration_runs = 3;
  // SLA-aware admission: a request whose deadline (arrival + sla_ms) is
  // provably unmeetable from the calibrated service times is shed at admission
  // instead of queued (DeadlineUnmeetable below). 0 disables admission
  // control — every request is queued, as before the policy existed.
  double sla_ms = 0.0;
};

struct ServingStats {
  double throughput_qps = 0.0;  // completed requests / makespan
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_batch_size = 0.0;
  int num_batches = 0;
  int num_completed = 0;
  int num_shed = 0;  // rejected by SLA admission
  // service_time_ms[b-1] = calibrated latency of batch size b.
  std::vector<double> service_time_ms;
};

// Calibrated per-batch-size service times. Both backends price work through
// one of these, so the sim's virtual clock and the server's admission bound
// come from the same measurement.
class ServiceTimeTable {
 public:
  ServiceTimeTable() = default;
  // ms[b-1] = service time of batch size b; every entry must be > 0.
  explicit ServiceTimeTable(std::vector<double> ms);

  bool empty() const { return ms_.empty(); }
  int max_batch() const { return static_cast<int>(ms_.size()); }
  // batch in [1, max_batch()].
  double BatchMs(int batch) const;
  // Fastest entry: the sound lower bound admission control prices batches at.
  double MinMs() const { return min_ms_; }
  const std::vector<double>& ms() const { return ms_; }

 private:
  std::vector<double> ms_;
  double min_ms_ = 0.0;
};

// Measures the real per-batch-size latency of `engine` for batch sizes
// 1..max_batch (median of `repeats` timed runs after `warmup`, one
// preallocated input per batch size reused across every run so measured times
// exclude allocation noise). This is the single calibration path: the
// simulator's SimulateServing and the threaded server both use it.
ServiceTimeTable CalibrateServiceTimes(InferenceEngine& engine, const Shape& per_sample_input,
                                       int max_batch, int repeats, int warmup = 1);

// Poisson arrival schedule: absolute arrival times in milliseconds from t=0,
// exponential inter-arrival gaps with mean 1000/arrival_qps. Deterministic
// given the seed; the simulator replays this in virtual time and the bench
// load generator replays it against the wall clock.
std::vector<double> GenerateArrivalsMs(double arrival_qps, int num_requests, uint64_t seed);

// Bursty variant: a two-state modulated Poisson process alternating between a
// burst phase at `mean_qps * burst_factor` and a quiet phase at
// `mean_qps / burst_factor`, switching every `phase_ms` of generated time.
// burst_factor 1 degenerates to GenerateArrivalsMs.
std::vector<double> GenerateBurstyArrivalsMs(double mean_qps, double burst_factor,
                                             double phase_ms, int num_requests, uint64_t seed);

// Batch forming: how many of `queued` requests the next batch takes
// (continuous batching — everything waiting, capped by max_batch).
inline int NextBatchSize(int queued, int max_batch) {
  return queued < max_batch ? queued : max_batch;
}

// SLA admission: true when the deadline provably cannot be met. The bound is
// strictly optimistic — the `queued_ahead` requests ahead are assumed to ride
// completely full batches spread evenly over `servers` replicas, every batch
// is priced at the table's fastest service time, and in-flight work is
// ignored — so a true result means no schedule can save the request and
// shedding it is safe, while a false result only means "not provably late"
// (the request may still miss its SLA). The simulator passes servers = 1; the
// threaded server passes its replica count.
bool DeadlineUnmeetable(double now_ms, double deadline_ms, int queued_ahead,
                        const ServiceTimeTable& table, int max_batch, int servers = 1);

// Accumulates per-request / per-batch observations into ServingStats. Both
// backends finalize through this so percentile math cannot drift between the
// simulated and the real server. Not thread-safe; the threaded server records
// under its stats lock.
class StatsBuilder {
 public:
  void AddLatency(double latency_ms) { latencies_.push_back(latency_ms); }
  void AddBatch(int size) {
    ++num_batches_;
    served_total_ += size;
  }
  void AddShed(int count = 1) { num_shed_ += count; }

  int num_completed() const { return static_cast<int>(latencies_.size()); }
  int num_shed() const { return num_shed_; }

  // Sorts the recorded latencies (percentile index p*(n-1), clamped to the
  // observed range) and derives throughput from `makespan_ms`. The
  // service-time table is echoed into the stats for reporting.
  ServingStats Finalize(double makespan_ms, const ServiceTimeTable& table) const;

 private:
  std::vector<double> latencies_;
  int num_batches_ = 0;
  int64_t served_total_ = 0;
  int num_shed_ = 0;
};

// The obs instruments both backends record through, resolved once (metric
// names are part of the serving contract: DESIGN.md "Observability").
struct ServingMetrics {
  obs::Histogram& latency_ms;     // serving.request_latency_ms
  obs::Histogram& batch_size;     // serving.batch_size
  obs::Histogram& queue_depth;    // serving.queue_depth
  obs::Histogram& queue_wait_ms;  // serving.queue_wait_ms (admit -> run-start)
  obs::Counter& requests;       // serving.requests (admitted + shed)
  obs::Counter& batches;        // serving.batches
  obs::Counter& shed;           // serving.shed
  obs::Counter& swaps;          // serving.engine_swaps (hot-swaps applied)

  static ServingMetrics& Get();
};

// Trace lanes for per-request spans: requests round-robin across a small pool
// of virtual lanes so overlapping lifecycles stay readable in Perfetto. The
// simulator anchors them at the current real clock; the threaded server uses
// its real start-of-serving anchor. Lane ids sit clear of real thread ids.
inline constexpr int kServingServerLane = 1000;
inline constexpr int kServingRequestLaneBase = 1001;
inline constexpr int kServingNumRequestLanes = 32;

// Names the server lane and the request lanes (idempotent; `prefix` is "sim"
// or "serve" so the two backends' lanes stay distinguishable per export).
void NameServingTraceLanes(const char* prefix);

// Records one completed request as a manual span on its round-robin lane.
// `anchor_us` is the MonotonicNowNs-based microsecond timestamp of t=0 of the
// backend's clock. No-op when tracing is disabled.
void EmitRequestSpan(double anchor_us, double arrival_ms, double latency_ms,
                     int64_t request_index);

}  // namespace gmorph

#endif  // GMORPH_SRC_SERVING_SCHEDULER_H_
