// Virtual-time backend of the serving scheduler (paper §7, "Applicability of
// GMorph"): GMorph pays a one-time offline search cost to raise *online
// serving throughput*, and this module quantifies that claim deterministically.
//
// The simulator executes the exact scheduler policy the real threaded server
// (server.h) runs — continuous batching via NextBatchSize, SLA admission via
// DeadlineUnmeetable, stats via StatsBuilder — but advances a virtual clock
// priced by the calibrated service-time table instead of executing engines,
// so results are bit-for-bit reproducible from (seed, service times) alone.
//
// The flow: calibrate the engine's real batch latency for each batch size
// (CalibrateServiceTimes, shared with the server), then replay a Poisson
// arrival stream through a single-server queue with adaptive batching —
// whenever the server frees up, it takes every queued request up to
// `max_batch` and serves them as one batch. Reported latency is per-request
// queueing + service time.
#ifndef GMORPH_SRC_SERVING_SERVING_SIM_H_
#define GMORPH_SRC_SERVING_SERVING_SIM_H_

#include <vector>

#include "src/serving/scheduler.h"

namespace gmorph {

// Calibrates per-batch-size service times of `engine` (real execution), then
// simulates the queue. Deterministic given options.seed and the calibration.
ServingStats SimulateServing(InferenceEngine& engine, const Shape& per_sample_input,
                             const ServingOptions& options);

// Pure simulation entry point used by tests: takes precomputed service times
// (ms, indexed by batch size - 1) instead of measuring an engine. With
// options.sla_ms == 0 this reproduces the pre-scheduler simulator bit-for-bit
// (pinned by the golden regression test); with an SLA it additionally sheds
// provably-late requests at their virtual arrival instant.
ServingStats SimulateServingWithServiceTimes(const std::vector<double>& service_time_ms,
                                             const ServingOptions& options);

// Table-typed variant (the scheduler-core interface both backends share).
ServingStats SimulateServingWithTable(const ServiceTimeTable& table,
                                      const ServingOptions& options);

}  // namespace gmorph

#endif  // GMORPH_SRC_SERVING_SERVING_SIM_H_
