// Model-serving simulation (paper §7, "Applicability of GMorph"): GMorph pays
// a one-time offline search cost to raise *online serving throughput*. This
// module quantifies that claim: an event-driven queueing simulator with
// measured service times.
//
// The simulator first calibrates the engine's real batch latency for each
// batch size (on this machine), then replays a Poisson arrival stream through
// a single-server queue with adaptive batching: whenever the server frees up,
// it takes every queued request up to `max_batch` and serves them as one
// batch. Reported latency is per-request queueing + service time.
#ifndef GMORPH_SRC_SERVING_SERVING_SIM_H_
#define GMORPH_SRC_SERVING_SERVING_SIM_H_

#include <vector>

#include "src/runtime/engine.h"

namespace gmorph {

struct ServingOptions {
  double arrival_qps = 200.0;  // Poisson arrival rate
  int num_requests = 500;
  int max_batch = 8;
  uint64_t seed = 1;
  // Latency calibration repetitions per batch size.
  int calibration_runs = 3;
};

struct ServingStats {
  double throughput_qps = 0.0;  // completed requests / makespan
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_batch_size = 0.0;
  int num_batches = 0;
  // service_time_ms[b-1] = calibrated latency of batch size b.
  std::vector<double> service_time_ms;
};

// Calibrates per-batch-size service times of `engine` (real execution), then
// simulates the queue. Deterministic given options.seed and the calibration.
ServingStats SimulateServing(InferenceEngine& engine, const Shape& per_sample_input,
                             const ServingOptions& options);

// Pure simulation entry point used by tests: takes precomputed service times
// (ms, indexed by batch size - 1) instead of measuring an engine.
ServingStats SimulateServingWithServiceTimes(const std::vector<double>& service_time_ms,
                                             const ServingOptions& options);

}  // namespace gmorph

#endif  // GMORPH_SRC_SERVING_SERVING_SIM_H_
