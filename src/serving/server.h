// Real threaded multi-model server: the wall-clock backend of the serving
// scheduler core (scheduler.h).
//
// Architecture:
//
//   Submit() ──► lock-guarded request queue ──► worker threads (one per
//   replica slot) forming continuous/dynamic batches: each worker takes
//   everything queued up to max_batch (NextBatchSize — the same batch-forming
//   rule the virtual-time simulator executes), gathers the request payloads
//   into its replica's prebound batch storage, and runs the engine.
//
//   - SLA admission happens in Submit(): a request whose deadline is provably
//     unmeetable from the calibrated service-time table (DeadlineUnmeetable,
//     priced over all replicas) is shed immediately instead of queued.
//   - Hot-swap: SwapReplica() atomically replaces a slot's engine under load
//     (ReplicaPool::Swap); the in-flight batch completes on the old engine
//     and nothing queued is dropped.
//   - Observability: latency / batch-size / queue-depth flow into the same
//     serving.* histograms the simulator records, and completed requests are
//     emitted as per-request trace lanes anchored at the server's clock
//     origin, so a threaded-serving trace reads like a simulated one.
//
// Replica workers are dedicated threads (named "serve-<slot>"), deliberately
// *not* tasks on the process kernel pool: a batch's kernels parallelize on
// that pool, so parking long-running server loops there would starve the very
// parallelism each batch needs.
#ifndef GMORPH_SRC_SERVING_SERVER_H_
#define GMORPH_SRC_SERVING_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "src/serving/replica_pool.h"
#include "src/serving/scheduler.h"

namespace gmorph {

struct ServerOptions {
  int max_batch = 8;
  // SLA admission deadline per request (ms after arrival); 0 accepts all.
  double sla_ms = 0.0;
  // When non-empty: arms the flight recorder at construction and writes its
  // JSON dump here at every Drain() and at Stop() — the black-box record of
  // every scheduling decision this server took.
  std::string flight_recorder_path;
};

class ThreadedServer {
 public:
  // `pool` must outlive the server. `table` prices SLA admission; it may be
  // empty only when options.sla_ms == 0. Workers start immediately.
  ThreadedServer(ReplicaPool* pool, ServiceTimeTable table, const ServerOptions& options);
  ~ThreadedServer();  // Stop()s.

  ThreadedServer(const ThreadedServer&) = delete;
  ThreadedServer& operator=(const ThreadedServer&) = delete;

  // Submits one request (non-blocking). `sample` is the per-sample input row
  // (null = zero payload) and must stay alive until the request completes.
  // Returns false when SLA admission shed the request.
  bool Submit(const Tensor* sample = nullptr);

  // Blocks until every admitted request has completed.
  void Drain();

  // Drains the queue, then joins the workers. Idempotent; the destructor
  // calls it. Submit() after Stop() is an error.
  void Stop();

  // Hot-swap passthrough (ReplicaPool::Swap) that also counts the swap in
  // serving.engine_swaps. Safe under full load; returns the previous replica.
  EngineReplica SwapReplica(int slot, EngineReplica incoming, bool warm = true);

  // Snapshot of everything observed so far (callable mid-load or after Stop).
  // Throughput is completed work over [first arrival, last completion].
  ServingStats Stats() const;

  int64_t submitted() const;  // admitted + shed
  int64_t completed() const;
  int64_t shed() const;

  // Milliseconds since the server's clock origin (MonotonicNowNs based);
  // arrivals and latencies are measured on this clock.
  double NowMs() const;

 private:
  struct Pending {
    const Tensor* sample = nullptr;
    double arrival_ms = 0.0;
    int64_t index = 0;  // submission index (trace-lane round-robin)
  };

  void WorkerLoop(int slot);

  ReplicaPool* pool_;
  ServiceTimeTable table_;
  ServerOptions options_;
  int64_t t0_ns_ = 0;
  double anchor_us_ = 0.0;

  mutable std::mutex mu_;  // guards queue_, stats_, counters, stopping_
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  bool joined_ = false;
  int in_flight_ = 0;  // queued + currently-batched requests
  StatsBuilder stats_;
  int64_t submitted_ = 0;
  double first_arrival_ms_ = -1.0;
  double last_completion_ms_ = 0.0;

  std::vector<std::thread> workers_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_SERVING_SERVER_H_
