#include "src/serving/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

namespace gmorph {
namespace internal {
std::atomic<bool> g_flight_enabled{false};
}  // namespace internal

namespace {

// 64K events (~2.5MB): enough for ~10K requests with their full lifecycle
// before the ring wraps; a fixed footprint either way.
constexpr size_t kCapacity = size_t{1} << 16;

struct Slot {
  // ticket + 1 of the entry the payload belongs to; 0 = never written. The
  // release store publishes the payload; a reader seeing a different ticket
  // skips the slot (it is being overwritten).
  std::atomic<uint64_t> published{0};
  FlightEventKind kind = FlightEventKind::kAdmit;
  double t_ms = 0.0;
  int64_t request = -1;
  int64_t aux = -1;
};

struct Ring {
  std::atomic<uint64_t> cursor{0};  // next ticket
  Slot slots[kCapacity];
};

Ring& GlobalRing() {
  static Ring* ring = new Ring();  // leaked: lives for the process
  return *ring;
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAdmit:
      return "admit";
    case FlightEventKind::kShed:
      return "shed";
    case FlightEventKind::kEnqueue:
      return "enqueue";
    case FlightEventKind::kBatchFormed:
      return "batch-formed";
    case FlightEventKind::kRunStart:
      return "run-start";
    case FlightEventKind::kDone:
      return "done";
    case FlightEventKind::kSwap:
      return "swap";
  }
  return "unknown";
}

void StartFlightRecorder() {
  internal::g_flight_enabled.store(true, std::memory_order_relaxed);
}

void StopFlightRecorder() {
  internal::g_flight_enabled.store(false, std::memory_order_relaxed);
}

void ClearFlightRecorder() {
  Ring& ring = GlobalRing();
  for (Slot& slot : ring.slots) {
    slot.published.store(0, std::memory_order_relaxed);
  }
  ring.cursor.store(0, std::memory_order_release);
}

void RecordFlightEvent(FlightEventKind kind, double t_ms, int64_t request, int64_t aux) {
  if (!FlightRecorderEnabled()) {
    return;
  }
  Ring& ring = GlobalRing();
  const uint64_t ticket = ring.cursor.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[ticket % kCapacity];
  slot.kind = kind;
  slot.t_ms = t_ms;
  slot.request = request;
  slot.aux = aux;
  slot.published.store(ticket + 1, std::memory_order_release);
}

size_t FlightRecorderCapacity() { return kCapacity; }

uint64_t FlightTotalRecorded() {
  return GlobalRing().cursor.load(std::memory_order_acquire);
}

size_t FlightEventCount() {
  const uint64_t total = FlightTotalRecorded();
  return static_cast<size_t>(std::min<uint64_t>(total, kCapacity));
}

size_t FlightDroppedCount() {
  const uint64_t total = FlightTotalRecorded();
  return total > kCapacity ? static_cast<size_t>(total - kCapacity) : 0;
}

std::vector<FlightEvent> FlightRecorderSnapshot() {
  Ring& ring = GlobalRing();
  const uint64_t total = ring.cursor.load(std::memory_order_acquire);
  const uint64_t begin = total > kCapacity ? total - kCapacity : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<size_t>(total - begin));
  for (uint64_t ticket = begin; ticket < total; ++ticket) {
    const Slot& slot = ring.slots[ticket % kCapacity];
    if (slot.published.load(std::memory_order_acquire) != ticket + 1) {
      continue;  // mid-overwrite by a straggler; skip rather than tear
    }
    FlightEvent e;
    e.seq = ticket;
    e.kind = slot.kind;
    e.t_ms = slot.t_ms;
    e.request = slot.request;
    e.aux = slot.aux;
    out.push_back(e);
  }
  return out;
}

std::string FlightRecorderToJson() {
  const std::vector<FlightEvent> events = FlightRecorderSnapshot();
  std::string out = "{\"flight_recorder\":{\"capacity\":" + std::to_string(kCapacity);
  out += ",\"recorded\":" + std::to_string(FlightTotalRecorded());
  out += ",\"dropped\":" + std::to_string(FlightDroppedCount());
  out += ",\"events\":[";
  char buf[160];
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"seq\":%llu,\"kind\":\"%s\",\"t_ms\":%.6g,\"request\":%lld,"
                  "\"aux\":%lld}",
                  i > 0 ? "," : "", static_cast<unsigned long long>(e.seq),
                  FlightEventKindName(e.kind), e.t_ms, static_cast<long long>(e.request),
                  static_cast<long long>(e.aux));
    out += buf;
  }
  out += "]}}";
  return out;
}

bool WriteFlightRecorderJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << FlightRecorderToJson() << "\n";
  return static_cast<bool>(out);
}

namespace {

std::mutex g_atexit_mutex;
std::string* g_atexit_path = nullptr;

void DumpAtExit() {
  std::lock_guard<std::mutex> lock(g_atexit_mutex);
  if (g_atexit_path != nullptr) {
    StopFlightRecorder();
    WriteFlightRecorderJson(*g_atexit_path);
  }
}

}  // namespace

void WriteFlightRecorderJsonAtExit(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_atexit_mutex);
  StartFlightRecorder();
  if (g_atexit_path == nullptr) {
    g_atexit_path = new std::string(path);
    std::atexit(DumpAtExit);
  } else {
    *g_atexit_path = path;
  }
}

}  // namespace gmorph
