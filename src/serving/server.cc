#include "src/serving/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/obs/timing.h"
#include "src/obs/trace.h"
#include "src/serving/flight_recorder.h"

namespace gmorph {

ThreadedServer::ThreadedServer(ReplicaPool* pool, ServiceTimeTable table,
                               const ServerOptions& options)
    : pool_(pool), table_(std::move(table)), options_(options) {
  GMORPH_CHECK(pool_ != nullptr && pool_->size() >= 1);
  GMORPH_CHECK(options_.max_batch >= 1 && options_.max_batch <= pool_->max_batch());
  GMORPH_CHECK(options_.sla_ms >= 0.0);
  GMORPH_CHECK(options_.sla_ms == 0.0 || !table_.empty(),
               "SLA admission needs a calibrated service-time table");
  t0_ns_ = MonotonicNowNs();
  anchor_us_ = static_cast<double>(t0_ns_) * 1e-3;
  NameServingTraceLanes("serve");
  if (!options_.flight_recorder_path.empty()) {
    StartFlightRecorder();
  }
  workers_.reserve(static_cast<size_t>(pool_->size()));
  for (int slot = 0; slot < pool_->size(); ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ThreadedServer::~ThreadedServer() { Stop(); }

double ThreadedServer::NowMs() const {
  return static_cast<double>(MonotonicNowNs() - t0_ns_) * 1e-6;
}

bool ThreadedServer::Submit(const Tensor* sample) {
  ServingMetrics& m = ServingMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  GMORPH_CHECK(!stopping_, "Submit() after Stop()");
  const double now = NowMs();
  const int64_t index = submitted_++;
  m.requests.Increment();
  RecordFlightEvent(FlightEventKind::kAdmit, now, index);
  if (first_arrival_ms_ < 0.0) {
    first_arrival_ms_ = now;
  }
  if (options_.sla_ms > 0.0 &&
      DeadlineUnmeetable(now, now + options_.sla_ms, static_cast<int>(queue_.size()), table_,
                         options_.max_batch, pool_->size())) {
    stats_.AddShed();
    m.shed.Increment();
    RecordFlightEvent(FlightEventKind::kShed, now, index);
    return false;
  }
  queue_.push_back(Pending{sample, now, index});
  RecordFlightEvent(FlightEventKind::kEnqueue, now, index);
  ++in_flight_;
  work_available_.notify_one();
  return true;
}

void ThreadedServer::WorkerLoop(int slot) {
  obs::SetCurrentThreadName("serve-" + std::to_string(slot));
  ServingMetrics& m = ServingMetrics::Get();
  std::vector<Pending> batch;
  std::vector<const Tensor*> rows;
  batch.reserve(static_cast<size_t>(options_.max_batch));
  rows.reserve(static_cast<size_t>(options_.max_batch));
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) {
          return;
        }
        continue;
      }
      // Continuous batching: take everything waiting, up to the cap — the
      // same NextBatchSize rule the virtual-time simulator executes.
      const int size = NextBatchSize(static_cast<int>(queue_.size()), options_.max_batch);
      m.queue_depth.Observe(static_cast<double>(queue_.size()));
      batch.clear();
      rows.clear();
      for (int i = 0; i < size; ++i) {
        batch.push_back(queue_.front());
        rows.push_back(queue_.front().sample);
        queue_.pop_front();
      }
      const double formed_ms = NowMs();
      RecordFlightEvent(FlightEventKind::kBatchFormed, formed_ms,
                        static_cast<int64_t>(batch.size()), slot);
      for (const Pending& p : batch) {
        // Queue wait = admit -> run-start; batch formation is the run start.
        m.queue_wait_ms.Observe(formed_ms - p.arrival_ms);
        RecordFlightEvent(FlightEventKind::kRunStart, formed_ms, p.index, slot);
      }
    }
    {
      obs::TraceSpan span("serving/batch", obs::TraceCat::kServing);
      pool_->RunBatch(slot, rows);
    }
    const double done_ms = NowMs();
    const bool tracing = obs::TraceEnabled();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Pending& p : batch) {
        const double latency_ms = done_ms - p.arrival_ms;
        stats_.AddLatency(latency_ms);
        m.latency_ms.Observe(latency_ms);
        RecordFlightEvent(FlightEventKind::kDone, done_ms, p.index, slot);
        if (tracing) {
          EmitRequestSpan(anchor_us_, p.arrival_ms, latency_ms, p.index);
        }
      }
      stats_.AddBatch(static_cast<int>(batch.size()));
      m.batch_size.Observe(static_cast<double>(batch.size()));
      m.batches.Increment();
      last_completion_ms_ = std::max(last_completion_ms_, done_ms);
      in_flight_ -= static_cast<int>(batch.size());
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadedServer::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [&] { return in_flight_ == 0; });
  }
  if (!options_.flight_recorder_path.empty()) {
    WriteFlightRecorderJson(options_.flight_recorder_path);
  }
}

void ThreadedServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) {
      return;
    }
    stopping_ = true;
    work_available_.notify_all();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    joined_ = true;
  }
  if (!options_.flight_recorder_path.empty()) {
    WriteFlightRecorderJson(options_.flight_recorder_path);
  }
}

EngineReplica ThreadedServer::SwapReplica(int slot, EngineReplica incoming, bool warm) {
  EngineReplica previous = pool_->Swap(slot, std::move(incoming), warm);
  ServingMetrics::Get().swaps.Increment();
  RecordFlightEvent(FlightEventKind::kSwap, NowMs(), slot);
  return previous;
}

ServingStats ThreadedServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  const double makespan_ms = stats_.num_completed() > 0 && first_arrival_ms_ >= 0.0
                                 ? last_completion_ms_ - first_arrival_ms_
                                 : 0.0;
  return stats_.Finalize(makespan_ms, table_);
}

int64_t ThreadedServer::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

int64_t ThreadedServer::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.num_completed();
}

int64_t ThreadedServer::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.num_shed();
}

}  // namespace gmorph
