#include "src/serving/replica_pool.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace gmorph {
namespace {

// Runs `engine` once per batch size so bindings / scratch arenas are grown.
// `inputs[b-1]` must be a batch-b input tensor.
void WarmEngine(InferenceEngine& engine, const std::vector<Tensor>& inputs) {
  for (const Tensor& input : inputs) {
    engine.Run(input);
  }
}

std::vector<Tensor> MakeBatchInputs(const Shape& per_sample_input, int max_batch) {
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<size_t>(max_batch));
  for (int b = 1; b <= max_batch; ++b) {
    inputs.push_back(Tensor::Zeros(per_sample_input.WithBatch(b)));
  }
  return inputs;
}

}  // namespace

ReplicaPool::ReplicaPool(std::vector<EngineReplica> replicas, const Shape& per_sample_input,
                         int max_batch, bool warm)
    : per_sample_input_(per_sample_input), max_batch_(max_batch) {
  GMORPH_CHECK(!replicas.empty(), "replica pool needs at least one replica");
  GMORPH_CHECK(max_batch_ >= 1);
  elems_per_sample_ = per_sample_input_.WithBatch(1).NumElements();
  slots_.reserve(replicas.size());
  for (EngineReplica& replica : replicas) {
    GMORPH_CHECK(replica.engine != nullptr, "replica without an engine");
    auto slot = std::make_unique<Slot>();
    slot->replica = std::move(replica);
    slot->batch_inputs = MakeBatchInputs(per_sample_input_, max_batch_);
    if (warm) {
      WarmEngine(*slot->replica.engine, slot->batch_inputs);
    }
    slots_.push_back(std::move(slot));
  }
}

void ReplicaPool::RunBatch(int slot_index, const std::vector<const Tensor*>& rows) {
  GMORPH_CHECK(slot_index >= 0 && slot_index < size());
  const int batch = static_cast<int>(rows.size());
  GMORPH_CHECK(batch >= 1 && batch <= max_batch_);
  Slot& slot = *slots_[static_cast<size_t>(slot_index)];
  std::lock_guard<std::mutex> lock(slot.mu);
  Tensor& input = slot.batch_inputs[static_cast<size_t>(batch - 1)];
  float* dst = input.data();
  for (int r = 0; r < batch; ++r, dst += elems_per_sample_) {
    if (rows[static_cast<size_t>(r)] == nullptr) {
      std::memset(dst, 0, static_cast<size_t>(elems_per_sample_) * sizeof(float));
      continue;
    }
    const Tensor& row = *rows[static_cast<size_t>(r)];
    GMORPH_CHECK(row.size() == elems_per_sample_, "request payload shape mismatch");
    std::memcpy(dst, row.data(), static_cast<size_t>(elems_per_sample_) * sizeof(float));
  }
  slot.replica.engine->Run(input);
}

EngineReplica ReplicaPool::Swap(int slot_index, EngineReplica incoming, bool warm) {
  GMORPH_CHECK(slot_index >= 0 && slot_index < size());
  GMORPH_CHECK(incoming.engine != nullptr, "cannot swap in an empty replica");
  if (warm) {
    // Warm on inputs owned by this (control) thread: the incoming engine is
    // exclusively ours until installed, and the slot's prebound storage stays
    // untouched for the in-flight batch.
    WarmEngine(*incoming.engine, MakeBatchInputs(per_sample_input_, max_batch_));
  }
  Slot& slot = *slots_[static_cast<size_t>(slot_index)];
  std::lock_guard<std::mutex> lock(slot.mu);
  std::swap(slot.replica, incoming);
  swap_count_.fetch_add(1, std::memory_order_relaxed);
  return incoming;  // the previous replica, handed back to the caller
}

InferenceEngine* ReplicaPool::engine(int slot_index) {
  GMORPH_CHECK(slot_index >= 0 && slot_index < size());
  return slots_[static_cast<size_t>(slot_index)]->replica.engine.get();
}

}  // namespace gmorph
