// Serving flight recorder: a fixed-size lock-free ring of request lifecycle
// events shared by both scheduler backends (the virtual-time simulator and
// the threaded server). Where the tracer answers "where did the time go",
// the flight recorder answers "what did the scheduler decide, in order" —
// and turns a "lost N requests" assertion into a replayable record.
//
// Cost contract (same as the tracer): when recording is disabled, a
// RecordFlightEvent call is a single relaxed atomic load — no clock read, no
// allocation, no ring write — so both backends keep their instrumentation in
// release hot paths unconditionally.
//
// Ring discipline: writers claim a slot with one fetch_add on the global
// cursor and publish the completed entry with a release store of its ticket;
// when the ring wraps, the oldest events are overwritten (dropped count =
// total - capacity). The snapshot/export path is meant to run with recording
// quiesced (after Drain()/Stop(), or at virtual-time completion); an entry
// caught mid-overwrite is skipped, never torn.
//
// Event vocabulary (one line per request lifecycle):
//   admit        — request seen by the scheduler (request = submission index)
//   shed         — rejected by SLA admission (request = index)
//   enqueue      — admitted into the queue (request = index)
//   batch-formed — a batch was cut from the queue (request = batch size,
//                  aux = replica slot; -1 in the simulator)
//   run-start    — request entered a running batch (request = index, aux = slot)
//   done         — request completed (request = index, aux = slot)
//   swap         — replica hot-swap applied (request = slot)
#ifndef GMORPH_SRC_SERVING_FLIGHT_RECORDER_H_
#define GMORPH_SRC_SERVING_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gmorph {

enum class FlightEventKind : uint8_t {
  kAdmit = 0,
  kShed,
  kEnqueue,
  kBatchFormed,
  kRunStart,
  kDone,
  kSwap,
};

// Stable text names ("admit", "shed", ...) used in the JSON dump.
const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  uint64_t seq = 0;  // global record order (monotonic across the whole run)
  FlightEventKind kind = FlightEventKind::kAdmit;
  double t_ms = 0.0;    // backend clock: virtual ms (sim) or wall ms (server)
  int64_t request = -1; // see the vocabulary above
  int64_t aux = -1;     // replica slot where meaningful, else -1
};

namespace internal {
extern std::atomic<bool> g_flight_enabled;
}  // namespace internal

// The single relaxed load gating every record path.
inline bool FlightRecorderEnabled() {
  return internal::g_flight_enabled.load(std::memory_order_relaxed);
}

void StartFlightRecorder();
void StopFlightRecorder();
// Drops all recorded events (capacity and enabled state unchanged).
void ClearFlightRecorder();

// Records one event; no-op when disabled.
void RecordFlightEvent(FlightEventKind kind, double t_ms, int64_t request, int64_t aux = -1);

// ---- Introspection / export ----

size_t FlightRecorderCapacity();
// Events currently retained / recorded ever / overwritten by ring wrap.
size_t FlightEventCount();
uint64_t FlightTotalRecorded();
size_t FlightDroppedCount();

// Retained events in record order (oldest retained first). Call with
// recording quiesced for a complete snapshot.
std::vector<FlightEvent> FlightRecorderSnapshot();

// {"flight_recorder": {"capacity":.., "recorded":.., "dropped":..,
//  "events":[{"seq":..,"kind":"admit","t_ms":..,"request":..,"aux":..}, ...]}}
std::string FlightRecorderToJson();
bool WriteFlightRecorderJson(const std::string& path);

// Starts recording now and writes the dump to `path` at process exit
// (gmorph_cli --flight-recorder=<path>). Idempotent per path.
void WriteFlightRecorderJsonAtExit(const std::string& path);

}  // namespace gmorph

#endif  // GMORPH_SRC_SERVING_FLIGHT_RECORDER_H_
