#include "src/serving/serving_sim.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace gmorph {

ServingStats SimulateServingWithServiceTimes(const std::vector<double>& service_time_ms,
                                             const ServingOptions& options) {
  GMORPH_CHECK(!service_time_ms.empty());
  GMORPH_CHECK(options.arrival_qps > 0.0 && options.num_requests > 0);
  const int max_batch = std::min<int>(options.max_batch,
                                      static_cast<int>(service_time_ms.size()));
  GMORPH_CHECK(max_batch >= 1);

  // Poisson arrivals: exponential inter-arrival gaps (ms).
  Rng rng(options.seed);
  std::vector<double> arrival(static_cast<size_t>(options.num_requests));
  double t = 0.0;
  const double mean_gap_ms = 1000.0 / options.arrival_qps;
  for (auto& a : arrival) {
    double u = rng.NextDouble();
    while (u <= 1e-12) {
      u = rng.NextDouble();
    }
    t += -std::log(u) * mean_gap_ms;
    a = t;
  }

  ServingStats stats;
  stats.service_time_ms = service_time_ms;
  std::vector<double> latencies;
  latencies.reserve(arrival.size());
  double server_free_at = 0.0;
  size_t next = 0;
  int64_t served_total = 0;
  double last_completion = 0.0;
  while (next < arrival.size()) {
    const double start = std::max(server_free_at, arrival[next]);
    // Adaptive batching: everything queued by `start`, capped at max_batch.
    size_t batch_end = next;
    while (batch_end < arrival.size() && arrival[batch_end] <= start &&
           static_cast<int>(batch_end - next) < max_batch) {
      ++batch_end;
    }
    const int batch = static_cast<int>(batch_end - next);
    const double completion = start + service_time_ms[static_cast<size_t>(batch - 1)];
    for (size_t i = next; i < batch_end; ++i) {
      latencies.push_back(completion - arrival[i]);
    }
    served_total += batch;
    ++stats.num_batches;
    server_free_at = completion;
    last_completion = completion;
    next = batch_end;
  }

  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    const size_t idx = static_cast<size_t>(p * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  double sum = 0.0;
  for (double l : latencies) {
    sum += l;
  }
  stats.mean_latency_ms = sum / static_cast<double>(latencies.size());
  stats.p50_latency_ms = percentile(0.50);
  stats.p95_latency_ms = percentile(0.95);
  stats.p99_latency_ms = percentile(0.99);
  stats.mean_batch_size =
      static_cast<double>(served_total) / static_cast<double>(stats.num_batches);
  const double makespan_ms = last_completion - arrival.front();
  stats.throughput_qps = makespan_ms > 0.0
                             ? static_cast<double>(served_total) / (makespan_ms / 1000.0)
                             : 0.0;
  return stats;
}

ServingStats SimulateServing(InferenceEngine& engine, const Shape& per_sample_input,
                             const ServingOptions& options) {
  std::vector<double> service(static_cast<size_t>(options.max_batch));
  for (int b = 1; b <= options.max_batch; ++b) {
    // One preallocated input per batch size, reused across every calibration
    // run — measured times then exclude input-allocation noise and the
    // engine's steady-state (warmed binding) path is what gets calibrated.
    const Tensor input = Tensor::Zeros(per_sample_input.WithBatch(b));
    service[static_cast<size_t>(b - 1)] =
        MeasureEngineLatencyMs(engine, input, /*warmup=*/1, options.calibration_runs);
  }
  return SimulateServingWithServiceTimes(service, options);
}

}  // namespace gmorph
