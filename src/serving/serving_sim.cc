#include "src/serving/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/timing.h"
#include "src/obs/trace.h"

namespace gmorph {
namespace {

// Virtual trace lanes for the simulated timeline: one server lane plus a small
// pool of request lanes (requests round-robin across them so overlapping
// lifecycles stay readable in Perfetto). Base offset keeps the virtual tids
// clear of real thread ids.
constexpr int kServerLane = 1000;
constexpr int kRequestLaneBase = 1001;
constexpr int kNumRequestLanes = 32;

}  // namespace

ServingStats SimulateServingWithServiceTimes(const std::vector<double>& service_time_ms,
                                             const ServingOptions& options) {
  GMORPH_CHECK(!service_time_ms.empty());
  GMORPH_CHECK(options.arrival_qps > 0.0 && options.num_requests > 0);
  const int max_batch = std::min<int>(options.max_batch,
                                      static_cast<int>(service_time_ms.size()));
  GMORPH_CHECK(max_batch >= 1);

  // Poisson arrivals: exponential inter-arrival gaps (ms).
  Rng rng(options.seed);
  std::vector<double> arrival(static_cast<size_t>(options.num_requests));
  double t = 0.0;
  const double mean_gap_ms = 1000.0 / options.arrival_qps;
  for (auto& a : arrival) {
    double u = rng.NextDouble();
    while (u <= 1e-12) {
      u = rng.NextDouble();
    }
    t += -std::log(u) * mean_gap_ms;
    a = t;
  }

  ServingStats stats;
  stats.service_time_ms = service_time_ms;
  std::vector<double> latencies;
  latencies.reserve(arrival.size());

  obs::Histogram& m_latency = obs::GetHistogram("serving.request_latency_ms");
  obs::Histogram& m_batch =
      obs::GetHistogram("serving.batch_size", {1, 2, 4, 8, 16, 32, 64, 128, 256});
  obs::Histogram& m_queue =
      obs::GetHistogram("serving.queue_depth", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  obs::Counter& m_requests = obs::GetCounter("serving.requests");
  obs::Counter& m_batches = obs::GetCounter("serving.batches");

  // The simulation runs in virtual milliseconds; trace spans are emitted on
  // virtual lanes anchored at the current real clock so the simulated
  // timeline lands where the surrounding real spans do.
  const bool tracing = obs::TraceEnabled();
  const double anchor_us = static_cast<double>(MonotonicNowNs()) * 1e-3;
  if (tracing) {
    obs::SetVirtualLaneName(kServerLane, "sim/server");
    for (int l = 0; l < kNumRequestLanes; ++l) {
      obs::SetVirtualLaneName(kRequestLaneBase + l, "sim/requests-" + std::to_string(l));
    }
  }

  double server_free_at = 0.0;
  size_t next = 0;
  int64_t served_total = 0;
  double last_completion = 0.0;
  while (next < arrival.size()) {
    const double start = std::max(server_free_at, arrival[next]);
    // Adaptive batching: everything queued by `start`, capped at max_batch.
    size_t batch_end = next;
    while (batch_end < arrival.size() && arrival[batch_end] <= start &&
           static_cast<int>(batch_end - next) < max_batch) {
      ++batch_end;
    }
    // Queue depth when the server picks up work: everything that has arrived
    // and not yet been served (the batch cap does not bound what is waiting).
    size_t queued = batch_end;
    while (queued < arrival.size() && arrival[queued] <= start) {
      ++queued;
    }
    m_queue.Observe(static_cast<double>(queued - next));
    const int batch = static_cast<int>(batch_end - next);
    const double completion = start + service_time_ms[static_cast<size_t>(batch - 1)];
    for (size_t i = next; i < batch_end; ++i) {
      const double latency_ms = completion - arrival[i];
      latencies.push_back(latency_ms);
      m_latency.Observe(latency_ms);
      if (tracing) {
        obs::RecordManualSpan("request", obs::TraceCat::kServing,
                              anchor_us + arrival[i] * 1e3, latency_ms * 1e3,
                              kRequestLaneBase + static_cast<int>(i % kNumRequestLanes));
      }
    }
    if (tracing) {
      obs::RecordManualSpan("batch=" + std::to_string(batch), obs::TraceCat::kServing,
                            anchor_us + start * 1e3, (completion - start) * 1e3, kServerLane);
    }
    m_batch.Observe(static_cast<double>(batch));
    m_batches.Increment();
    served_total += batch;
    ++stats.num_batches;
    server_free_at = completion;
    last_completion = completion;
    next = batch_end;
  }
  m_requests.Increment(static_cast<int64_t>(arrival.size()));

  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    const size_t idx = static_cast<size_t>(p * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  double sum = 0.0;
  for (double l : latencies) {
    sum += l;
  }
  stats.mean_latency_ms = sum / static_cast<double>(latencies.size());
  stats.p50_latency_ms = percentile(0.50);
  stats.p95_latency_ms = percentile(0.95);
  stats.p99_latency_ms = percentile(0.99);
  stats.mean_batch_size =
      static_cast<double>(served_total) / static_cast<double>(stats.num_batches);
  const double makespan_ms = last_completion - arrival.front();
  stats.throughput_qps = makespan_ms > 0.0
                             ? static_cast<double>(served_total) / (makespan_ms / 1000.0)
                             : 0.0;
  return stats;
}

ServingStats SimulateServing(InferenceEngine& engine, const Shape& per_sample_input,
                             const ServingOptions& options) {
  obs::TraceSpan calibrate_span("serving/calibrate", obs::TraceCat::kServing);
  std::vector<double> service(static_cast<size_t>(options.max_batch));
  for (int b = 1; b <= options.max_batch; ++b) {
    // One preallocated input per batch size, reused across every calibration
    // run — measured times then exclude input-allocation noise and the
    // engine's steady-state (warmed binding) path is what gets calibrated.
    const Tensor input = Tensor::Zeros(per_sample_input.WithBatch(b));
    service[static_cast<size_t>(b - 1)] =
        MeasureEngineLatencyMs(engine, input, /*warmup=*/1, options.calibration_runs);
  }
  return SimulateServingWithServiceTimes(service, options);
}

}  // namespace gmorph
