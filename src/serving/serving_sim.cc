#include "src/serving/serving_sim.h"

#include <algorithm>
#include <deque>
#include <string>

#include "src/common/check.h"
#include "src/obs/timing.h"
#include "src/obs/trace.h"
#include "src/serving/flight_recorder.h"

namespace gmorph {

ServingStats SimulateServingWithTable(const ServiceTimeTable& table,
                                      const ServingOptions& options) {
  GMORPH_CHECK(!table.empty());
  GMORPH_CHECK(options.arrival_qps > 0.0 && options.num_requests > 0);
  const int max_batch = std::min(options.max_batch, table.max_batch());
  GMORPH_CHECK(max_batch >= 1);

  const std::vector<double> arrival =
      GenerateArrivalsMs(options.arrival_qps, options.num_requests, options.seed);

  ServingMetrics& m = ServingMetrics::Get();
  StatsBuilder builder;

  // The simulation runs in virtual milliseconds; trace spans are emitted on
  // virtual lanes anchored at the current real clock so the simulated
  // timeline lands where the surrounding real spans do.
  const bool tracing = obs::TraceEnabled();
  const double anchor_us = static_cast<double>(MonotonicNowNs()) * 1e-3;
  if (tracing) {
    NameServingTraceLanes("sim");
  }

  const double sla = options.sla_ms;
  double server_free_at = 0.0;
  double last_completion = 0.0;
  size_t admitted_upto = 0;  // arrivals [0, admitted_upto) have been admitted or shed
  std::deque<size_t> queue;  // admitted, unserved request indices (FIFO)

  // Admits every arrival up to virtual time `t`. With an SLA, a request whose
  // deadline is provably unmeetable given the queue it would join is shed at
  // its arrival instant — the same decision the threaded server takes in
  // Submit().
  auto admit_until = [&](double t) {
    while (admitted_upto < arrival.size() && arrival[admitted_upto] <= t) {
      const size_t i = admitted_upto++;
      RecordFlightEvent(FlightEventKind::kAdmit, arrival[i], static_cast<int64_t>(i));
      if (sla > 0.0 && DeadlineUnmeetable(arrival[i], arrival[i] + sla,
                                          static_cast<int>(queue.size()), table, max_batch)) {
        builder.AddShed();
        m.shed.Increment();
        RecordFlightEvent(FlightEventKind::kShed, arrival[i], static_cast<int64_t>(i));
        continue;
      }
      queue.push_back(i);
      RecordFlightEvent(FlightEventKind::kEnqueue, arrival[i], static_cast<int64_t>(i));
    }
  };

  while (true) {
    if (queue.empty()) {
      if (admitted_upto == arrival.size()) {
        break;
      }
      admit_until(arrival[admitted_upto]);
      continue;
    }
    const double start = std::max(server_free_at, arrival[queue.front()]);
    // Adaptive batching: everything queued by `start`, capped at max_batch.
    admit_until(start);
    const int batch = NextBatchSize(static_cast<int>(queue.size()), max_batch);
    // Queue depth when the server picks up work: everything admitted and not
    // yet served (the batch cap does not bound what is waiting).
    m.queue_depth.Observe(static_cast<double>(queue.size()));
    const double completion = start + table.BatchMs(batch);
    RecordFlightEvent(FlightEventKind::kBatchFormed, start, batch);
    for (int b = 0; b < batch; ++b) {
      const size_t i = queue.front();
      queue.pop_front();
      const double latency_ms = completion - arrival[i];
      builder.AddLatency(latency_ms);
      m.latency_ms.Observe(latency_ms);
      // Queue wait = admit -> run-start on the virtual clock; observational
      // only, so the golden-pinned ServingStats math is untouched.
      m.queue_wait_ms.Observe(start - arrival[i]);
      RecordFlightEvent(FlightEventKind::kRunStart, start, static_cast<int64_t>(i));
      RecordFlightEvent(FlightEventKind::kDone, completion, static_cast<int64_t>(i));
      if (tracing) {
        EmitRequestSpan(anchor_us, arrival[i], latency_ms, static_cast<int64_t>(i));
      }
    }
    if (tracing) {
      obs::RecordManualSpan("batch=" + std::to_string(batch), obs::TraceCat::kServing,
                            anchor_us + start * 1e3, (completion - start) * 1e3,
                            kServingServerLane);
    }
    m.batch_size.Observe(static_cast<double>(batch));
    m.batches.Increment();
    builder.AddBatch(batch);
    server_free_at = completion;
    last_completion = completion;
  }
  m.requests.Increment(static_cast<int64_t>(arrival.size()));

  const double makespan_ms = last_completion - arrival.front();
  return builder.Finalize(makespan_ms, table);
}

ServingStats SimulateServingWithServiceTimes(const std::vector<double>& service_time_ms,
                                             const ServingOptions& options) {
  GMORPH_CHECK(!service_time_ms.empty());
  return SimulateServingWithTable(ServiceTimeTable(service_time_ms), options);
}

ServingStats SimulateServing(InferenceEngine& engine, const Shape& per_sample_input,
                             const ServingOptions& options) {
  const ServiceTimeTable table = CalibrateServiceTimes(
      engine, per_sample_input, options.max_batch, options.calibration_runs, /*warmup=*/1);
  return SimulateServingWithTable(table, options);
}

}  // namespace gmorph
