// Teacher pre-training: trains one task-specific DNN on its own labels,
// mirroring the independently pre-trained models GMorph takes as input.
#ifndef GMORPH_SRC_DATA_TEACHER_H_
#define GMORPH_SRC_DATA_TEACHER_H_

#include <cstdint>

#include "src/data/dataset.h"
#include "src/models/task_model.h"

namespace gmorph {

struct TeacherTrainOptions {
  int epochs = 8;
  int64_t batch_size = 32;
  float lr = 1e-3f;
};

// Trains `model` in place on task `task_index` of `train`; returns the final
// score on `test` under the task's metric.
double TrainTeacher(TaskModel& model, const MultiTaskDataset& train,
                    const MultiTaskDataset& test, size_t task_index,
                    const TeacherTrainOptions& options);

// Runs the model over the whole split (inference mode) and returns the task
// score. Also usable for already-trained teachers.
double EvaluateTeacher(TaskModel& model, const MultiTaskDataset& test, size_t task_index,
                       int64_t batch_size = 64);

// Runs the model over the whole split and returns the concatenated logits.
Tensor PredictAll(TaskModel& model, const MultiTaskDataset& data, int64_t batch_size = 64);

}  // namespace gmorph

#endif  // GMORPH_SRC_DATA_TEACHER_H_
