// Scoring utilities shared by teacher pre-training and the accuracy
// estimator: map a full-dataset logits tensor + task labels to the task's
// score under its metric.
#ifndef GMORPH_SRC_DATA_EVAL_H_
#define GMORPH_SRC_DATA_EVAL_H_

#include "src/data/dataset.h"
#include "src/tensor/tensor.h"

namespace gmorph {

// `logits` is (N, classes) for the whole dataset split that `labels` covers.
// Returns accuracy / mAP / MCC according to labels.metric.
double ComputeMetric(const Tensor& logits, const TaskLabels& labels);

}  // namespace gmorph

#endif  // GMORPH_SRC_DATA_EVAL_H_
