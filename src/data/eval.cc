#include "src/data/eval.h"

#include "src/common/check.h"
#include "src/nn/loss.h"

namespace gmorph {

double ComputeMetric(const Tensor& logits, const TaskLabels& labels) {
  switch (labels.metric) {
    case MetricKind::kAccuracy:
      return Accuracy(logits, labels.class_labels);
    case MetricKind::kMeanAveragePrecision:
      return MeanAveragePrecision(logits, labels.multi_hot);
    case MetricKind::kMatthews:
      return MatthewsCorrelation(logits, labels.class_labels);
  }
  GMORPH_CHECK(false, "unknown metric");
  return 0.0;
}

}  // namespace gmorph
