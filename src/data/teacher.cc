#include "src/data/teacher.h"

#include <cstring>

#include "src/common/check.h"
#include "src/data/eval.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"

namespace gmorph {

Tensor PredictAll(TaskModel& model, const MultiTaskDataset& data, int64_t batch_size) {
  const int64_t n = data.size();
  Tensor all;
  int64_t written = 0;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t count = std::min(batch_size, n - start);
    Tensor logits = model.Forward(data.InputBatch(start, count), /*training=*/false);
    if (all.empty()) {
      all = Tensor(Shape{n, logits.shape()[1]});
    }
    std::memcpy(all.data() + written * logits.shape()[1], logits.data(),
                static_cast<size_t>(logits.size()) * sizeof(float));
    written += count;
  }
  return all;
}

double EvaluateTeacher(TaskModel& model, const MultiTaskDataset& test, size_t task_index,
                       int64_t batch_size) {
  GMORPH_CHECK(task_index < test.tasks.size());
  Tensor logits = PredictAll(model, test, batch_size);
  return ComputeMetric(logits, test.tasks[task_index]);
}

double TrainTeacher(TaskModel& model, const MultiTaskDataset& train,
                    const MultiTaskDataset& test, size_t task_index,
                    const TeacherTrainOptions& options) {
  GMORPH_CHECK(task_index < train.tasks.size());
  const TaskLabels& labels = train.tasks[task_index];
  Adam optimizer(model.Parameters(), options.lr);
  const int64_t n = train.size();

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (int64_t start = 0; start < n; start += options.batch_size) {
      const int64_t count = std::min(options.batch_size, n - start);
      Tensor logits = model.Forward(train.InputBatch(start, count), /*training=*/true);
      Tensor grad;
      if (labels.metric == MetricKind::kMeanAveragePrecision) {
        BinaryCrossEntropyLoss(logits, train.MultiHotBatch(task_index, start, count), grad);
      } else {
        CrossEntropyLoss(logits, train.LabelBatch(task_index, start, count), grad);
      }
      model.Backward(grad);
      optimizer.Step();
    }
  }
  return EvaluateTeacher(model, test, task_index);
}

}  // namespace gmorph
