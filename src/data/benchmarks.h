// Benchmark registry: B1-B7 from the paper's Table 2, with scaled models and
// synthetic datasets (substitutions documented in DESIGN.md §1).
//
//   B1  Age/Gender/Ethnicity           3 x VGG-13s        (UTKFace stand-in)
//   B2  Emotion/Age/Gender             3 x VGG-16s        (FER2013 + Adience)
//   B3  Emotion/Age/Gender             VGG-13s/16s/11s    (heterogeneous VGG)
//   B4  Object/Salient                 ResNet-34s + ResNet-18s
//   B5  Object/Salient                 ResNet-34s + VGG-16s (cross-family)
//   B6  Object/Salient                 ViT-Large-s + ViT-Base-s
//   B7  CoLA/SST-2                     BERT-Large-s + BERT-Base-s
#ifndef GMORPH_SRC_DATA_BENCHMARKS_H_
#define GMORPH_SRC_DATA_BENCHMARKS_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/models/zoo.h"

namespace gmorph {

// Knobs shared by all benchmarks so experiments can be shrunk uniformly.
struct BenchmarkScale {
  int64_t train_size = 384;
  int64_t test_size = 192;
  int64_t cnn_width = 8;
  int64_t image_size = 32;
  float noise_stddev = 0.6f;
};

struct BenchmarkTask {
  std::string name;
  ModelSpec model;
  MetricKind metric = MetricKind::kAccuracy;
  int num_classes = 0;
};

struct BenchmarkDef {
  std::string id;
  std::string description;
  std::vector<BenchmarkTask> tasks;
  MultiTaskDataset train;
  MultiTaskDataset test;
};

// Builds benchmark `index` in 1..7. Deterministic given (index, scale, seed).
BenchmarkDef MakeBenchmark(int index, const BenchmarkScale& scale, uint64_t seed);

inline constexpr int kNumBenchmarks = 7;

}  // namespace gmorph

#endif  // GMORPH_SRC_DATA_BENCHMARKS_H_
