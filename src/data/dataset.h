// Multi-task datasets: one shared input stream, one label set per task.
//
// GMorph itself never reads task labels during fusion (fine-tuning distills
// from the teachers); labels exist to *pre-train* teachers and to *measure*
// task accuracy, exactly as in the paper's setup.
#ifndef GMORPH_SRC_DATA_DATASET_H_
#define GMORPH_SRC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace gmorph {

enum class MetricKind {
  kAccuracy,              // classification accuracy (B1-B3, SST-2)
  kMeanAveragePrecision,  // multi-label mAP (ObjectNet in B4-B6)
  kMatthews,              // Matthews correlation (CoLA in B7)
};

std::string MetricKindName(MetricKind metric);

// Labels for one task over the whole dataset.
struct TaskLabels {
  MetricKind metric = MetricKind::kAccuracy;
  int num_classes = 0;
  // Class index per example (kAccuracy / kMatthews).
  std::vector<int> class_labels;
  // (N, num_classes) 0/1 targets (kMeanAveragePrecision).
  Tensor multi_hot;
};

struct MultiTaskDataset {
  Tensor inputs;  // (N, C, H, W) images or (N, T) token ids
  std::vector<TaskLabels> tasks;

  int64_t size() const { return inputs.shape()[0]; }

  // Copies rows [start, start+count) of the inputs into a new batch tensor.
  Tensor InputBatch(int64_t start, int64_t count) const;
  // Class labels of task `t` for the same rows.
  std::vector<int> LabelBatch(size_t t, int64_t start, int64_t count) const;
  // Multi-hot targets of task `t` for the same rows.
  Tensor MultiHotBatch(size_t t, int64_t start, int64_t count) const;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_DATA_DATASET_H_
