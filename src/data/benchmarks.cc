#include "src/data/benchmarks.h"

#include "src/common/check.h"

namespace gmorph {
namespace {

VisionModelOptions VisionOpts(const BenchmarkScale& scale, int classes) {
  VisionModelOptions o;
  o.base_width = scale.cnn_width;
  o.image_size = scale.image_size;
  o.classes = classes;
  return o;
}

// Face-attribute benchmarks (B1-B3): three classification tasks on one image
// stream.
BenchmarkDef MakeFaceBenchmark(const std::string& id, const std::string& description,
                               const std::vector<std::string>& names,
                               const std::vector<int>& classes,
                               const std::vector<ModelSpec>& models,
                               const BenchmarkScale& scale, Rng& rng) {
  BenchmarkDef def;
  def.id = id;
  def.description = description;
  std::vector<VisionTaskSpec> specs;
  for (size_t i = 0; i < names.size(); ++i) {
    BenchmarkTask task;
    task.name = names[i];
    task.model = models[i];
    task.metric = MetricKind::kAccuracy;
    task.num_classes = classes[i];
    def.tasks.push_back(std::move(task));
    VisionTaskSpec vt;
    vt.num_classes = classes[i];
    vt.metric = MetricKind::kAccuracy;
    specs.push_back(vt);
  }
  VisionDataOptions opts;
  opts.image_size = scale.image_size;
  opts.noise_stddev = scale.noise_stddev;
  VisionDatasetPair pair =
      GenerateVisionData(scale.train_size, scale.test_size, specs, opts, rng);
  def.train = std::move(pair.train);
  def.test = std::move(pair.test);
  return def;
}

// Lifelogging benchmarks (B4-B6): multi-label object detection stand-in (mAP)
// plus salient-object-count classification, on one image stream.
BenchmarkDef MakeSceneBenchmark(const std::string& id, const std::string& description,
                                ModelSpec object_model, ModelSpec salient_model,
                                const BenchmarkScale& scale, Rng& rng) {
  constexpr int kObjectClasses = 8;  // paper: 20 VOC classes
  constexpr int kSalientClasses = 5;

  BenchmarkDef def;
  def.id = id;
  def.description = description;
  BenchmarkTask object_task;
  object_task.name = "ObjectNet";
  object_task.model = std::move(object_model);
  object_task.metric = MetricKind::kMeanAveragePrecision;
  object_task.num_classes = kObjectClasses;
  def.tasks.push_back(std::move(object_task));
  BenchmarkTask salient_task;
  salient_task.name = "SalientNet";
  salient_task.model = std::move(salient_model);
  salient_task.metric = MetricKind::kAccuracy;
  salient_task.num_classes = kSalientClasses;
  def.tasks.push_back(std::move(salient_task));

  std::vector<VisionTaskSpec> specs(2);
  specs[0].num_classes = kObjectClasses;
  specs[0].metric = MetricKind::kMeanAveragePrecision;
  specs[1].num_classes = kSalientClasses;
  specs[1].metric = MetricKind::kAccuracy;
  VisionDataOptions opts;
  opts.image_size = scale.image_size;
  opts.noise_stddev = scale.noise_stddev;
  VisionDatasetPair pair =
      GenerateVisionData(scale.train_size, scale.test_size, specs, opts, rng);
  def.train = std::move(pair.train);
  def.test = std::move(pair.test);
  return def;
}

}  // namespace

BenchmarkDef MakeBenchmark(int index, const BenchmarkScale& scale, uint64_t seed) {
  Rng rng(seed + static_cast<uint64_t>(index) * 0x51ed2701u);
  switch (index) {
    case 1: {
      const std::vector<int> classes = {5, 2, 4};
      return MakeFaceBenchmark(
          "B1", "Age/Gender/Ethnicity, 3x VGG-13s (UTKFace stand-in)",
          {"AgeNet", "GenderNet", "EthnicityNet"}, classes,
          {MakeVgg13(VisionOpts(scale, classes[0])), MakeVgg13(VisionOpts(scale, classes[1])),
           MakeVgg13(VisionOpts(scale, classes[2]))},
          scale, rng);
    }
    case 2: {
      const std::vector<int> classes = {7, 5, 2};
      return MakeFaceBenchmark(
          "B2", "Emotion/Age/Gender, 3x VGG-16s (FER2013+Adience stand-in)",
          {"EmotionNet", "AgeNet", "GenderNet"}, classes,
          {MakeVgg16(VisionOpts(scale, classes[0])), MakeVgg16(VisionOpts(scale, classes[1])),
           MakeVgg16(VisionOpts(scale, classes[2]))},
          scale, rng);
    }
    case 3: {
      const std::vector<int> classes = {7, 5, 2};
      return MakeFaceBenchmark(
          "B3", "Emotion/Age/Gender, heterogeneous VGG-13s/16s/11s",
          {"EmotionNet", "AgeNet", "GenderNet"}, classes,
          {MakeVgg13(VisionOpts(scale, classes[0])), MakeVgg16(VisionOpts(scale, classes[1])),
           MakeVgg11(VisionOpts(scale, classes[2]))},
          scale, rng);
    }
    case 4:
      return MakeSceneBenchmark("B4", "Object/Salient, ResNet-34s + ResNet-18s",
                                MakeResNet34(VisionOpts(scale, 8)),
                                MakeResNet18(VisionOpts(scale, 5)), scale, rng);
    case 5:
      return MakeSceneBenchmark("B5", "Object/Salient, ResNet-34s + VGG-16s (cross-family)",
                                MakeResNet34(VisionOpts(scale, 8)),
                                MakeVgg16(VisionOpts(scale, 5)), scale, rng);
    case 6: {
      TransformerModelOptions large = ViTLargeOptions();
      large.image_size = scale.image_size;
      large.classes = 8;
      TransformerModelOptions base = ViTBaseOptions();
      base.image_size = scale.image_size;
      base.classes = 5;
      return MakeSceneBenchmark("B6", "Object/Salient, ViT-Large-s + ViT-Base-s",
                                MakeViT("ViT-Large-s", large), MakeViT("ViT-Base-s", base),
                                scale, rng);
    }
    case 7: {
      TransformerModelOptions large = BertLargeOptions();
      large.classes = 2;
      TransformerModelOptions base = BertBaseOptions();
      base.classes = 2;

      BenchmarkDef def;
      def.id = "B7";
      def.description = "CoLA/SST-2, BERT-Large-s + BERT-Base-s (GLUE stand-in)";
      BenchmarkTask cola;
      cola.name = "CoLANet";
      cola.model = MakeBert("BERT-Large-s", large);
      cola.metric = MetricKind::kMatthews;
      cola.num_classes = 2;
      def.tasks.push_back(std::move(cola));
      BenchmarkTask sst;
      sst.name = "SSTNet";
      sst.model = MakeBert("BERT-Base-s", base);
      sst.metric = MetricKind::kAccuracy;
      sst.num_classes = 2;
      def.tasks.push_back(std::move(sst));

      std::vector<TextTaskSpec> specs(2);
      specs[0].metric = MetricKind::kMatthews;
      specs[1].metric = MetricKind::kAccuracy;
      TextDataOptions opts;
      opts.vocab = large.vocab;
      opts.seq_len = large.seq_len;
      TextDatasetPair pair =
          GenerateTextData(scale.train_size, scale.test_size, specs, opts, rng);
      def.train = std::move(pair.train);
      def.test = std::move(pair.test);
      return def;
    }
    default:
      GMORPH_CHECK(false, "benchmark index " << index << " out of range 1..7");
  }
  return {};
}

}  // namespace gmorph
