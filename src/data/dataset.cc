#include "src/data/dataset.h"

#include <cstring>

#include "src/common/check.h"

namespace gmorph {

std::string MetricKindName(MetricKind metric) {
  switch (metric) {
    case MetricKind::kAccuracy:
      return "accuracy";
    case MetricKind::kMeanAveragePrecision:
      return "mAP";
    case MetricKind::kMatthews:
      return "matthews";
  }
  return "unknown";
}

Tensor MultiTaskDataset::InputBatch(int64_t start, int64_t count) const {
  GMORPH_CHECK(start >= 0 && start + count <= size());
  const int64_t row = inputs.size() / size();
  std::vector<int64_t> dims = inputs.shape().dims();
  dims[0] = count;
  Tensor out(Shape(std::move(dims)));
  std::memcpy(out.data(), inputs.data() + start * row,
              static_cast<size_t>(count * row) * sizeof(float));
  return out;
}

std::vector<int> MultiTaskDataset::LabelBatch(size_t t, int64_t start, int64_t count) const {
  GMORPH_CHECK(t < tasks.size());
  const auto& labels = tasks[t].class_labels;
  GMORPH_CHECK(start >= 0 && start + count <= static_cast<int64_t>(labels.size()));
  return std::vector<int>(labels.begin() + start, labels.begin() + start + count);
}

Tensor MultiTaskDataset::MultiHotBatch(size_t t, int64_t start, int64_t count) const {
  GMORPH_CHECK(t < tasks.size());
  const Tensor& mh = tasks[t].multi_hot;
  GMORPH_CHECK(!mh.empty() && start + count <= mh.shape()[0]);
  const int64_t k = mh.shape()[1];
  Tensor out(Shape{count, k});
  std::memcpy(out.data(), mh.data() + start * k, static_cast<size_t>(count * k) * sizeof(float));
  return out;
}

}  // namespace gmorph
