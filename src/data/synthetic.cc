#include "src/data/synthetic.h"

#include <cmath>

#include "src/common/check.h"

namespace gmorph {
namespace {

constexpr float kTwoPi = 6.28318530717958647692f;

// A smooth random pattern: a small mixture of low-frequency plane waves per
// channel. Smoothness matters — convolutional stems can then share low-level
// edge-like features across tasks.
Tensor MakePattern(int64_t image_size, float amplitude, Rng& rng) {
  Tensor p(Shape{3, image_size, image_size});
  float* data = p.data();
  for (int64_t c = 0; c < 3; ++c) {
    for (int wave = 0; wave < 3; ++wave) {
      const float fy = static_cast<float>(rng.NextIntRange(1, 4));
      const float fx = static_cast<float>(rng.NextIntRange(1, 4));
      const float phase = rng.NextFloat() * kTwoPi;
      const float a = amplitude * (0.5f + rng.NextFloat());
      for (int64_t y = 0; y < image_size; ++y) {
        for (int64_t x = 0; x < image_size; ++x) {
          data[(c * image_size + y) * image_size + x] +=
              a * std::sin(kTwoPi * (fy * static_cast<float>(y) + fx * static_cast<float>(x)) /
                               static_cast<float>(image_size) +
                           phase);
        }
      }
    }
  }
  return p;
}

void AddScaled(Tensor& dst, const Tensor& src, float scale, int64_t offset) {
  float* d = dst.data() + offset;
  const float* s = src.data();
  for (int64_t i = 0; i < src.size(); ++i) {
    d[i] += scale * s[i];
  }
}

MultiTaskDataset GenerateVisionSplit(int64_t n, const std::vector<VisionTaskSpec>& tasks,
                                     const std::vector<std::vector<Tensor>>& patterns,
                                     const VisionDataOptions& options, Rng& rng) {
  const int64_t image = options.image_size;
  const int64_t pixels = 3 * image * image;
  MultiTaskDataset ds;
  ds.inputs = Tensor(Shape{n, 3, image, image});
  ds.tasks.resize(tasks.size());

  for (size_t t = 0; t < tasks.size(); ++t) {
    ds.tasks[t].metric = tasks[t].metric;
    ds.tasks[t].num_classes = tasks[t].num_classes;
    if (tasks[t].metric == MetricKind::kMeanAveragePrecision) {
      ds.tasks[t].multi_hot = Tensor(Shape{n, tasks[t].num_classes});
    } else {
      ds.tasks[t].class_labels.resize(static_cast<size_t>(n));
    }
  }

  for (int64_t i = 0; i < n; ++i) {
    const int64_t offset = i * pixels;
    for (size_t t = 0; t < tasks.size(); ++t) {
      const VisionTaskSpec& task = tasks[t];
      if (task.metric == MetricKind::kMeanAveragePrecision) {
        // Multi-label: include each class independently; ensure >= 1 class.
        int included = 0;
        float* row = ds.tasks[t].multi_hot.data() + i * task.num_classes;
        for (int c = 0; c < task.num_classes; ++c) {
          if (rng.NextBool(task.label_prob)) {
            row[c] = 1.0f;
            ++included;
          }
        }
        if (included == 0) {
          row[rng.NextInt(task.num_classes)] = 1.0f;
          included = 1;
        }
        const float scale = 1.0f / static_cast<float>(included);
        for (int c = 0; c < task.num_classes; ++c) {
          if (row[c] > 0.5f) {
            AddScaled(ds.inputs, patterns[t][static_cast<size_t>(c)], scale, offset);
          }
        }
      } else {
        const int label = rng.NextInt(task.num_classes);
        ds.tasks[t].class_labels[static_cast<size_t>(i)] = label;
        AddScaled(ds.inputs, patterns[t][static_cast<size_t>(label)], 1.0f, offset);
      }
    }
    // Additive observation noise.
    float* img = ds.inputs.data() + offset;
    for (int64_t j = 0; j < pixels; ++j) {
      img[j] += options.noise_stddev * rng.NextGaussian();
    }
  }
  return ds;
}

}  // namespace

VisionDatasetPair GenerateVisionData(int64_t train_size, int64_t test_size,
                                     const std::vector<VisionTaskSpec>& tasks,
                                     const VisionDataOptions& options, Rng& rng) {
  GMORPH_CHECK(!tasks.empty());
  // One pattern bank shared by both splits.
  std::vector<std::vector<Tensor>> patterns(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    for (int c = 0; c < tasks[t].num_classes; ++c) {
      patterns[t].push_back(MakePattern(options.image_size, options.signal, rng));
    }
  }
  VisionDatasetPair pair;
  pair.train = GenerateVisionSplit(train_size, tasks, patterns, options, rng);
  pair.test = GenerateVisionSplit(test_size, tasks, patterns, options, rng);
  return pair;
}

namespace {

MultiTaskDataset GenerateTextSplit(int64_t n, const std::vector<TextTaskSpec>& tasks,
                                   const std::vector<std::vector<float>>& token_scores,
                                   const TextDataOptions& options, Rng& rng) {
  MultiTaskDataset ds;
  ds.inputs = Tensor(Shape{n, options.seq_len});
  ds.tasks.resize(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    ds.tasks[t].metric = tasks[t].metric;
    ds.tasks[t].num_classes = 2;
    ds.tasks[t].class_labels.resize(static_cast<size_t>(n));
  }
  for (int64_t i = 0; i < n; ++i) {
    float* row = ds.inputs.data() + i * options.seq_len;
    // Re-draw rows whose score sum ties for any task: ties carry no signal and
    // would skew the label balance.
    bool tied = true;
    while (tied) {
      for (int64_t j = 0; j < options.seq_len; ++j) {
        row[j] = static_cast<float>(rng.NextInt(static_cast<int>(options.vocab)));
      }
      tied = false;
      for (size_t t = 0; t < tasks.size(); ++t) {
        float sum = 0.0f;
        for (int64_t j = 0; j < options.seq_len; ++j) {
          sum += token_scores[t][static_cast<size_t>(std::lround(row[j]))];
        }
        if (sum == 0.0f) {
          tied = true;
          break;
        }
        ds.tasks[t].class_labels[static_cast<size_t>(i)] = sum > 0.0f ? 1 : 0;
      }
    }
  }
  return ds;
}

}  // namespace

TextDatasetPair GenerateTextData(int64_t train_size, int64_t test_size,
                                 const std::vector<TextTaskSpec>& tasks,
                                 const TextDataOptions& options, Rng& rng) {
  GMORPH_CHECK(!tasks.empty());
  // Exactly half the vocabulary scores +1 per task (Fisher-Yates shuffle of a
  // balanced assignment); a skewed score table would skew the label balance.
  std::vector<std::vector<float>> token_scores(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    token_scores[t].resize(static_cast<size_t>(options.vocab));
    for (size_t v = 0; v < token_scores[t].size(); ++v) {
      token_scores[t][v] = v < token_scores[t].size() / 2 ? 1.0f : -1.0f;
    }
    for (size_t v = token_scores[t].size() - 1; v > 0; --v) {
      std::swap(token_scores[t][v],
                token_scores[t][static_cast<size_t>(rng.NextInt(static_cast<int>(v + 1)))]);
    }
  }
  TextDatasetPair pair;
  pair.train = GenerateTextSplit(train_size, tasks, token_scores, options, rng);
  pair.test = GenerateTextSplit(test_size, tasks, token_scores, options, rng);
  return pair;
}

}  // namespace gmorph
