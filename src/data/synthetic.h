// Procedural synthetic datasets standing in for the paper's UTKFace, FER2013,
// Adience, VOC2007, SOS, CoLA and SST-2 (see DESIGN.md §1 for the
// substitution argument).
//
// Vision: every (task, class) pair owns a fixed smooth random pattern; an
// image is the superposition of the patterns selected by each task's label
// plus Gaussian noise. All tasks therefore share low-level structure in one
// input — the property cross-DNN feature sharing exploits — while remaining
// individually learnable and measurable.
//
// Text: token streams over a small vocabulary; each task's binary label is a
// deterministic bag-of-words function of the tokens via a task-specific
// token-score table, so two NLP tasks share one input stream.
#ifndef GMORPH_SRC_DATA_SYNTHETIC_H_
#define GMORPH_SRC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/data/dataset.h"

namespace gmorph {

struct VisionTaskSpec {
  int num_classes = 4;
  MetricKind metric = MetricKind::kAccuracy;
  // For multi-label (mAP) tasks: per-class inclusion probability.
  float label_prob = 0.35f;
};

struct VisionDataOptions {
  int64_t image_size = 32;
  float noise_stddev = 0.6f;
  // Pattern amplitude; larger = easier tasks.
  float signal = 1.0f;
};

// Generates train+test splits drawn from the same pattern bank so accuracy on
// the test split is meaningful.
struct VisionDatasetPair {
  MultiTaskDataset train;
  MultiTaskDataset test;
};
VisionDatasetPair GenerateVisionData(int64_t train_size, int64_t test_size,
                                     const std::vector<VisionTaskSpec>& tasks,
                                     const VisionDataOptions& options, Rng& rng);

struct TextTaskSpec {
  MetricKind metric = MetricKind::kAccuracy;  // kMatthews for the CoLA stand-in
};

struct TextDataOptions {
  int64_t vocab = 32;
  int64_t seq_len = 16;
};

struct TextDatasetPair {
  MultiTaskDataset train;
  MultiTaskDataset test;
};
TextDatasetPair GenerateTextData(int64_t train_size, int64_t test_size,
                                 const std::vector<TextTaskSpec>& tasks,
                                 const TextDataOptions& options, Rng& rng);

}  // namespace gmorph

#endif  // GMORPH_SRC_DATA_SYNTHETIC_H_
