// Pooling and reshaping modules: MaxPool2d, GlobalAvgPool2d, Flatten, and
// MeanPoolTokens (sequence -> vector, used by transformer heads).
#ifndef GMORPH_SRC_NN_POOLING_H_
#define GMORPH_SRC_NN_POOLING_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/tensor/conv_ops.h"

namespace gmorph {

class MaxPool2d : public Module {
 public:
  MaxPool2d(int64_t kernel, int64_t stride) : kernel_(kernel), stride_(stride) {}

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override;

 protected:
  std::unique_ptr<Module> CloneImpl() const override {
    return std::make_unique<MaxPool2d>(*this);
  }

 private:
  int64_t kernel_;
  int64_t stride_;
  Shape cached_input_shape_;
  std::vector<int64_t> argmax_;
};

class AvgPool2d : public Module {
 public:
  AvgPool2d(int64_t kernel, int64_t stride) : kernel_(kernel), stride_(stride) {}

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override;

 protected:
  std::unique_ptr<Module> CloneImpl() const override {
    return std::make_unique<AvgPool2d>(*this);
  }

 private:
  int64_t kernel_;
  int64_t stride_;
  Shape cached_input_shape_;
};

class GlobalAvgPool2d : public Module {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "GlobalAvgPool2d"; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override {
    return std::make_unique<GlobalAvgPool2d>(*this);
  }

 private:
  Shape cached_input_shape_;
};

// (N, C, H, W) -> (N, C*H*W).
class Flatten : public Module {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Flatten"; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override { return std::make_unique<Flatten>(*this); }

 private:
  Shape cached_input_shape_;
};

// (N, T, D) -> (N, D) by averaging over tokens.
class MeanPoolTokens : public Module {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "MeanPoolTokens"; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override {
    return std::make_unique<MeanPoolTokens>(*this);
  }

 private:
  Shape cached_input_shape_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_POOLING_H_
