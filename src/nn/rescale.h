// Rescale adapter inserted by graph mutation when an input-shareable node pair
// has compatible-but-unequal shapes (paper §4.1).
//
// CNN features (C,H,W): bilinear resize of the spatial dims plus a 1x1 conv to
// adjust channels. Transformer features (T,D): linear interpolation along the
// token axis plus a Linear layer to adjust the hidden size. Either part is
// skipped when that dimension already matches.
#ifndef GMORPH_SRC_NN_RESCALE_H_
#define GMORPH_SRC_NN_RESCALE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/conv2d.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace gmorph {

class Rescale : public Module {
 public:
  // `in_shape` / `out_shape` are per-sample shapes: {C,H,W} or {T,D}.
  Rescale(const Shape& in_shape, const Shape& out_shape, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  const Shape& in_shape() const { return in_shape_; }
  const Shape& out_shape() const { return out_shape_; }
  // True when this adapter is a pure identity (shapes already equal).
  bool IsIdentity() const;

  // Lowering access for the fused runtime: the constituent resize / adapter
  // pieces (null when that piece is skipped).
  bool needs_spatial() const { return needs_spatial_; }
  const Conv2d* channel_adapter() const { return channel_adapter_.get(); }
  const Linear* dim_adapter() const { return dim_adapter_.get(); }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  Rescale() = default;

  Shape in_shape_;
  Shape out_shape_;
  std::unique_ptr<Conv2d> channel_adapter_;  // 1x1 conv, CNN case
  std::unique_ptr<Linear> dim_adapter_;      // hidden-size map, transformer case
  Shape cached_resized_shape_;
  Shape cached_input_shape_;
  bool needs_spatial_ = false;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_RESCALE_H_
