// Normalization layers: BatchNorm2d (per-channel, NCHW) and LayerNorm (last
// dimension, used by transformer blocks).
#ifndef GMORPH_SRC_NN_NORM_H_
#define GMORPH_SRC_NN_NORM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"

namespace gmorph {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<Tensor*> Buffers() override { return {&running_mean_, &running_var_}; }
  std::string Name() const override;

  int64_t channels() const { return channels_; }
  const Parameter& gamma() const { return gamma_; }
  const Parameter& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  float eps() const { return eps_; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  int64_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;  // (C)
  Parameter beta_;   // (C)
  Tensor running_mean_;
  Tensor running_var_;
  // Cached from the training-mode forward pass for the backward pass.
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // (C)
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  int64_t dim_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // one per row
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_NORM_H_
