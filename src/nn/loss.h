// Losses and task metrics.
//
// Losses return the scalar loss and write dL/d(logits) into `grad` (mean
// reduction over the batch). Metrics implement the three scores the paper
// reports: classification accuracy (B1-B3, SST-2), mean average precision for
// multi-label prediction (B4-B6 ObjectNet), and the Matthews correlation
// coefficient (B7 CoLA).
#ifndef GMORPH_SRC_NN_LOSS_H_
#define GMORPH_SRC_NN_LOSS_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace gmorph {

// Mean L1 distance; the distillation objective (paper §5.2).
float L1Loss(const Tensor& pred, const Tensor& target, Tensor& grad);

// Softmax cross-entropy over logits (rows, classes); labels are class indices.
float CrossEntropyLoss(const Tensor& logits, const std::vector<int>& labels, Tensor& grad);

// Sigmoid binary cross-entropy for multi-label logits (rows, classes);
// targets is a 0/1 tensor of the same shape.
float BinaryCrossEntropyLoss(const Tensor& logits, const Tensor& targets, Tensor& grad);

// ---- Metrics ----

// Fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int>& labels);

// Mean average precision over classes for multi-label logits vs 0/1 targets.
double MeanAveragePrecision(const Tensor& logits, const Tensor& targets);

// Matthews correlation coefficient for binary classification from 2-class
// logits (argmax decision) vs labels in {0, 1}. Returns a value in [-1, 1];
// mapped to [0, 1] by callers that need a uniform "score" scale is NOT done
// here — this returns the raw MCC.
double MatthewsCorrelation(const Tensor& logits, const std::vector<int>& labels);

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_LOSS_H_
