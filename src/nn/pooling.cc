#include "src/nn/pooling.h"

#include <sstream>

#include "src/common/check.h"

namespace gmorph {

Tensor MaxPool2d::Forward(const Tensor& x, bool /*training*/) {
  cached_input_shape_ = x.shape();
  return MaxPool2dForward(x, kernel_, stride_, argmax_);
}

Tensor MaxPool2d::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!argmax_.empty());
  return MaxPool2dBackward(cached_input_shape_, grad_out, argmax_);
}

std::string MaxPool2d::Name() const {
  std::ostringstream os;
  os << "MaxPool2d(k=" << kernel_ << ",s=" << stride_ << ")";
  return os.str();
}

Tensor AvgPool2d::Forward(const Tensor& x, bool /*training*/) {
  cached_input_shape_ = x.shape();
  return AvgPool2dForward(x, kernel_, stride_);
}

Tensor AvgPool2d::Backward(const Tensor& grad_out) {
  return AvgPool2dBackward(cached_input_shape_, grad_out, kernel_, stride_);
}

std::string AvgPool2d::Name() const {
  std::ostringstream os;
  os << "AvgPool2d(k=" << kernel_ << ",s=" << stride_ << ")";
  return os.str();
}

Tensor GlobalAvgPool2d::Forward(const Tensor& x, bool /*training*/) {
  cached_input_shape_ = x.shape();
  return GlobalAvgPoolForward(x);
}

Tensor GlobalAvgPool2d::Backward(const Tensor& grad_out) {
  return GlobalAvgPoolBackward(cached_input_shape_, grad_out);
}

Tensor Flatten::Forward(const Tensor& x, bool /*training*/) {
  cached_input_shape_ = x.shape();
  const int64_t n = x.shape()[0];
  return x.Reshape(Shape{n, x.size() / n});
}

Tensor Flatten::Backward(const Tensor& grad_out) {
  return grad_out.Reshape(cached_input_shape_);
}

Tensor MeanPoolTokens::Forward(const Tensor& x, bool /*training*/) {
  GMORPH_CHECK(x.shape().Rank() == 3);
  cached_input_shape_ = x.shape();
  const int64_t n = x.shape()[0];
  const int64_t t = x.shape()[1];
  const int64_t d = x.shape()[2];
  Tensor out(Shape{n, d});
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < n; ++i) {
    float* row = po + i * d;
    for (int64_t tt = 0; tt < t; ++tt) {
      const float* src = px + (i * t + tt) * d;
      for (int64_t j = 0; j < d; ++j) {
        row[j] += src[j];
      }
    }
    for (int64_t j = 0; j < d; ++j) {
      row[j] *= inv;
    }
  }
  return out;
}

Tensor MeanPoolTokens::Backward(const Tensor& grad_out) {
  const int64_t n = cached_input_shape_[0];
  const int64_t t = cached_input_shape_[1];
  const int64_t d = cached_input_shape_[2];
  Tensor grad_x(cached_input_shape_);
  const float* pg = grad_out.data();
  float* px = grad_x.data();
  const float inv = 1.0f / static_cast<float>(t);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = pg + i * d;
    for (int64_t tt = 0; tt < t; ++tt) {
      float* dst = px + (i * t + tt) * d;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] = row[j] * inv;
      }
    }
  }
  return grad_x;
}

}  // namespace gmorph
