// Input embedding stems for transformer models.
//
// TokenEmbedding (BERT-style): (N, T) integer token ids stored as floats ->
// (N, T, D) via table lookup plus a learned positional embedding.
// PatchEmbed (ViT-style): (N, C, H, W) image -> (N, T, D) via a patch-sized
// strided convolution plus a learned positional embedding.
#ifndef GMORPH_SRC_NN_EMBEDDING_H_
#define GMORPH_SRC_NN_EMBEDDING_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/conv2d.h"
#include "src/nn/module.h"

namespace gmorph {

class TokenEmbedding : public Module {
 public:
  TokenEmbedding(int64_t vocab_size, int64_t seq_len, int64_t dim, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  int64_t vocab_size_;
  int64_t seq_len_;
  int64_t dim_;
  Parameter table_;    // (vocab, D)
  Parameter pos_;      // (T, D)
  std::vector<int64_t> cached_ids_;
};

class PatchEmbed : public Module {
 public:
  PatchEmbed(int64_t in_channels, int64_t image_size, int64_t patch_size, int64_t dim, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  int64_t num_tokens() const { return num_tokens_; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  PatchEmbed() = default;

  int64_t patch_grid_ = 0;   // tokens per side
  int64_t num_tokens_ = 0;
  int64_t dim_ = 0;
  std::unique_ptr<Conv2d> proj_;
  Parameter pos_;  // (T, D)
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_EMBEDDING_H_
