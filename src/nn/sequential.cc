#include "src/nn/sequential.h"

#include <sstream>

namespace gmorph {

Tensor Sequential::Forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& m : modules_) {
    h = m->Forward(h, training);
  }
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> out;
  for (auto& m : modules_) {
    for (Parameter* p : m->Parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<Tensor*> Sequential::Buffers() {
  std::vector<Tensor*> out;
  for (auto& m : modules_) {
    for (Tensor* b : m->Buffers()) {
      out.push_back(b);
    }
  }
  return out;
}

std::string Sequential::Name() const {
  std::ostringstream os;
  os << "Sequential[" << modules_.size() << "]";
  return os.str();
}

std::unique_ptr<Module> Sequential::CloneImpl() const {
  auto seq = std::make_unique<Sequential>();
  for (const auto& m : modules_) {
    seq->Append(m->Clone());
  }
  return seq;
}

}  // namespace gmorph
