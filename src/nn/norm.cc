#include "src/nn/norm.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/check.h"
#include "src/common/parallel_for.h"

namespace gmorph {
namespace {

// Channel/row loops split so each chunk covers at least this many elements.
int64_t NormGrain(int64_t per_item) {
  return std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, per_item));
}

}  // namespace

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("gamma", Tensor::Full(Shape{channels}, 1.0f)),
      beta_("beta", Tensor::Zeros(Shape{channels})),
      running_mean_(Tensor::Zeros(Shape{channels})),
      running_var_(Tensor::Full(Shape{channels}, 1.0f)) {}

Tensor BatchNorm2d::Forward(const Tensor& x, bool training) {
  GMORPH_CHECK(x.shape().Rank() == 4 && x.shape()[1] == channels_);
  const int64_t n = x.shape()[0];
  const int64_t c = channels_;
  const int64_t spatial = x.shape()[2] * x.shape()[3];
  const int64_t m = n * spatial;

  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();

  if (training) {
    cached_xhat_ = Tensor(x.shape());
    cached_inv_std_ = Tensor(Shape{c});
    float* pxh = cached_xhat_.data();
    // Channels are independent: statistics, running-stat updates, and the
    // normalized planes all live in per-channel slots.
    ParallelFor(0, c, NormGrain(m), [&](int64_t ch_lo, int64_t ch_hi) {
      for (int64_t ch = ch_lo; ch < ch_hi; ++ch) {
        double sum = 0.0;
        double sq = 0.0;
        for (int64_t i = 0; i < n; ++i) {
          const float* plane = px + (i * c + ch) * spatial;
          for (int64_t s = 0; s < spatial; ++s) {
            sum += plane[s];
            sq += static_cast<double>(plane[s]) * plane[s];
          }
        }
        const float mean = static_cast<float>(sum / m);
        const float var = static_cast<float>(sq / m) - mean * mean;
        const float inv_std = 1.0f / std::sqrt(var + eps_);
        cached_inv_std_.at(ch) = inv_std;
        running_mean_.at(ch) = (1 - momentum_) * running_mean_.at(ch) + momentum_ * mean;
        running_var_.at(ch) = (1 - momentum_) * running_var_.at(ch) + momentum_ * var;
        const float g = gamma_.value.at(ch);
        const float b = beta_.value.at(ch);
        for (int64_t i = 0; i < n; ++i) {
          const float* plane = px + (i * c + ch) * spatial;
          float* xh = pxh + (i * c + ch) * spatial;
          float* yo = po + (i * c + ch) * spatial;
          for (int64_t s = 0; s < spatial; ++s) {
            const float v = (plane[s] - mean) * inv_std;
            xh[s] = v;
            yo[s] = g * v + b;
          }
        }
      }
    });
  } else {
    ParallelFor(0, c, NormGrain(m), [&](int64_t ch_lo, int64_t ch_hi) {
      for (int64_t ch = ch_lo; ch < ch_hi; ++ch) {
        const float mean = running_mean_.at(ch);
        const float inv_std = 1.0f / std::sqrt(running_var_.at(ch) + eps_);
        const float g = gamma_.value.at(ch);
        const float b = beta_.value.at(ch);
        // Fold into a single affine transform per channel.
        const float scale = g * inv_std;
        const float shift = b - mean * scale;
        for (int64_t i = 0; i < n; ++i) {
          const float* plane = px + (i * c + ch) * spatial;
          float* yo = po + (i * c + ch) * spatial;
          for (int64_t s = 0; s < spatial; ++s) {
            yo[s] = scale * plane[s] + shift;
          }
        }
      }
    });
  }
  return out;
}

Tensor BatchNorm2d::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_xhat_.empty(),
                   "BatchNorm2d::Backward requires a training-mode Forward first");
  const int64_t n = grad_out.shape()[0];
  const int64_t c = channels_;
  const int64_t spatial = grad_out.shape()[2] * grad_out.shape()[3];
  const int64_t m = n * spatial;

  Tensor grad_x(grad_out.shape());
  const float* pg = grad_out.data();
  const float* pxh = cached_xhat_.data();
  float* pgx = grad_x.data();

  // Per-channel gradient slots (gamma_.grad.at(ch), beta_.grad.at(ch)) make
  // channels safe to process in parallel.
  ParallelFor(0, c, NormGrain(m), [&](int64_t ch_lo, int64_t ch_hi) {
    for (int64_t ch = ch_lo; ch < ch_hi; ++ch) {
      double sum_dy = 0.0;
      double sum_dy_xhat = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* dy = pg + (i * c + ch) * spatial;
        const float* xh = pxh + (i * c + ch) * spatial;
        for (int64_t s = 0; s < spatial; ++s) {
          sum_dy += dy[s];
          sum_dy_xhat += static_cast<double>(dy[s]) * xh[s];
        }
      }
      gamma_.grad.at(ch) += static_cast<float>(sum_dy_xhat);
      beta_.grad.at(ch) += static_cast<float>(sum_dy);

      const float g = gamma_.value.at(ch);
      const float inv_std = cached_inv_std_.at(ch);
      const float k = g * inv_std / static_cast<float>(m);
      const float mean_dy = static_cast<float>(sum_dy);
      const float mean_dy_xhat = static_cast<float>(sum_dy_xhat);
      for (int64_t i = 0; i < n; ++i) {
        const float* dy = pg + (i * c + ch) * spatial;
        const float* xh = pxh + (i * c + ch) * spatial;
        float* dx = pgx + (i * c + ch) * spatial;
        for (int64_t s = 0; s < spatial; ++s) {
          dx[s] = k * (static_cast<float>(m) * dy[s] - mean_dy - xh[s] * mean_dy_xhat);
        }
      }
    }
  });
  return grad_x;
}

std::vector<Parameter*> BatchNorm2d::Parameters() { return {&gamma_, &beta_}; }

std::string BatchNorm2d::Name() const {
  std::ostringstream os;
  os << "BatchNorm2d(" << channels_ << ")";
  return os.str();
}

std::unique_ptr<Module> BatchNorm2d::CloneImpl() const {
  return std::make_unique<BatchNorm2d>(*this);
}

LayerNorm::LayerNorm(int64_t dim, float eps)
    : dim_(dim),
      eps_(eps),
      gamma_("gamma", Tensor::Full(Shape{dim}, 1.0f)),
      beta_("beta", Tensor::Zeros(Shape{dim})) {}

Tensor LayerNorm::Forward(const Tensor& x, bool /*training*/) {
  GMORPH_CHECK(x.shape()[-1] == dim_);
  const int64_t rows = x.size() / dim_;
  Tensor out(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor(Shape{rows});
  const float* px = x.data();
  float* po = out.data();
  float* pxh = cached_xhat_.data();
  const float* pg = gamma_.value.data();
  const float* pb = beta_.value.data();
  ParallelFor(0, rows, NormGrain(dim_), [&](int64_t r_lo, int64_t r_hi) {
    for (int64_t r = r_lo; r < r_hi; ++r) {
      const float* row = px + r * dim_;
      double sum = 0.0;
      double sq = 0.0;
      for (int64_t j = 0; j < dim_; ++j) {
        sum += row[j];
        sq += static_cast<double>(row[j]) * row[j];
      }
      const float mean = static_cast<float>(sum / dim_);
      const float var = static_cast<float>(sq / dim_) - mean * mean;
      const float inv_std = 1.0f / std::sqrt(var + eps_);
      cached_inv_std_.at(r) = inv_std;
      float* xh = pxh + r * dim_;
      float* yo = po + r * dim_;
      for (int64_t j = 0; j < dim_; ++j) {
        const float v = (row[j] - mean) * inv_std;
        xh[j] = v;
        yo[j] = pg[j] * v + pb[j];
      }
    }
  });
  return out;
}

Tensor LayerNorm::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_xhat_.empty());
  const int64_t rows = grad_out.size() / dim_;
  Tensor grad_x(grad_out.shape());
  const float* pg = grad_out.data();
  const float* pxh = cached_xhat_.data();
  float* pgx = grad_x.data();
  const float* gamma = gamma_.value.data();
  float* ggamma = gamma_.grad.data();
  float* gbeta = beta_.grad.data();
  // Serial on purpose: every row accumulates into the shared gamma/beta
  // gradient vectors, so a row-parallel version would race on them.
  for (int64_t r = 0; r < rows; ++r) {
    const float* dy = pg + r * dim_;
    const float* xh = pxh + r * dim_;
    float* dx = pgx + r * dim_;
    float sum_t = 0.0f;
    float sum_t_xhat = 0.0f;
    for (int64_t j = 0; j < dim_; ++j) {
      const float t = dy[j] * gamma[j];
      sum_t += t;
      sum_t_xhat += t * xh[j];
      ggamma[j] += dy[j] * xh[j];
      gbeta[j] += dy[j];
    }
    const float inv_std = cached_inv_std_.at(r);
    const float inv_dim = 1.0f / static_cast<float>(dim_);
    for (int64_t j = 0; j < dim_; ++j) {
      const float t = dy[j] * gamma[j];
      dx[j] = inv_std * (t - inv_dim * sum_t - inv_dim * xh[j] * sum_t_xhat);
    }
  }
  return grad_x;
}

std::vector<Parameter*> LayerNorm::Parameters() { return {&gamma_, &beta_}; }

std::string LayerNorm::Name() const {
  std::ostringstream os;
  os << "LayerNorm(" << dim_ << ")";
  return os.str();
}

std::unique_ptr<Module> LayerNorm::CloneImpl() const { return std::make_unique<LayerNorm>(*this); }

}  // namespace gmorph
