// Module: the unit of differentiable computation.
//
// GMorph's fine-tuner needs gradients, but full taped autograd is overkill for
// the block-structured models the search manipulates. Instead every Module
// implements an explicit Backward() that consumes dL/d(output) and returns
// dL/d(input), caching whatever it needs from the last Forward(). This is the
// classic layer-wise reverse-mode scheme (Caffe-style) and composes through
// Sequential and the fused multi-task tree executor.
//
// Threading: a Module instance is stateful across Forward/Backward (cached
// activations) and must not be shared between concurrent executions.
#ifndef GMORPH_SRC_NN_MODULE_H_
#define GMORPH_SRC_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace gmorph {

// A learnable tensor plus its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(Tensor::Zeros(value.shape())) {}
};

class Module {
 public:
  virtual ~Module() = default;

  // Computes the output for `x`. `training` selects batch-stat vs running-stat
  // behaviour in normalization layers.
  virtual Tensor Forward(const Tensor& x, bool training) = 0;

  // Given dL/d(output of last Forward), accumulates parameter gradients and
  // returns dL/d(input of last Forward).
  virtual Tensor Backward(const Tensor& grad_out) = 0;

  // All learnable parameters, in a canonical stable order (used for weight
  // transfer between abstract-graph candidates and for the optimizer).
  virtual std::vector<Parameter*> Parameters() { return {}; }

  // Non-learnable state that must travel with checkpoints (e.g. BatchNorm
  // running statistics). Never touched by optimizers.
  virtual std::vector<Tensor*> Buffers() { return {}; }

  virtual std::string Name() const = 0;

  // Deep copy: cloned parameters do not alias this module's storage.
  std::unique_ptr<Module> Clone() const;

  int64_t ParamCount() const;
  void ZeroGrad();

  // Copies parameter values from `src` (same structure required).
  void CopyParametersFrom(const Module& src);

  // Exports parameter values followed by buffer values (deep copies).
  std::vector<Tensor> ExportParameters() const;
  // Imports a list produced by ExportParameters. Accepts either parameters
  // only, or parameters followed by buffers (older checkpoints may lack
  // buffers); shapes are validated.
  void ImportParameters(const std::vector<Tensor>& values);

 protected:
  // Shallow copy of the derived object; Clone() detaches the parameters after.
  virtual std::unique_ptr<Module> CloneImpl() const = 0;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_MODULE_H_
