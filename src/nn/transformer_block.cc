#include "src/nn/transformer_block.h"

#include <sstream>

#include "src/tensor/tensor_ops.h"

namespace gmorph {

TransformerBlock::TransformerBlock(int64_t dim, int64_t num_heads, int64_t mlp_ratio, Rng& rng)
    : dim_(dim), num_heads_(num_heads), mlp_ratio_(mlp_ratio) {
  ln1_ = std::make_unique<LayerNorm>(dim);
  attn_ = std::make_unique<MultiHeadSelfAttention>(dim, num_heads, rng);
  ln2_ = std::make_unique<LayerNorm>(dim);
  fc1_ = std::make_unique<Linear>(dim, dim * mlp_ratio, rng);
  fc2_ = std::make_unique<Linear>(dim * mlp_ratio, dim, rng);
}

Tensor TransformerBlock::Forward(const Tensor& x, bool training) {
  Tensor a = attn_->Forward(ln1_->Forward(x, training), training);
  Tensor x1 = Add(x, a);
  Tensor m = fc2_->Forward(gelu_.Forward(fc1_->Forward(ln2_->Forward(x1, training), training),
                                         training),
                           training);
  return Add(x1, m);
}

Tensor TransformerBlock::Backward(const Tensor& grad_out) {
  // Second residual: grad flows to x1 directly and through the MLP.
  Tensor g_mlp = ln2_->Backward(
      fc1_->Backward(gelu_.Backward(fc2_->Backward(grad_out))));
  Tensor g_x1 = Add(grad_out, g_mlp);
  // First residual: grad flows to x directly and through attention.
  Tensor g_attn = ln1_->Backward(attn_->Backward(g_x1));
  return Add(g_x1, g_attn);
}

std::vector<Parameter*> TransformerBlock::Parameters() {
  std::vector<Parameter*> out;
  for (Module* m : std::initializer_list<Module*>{ln1_.get(), attn_.get(), ln2_.get(), fc1_.get(),
                                                  fc2_.get()}) {
    for (Parameter* p : m->Parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

std::string TransformerBlock::Name() const {
  std::ostringstream os;
  os << "TransformerBlock(d=" << dim_ << ",h=" << num_heads_ << ")";
  return os.str();
}

std::unique_ptr<Module> TransformerBlock::CloneImpl() const {
  std::unique_ptr<TransformerBlock> m(new TransformerBlock());
  m->dim_ = dim_;
  m->num_heads_ = num_heads_;
  m->mlp_ratio_ = mlp_ratio_;
  m->ln1_.reset(static_cast<LayerNorm*>(ln1_->Clone().release()));
  m->attn_.reset(static_cast<MultiHeadSelfAttention*>(attn_->Clone().release()));
  m->ln2_.reset(static_cast<LayerNorm*>(ln2_->Clone().release()));
  m->fc1_.reset(static_cast<Linear*>(fc1_->Clone().release()));
  m->fc2_.reset(static_cast<Linear*>(fc2_->Clone().release()));
  return m;
}

}  // namespace gmorph
