#include "src/nn/conv2d.h"

#include <sstream>

#include "src/common/check.h"
#include "src/nn/init.h"

namespace gmorph {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
               int64_t padding, Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      args_{stride, padding},
      has_bias_(bias),
      weight_("weight", HeInit(Shape{out_channels, in_channels, kernel, kernel},
                               in_channels * kernel * kernel, rng)),
      bias_("bias", bias ? Tensor::Zeros(Shape{out_channels}) : Tensor()) {}

Tensor Conv2d::Forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  return Conv2dForward(x, weight_.value, has_bias_ ? bias_.value : Tensor(), args_);
}

Tensor Conv2d::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_input_.empty());
  return Conv2dBackward(cached_input_, weight_.value, grad_out, args_, weight_.grad, bias_.grad);
}

std::vector<Parameter*> Conv2d::Parameters() {
  if (has_bias_) {
    return {&weight_, &bias_};
  }
  return {&weight_};
}

std::string Conv2d::Name() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ",k=" << kernel_
     << ",s=" << args_.stride << ",p=" << args_.padding << ")";
  return os.str();
}

std::unique_ptr<Module> Conv2d::CloneImpl() const { return std::make_unique<Conv2d>(*this); }

}  // namespace gmorph
