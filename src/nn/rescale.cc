#include "src/nn/rescale.h"

#include <sstream>

#include "src/common/check.h"
#include "src/tensor/conv_ops.h"

namespace gmorph {
namespace {

// Identity-like initialization for adapter weights: output channel o copies
// input channel (o mod in) plus small noise. A freshly inserted adapter then
// approximately passes features through, so the guest's pre-trained
// downstream blocks keep receiving a familiar signal and distillation only
// has to repair the residual mismatch — random init would force the whole
// guest branch to retrain from scratch.
void InitIdentityLike(Tensor& weight, int64_t in, int64_t out, bool out_major, Rng& rng) {
  float* w = weight.data();
  for (int64_t i = 0; i < weight.size(); ++i) {
    w[i] = 0.01f * rng.NextGaussian();
  }
  for (int64_t o = 0; o < out; ++o) {
    const int64_t src = o % in;
    // out_major: weight is (out, in, ...); otherwise (in, out).
    if (out_major) {
      const int64_t per_out = weight.size() / out;
      w[o * per_out + src * (per_out / in)] += 1.0f;
    } else {
      w[src * out + o] += 1.0f;
    }
  }
}

}  // namespace

Rescale::Rescale(const Shape& in_shape, const Shape& out_shape, Rng& rng)
    : in_shape_(in_shape), out_shape_(out_shape) {
  GMORPH_CHECK(in_shape.Rank() == out_shape.Rank(),
                   "rescale rank mismatch " << in_shape.ToString() << " -> "
                                            << out_shape.ToString());
  if (in_shape.Rank() == 3) {
    // (C, H, W)
    needs_spatial_ = in_shape[1] != out_shape[1] || in_shape[2] != out_shape[2];
    if (in_shape[0] != out_shape[0]) {
      channel_adapter_ =
          std::make_unique<Conv2d>(in_shape[0], out_shape[0], 1, 1, 0, rng, /*bias=*/true);
      InitIdentityLike(channel_adapter_->mutable_weight().value, in_shape[0], out_shape[0],
                       /*out_major=*/true, rng);
    }
  } else if (in_shape.Rank() == 2) {
    // (T, D)
    needs_spatial_ = in_shape[0] != out_shape[0];
    if (in_shape[1] != out_shape[1]) {
      dim_adapter_ = std::make_unique<Linear>(in_shape[1], out_shape[1], rng);
      InitIdentityLike(dim_adapter_->mutable_weight().value, in_shape[1], out_shape[1],
                       /*out_major=*/false, rng);
    }
  } else {
    GMORPH_CHECK(false, "unsupported rescale rank " << in_shape.Rank());
  }
}

bool Rescale::IsIdentity() const {
  return !needs_spatial_ && channel_adapter_ == nullptr && dim_adapter_ == nullptr;
}

Tensor Rescale::Forward(const Tensor& x, bool training) {
  GMORPH_CHECK(x.shape().WithoutBatch() == in_shape_,
                   "Rescale expected " << in_shape_.ToString() << " got "
                                       << x.shape().ToString());
  cached_input_shape_ = x.shape();
  Tensor h = x;
  if (in_shape_.Rank() == 3) {
    if (needs_spatial_) {
      h = BilinearResizeForward(h, out_shape_[1], out_shape_[2]);
    }
    cached_resized_shape_ = h.shape();
    if (channel_adapter_) {
      h = channel_adapter_->Forward(h, training);
    }
  } else {
    if (needs_spatial_) {
      h = LinearResizeTokensForward(h, out_shape_[0]);
    }
    cached_resized_shape_ = h.shape();
    if (dim_adapter_) {
      h = dim_adapter_->Forward(h, training);
    }
  }
  return h;
}

Tensor Rescale::Backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  if (in_shape_.Rank() == 3) {
    if (channel_adapter_) {
      g = channel_adapter_->Backward(g);
    }
    if (needs_spatial_) {
      g = BilinearResizeBackward(cached_input_shape_, g);
    }
  } else {
    if (dim_adapter_) {
      g = dim_adapter_->Backward(g);
    }
    if (needs_spatial_) {
      g = LinearResizeTokensBackward(cached_input_shape_, g);
    }
  }
  return g;
}

std::vector<Parameter*> Rescale::Parameters() {
  if (channel_adapter_) {
    return channel_adapter_->Parameters();
  }
  if (dim_adapter_) {
    return dim_adapter_->Parameters();
  }
  return {};
}

std::string Rescale::Name() const {
  std::ostringstream os;
  os << "Rescale" << in_shape_.ToString() << "->" << out_shape_.ToString();
  return os.str();
}

std::unique_ptr<Module> Rescale::CloneImpl() const {
  std::unique_ptr<Rescale> m(new Rescale());
  m->in_shape_ = in_shape_;
  m->out_shape_ = out_shape_;
  m->needs_spatial_ = needs_spatial_;
  if (channel_adapter_) {
    m->channel_adapter_.reset(static_cast<Conv2d*>(channel_adapter_->Clone().release()));
  }
  if (dim_adapter_) {
    m->dim_adapter_.reset(static_cast<Linear*>(dim_adapter_->Clone().release()));
  }
  return m;
}

}  // namespace gmorph
