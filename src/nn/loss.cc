#include "src/nn/loss.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {

float L1Loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  GMORPH_CHECK(pred.shape() == target.shape());
  grad = Tensor(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = grad.data();
  const int64_t n = pred.size();
  const float inv = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float d = pp[i] - pt[i];
    loss += std::fabs(d);
    pg[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) * inv;
  }
  return static_cast<float>(loss * inv);
}

float CrossEntropyLoss(const Tensor& logits, const std::vector<int>& labels, Tensor& grad) {
  GMORPH_CHECK(logits.shape().Rank() == 2);
  const int64_t rows = logits.shape()[0];
  const int64_t cols = logits.shape()[1];
  GMORPH_CHECK(static_cast<int64_t>(labels.size()) == rows);

  Tensor probs = SoftmaxLastDim(logits);
  grad = probs.Clone();
  float* pg = grad.data();
  const float* pp = probs.data();
  const float inv = 1.0f / static_cast<float>(rows);
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const int y = labels[static_cast<size_t>(r)];
    GMORPH_CHECK(y >= 0 && y < cols);
    loss -= std::log(std::max(pp[r * cols + y], 1e-12f));
    pg[r * cols + y] -= 1.0f;
  }
  ScaleInPlace(grad, inv);
  return static_cast<float>(loss * inv);
}

float BinaryCrossEntropyLoss(const Tensor& logits, const Tensor& targets, Tensor& grad) {
  GMORPH_CHECK(logits.shape() == targets.shape());
  grad = Tensor(logits.shape());
  const float* pl = logits.data();
  const float* pt = targets.data();
  float* pg = grad.data();
  const int64_t n = logits.size();
  const float inv = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float z = pl[i];
    const float y = pt[i];
    // Numerically stable log(1 + e^-|z|) formulation.
    const float sig = 1.0f / (1.0f + std::exp(-z));
    loss += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
    pg[i] = (sig - y) * inv;
  }
  return static_cast<float>(loss * inv);
}

double Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const std::vector<int> pred = ArgmaxRows(logits);
  GMORPH_CHECK(pred.size() == labels.size());
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) {
      ++correct;
    }
  }
  return pred.empty() ? 0.0 : static_cast<double>(correct) / static_cast<double>(pred.size());
}

double MeanAveragePrecision(const Tensor& logits, const Tensor& targets) {
  GMORPH_CHECK(logits.shape() == targets.shape() && logits.shape().Rank() == 2);
  const int64_t rows = logits.shape()[0];
  const int64_t cols = logits.shape()[1];
  double sum_ap = 0.0;
  int64_t counted = 0;
  std::vector<int64_t> order(static_cast<size_t>(rows));
  for (int64_t c = 0; c < cols; ++c) {
    std::iota(order.begin(), order.end(), 0);
    const float* pl = logits.data();
    const float* pt = targets.data();
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return pl[a * cols + c] > pl[b * cols + c];
    });
    int64_t positives = 0;
    for (int64_t r = 0; r < rows; ++r) {
      if (pt[r * cols + c] > 0.5f) {
        ++positives;
      }
    }
    if (positives == 0) {
      continue;  // class absent from this split; skip, as VOC mAP does
    }
    double ap = 0.0;
    int64_t hits = 0;
    for (int64_t rank = 0; rank < rows; ++rank) {
      if (pt[order[static_cast<size_t>(rank)] * cols + c] > 0.5f) {
        ++hits;
        ap += static_cast<double>(hits) / static_cast<double>(rank + 1);
      }
    }
    sum_ap += ap / static_cast<double>(positives);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum_ap / static_cast<double>(counted);
}

double MatthewsCorrelation(const Tensor& logits, const std::vector<int>& labels) {
  const std::vector<int> pred = ArgmaxRows(logits);
  GMORPH_CHECK(pred.size() == labels.size());
  double tp = 0;
  double tn = 0;
  double fp = 0;
  double fn = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == 1 && labels[i] == 1) {
      ++tp;
    } else if (pred[i] == 0 && labels[i] == 0) {
      ++tn;
    } else if (pred[i] == 1 && labels[i] == 0) {
      ++fp;
    } else {
      ++fn;
    }
  }
  const double denom = std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  if (denom == 0.0) {
    return 0.0;
  }
  return (tp * tn - fp * fn) / denom;
}

}  // namespace gmorph
