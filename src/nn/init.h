// Weight initialization schemes.
#ifndef GMORPH_SRC_NN_INIT_H_
#define GMORPH_SRC_NN_INIT_H_

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace gmorph {

// Kaiming-He normal init for ReLU networks: N(0, sqrt(2 / fan_in)).
Tensor HeInit(const Shape& shape, int64_t fan_in, Rng& rng);

// Xavier/Glorot uniform init: U(±sqrt(6 / (fan_in + fan_out))).
Tensor XavierInit(const Shape& shape, int64_t fan_in, int64_t fan_out, Rng& rng);

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_INIT_H_
