#include "src/nn/embedding.h"

#include <cmath>
#include <sstream>

#include "src/common/check.h"

namespace gmorph {

TokenEmbedding::TokenEmbedding(int64_t vocab_size, int64_t seq_len, int64_t dim, Rng& rng)
    : vocab_size_(vocab_size),
      seq_len_(seq_len),
      dim_(dim),
      table_("table", Tensor::RandomGaussian(Shape{vocab_size, dim}, rng, 0.02f)),
      pos_("pos", Tensor::RandomGaussian(Shape{seq_len, dim}, rng, 0.02f)) {}

Tensor TokenEmbedding::Forward(const Tensor& x, bool /*training*/) {
  GMORPH_CHECK(x.shape().Rank() == 2 && x.shape()[1] == seq_len_,
                   "TokenEmbedding got " << x.shape().ToString());
  const int64_t n = x.shape()[0];
  cached_ids_.resize(static_cast<size_t>(n * seq_len_));
  Tensor out(Shape{n, seq_len_, dim_});
  const float* px = x.data();
  float* po = out.data();
  const float* table = table_.value.data();
  const float* pos = pos_.value.data();
  for (int64_t i = 0; i < n * seq_len_; ++i) {
    const int64_t id = static_cast<int64_t>(std::lround(px[i]));
    GMORPH_CHECK(id >= 0 && id < vocab_size_, "token id " << id << " out of range");
    cached_ids_[static_cast<size_t>(i)] = id;
    const float* row = table + id * dim_;
    const float* prow = pos + (i % seq_len_) * dim_;
    float* dst = po + i * dim_;
    for (int64_t j = 0; j < dim_; ++j) {
      dst[j] = row[j] + prow[j];
    }
  }
  return out;
}

Tensor TokenEmbedding::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_ids_.empty());
  const int64_t total = static_cast<int64_t>(cached_ids_.size());
  const float* pg = grad_out.data();
  float* gtable = table_.grad.data();
  float* gpos = pos_.grad.data();
  for (int64_t i = 0; i < total; ++i) {
    const float* src = pg + i * dim_;
    float* trow = gtable + cached_ids_[static_cast<size_t>(i)] * dim_;
    float* prow = gpos + (i % seq_len_) * dim_;
    for (int64_t j = 0; j < dim_; ++j) {
      trow[j] += src[j];
      prow[j] += src[j];
    }
  }
  // The input is discrete ids; there is no gradient to propagate further.
  return Tensor::Zeros(Shape{total / seq_len_, seq_len_});
}

std::vector<Parameter*> TokenEmbedding::Parameters() { return {&table_, &pos_}; }

std::string TokenEmbedding::Name() const {
  std::ostringstream os;
  os << "TokenEmbedding(v=" << vocab_size_ << ",d=" << dim_ << ")";
  return os.str();
}

std::unique_ptr<Module> TokenEmbedding::CloneImpl() const {
  return std::make_unique<TokenEmbedding>(*this);
}

PatchEmbed::PatchEmbed(int64_t in_channels, int64_t image_size, int64_t patch_size, int64_t dim,
                       Rng& rng)
    : patch_grid_(image_size / patch_size),
      num_tokens_(patch_grid_ * patch_grid_),
      dim_(dim),
      pos_("pos", Tensor::RandomGaussian(Shape{num_tokens_, dim}, rng, 0.02f)) {
  GMORPH_CHECK(image_size % patch_size == 0,
                   "image " << image_size << " not divisible by patch " << patch_size);
  proj_ = std::make_unique<Conv2d>(in_channels, dim, patch_size, patch_size, 0, rng);
}

Tensor PatchEmbed::Forward(const Tensor& x, bool training) {
  Tensor h = proj_->Forward(x, training);  // (N, D, G, G)
  const int64_t n = h.shape()[0];
  Tensor out(Shape{n, num_tokens_, dim_});
  const float* ph = h.data();
  float* po = out.data();
  const float* pos = pos_.value.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* src = ph + i * dim_ * num_tokens_;
    float* dst = po + i * num_tokens_ * dim_;
    for (int64_t tok = 0; tok < num_tokens_; ++tok) {
      float* row = dst + tok * dim_;
      const float* prow = pos + tok * dim_;
      for (int64_t d = 0; d < dim_; ++d) {
        row[d] = src[d * num_tokens_ + tok] + prow[d];
      }
    }
  }
  return out;
}

Tensor PatchEmbed::Backward(const Tensor& grad_out) {
  const int64_t n = grad_out.shape()[0];
  Tensor grad_h(Shape{n, dim_, patch_grid_, patch_grid_});
  const float* pg = grad_out.data();
  float* ph = grad_h.data();
  float* gpos = pos_.grad.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* src = pg + i * num_tokens_ * dim_;
    float* dst = ph + i * dim_ * num_tokens_;
    for (int64_t tok = 0; tok < num_tokens_; ++tok) {
      const float* row = src + tok * dim_;
      float* prow = gpos + tok * dim_;
      for (int64_t d = 0; d < dim_; ++d) {
        dst[d * num_tokens_ + tok] = row[d];
        prow[d] += row[d];
      }
    }
  }
  return proj_->Backward(grad_h);
}

std::vector<Parameter*> PatchEmbed::Parameters() {
  std::vector<Parameter*> out = proj_->Parameters();
  out.push_back(&pos_);
  return out;
}

std::string PatchEmbed::Name() const {
  std::ostringstream os;
  os << "PatchEmbed(t=" << num_tokens_ << ",d=" << dim_ << ")";
  return os.str();
}

std::unique_ptr<Module> PatchEmbed::CloneImpl() const {
  std::unique_ptr<PatchEmbed> m(new PatchEmbed());
  m->patch_grid_ = patch_grid_;
  m->num_tokens_ = num_tokens_;
  m->dim_ = dim_;
  m->proj_.reset(static_cast<Conv2d*>(proj_->Clone().release()));
  m->pos_ = pos_;
  return m;
}

}  // namespace gmorph
