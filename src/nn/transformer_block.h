// Pre-LN transformer encoder block:
//   x = x + MHSA(LN(x));  x = x + MLP(LN(x)),  MLP = Linear -> GELU -> Linear.
// This is the computation block the abstract graph manipulates for ViT / BERT
// style models.
#ifndef GMORPH_SRC_NN_TRANSFORMER_BLOCK_H_
#define GMORPH_SRC_NN_TRANSFORMER_BLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"
#include "src/nn/norm.h"

namespace gmorph {

class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int64_t num_heads, int64_t mlp_ratio, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  TransformerBlock() = default;

  int64_t dim_ = 0;
  int64_t num_heads_ = 0;
  int64_t mlp_ratio_ = 0;
  std::unique_ptr<LayerNorm> ln1_;
  std::unique_ptr<MultiHeadSelfAttention> attn_;
  std::unique_ptr<LayerNorm> ln2_;
  std::unique_ptr<Linear> fc1_;
  GELU gelu_;
  std::unique_ptr<Linear> fc2_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_TRANSFORMER_BLOCK_H_
