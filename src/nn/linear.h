// Fully-connected layer. Accepts (N, in) or (N, T, in): leading dimensions are
// flattened into rows, so the same layer serves classifier heads and
// per-token transformer projections.
#ifndef GMORPH_SRC_NN_LINEAR_H_
#define GMORPH_SRC_NN_LINEAR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/module.h"

namespace gmorph {

class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  Parameter& mutable_weight() { return weight_; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
  Parameter weight_;  // (in, out) — row-major so forward is a plain NN GEMM
  Parameter bias_;    // (out)
  Tensor cached_input_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_LINEAR_H_
