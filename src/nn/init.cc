#include "src/nn/init.h"

#include <cmath>

#include "src/common/check.h"

namespace gmorph {

Tensor HeInit(const Shape& shape, int64_t fan_in, Rng& rng) {
  GMORPH_CHECK(fan_in > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::RandomGaussian(shape, rng, stddev);
}

Tensor XavierInit(const Shape& shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  GMORPH_CHECK(fan_in > 0 && fan_out > 0);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandomUniform(shape, rng, -bound, bound);
}

}  // namespace gmorph
