// Sequential container: owns an ordered list of modules and chains their
// forward/backward passes. Used both for whole single-task models (teachers)
// and for composite blocks (Conv+BN+ReLU, residual branches, MLPs).
#ifndef GMORPH_SRC_NN_SEQUENTIAL_H_
#define GMORPH_SRC_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"

namespace gmorph {

class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<std::unique_ptr<Module>> modules)
      : modules_(std::move(modules)) {}

  void Append(std::unique_ptr<Module> m) { modules_.push_back(std::move(m)); }

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<Tensor*> Buffers() override;
  std::string Name() const override;

  size_t size() const { return modules_.size(); }
  Module& at(size_t i) { return *modules_[i]; }
  const Module& at(size_t i) const { return *modules_[i]; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_SEQUENTIAL_H_
