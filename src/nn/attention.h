// Multi-head self-attention over (N, T, D) sequences.
//
// Layout strategy: the fused QKV projection produces (N, T, 3D); per-head
// Q/K/V are materialized into contiguous (T, head_dim) panels so that the
// score / context products run through the contiguous GEMM cores. The copies
// are linear in the activation size and negligible next to the matmuls.
#ifndef GMORPH_SRC_NN_ATTENTION_H_
#define GMORPH_SRC_NN_ATTENTION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/linear.h"
#include "src/nn/module.h"

namespace gmorph {

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  // Leaves sub-layers unset; used by CloneImpl.
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads);

  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::unique_ptr<Linear> qkv_;   // D -> 3D
  std::unique_ptr<Linear> proj_;  // D -> D

  // Caches for backward.
  Tensor cached_qkv_;    // (N, T, 3D)
  Tensor cached_attn_;   // (N, H, T, T) softmax weights
  Shape cached_input_shape_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_ATTENTION_H_
