// Conv2d module wrapping the im2col kernels in tensor/conv_ops.
#ifndef GMORPH_SRC_NN_CONV2D_H_
#define GMORPH_SRC_NN_CONV2D_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/module.h"
#include "src/tensor/conv_ops.h"

namespace gmorph {

class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
         int64_t padding, Rng& rng, bool bias = true);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  Parameter& mutable_weight() { return weight_; }
  Parameter& mutable_bias() { return bias_; }
  const Conv2dArgs& args() const { return args_; }
  int64_t kernel() const { return kernel_; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  int64_t kernel_;
  Conv2dArgs args_;
  bool has_bias_;
  Parameter weight_;  // (O, C, K, K)
  Parameter bias_;    // (O)
  Tensor cached_input_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_CONV2D_H_
