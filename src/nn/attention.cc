#include "src/nn/attention.h"

#include <cmath>
#include <sstream>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/kernels/scratch.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {
namespace {

// (sample, head) pairs are independent; chunk them so each chunk carries at
// least ~32K flops worth of attention work.
int64_t HeadGrain(int64_t t, int64_t head_dim) {
  return std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, t * t + t * head_dim));
}

// Copies one head's panel out of / into a (N, T, 3D) or (N, T, D) tensor.
void GatherPanel(const float* src, int64_t t, int64_t row_stride, int64_t offset, int64_t width,
                 float* dst) {
  for (int64_t i = 0; i < t; ++i) {
    const float* s = src + i * row_stride + offset;
    float* d = dst + i * width;
    for (int64_t j = 0; j < width; ++j) {
      d[j] = s[j];
    }
  }
}

void ScatterPanel(const float* src, int64_t t, int64_t row_stride, int64_t offset, int64_t width,
                  float* dst) {
  for (int64_t i = 0; i < t; ++i) {
    const float* s = src + i * width;
    float* d = dst + i * row_stride + offset;
    for (int64_t j = 0; j < width; ++j) {
      d[j] = s[j];
    }
  }
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads, Rng& rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {
  GMORPH_CHECK(dim % num_heads == 0, "dim " << dim << " not divisible by heads " << num_heads);
  qkv_ = std::make_unique<Linear>(dim, 3 * dim, rng);
  proj_ = std::make_unique<Linear>(dim, dim, rng);
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x, bool training) {
  GMORPH_CHECK(x.shape().Rank() == 3 && x.shape()[2] == dim_);
  cached_input_shape_ = x.shape();
  const int64_t n = x.shape()[0];
  const int64_t t = x.shape()[1];
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  cached_qkv_ = qkv_->Forward(x, training);  // (N, T, 3D)
  cached_attn_ = Tensor(Shape{n, num_heads_, t, t});
  Tensor merged(Shape{n, t, dim_});

  // Each (sample, head) pair touches disjoint slices of cached_attn_ and
  // merged, so the flattened pair index parallelizes cleanly.
  ParallelFor(0, n * num_heads_, HeadGrain(t, head_dim_), [&](int64_t lo, int64_t hi) {
    ScratchScope scope;
    float* q = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* k = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* v = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* scores = scope.AllocFloats(static_cast<size_t>(t * t));
    float* ctx = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    for (int64_t ih = lo; ih < hi; ++ih) {
      const int64_t i = ih / num_heads_;
      const int64_t h = ih % num_heads_;
      const float* qkv_n = cached_qkv_.data() + i * t * 3 * dim_;
      const int64_t off = h * head_dim_;
      GatherPanel(qkv_n, t, 3 * dim_, off, head_dim_, q);
      GatherPanel(qkv_n, t, 3 * dim_, dim_ + off, head_dim_, k);
      GatherPanel(qkv_n, t, 3 * dim_, 2 * dim_ + off, head_dim_, v);

      MatmulNT(q, k, scores, t, head_dim_, t);
      for (int64_t s = 0; s < t * t; ++s) {
        scores[s] *= scale;
      }
      // Row-wise softmax straight into the attention cache.
      float* attn = cached_attn_.data() + ((i * num_heads_ + h) * t) * t;
      for (int64_t r = 0; r < t; ++r) {
        const float* sr = scores + r * t;
        float* ar = attn + r * t;
        float mx = sr[0];
        for (int64_t j = 1; j < t; ++j) {
          mx = std::max(mx, sr[j]);
        }
        float sum = 0.0f;
        for (int64_t j = 0; j < t; ++j) {
          ar[j] = std::exp(sr[j] - mx);
          sum += ar[j];
        }
        const float inv = 1.0f / sum;
        for (int64_t j = 0; j < t; ++j) {
          ar[j] *= inv;
        }
      }
      MatmulNN(attn, v, ctx, t, t, head_dim_);
      ScatterPanel(ctx, t, dim_, off, head_dim_, merged.data() + i * t * dim_);
    }
  });
  return proj_->Forward(merged, training);
}

Tensor MultiHeadSelfAttention::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_qkv_.empty());
  const int64_t n = cached_input_shape_[0];
  const int64_t t = cached_input_shape_[1];
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  Tensor grad_merged = proj_->Backward(grad_out);  // (N, T, D)
  Tensor grad_qkv(Shape{n, t, 3 * dim_});

  ParallelFor(0, n * num_heads_, HeadGrain(t, head_dim_), [&](int64_t lo, int64_t hi) {
    ScratchScope scope;
    float* q = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* k = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* v = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* dctx = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* dattn = scope.AllocFloats(static_cast<size_t>(t * t));
    float* dscores = scope.AllocFloats(static_cast<size_t>(t * t));
    float* dq = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* dk = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    float* dv = scope.AllocFloats(static_cast<size_t>(t * head_dim_));
    for (int64_t ih = lo; ih < hi; ++ih) {
      const int64_t i = ih / num_heads_;
      const int64_t h = ih % num_heads_;
      const float* qkv_n = cached_qkv_.data() + i * t * 3 * dim_;
      float* dqkv_n = grad_qkv.data() + i * t * 3 * dim_;
      const int64_t off = h * head_dim_;
      GatherPanel(qkv_n, t, 3 * dim_, off, head_dim_, q);
      GatherPanel(qkv_n, t, 3 * dim_, dim_ + off, head_dim_, k);
      GatherPanel(qkv_n, t, 3 * dim_, 2 * dim_ + off, head_dim_, v);
      GatherPanel(grad_merged.data() + i * t * dim_, t, dim_, off, head_dim_, dctx);

      const float* attn = cached_attn_.data() + ((i * num_heads_ + h) * t) * t;
      // dA = dCtx * V^T ; dV = A^T * dCtx
      MatmulNT(dctx, v, dattn, t, head_dim_, t);
      MatmulTN(attn, dctx, dv, t, t, head_dim_);
      // Softmax backward per row, folding in the score scale.
      for (int64_t r = 0; r < t; ++r) {
        const float* ar = attn + r * t;
        const float* gr = dattn + r * t;
        float* sr = dscores + r * t;
        float dot = 0.0f;
        for (int64_t j = 0; j < t; ++j) {
          dot += ar[j] * gr[j];
        }
        for (int64_t j = 0; j < t; ++j) {
          sr[j] = scale * ar[j] * (gr[j] - dot);
        }
      }
      // dQ = dS * K ; dK = dS^T * Q
      MatmulNN(dscores, k, dq, t, t, head_dim_);
      MatmulTN(dscores, q, dk, t, t, head_dim_);

      ScatterPanel(dq, t, 3 * dim_, off, head_dim_, dqkv_n);
      ScatterPanel(dk, t, 3 * dim_, dim_ + off, head_dim_, dqkv_n);
      ScatterPanel(dv, t, 3 * dim_, 2 * dim_ + off, head_dim_, dqkv_n);
    }
  });
  return qkv_->Backward(grad_qkv);
}

std::vector<Parameter*> MultiHeadSelfAttention::Parameters() {
  std::vector<Parameter*> out = qkv_->Parameters();
  for (Parameter* p : proj_->Parameters()) {
    out.push_back(p);
  }
  return out;
}

std::string MultiHeadSelfAttention::Name() const {
  std::ostringstream os;
  os << "MHSA(d=" << dim_ << ",h=" << num_heads_ << ")";
  return os.str();
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads)
    : dim_(dim), num_heads_(num_heads), head_dim_(dim / num_heads) {}

std::unique_ptr<Module> MultiHeadSelfAttention::CloneImpl() const {
  std::unique_ptr<MultiHeadSelfAttention> m(new MultiHeadSelfAttention(dim_, num_heads_));
  m->qkv_.reset(static_cast<Linear*>(qkv_->Clone().release()));
  m->proj_.reset(static_cast<Linear*>(proj_->Clone().release()));
  return m;
}

}  // namespace gmorph
