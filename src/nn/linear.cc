#include "src/nn/linear.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/nn/init.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight", HeInit(Shape{in_features, out_features}, in_features, rng)),
      bias_("bias", bias ? Tensor::Zeros(Shape{out_features}) : Tensor()) {}

Tensor Linear::Forward(const Tensor& x, bool /*training*/) {
  GMORPH_CHECK(x.shape()[-1] == in_features_,
                   "Linear(" << in_features_ << ") got " << x.shape().ToString());
  cached_input_ = x;
  const int64_t rows = x.size() / in_features_;

  std::vector<int64_t> out_dims = x.shape().dims();
  out_dims.back() = out_features_;
  Tensor out(Shape(std::move(out_dims)));
  MatmulNN(x.data(), weight_.value.data(), out.data(), rows, in_features_, out_features_);
  if (has_bias_) {
    float* po = out.data();
    const float* pb = bias_.value.data();
    const int64_t grain = std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, out_features_));
    ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        float* row = po + r * out_features_;
        for (int64_t j = 0; j < out_features_; ++j) {
          row[j] += pb[j];
        }
      }
    });
  }
  return out;
}

Tensor Linear::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_input_.empty());
  const int64_t rows = cached_input_.size() / in_features_;
  GMORPH_CHECK(grad_out.size() == rows * out_features_);

  // dW += X^T * dY
  MatmulTN(cached_input_.data(), grad_out.data(), weight_.grad.data(), rows, in_features_,
           out_features_, /*accumulate=*/true);
  if (has_bias_) {
    float* gb = bias_.grad.data();
    const float* gy = grad_out.data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* row = gy + r * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) {
        gb[j] += row[j];
      }
    }
  }
  // dX = dY * W^T
  Tensor grad_x(cached_input_.shape());
  MatmulNT(grad_out.data(), weight_.value.data(), grad_x.data(), rows, out_features_,
           in_features_);
  return grad_x;
}

std::vector<Parameter*> Linear::Parameters() {
  if (has_bias_) {
    return {&weight_, &bias_};
  }
  return {&weight_};
}

std::string Linear::Name() const {
  std::ostringstream os;
  os << "Linear(" << in_features_ << "->" << out_features_ << ")";
  return os.str();
}

std::unique_ptr<Module> Linear::CloneImpl() const { return std::make_unique<Linear>(*this); }

}  // namespace gmorph
