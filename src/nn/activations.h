// Pointwise activation modules: ReLU and GELU (tanh approximation).
#ifndef GMORPH_SRC_NN_ACTIVATIONS_H_
#define GMORPH_SRC_NN_ACTIVATIONS_H_

#include <memory>
#include <string>

#include "src/nn/module.h"

namespace gmorph {

class ReLU : public Module {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "ReLU"; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override { return std::make_unique<ReLU>(*this); }

 private:
  Tensor cached_input_;
};

class GELU : public Module {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "GELU"; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override { return std::make_unique<GELU>(*this); }

 private:
  Tensor cached_input_;
};

class Sigmoid : public Module {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Sigmoid"; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override { return std::make_unique<Sigmoid>(*this); }

 private:
  Tensor cached_output_;
};

class Tanh : public Module {
 public:
  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::string Name() const override { return "Tanh"; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override { return std::make_unique<Tanh>(*this); }

 private:
  Tensor cached_output_;
};

// Free-function forms used by fused kernels.
void ReluInPlace(Tensor& x);

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_ACTIVATIONS_H_
