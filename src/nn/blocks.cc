#include "src/nn/blocks.h"

#include <sstream>

#include "src/common/check.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {

ConvBlock::ConvBlock(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
                     int64_t padding, bool batch_norm, Rng& rng) {
  // With BN the conv bias is redundant (BN's beta subsumes it).
  conv_ = std::make_unique<Conv2d>(in_channels, out_channels, kernel, stride, padding, rng,
                                   /*bias=*/!batch_norm);
  if (batch_norm) {
    bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor ConvBlock::Forward(const Tensor& x, bool training) {
  Tensor h = conv_->Forward(x, training);
  if (bn_) {
    h = bn_->Forward(h, training);
  }
  return relu_.Forward(h, training);
}

Tensor ConvBlock::Backward(const Tensor& grad_out) {
  Tensor g = relu_.Backward(grad_out);
  if (bn_) {
    g = bn_->Backward(g);
  }
  return conv_->Backward(g);
}

std::vector<Parameter*> ConvBlock::Parameters() {
  std::vector<Parameter*> out = conv_->Parameters();
  if (bn_) {
    for (Parameter* p : bn_->Parameters()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<Tensor*> ConvBlock::Buffers() {
  return bn_ ? bn_->Buffers() : std::vector<Tensor*>{};
}

std::string ConvBlock::Name() const {
  std::ostringstream os;
  os << (bn_ ? "ConvBNReLU(" : "ConvReLU(") << conv_->in_channels() << "->"
     << conv_->out_channels() << ")";
  return os.str();
}

std::unique_ptr<Module> ConvBlock::CloneImpl() const {
  std::unique_ptr<ConvBlock> m(new ConvBlock());
  m->conv_.reset(static_cast<Conv2d*>(conv_->Clone().release()));
  if (bn_) {
    m->bn_.reset(static_cast<BatchNorm2d*>(bn_->Clone().release()));
  }
  return m;
}

ResidualBlock::ResidualBlock(int64_t in_channels, int64_t out_channels, int64_t stride,
                             Rng& rng) {
  conv1_ = std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1, rng, /*bias=*/false);
  bn1_ = std::make_unique<BatchNorm2d>(out_channels);
  conv2_ = std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng, /*bias=*/false);
  bn2_ = std::make_unique<BatchNorm2d>(out_channels);
  if (stride != 1 || in_channels != out_channels) {
    proj_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng,
                                     /*bias=*/false);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor ResidualBlock::Forward(const Tensor& x, bool training) {
  Tensor h = relu1_.Forward(bn1_->Forward(conv1_->Forward(x, training), training), training);
  Tensor h2 = bn2_->Forward(conv2_->Forward(h, training), training);
  Tensor skip = proj_ ? proj_bn_->Forward(proj_->Forward(x, training), training) : x;
  Tensor sum = Add(h2, skip);
  return relu_out_.Forward(sum, training);
}

Tensor ResidualBlock::Backward(const Tensor& grad_out) {
  Tensor g = relu_out_.Backward(grad_out);
  Tensor g_main = conv1_->Backward(bn1_->Backward(relu1_.Backward(conv2_->Backward(
      bn2_->Backward(g)))));
  Tensor g_skip = proj_ ? proj_->Backward(proj_bn_->Backward(g)) : g;
  return Add(g_main, g_skip);
}

std::vector<Parameter*> ResidualBlock::Parameters() {
  std::vector<Parameter*> out;
  for (Module* m : std::initializer_list<Module*>{conv1_.get(), bn1_.get(), conv2_.get(),
                                                  bn2_.get(), proj_.get(), proj_bn_.get()}) {
    if (m != nullptr) {
      for (Parameter* p : m->Parameters()) {
        out.push_back(p);
      }
    }
  }
  return out;
}

std::vector<Tensor*> ResidualBlock::Buffers() {
  std::vector<Tensor*> out;
  for (BatchNorm2d* bn : {bn1_.get(), bn2_.get(), proj_bn_.get()}) {
    if (bn != nullptr) {
      for (Tensor* b : bn->Buffers()) {
        out.push_back(b);
      }
    }
  }
  return out;
}

std::string ResidualBlock::Name() const {
  std::ostringstream os;
  os << "ResidualBlock(" << conv1_->in_channels() << "->" << conv1_->out_channels() << ")";
  return os.str();
}

std::unique_ptr<Module> ResidualBlock::CloneImpl() const {
  std::unique_ptr<ResidualBlock> m(new ResidualBlock());
  m->conv1_.reset(static_cast<Conv2d*>(conv1_->Clone().release()));
  m->bn1_.reset(static_cast<BatchNorm2d*>(bn1_->Clone().release()));
  m->conv2_.reset(static_cast<Conv2d*>(conv2_->Clone().release()));
  m->bn2_.reset(static_cast<BatchNorm2d*>(bn2_->Clone().release()));
  if (proj_) {
    m->proj_.reset(static_cast<Conv2d*>(proj_->Clone().release()));
    m->proj_bn_.reset(static_cast<BatchNorm2d*>(proj_bn_->Clone().release()));
  }
  return m;
}

}  // namespace gmorph
