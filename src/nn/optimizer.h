// Adam optimizer (Kingma & Ba), the optimizer the paper uses for all
// fine-tuning. Operates on a fixed list of Parameters; moment buffers are
// keyed by position, so the parameter list must not change between steps.
#ifndef GMORPH_SRC_NN_OPTIMIZER_H_
#define GMORPH_SRC_NN_OPTIMIZER_H_

#include <vector>

#include "src/nn/module.h"

namespace gmorph {

class Adam {
 public:
  explicit Adam(std::vector<Parameter*> params, float lr = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  // Applies one update from the accumulated gradients, then zeroes them.
  void Step();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<Parameter*> params_;
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_OPTIMIZER_H_
