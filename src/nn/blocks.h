// Composite CNN computation blocks. These are the units the abstract graph
// manipulates for convolutional models: a VGG layer (Conv[+BN]+ReLU) and a
// ResNet basic residual block.
#ifndef GMORPH_SRC_NN_BLOCKS_H_
#define GMORPH_SRC_NN_BLOCKS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/module.h"
#include "src/nn/norm.h"

namespace gmorph {

// Conv2d -> optional BatchNorm2d -> ReLU.
class ConvBlock : public Module {
 public:
  ConvBlock(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
            int64_t padding, bool batch_norm, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<Tensor*> Buffers() override;
  std::string Name() const override;

  const Conv2d& conv() const { return *conv_; }
  const BatchNorm2d* bn() const { return bn_.get(); }
  bool has_bn() const { return bn_ != nullptr; }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  ConvBlock() = default;

  std::unique_ptr<Conv2d> conv_;
  std::unique_ptr<BatchNorm2d> bn_;
  ReLU relu_;
};

// ResNet basic block: two 3x3 Conv+BN with a skip connection; the projection
// shortcut (1x1 Conv+BN) is used when stride != 1 or channels change.
class ResidualBlock : public Module {
 public:
  ResidualBlock(int64_t in_channels, int64_t out_channels, int64_t stride, Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  Tensor Backward(const Tensor& grad_out) override;
  std::vector<Parameter*> Parameters() override;
  std::vector<Tensor*> Buffers() override;
  std::string Name() const override;

  // Read access for the fused runtime's BN-folding lowering pass.
  const Conv2d& conv1() const { return *conv1_; }
  const BatchNorm2d& bn1() const { return *bn1_; }
  const Conv2d& conv2() const { return *conv2_; }
  const BatchNorm2d& bn2() const { return *bn2_; }
  const Conv2d* proj() const { return proj_.get(); }
  const BatchNorm2d* proj_bn() const { return proj_bn_.get(); }

 protected:
  std::unique_ptr<Module> CloneImpl() const override;

 private:
  ResidualBlock() = default;

  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  ReLU relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> proj_;      // nullptr when the shortcut is identity
  std::unique_ptr<BatchNorm2d> proj_bn_;
  ReLU relu_out_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_NN_BLOCKS_H_
