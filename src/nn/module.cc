#include "src/nn/module.h"

#include "src/common/check.h"

namespace gmorph {

std::unique_ptr<Module> Module::Clone() const {
  std::unique_ptr<Module> m = CloneImpl();
  for (Parameter* p : m->Parameters()) {
    p->value = p->value.Clone();
    p->grad = Tensor::Zeros(p->value.shape());
  }
  for (Tensor* b : m->Buffers()) {
    *b = b->Clone();
  }
  return m;
}

int64_t Module::ParamCount() const {
  int64_t n = 0;
  for (const Parameter* p : const_cast<Module*>(this)->Parameters()) {
    n += p->value.size();
  }
  return n;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) {
    p->grad.Zero();
  }
}

void Module::CopyParametersFrom(const Module& src) {
  auto dst_params = Parameters();
  auto src_params = const_cast<Module&>(src).Parameters();
  GMORPH_CHECK(dst_params.size() == src_params.size(),
                   "parameter count mismatch copying into " << Name());
  for (size_t i = 0; i < dst_params.size(); ++i) {
    GMORPH_CHECK(dst_params[i]->value.shape() == src_params[i]->value.shape(),
                     "parameter shape mismatch at " << dst_params[i]->name);
    dst_params[i]->value = src_params[i]->value.Clone();
  }
}

std::vector<Tensor> Module::ExportParameters() const {
  std::vector<Tensor> out;
  Module* self = const_cast<Module*>(this);
  for (const Parameter* p : self->Parameters()) {
    out.push_back(p->value.Clone());
  }
  for (const Tensor* b : self->Buffers()) {
    out.push_back(b->Clone());
  }
  return out;
}

void Module::ImportParameters(const std::vector<Tensor>& values) {
  auto params = Parameters();
  auto buffers = Buffers();
  const bool with_buffers = values.size() == params.size() + buffers.size();
  GMORPH_CHECK(with_buffers || values.size() == params.size(),
                   "ImportParameters count mismatch in " << Name() << ": got " << values.size()
                                                         << ", want " << params.size() << " or "
                                                         << params.size() + buffers.size());
  for (size_t i = 0; i < params.size(); ++i) {
    GMORPH_CHECK(params[i]->value.shape() == values[i].shape(),
                     "ImportParameters shape mismatch at " << params[i]->name);
    params[i]->value = values[i].Clone();
  }
  if (with_buffers) {
    for (size_t i = 0; i < buffers.size(); ++i) {
      const Tensor& src = values[params.size() + i];
      GMORPH_CHECK(buffers[i]->shape() == src.shape(),
                       "ImportParameters buffer shape mismatch in " << Name());
      *buffers[i] = src.Clone();
    }
  }
}

}  // namespace gmorph
