#include "src/nn/activations.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/parallel_for.h"

namespace gmorph {
namespace {

// Elementwise activations only split work above this many elements.
constexpr int64_t kActGrain = 1 << 15;

}  // namespace

void ReluInPlace(Tensor& x) {
  float* p = x.data();
  ParallelFor(0, x.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      if (p[i] < 0.0f) {
        p[i] = 0.0f;
      }
    }
  });
}

Tensor ReLU::Forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  Tensor out = x.Clone();
  ReluInPlace(out);
  return out;
}

Tensor ReLU::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_input_.empty());
  Tensor grad_x(grad_out.shape());
  const float* px = cached_input_.data();
  const float* pg = grad_out.data();
  float* po = grad_x.data();
  ParallelFor(0, grad_out.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
    }
  });
  return grad_x;
}

Tensor Sigmoid::Forward(const Tensor& x, bool /*training*/) {
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, x.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = 1.0f / (1.0f + std::exp(-px[i]));
    }
  });
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_output_.empty());
  Tensor grad_x(grad_out.shape());
  const float* py = cached_output_.data();
  const float* pg = grad_out.data();
  float* po = grad_x.data();
  ParallelFor(0, grad_out.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pg[i] * py[i] * (1.0f - py[i]);
    }
  });
  return grad_x;
}

Tensor Tanh::Forward(const Tensor& x, bool /*training*/) {
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, x.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = std::tanh(px[i]);
    }
  });
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_output_.empty());
  Tensor grad_x(grad_out.shape());
  const float* py = cached_output_.data();
  const float* pg = grad_out.data();
  float* po = grad_x.data();
  ParallelFor(0, grad_out.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pg[i] * (1.0f - py[i] * py[i]);
    }
  });
  return grad_x;
}

namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

}  // namespace

Tensor GELU::Forward(const Tensor& x, bool /*training*/) {
  cached_input_ = x;
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, x.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float v = px[i];
      po[i] = 0.5f * v * (1.0f + std::tanh(kGeluC * (v + kGeluA * v * v * v)));
    }
  });
  return out;
}

Tensor GELU::Backward(const Tensor& grad_out) {
  GMORPH_CHECK(!cached_input_.empty());
  Tensor grad_x(grad_out.shape());
  const float* px = cached_input_.data();
  const float* pg = grad_out.data();
  float* po = grad_x.data();
  ParallelFor(0, grad_out.size(), kActGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float v = px[i];
      const float u = kGeluC * (v + kGeluA * v * v * v);
      const float th = std::tanh(u);
      const float sech2 = 1.0f - th * th;
      const float du = kGeluC * (1.0f + 3.0f * kGeluA * v * v);
      po[i] = pg[i] * (0.5f * (1.0f + th) + 0.5f * v * sech2 * du);
    }
  });
  return grad_x;
}

}  // namespace gmorph
