#include "src/nn/optimizer.h"

#include <cmath>

#include "src/common/check.h"

namespace gmorph {

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2, float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    GMORPH_CHECK(p->grad.shape() == p->value.shape());
    float* w = p->value.data();
    float* g = p->grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = p->value.size();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      g[j] = 0.0f;
    }
  }
}

}  // namespace gmorph
