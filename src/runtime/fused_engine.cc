#include "src/runtime/fused_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "src/analysis/driver.h"
#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/kernels/registry.h"
#include "src/obs/trace.h"
#include "src/nn/blocks.h"
#include "src/nn/linear.h"
#include "src/nn/pooling.h"
#include "src/nn/rescale.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {
namespace {

// Folds a BatchNorm (inference form, running stats) into the preceding
// convolution: w'[o] = w[o] * gamma[o]/sqrt(var[o]+eps),
// b'[o] = beta[o] - mean[o] * gamma[o]/sqrt(var[o]+eps) (+ folded conv bias).
void FoldBatchNorm(const BatchNorm2d& bn, int64_t out_c, Tensor& weight, Tensor& bias) {
  const int64_t per_filter = weight.size() / out_c;
  ParallelFor(0, out_c, std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, per_filter)),
              [&](int64_t lo, int64_t hi) {
                for (int64_t o = lo; o < hi; ++o) {
                  const float inv_std = 1.0f / std::sqrt(bn.running_var().at(o) + bn.eps());
                  const float scale = bn.gamma().value.at(o) * inv_std;
                  float* w = weight.data() + o * per_filter;
                  for (int64_t i = 0; i < per_filter; ++i) {
                    w[i] *= scale;
                  }
                  bias.at(o) = bn.beta().value.at(o) - bn.running_mean().at(o) * scale +
                               bias.at(o) * scale;
                }
              });
}

}  // namespace

FusedEngine::FusedEngine(MultiTaskModel* model) : FusedEngine(model, Options()) {}

FusedEngine::FusedEngine(MultiTaskModel* model, const Options& options)
    : model_(model), options_(options) {
  const AbsGraph& graph = model_->graph();
  node_value_.assign(static_cast<size_t>(graph.size()), -1);
  groups_.emplace_back();  // group 0: the shared prefix chain

  Value input;
  input.shape = graph.node(graph.root()).output_shape;
  input.def_seq = -1;
  input.def_group = 0;
  values_.push_back(std::move(input));
  node_value_[static_cast<size_t>(graph.root())] = 0;

  LowerFrom(graph.root(), 0);
  PlanBuffers();

  for (int t = 0; t < graph.num_tasks(); ++t) {
    const int head = graph.HeadOfTask(t);
    GMORPH_CHECK(head >= 0, "task " << t << " has no head");
    head_values_.push_back(node_value_[static_cast<size_t>(head)]);
  }

  AnnotateSolvers();
  MaybeVerifyPlan();
}

void FusedEngine::MaybeVerifyPlan() const {
  // Self-check the current plan: always in debug builds, opt-in via
  // GMORPH_VERIFY=1 in release. A verifier error here is a planner bug, so it
  // is fatal rather than a diagnostic the caller could ignore. Runs again
  // after Quantize() — the int8 annotations must lint clean too.
#ifdef NDEBUG
  static const bool verify_plan = [] {
    const char* v = std::getenv("GMORPH_VERIFY");
    return v != nullptr && std::string(v) != "0";
  }();
#else
  constexpr bool verify_plan = true;
#endif
  if (verify_plan) {
    // Route through the unified driver so the plan gets the full pass
    // pipeline (PlanVerifier + dtype propagation + memory certification);
    // the summary note is muted — this is a self-check, not a report.
    MemAnalysisOptions mem;
    mem.summary = false;
    const DiagnosticList verdict = RunPlanPasses(ExportPlan(), mem);
    GMORPH_CHECK(verdict.ok(), "execution plan failed verification:\n" << verdict.ToString());
  }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

void FusedEngine::LowerFrom(int node_id, int group) {
  const AbsGraph& graph = model_->graph();
  const std::vector<int> children = graph.node(node_id).children;
  if (children.size() == 1) {
    // Chains extend the current group.
    LowerNode(children[0], group);
    LowerFrom(children[0], group);
    return;
  }
  for (int child : children) {
    const int child_group = static_cast<int>(groups_.size());
    groups_.emplace_back();
    groups_[static_cast<size_t>(child_group)].parent = group;
    groups_[static_cast<size_t>(group)].children.push_back(child_group);
    LowerNode(child, child_group);
    LowerFrom(child, child_group);
  }
}

int FusedEngine::NewValue(const Shape& per_sample_shape, int group) {
  Value v;
  v.shape = per_sample_shape;
  v.def_group = group;
  const int id = static_cast<int>(values_.size());
  values_.push_back(std::move(v));
  return id;
}

int FusedEngine::NewAlias(int of_value, const Shape& per_sample_shape) {
  const int root = ResolveAlias(of_value);
  Value v;
  v.shape = per_sample_shape;
  v.alias_of = root;
  const int id = static_cast<int>(values_.size());
  values_.push_back(std::move(v));
  if (root == 0) {
    input_aliases_.push_back(id);
  } else if (values_[static_cast<size_t>(root)].from_module) {
    values_[static_cast<size_t>(root)].dependent_aliases.push_back(id);
  }
  return id;
}

int FusedEngine::ResolveAlias(int value) const {
  while (values_[static_cast<size_t>(value)].alias_of >= 0) {
    value = values_[static_cast<size_t>(value)].alias_of;
  }
  return value;
}

void FusedEngine::RecordUse(int value, int seq, int group) {
  values_[static_cast<size_t>(ResolveAlias(value))].events.emplace_back(seq, group);
}

int FusedEngine::AddStep(Step step) {
  const int seq = static_cast<int>(steps_.size());
  Value& out = values_[static_cast<size_t>(step.out)];
  out.def_seq = seq;
  out.def_group = step.group;
  RecordUse(step.out, seq, step.group);  // the def itself is a write event
  RecordUse(step.in0, seq, step.group);
  if (step.skip >= 0) {
    RecordUse(step.skip, seq, step.group);
  }
  groups_[static_cast<size_t>(step.group)].steps.push_back(seq);
  steps_.push_back(std::move(step));
  return seq;
}

void FusedEngine::LowerNode(int node_id, int group) {
  const AbsGraph& graph = model_->graph();
  const AbsNode& node = graph.node(node_id);
  Module* module = model_->module(node_id);
  const int in_value = node_value_[static_cast<size_t>(node.parent)];

  // Folded-conv step factory shared by ConvBlock / residual lowering.
  const auto folded_conv = [&](const Conv2d& conv, const BatchNorm2d* bn, bool relu,
                               const char* tag) {
    Step s;
    s.kind = OpKind::kConv;
    s.node = node_id;
    s.group = group;
    s.relu = relu;
    s.conv_args = conv.args();
    s.weight = conv.weight().value.Clone();
    s.bias = Tensor::Zeros(Shape{conv.out_channels()});
    if (!conv.bias().value.empty()) {
      for (int64_t o = 0; o < conv.out_channels(); ++o) {
        s.bias.at(o) = conv.bias().value.at(o);
      }
    }
    if (bn != nullptr) {
      FoldBatchNorm(*bn, conv.out_channels(), s.weight, s.bias);
    }
    std::ostringstream label;
    label << tag << " " << conv.in_channels() << "->" << conv.out_channels() << " k"
          << conv.kernel() << "s" << s.conv_args.stride << (bn ? " +bn" : "")
          << (relu ? " +relu" : "");
    s.label = label.str();
    ++num_fused_convs_;
    return s;
  };
  const auto fallback = [&]() {
    Step s;
    s.kind = OpKind::kModule;
    s.node = node_id;
    s.group = group;
    s.module = module;
    s.in0 = in_value;
    s.out = NewValue(node.output_shape, group);
    values_[static_cast<size_t>(s.out)].from_module = true;
    s.label = BlockTypeName(node.spec.type) + " (module)";
    ++num_fallback_modules_;
    AddStep(std::move(s));
    node_value_[static_cast<size_t>(node_id)] = static_cast<int>(values_.size()) - 1;
  };

  switch (node.spec.type) {
    case BlockType::kConvReLU:
    case BlockType::kConvBNReLU: {
      auto* block = dynamic_cast<ConvBlock*>(module);
      GMORPH_CHECK(block != nullptr);
      Step s = folded_conv(block->conv(), block->bn(), /*relu=*/true, "conv");
      s.in0 = in_value;
      s.out = NewValue(node.output_shape, group);
      node_value_[static_cast<size_t>(node_id)] = s.out;
      AddStep(std::move(s));
      break;
    }
    case BlockType::kResidual: {
      auto* block = dynamic_cast<ResidualBlock*>(module);
      GMORPH_CHECK(block != nullptr);
      // conv1 halves/keeps the spatial dims; conv2 is shape-preserving, so
      // both intermediates share the node's output shape.
      Step s1 = folded_conv(block->conv1(), &block->bn1(), /*relu=*/true, "res.conv1");
      s1.in0 = in_value;
      s1.out = NewValue(node.output_shape, group);
      const int mid = s1.out;
      AddStep(std::move(s1));

      int skip = in_value;
      if (block->proj() != nullptr) {
        Step sp = folded_conv(*block->proj(), block->proj_bn(), /*relu=*/false, "res.proj");
        sp.in0 = in_value;
        sp.out = NewValue(node.output_shape, group);
        skip = sp.out;
        AddStep(std::move(sp));
      }

      Step s2 = folded_conv(block->conv2(), &block->bn2(), /*relu=*/true, "res.conv2");
      s2.label += " +skip";
      s2.in0 = mid;
      s2.skip = skip;
      s2.out = NewValue(node.output_shape, group);
      node_value_[static_cast<size_t>(node_id)] = s2.out;
      AddStep(std::move(s2));
      break;
    }
    case BlockType::kMaxPool: {
      Step s;
      s.kind = OpKind::kMaxPool;
      s.node = node_id;
      s.group = group;
      s.pool_kernel = node.spec.pool_kernel;
      s.pool_stride = node.spec.pool_stride;
      s.in0 = in_value;
      s.out = NewValue(node.output_shape, group);
      s.label = "maxpool k" + std::to_string(s.pool_kernel);
      node_value_[static_cast<size_t>(node_id)] = s.out;
      AddStep(std::move(s));
      break;
    }
    case BlockType::kGlobalAvgPool: {
      Step s;
      s.kind = OpKind::kGlobalAvgPool;
      s.node = node_id;
      s.group = group;
      s.in0 = in_value;
      s.out = NewValue(node.output_shape, group);
      s.label = "gap";
      node_value_[static_cast<size_t>(node_id)] = s.out;
      AddStep(std::move(s));
      break;
    }
    case BlockType::kMeanPoolTokens: {
      Step s;
      s.kind = OpKind::kMeanPoolTokens;
      s.node = node_id;
      s.group = group;
      s.in0 = in_value;
      s.out = NewValue(node.output_shape, group);
      s.label = "meanpool";
      node_value_[static_cast<size_t>(node_id)] = s.out;
      AddStep(std::move(s));
      break;
    }
    case BlockType::kFlatten: {
      // Pure metadata: the flattened value shares the parent's storage.
      node_value_[static_cast<size_t>(node_id)] = NewAlias(in_value, node.output_shape);
      break;
    }
    case BlockType::kLinearReLU: {
      auto* seq = dynamic_cast<Sequential*>(module);
      Linear* lin =
          (seq != nullptr && seq->size() >= 1) ? dynamic_cast<Linear*>(&seq->at(0)) : nullptr;
      if (lin == nullptr) {
        fallback();
        break;
      }
      Step s;
      s.kind = OpKind::kLinear;
      s.node = node_id;
      s.group = group;
      s.relu = true;
      s.weight = lin->weight().value;  // handle: stays in sync with training
      s.bias = lin->bias().value;
      s.in0 = in_value;
      s.out = NewValue(node.output_shape, group);
      s.label = "linear " + std::to_string(lin->in_features()) + "->" +
                std::to_string(lin->out_features()) + " +relu";
      node_value_[static_cast<size_t>(node_id)] = s.out;
      ++num_fused_linears_;
      AddStep(std::move(s));
      break;
    }
    case BlockType::kHead: {
      auto* lin = dynamic_cast<Linear*>(module);
      if (lin == nullptr) {
        fallback();
        break;
      }
      Step s;
      s.kind = OpKind::kLinear;
      s.node = node_id;
      s.group = group;
      s.relu = false;
      s.weight = lin->weight().value;
      s.bias = lin->bias().value;
      s.in0 = in_value;
      s.out = NewValue(node.output_shape, group);
      values_[static_cast<size_t>(s.out)].is_head = true;
      s.label = "head " + std::to_string(lin->in_features()) + "->" +
                std::to_string(lin->out_features());
      node_value_[static_cast<size_t>(node_id)] = s.out;
      ++num_fused_linears_;
      AddStep(std::move(s));
      break;
    }
    case BlockType::kRescale: {
      auto* rs = dynamic_cast<Rescale*>(module);
      GMORPH_CHECK(rs != nullptr);
      if (rs->IsIdentity()) {
        node_value_[static_cast<size_t>(node_id)] = NewAlias(in_value, node.output_shape);
        ++num_eliminated_;
        break;
      }
      const Shape& in_shape = rs->in_shape();
      const Shape& out_shape = rs->out_shape();
      int cur = in_value;
      if (rs->needs_spatial()) {
        Step s;
        s.node = node_id;
        s.group = group;
        s.in0 = cur;
        if (in_shape.Rank() == 3) {
          s.kind = OpKind::kBilinearResize;
          s.out = NewValue(Shape{in_shape[0], out_shape[1], out_shape[2]}, group);
          s.label = "resize " + std::to_string(out_shape[1]) + "x" + std::to_string(out_shape[2]);
        } else {
          s.kind = OpKind::kTokenResize;
          s.out = NewValue(Shape{out_shape[0], in_shape[1]}, group);
          s.label = "tok.resize " + std::to_string(out_shape[0]);
        }
        cur = s.out;
        AddStep(std::move(s));
      }
      if (rs->channel_adapter() != nullptr) {
        const Conv2d& conv = *rs->channel_adapter();
        Step s;
        s.kind = OpKind::kConv;
        s.node = node_id;
        s.group = group;
        s.conv_args = conv.args();
        s.weight = conv.weight().value;  // handles: 1x1 adapter, no folding
        s.bias = conv.bias().value;
        s.in0 = cur;
        s.out = NewValue(node.output_shape, group);
        s.label = "adapter.conv " + std::to_string(conv.in_channels()) + "->" +
                  std::to_string(conv.out_channels());
        cur = s.out;
        ++num_fused_convs_;
        AddStep(std::move(s));
      } else if (rs->dim_adapter() != nullptr) {
        const Linear& lin = *rs->dim_adapter();
        Step s;
        s.kind = OpKind::kLinear;
        s.node = node_id;
        s.group = group;
        s.weight = lin.weight().value;
        s.bias = lin.bias().value;
        s.in0 = cur;
        s.out = NewValue(node.output_shape, group);
        s.label = "adapter.linear " + std::to_string(lin.in_features()) + "->" +
                  std::to_string(lin.out_features());
        cur = s.out;
        ++num_fused_linears_;
        AddStep(std::move(s));
      }
      node_value_[static_cast<size_t>(node_id)] = cur;
      break;
    }
    case BlockType::kPatchEmbed:
    case BlockType::kTokenEmbed:
    case BlockType::kTransformer:
    default:
      fallback();
      break;
  }
}

// ---------------------------------------------------------------------------
// Static memory planning
// ---------------------------------------------------------------------------

bool FusedEngine::HappensBefore(const std::pair<int, int>& event, int seq, int group) const {
  if (event.first >= seq) {
    return false;
  }
  // The event's group must be an ancestor of (or equal to) the def's group:
  // an ancestor group's steps all execute before the fork into `group`, and
  // same-group steps execute in seq order. Any other relation (sibling
  // branches) is unordered under branch-parallel execution.
  int g = group;
  while (g != -1) {
    if (g == event.second) {
      return true;
    }
    g = groups_[static_cast<size_t>(g)].parent;
  }
  return false;
}

void FusedEngine::PlanBuffers() {
  // Values are created in step order, so iterating by id processes defs in
  // a valid execution order. Greedy interval coloring: reuse the first
  // size-matching buffer whose every resident value is fully dead (all events
  // happen-before this def); otherwise open a new buffer.
  for (size_t v = 1; v < values_.size(); ++v) {
    Value& val = values_[v];
    if (val.alias_of >= 0 || val.from_module) {
      continue;
    }
    const int64_t elems = val.shape.NumElements();
    if (val.is_head) {
      // Heads get dedicated buffers: returned tensors must survive the rest
      // of the run (and until the caller is done with them).
      val.buffer = static_cast<int>(buffers_.size());
      buffers_.push_back(Buffer{elems, /*reusable=*/false, {static_cast<int>(v)}});
      continue;
    }
    int chosen = -1;
    for (size_t b = 0; b < buffers_.size() && chosen < 0; ++b) {
      if (!buffers_[b].reusable || buffers_[b].elems_per_sample != elems) {
        continue;
      }
      bool compatible = true;
      for (int w : buffers_[b].values) {
        for (const auto& event : values_[static_cast<size_t>(w)].events) {
          if (!HappensBefore(event, val.def_seq, val.def_group)) {
            compatible = false;
            break;
          }
        }
        if (!compatible) {
          break;
        }
      }
      if (compatible) {
        chosen = static_cast<int>(b);
      }
    }
    if (chosen < 0) {
      chosen = static_cast<int>(buffers_.size());
      buffers_.push_back(Buffer{elems, /*reusable=*/true, {}});
    }
    buffers_[static_cast<size_t>(chosen)].values.push_back(static_cast<int>(v));
    val.buffer = chosen;
  }
}

int64_t FusedEngine::planned_bytes_per_sample() const {
  int64_t total = 0;
  for (const Buffer& b : buffers_) {
    total += b.elems_per_sample * static_cast<int64_t>(sizeof(float));
  }
  return total;
}

// ---------------------------------------------------------------------------
// Solver resolution
// ---------------------------------------------------------------------------

int FusedEngine::GroupThreads(int group) const {
  if (options_.branch_parallel) {
    // A group executes inside the branch-parallel ParallelFor iff some fork
    // on its ancestor path has more than one child; kernels there degrade to
    // serial via the nesting guard and must be keyed as threads=1.
    for (int g = group; g > 0;) {
      const int parent = groups_[static_cast<size_t>(g)].parent;
      if (groups_[static_cast<size_t>(parent)].children.size() > 1) {
        return 1;
      }
      g = parent;
    }
  }
  return KernelThreads();
}

bool FusedEngine::StepProblemDesc(const Step& step, int64_t batch,
                                  kernels::ProblemDesc* desc) const {
  switch (step.kind) {
    case OpKind::kConv: {
      // The per-sample im2col GEMM of Conv2dForwardInto: W[O, C*KH*KW] times
      // the column matrix [C*KH*KW, OH*OW]. It always runs inside the
      // per-batch ParallelFor, i.e. in the serial nested regime. A quantized
      // step runs the transposed orientation instead — col_u8[OH*OW, C*KH*KW]
      // times Wt_s8[C*KH*KW, O] — so rows and columns swap.
      const Shape& w = step.weight.shape();
      const Shape& out = values_[static_cast<size_t>(step.out)].shape;
      if (w.Rank() != 4 || out.Rank() != 3) {
        return false;
      }
      desc->op = kernels::OpFamily::kGemmNN;
      if (step.qconv != nullptr) {
        desc->dtype = kernels::DType::kInt8;
        desc->m = out[1] * out[2];
        desc->k = w[1] * w[2] * w[3];
        desc->n = w[0];
      } else {
        desc->dtype = kernels::DType::kF32;
        desc->m = w[0];
        desc->k = w[1] * w[2] * w[3];
        desc->n = out[1] * out[2];
      }
      desc->aux0 = desc->aux1 = 0;
      desc->threads = 1;
      return true;
    }
    case OpKind::kLinear: {
      // LinearForwardInto flattens leading dims into rows, so m scales with
      // the batch while k/n come from the weight. The quantized path keeps
      // the same logical dims, just at dtype int8.
      const Shape& w = step.weight.shape();
      if (w.Rank() != 2 || w[0] <= 0) {
        return false;
      }
      const Shape& in = values_[static_cast<size_t>(step.in0)].shape;
      desc->op = kernels::OpFamily::kGemmNN;
      desc->dtype =
          step.qlinear != nullptr ? kernels::DType::kInt8 : kernels::DType::kF32;
      desc->m = batch * (in.NumElements() / w[0]);
      desc->k = w[0];
      desc->n = w[1];
      desc->aux0 = desc->aux1 = 0;
      desc->threads = GroupThreads(step.group);
      return true;
    }
    case OpKind::kMaxPool: {
      const Shape& in = values_[static_cast<size_t>(step.in0)].shape;
      if (in.Rank() != 3) {
        return false;
      }
      desc->op = kernels::OpFamily::kMaxPool;
      desc->m = batch * in[0];
      desc->k = in[1];
      desc->n = in[2];
      desc->aux0 = step.pool_kernel;
      desc->aux1 = step.pool_stride;
      desc->threads = GroupThreads(step.group);
      return true;
    }
    default:
      return false;
  }
}

void FusedEngine::AnnotateSolvers() {
  const kernels::SolverRegistry& registry = kernels::SolverRegistry::Global();
  for (Step& step : steps_) {
    kernels::ProblemDesc desc;
    if (!StepProblemDesc(step, /*batch=*/1, &desc)) {
      continue;
    }
    if (desc.op == kernels::OpFamily::kMaxPool) {
      step.solver = registry.ResolvePool(desc)->name();
    } else if (desc.dtype == kernels::DType::kInt8) {
      step.solver = registry.ResolveQGemm(desc)->name();
    } else {
      step.solver = registry.ResolveGemm(desc)->name();
    }
  }
}

std::vector<kernels::ProblemDesc> FusedEngine::KernelProblems(int64_t batch) const {
  std::set<kernels::ProblemDesc> dedup;
  for (const Step& step : steps_) {
    kernels::ProblemDesc desc;
    if (StepProblemDesc(step, batch, &desc)) {
      dedup.insert(desc);
    }
  }
  return std::vector<kernels::ProblemDesc>(dedup.begin(), dedup.end());
}

// ---------------------------------------------------------------------------
// Int8 post-training quantization
// ---------------------------------------------------------------------------

quant::QuantRecipe FusedEngine::Calibrate(const std::vector<Tensor>& batches) {
  quant::CalibrationObserver observer;
  observer_ = &observer;
  for (const Tensor& batch : batches) {
    Run(batch);
  }
  observer_ = nullptr;

  quant::QuantRecipe recipe;
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    if (step.kind != OpKind::kConv && step.kind != OpKind::kLinear) {
      continue;
    }
    const quant::TensorRange* range = observer.Range(static_cast<int64_t>(s));
    if (range == nullptr || !range->valid()) {
      continue;  // step never executed over the calibration set
    }
    quant::StepQuantSpec spec;
    spec.seq = static_cast<int64_t>(s);
    spec.label = step.label;
    spec.in_q = quant::ActQuantFromRange(*range);
    const Shape& w = step.weight.shape();
    if (step.kind == OpKind::kConv) {
      if (w.Rank() != 4) {
        continue;
      }
      spec.kind = "conv";
      // Conv weights are (O, C, KH, KW): one contiguous row of C*KH*KW taps
      // per output channel.
      spec.w_scales = quant::RowAbsMaxScales(step.weight.data(), w[0], w[1] * w[2] * w[3]);
    } else {
      if (w.Rank() != 2) {
        continue;
      }
      spec.kind = "linear";
      // Linear weights are (in, out): output channels run over columns.
      spec.w_scales = quant::ColAbsMaxScales(step.weight.data(), w[0], w[1]);
    }
    recipe.steps.push_back(std::move(spec));
  }
  return recipe;
}

int FusedEngine::Quantize(const quant::QuantRecipe& recipe) {
  int applied = 0;
  for (const quant::StepQuantSpec& spec : recipe.steps) {
    if (spec.seq < 0 || spec.seq >= static_cast<int64_t>(steps_.size())) {
      continue;
    }
    Step& step = steps_[static_cast<size_t>(spec.seq)];
    const Shape& w = step.weight.shape();
    if (step.kind == OpKind::kConv && spec.kind == "conv" && w.Rank() == 4 &&
        static_cast<int64_t>(spec.w_scales.size()) == w[0]) {
      step.qconv = std::make_unique<quant::QConvWeights>(
          quant::PackConvWeights(step.weight, step.bias, spec.in_q, spec.w_scales));
      step.qlinear.reset();
      ++applied;
    } else if (step.kind == OpKind::kLinear && spec.kind == "linear" && w.Rank() == 2 &&
               static_cast<int64_t>(spec.w_scales.size()) == w[1]) {
      step.qlinear = std::make_unique<quant::QLinearWeights>(
          quant::PackLinearWeights(step.weight, step.bias, spec.in_q, spec.w_scales));
      step.qconv.reset();
      ++applied;
    }
  }
  num_quantized_steps_ = 0;
  for (const Step& step : steps_) {
    num_quantized_steps_ += step.quantized() ? 1 : 0;
  }
  if (applied > 0) {
    // Cached bindings pinned f32 solvers; rebuild them lazily, re-resolve the
    // plan annotations at the new dtypes, and re-lint the plan.
    bindings_.clear();
    AnnotateSolvers();
    MaybeVerifyPlan();
  }
  return applied;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

FusedEngine::Binding& FusedEngine::BindingFor(int64_t batch) {
  auto it = bindings_.find(batch);
  if (it != bindings_.end()) {
    return *it->second;
  }
  auto bind = std::make_unique<Binding>();
  bind->buffers.reserve(buffers_.size());
  for (const Buffer& b : buffers_) {
    bind->buffers.push_back(Tensor::Zeros(Shape{batch * b.elems_per_sample}));
  }
  bind->values.resize(values_.size());
  for (size_t v = 1; v < values_.size(); ++v) {
    const Value& val = values_[v];
    if (val.alias_of >= 0) {
      const Value& root = values_[static_cast<size_t>(val.alias_of)];
      if (val.alias_of == 0 || root.from_module) {
        continue;  // rebound dynamically (Run / module step)
      }
      bind->values[v] = bind->values[static_cast<size_t>(val.alias_of)].Reshape(
          val.shape.WithBatch(batch));
    } else if (!val.from_module) {
      bind->values[v] =
          bind->buffers[static_cast<size_t>(val.buffer)].Reshape(val.shape.WithBatch(batch));
    }
  }
  // Pin each linear step's GEMM solver once per (plan, batch): m scales with
  // the batch, so the descriptor — and with it the tuned winner — can differ
  // between bindings. Steady-state Run() then never touches the tuning DB.
  bind->step_solvers.assign(steps_.size(), nullptr);
  bind->step_qsolvers.assign(steps_.size(), nullptr);
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    kernels::ProblemDesc desc;
    if (step.quantized()) {
      // Quantized conv and linear both pin their u8·s8 solver here (conv's
      // per-sample descriptor does not depend on the batch, but pinning keeps
      // every steady-state path free of tuning-DB lookups).
      if (StepProblemDesc(step, batch, &desc)) {
        bind->step_qsolvers[s] = kernels::SolverRegistry::Global().ResolveQGemm(desc);
      }
      continue;
    }
    if (step.kind != OpKind::kLinear) {
      continue;
    }
    if (StepProblemDesc(step, batch, &desc)) {
      bind->step_solvers[s] = kernels::SolverRegistry::Global().ResolveGemm(desc);
    }
  }
  Binding& ref = *bind;
  bindings_.emplace(batch, std::move(bind));
  return ref;
}

std::vector<Tensor> FusedEngine::Run(const Tensor& input) {
  obs::TraceSpan span("engine/run", obs::TraceCat::kEngine);
  GMORPH_CHECK(input.shape().Rank() >= 1, "FusedEngine::Run needs a batched input");
  const int64_t batch = input.shape()[0];
  Binding& bind = BindingFor(batch);
  bind.values[0] = input;
  for (int v : input_aliases_) {
    bind.values[static_cast<size_t>(v)] =
        input.Reshape(values_[static_cast<size_t>(v)].shape.WithBatch(batch));
  }
  ExecGroup(0, bind);
  std::vector<Tensor> outputs;
  outputs.reserve(head_values_.size());
  for (int hv : head_values_) {
    outputs.push_back(bind.values[static_cast<size_t>(hv)]);
  }
  return outputs;
}

void FusedEngine::ExecGroup(int group, Binding& bind) {
  for (int si : groups_[static_cast<size_t>(group)].steps) {
    ExecStep(si, bind);
  }
  const std::vector<int>& kids = groups_[static_cast<size_t>(group)].children;
  if (kids.empty()) {
    return;
  }
  if (options_.branch_parallel && kids.size() > 1 && !InParallelRegion()) {
    // Divergent subtrees touch disjoint buffers (enforced by the coloring
    // rule), so they can run on the pool; kernels inside each branch fall
    // back to serial via the nesting guard.
    ParallelFor(0, static_cast<int64_t>(kids.size()), 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        ExecGroup(kids[static_cast<size_t>(i)], bind);
      }
    });
  } else {
    for (int kid : kids) {
      ExecGroup(kid, bind);
    }
  }
}

void FusedEngine::ExecStep(int seq, Binding& bind) {
  Step& step = steps_[static_cast<size_t>(seq)];
  // Span both feeds the Perfetto trace (when enabled) and accumulates into the
  // per-step profile that Profile()/DumpPlan() report.
  obs::TraceSpan span(step.label, obs::TraceCat::kEngine, &step.seconds);
  // Hardware-counter deltas for the roofline profile; disabled cost is one
  // relaxed atomic load, mirroring the tracer contract.
  obs::PerfStepScope counters(&step.counters);
  ++step.calls;
  const Tensor& in = bind.values[static_cast<size_t>(step.in0)];
  Tensor& out = bind.values[static_cast<size_t>(step.out)];
  if (observer_ != nullptr &&
      (step.kind == OpKind::kConv || step.kind == OpKind::kLinear)) {
    observer_->Observe(seq, in.data(), in.size());
  }
  switch (step.kind) {
    case OpKind::kConv:
      if (step.qconv != nullptr) {
        quant::QConv2dForwardInto(
            in, *step.qconv, step.conv_args, out,
            step.skip >= 0 ? &bind.values[static_cast<size_t>(step.skip)] : nullptr, step.relu,
            bind.step_qsolvers[static_cast<size_t>(seq)]);
      } else {
        Conv2dForwardInto(in, step.weight, step.bias, step.conv_args, out,
                          step.skip >= 0 ? &bind.values[static_cast<size_t>(step.skip)] : nullptr,
                          step.relu);
      }
      break;
    case OpKind::kLinear:
      if (step.qlinear != nullptr) {
        quant::QLinearForwardInto(in, *step.qlinear, out, step.relu,
                                  bind.step_qsolvers[static_cast<size_t>(seq)]);
      } else {
        LinearForwardInto(in, step.weight, step.bias, out, step.relu,
                          bind.step_solvers[static_cast<size_t>(seq)]);
      }
      break;
    case OpKind::kMaxPool:
      MaxPool2dForwardInto(in, step.pool_kernel, step.pool_stride, out);
      break;
    case OpKind::kGlobalAvgPool:
      GlobalAvgPoolForwardInto(in, out);
      break;
    case OpKind::kMeanPoolTokens:
      MeanPoolTokensForwardInto(in, out);
      break;
    case OpKind::kBilinearResize:
      BilinearResizeForwardInto(in, out);
      break;
    case OpKind::kTokenResize:
      LinearResizeTokensForwardInto(in, out);
      break;
    case OpKind::kModule: {
      out = step.module->Forward(in, /*training=*/false);
      for (int a : values_[static_cast<size_t>(step.out)].dependent_aliases) {
        bind.values[static_cast<size_t>(a)] =
            out.Reshape(values_[static_cast<size_t>(a)].shape.WithBatch(out.shape()[0]));
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void FusedEngine::StepCostPerSample(const Step& step, double* flops, double* bytes) const {
  *flops = 0.0;
  *bytes = 0.0;
  const auto elems = [&](int value) {
    return value < 0 ? 0.0
                     : static_cast<double>(
                           values_[static_cast<size_t>(value)].shape.NumElements());
  };
  const double in_elems = elems(step.in0);
  const double out_elems = elems(step.out);
  switch (step.kind) {
    case OpKind::kConv: {
      const Shape& w = step.weight.shape();
      const double weight_elems = static_cast<double>(w.NumElements());
      // Per-sample im2col GEMM: 2 * O * (C*KH*KW) * (OH*OW), plus the fused
      // epilogue (bias/skip/relu) at one op per output element.
      *flops = 2.0 * static_cast<double>(w[0] * w[1] * w[2] * w[3]) * (out_elems / w[0]) +
               out_elems * (step.skip >= 0 ? 2.0 : 1.0);
      *bytes = 4.0 * (in_elems + weight_elems + out_elems + elems(step.skip)) +
               4.0 * static_cast<double>(step.bias.size());
      break;
    }
    case OpKind::kLinear: {
      const Shape& w = step.weight.shape();
      const double rows = w[0] > 0 ? in_elems / static_cast<double>(w[0]) : 0.0;
      *flops = 2.0 * rows * static_cast<double>(w[0] * w[1]) + out_elems;
      *bytes = 4.0 * (in_elems + static_cast<double>(w.NumElements()) + out_elems) +
               4.0 * static_cast<double>(step.bias.size());
      break;
    }
    case OpKind::kMaxPool:
      // One compare per pooled window element.
      *flops = out_elems * static_cast<double>(step.pool_kernel * step.pool_kernel);
      *bytes = 4.0 * (in_elems + out_elems);
      break;
    case OpKind::kGlobalAvgPool:
    case OpKind::kMeanPoolTokens:
      *flops = in_elems;
      *bytes = 4.0 * (in_elems + out_elems);
      break;
    case OpKind::kBilinearResize:
      // 4-tap interpolation: ~8 ops per output element.
      *flops = 8.0 * out_elems;
      *bytes = 4.0 * (in_elems + out_elems);
      break;
    case OpKind::kTokenResize:
      *flops = 4.0 * out_elems;
      *bytes = 4.0 * (in_elems + out_elems);
      break;
    case OpKind::kModule:
      // Opaque fallback: the roofline report labels these unattributed.
      break;
  }
}

std::vector<FusedEngine::StepProfile> FusedEngine::Profile() const {
  std::vector<StepProfile> out;
  out.reserve(steps_.size());
  for (const Step& s : steps_) {
    StepProfile p;
    p.label = s.label;
    p.solver = s.solver;
    p.node = s.node;
    p.calls = s.calls;
    p.total_ms = s.seconds * 1e3;
    StepCostPerSample(s, &p.flops, &p.bytes);
    p.counters = s.counters;
    out.push_back(std::move(p));
  }
  return out;
}

void FusedEngine::ResetProfile() {
  for (Step& s : steps_) {
    s.calls = 0;
    s.seconds = 0.0;
    s.counters = obs::PerfCounts{};
  }
}

std::string FusedEngine::DumpPlan() const {
  std::ostringstream os;
  os << "plan: " << steps_.size() << " steps, " << values_.size() << " values, "
     << buffers_.size() << " buffers (" << planned_bytes_per_sample()
     << " planned bytes/sample), " << groups_.size() << " groups\n";
  os << "fused convs=" << num_fused_convs_ << " linears=" << num_fused_linears_
     << " eliminated=" << num_eliminated_ << " fallbacks=" << num_fallback_modules_ << "\n";
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& s = steps_[i];
    const Value& out = values_[static_cast<size_t>(s.out)];
    os << "  [" << i << "] g" << s.group << " node" << s.node << " " << s.label << "  v"
       << s.in0;
    if (s.skip >= 0) {
      os << "+v" << s.skip;
    }
    os << " -> v" << s.out << " " << out.shape.ToString();
    if (!s.solver.empty()) {
      os << " solver=" << s.solver;
    }
    if (s.quantized()) {
      os << " int8";
    }
    if (out.buffer >= 0) {
      os << " (buf" << out.buffer << (out.is_head ? ", head" : "") << ")";
    } else {
      os << " (dynamic)";
    }
    os << "\n";
  }
  for (size_t v = 0; v < values_.size(); ++v) {
    if (values_[v].alias_of >= 0) {
      os << "  alias v" << v << " -> v" << values_[v].alias_of << " "
         << values_[v].shape.ToString() << "\n";
    }
  }
  for (size_t b = 0; b < buffers_.size(); ++b) {
    os << "  buf" << b << ": " << buffers_[b].elems_per_sample << " elems/sample"
       << (buffers_[b].reusable ? "" : " (dedicated)") << ", values";
    for (int v : buffers_[b].values) {
      os << " v" << v;
    }
    os << "\n";
  }
  return os.str();
}

PlanIR FusedEngine::ExportPlan() const {
  PlanIR plan;
  plan.values.reserve(values_.size());
  for (const Value& v : values_) {
    PlanValue pv;
    pv.shape = v.shape;
    pv.alias_of = v.alias_of;
    pv.from_module = v.from_module;
    pv.is_head = v.is_head;
    pv.buffer = v.buffer;
    plan.values.push_back(std::move(pv));
  }
  plan.steps.reserve(steps_.size());
  for (const Step& s : steps_) {
    PlanStep ps;
    switch (s.kind) {
      case OpKind::kConv:
        ps.kind = PlanOp::kConv;
        break;
      case OpKind::kLinear:
        ps.kind = PlanOp::kLinear;
        break;
      case OpKind::kMaxPool:
        ps.kind = PlanOp::kMaxPool;
        break;
      case OpKind::kGlobalAvgPool:
        ps.kind = PlanOp::kGlobalAvgPool;
        break;
      case OpKind::kMeanPoolTokens:
        ps.kind = PlanOp::kMeanPoolTokens;
        break;
      case OpKind::kBilinearResize:
        ps.kind = PlanOp::kBilinearResize;
        break;
      case OpKind::kTokenResize:
        ps.kind = PlanOp::kTokenResize;
        break;
      case OpKind::kModule:
        ps.kind = PlanOp::kModule;
        break;
    }
    ps.node = s.node;
    ps.label = s.label;
    ps.in0 = s.in0;
    ps.skip = s.skip;
    ps.out = s.out;
    ps.group = s.group;
    ps.weight_shape = s.weight.shape();
    ps.stride = s.conv_args.stride;
    ps.padding = s.conv_args.padding;
    ps.relu = s.relu;
    ps.pool_kernel = s.pool_kernel;
    ps.pool_stride = s.pool_stride;
    ps.solver = s.solver;
    ps.dtype = s.quantized() ? kernels::DType::kInt8 : kernels::DType::kF32;
    plan.steps.push_back(std::move(ps));
  }
  plan.groups.reserve(groups_.size());
  for (const Group& g : groups_) {
    PlanGroup pg;
    pg.parent = g.parent;
    pg.steps = g.steps;
    pg.children = g.children;
    plan.groups.push_back(std::move(pg));
  }
  plan.buffers.reserve(buffers_.size());
  for (const Buffer& b : buffers_) {
    plan.buffers.push_back(PlanBuffer{b.elems_per_sample, b.reusable});
  }
  plan.head_values = head_values_;
  return plan;
}

}  // namespace gmorph
