#include "src/runtime/fused_engine.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/nn/activations.h"
#include "src/nn/blocks.h"
#include "src/nn/rescale.h"

namespace gmorph {

FusedEngine::FusedEngine(MultiTaskModel* model) : model_(model) {
  const AbsGraph& graph = model_->graph();
  num_nodes_ = graph.size();
  for (int id : graph.TopologicalOrder()) {
    if (id == graph.root()) {
      continue;
    }
    const AbsNode& node = graph.node(id);
    Module* module = model_->module(id);
    Step step;
    step.node = id;
    step.parent = node.parent;

    if (node.spec.type == BlockType::kConvReLU || node.spec.type == BlockType::kConvBNReLU) {
      auto* block = dynamic_cast<ConvBlock*>(module);
      GMORPH_CHECK(block != nullptr);
      const Conv2d& conv = block->conv();
      step.kind = StepKind::kFusedConvReLU;
      step.conv_args = conv.args();
      step.weight = conv.weight().value.Clone();
      const int64_t out_c = conv.out_channels();
      step.bias = Tensor::Zeros(Shape{out_c});
      if (block->has_bn()) {
        const BatchNorm2d* bn = block->bn();
        const int64_t per_filter = step.weight.size() / out_c;
        // BN folding scales each filter independently.
        ParallelFor(0, out_c, std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, per_filter)),
                    [&](int64_t lo, int64_t hi) {
                      for (int64_t o = lo; o < hi; ++o) {
                        const float inv_std =
                            1.0f / std::sqrt(bn->running_var().at(o) + bn->eps());
                        const float scale = bn->gamma().value.at(o) * inv_std;
                        float* w = step.weight.data() + o * per_filter;
                        for (int64_t i = 0; i < per_filter; ++i) {
                          w[i] *= scale;
                        }
                        step.bias.at(o) = bn->beta().value.at(o) -
                                          bn->running_mean().at(o) * scale;
                      }
                    });
      } else if (!conv.bias().value.empty()) {
        step.bias = conv.bias().value.Clone();
      }
      ++num_fused_convs_;
    } else if (node.spec.type == BlockType::kRescale &&
               dynamic_cast<Rescale*>(module) != nullptr &&
               dynamic_cast<Rescale*>(module)->IsIdentity()) {
      step.kind = StepKind::kIdentity;
      ++num_eliminated_;
    } else {
      step.kind = StepKind::kModule;
      step.module = module;
    }
    plan_.push_back(std::move(step));
  }
  for (int t = 0; t < graph.num_tasks(); ++t) {
    head_nodes_.push_back(graph.HeadOfTask(t));
  }
}

std::vector<Tensor> FusedEngine::Run(const Tensor& input) {
  std::vector<Tensor> activations(static_cast<size_t>(num_nodes_));
  activations[0] = input;
  for (Step& step : plan_) {
    const Tensor& in = activations[static_cast<size_t>(step.parent)];
    Tensor& out = activations[static_cast<size_t>(step.node)];
    switch (step.kind) {
      case StepKind::kFusedConvReLU: {
        out = Conv2dForward(in, step.weight, step.bias, step.conv_args);
        ReluInPlace(out);
        break;
      }
      case StepKind::kIdentity:
        out = in;  // shares storage; downstream ops never write in place
        break;
      case StepKind::kModule:
        out = step.module->Forward(in, /*training=*/false);
        break;
    }
  }
  std::vector<Tensor> outputs;
  outputs.reserve(head_nodes_.size());
  for (int head : head_nodes_) {
    outputs.push_back(activations[static_cast<size_t>(head)]);
  }
  return outputs;
}

}  // namespace gmorph
