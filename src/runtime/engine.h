// Inference engines.
//
// The paper evaluates GMorph's fused models on two engines: PyTorch eager
// execution and TensorRT (a graph-optimizing compiler). Here:
//   - EagerEngine executes the multi-task tree module-by-module — the
//     "PyTorch" stand-in.
//   - FusedEngine (fused_engine.h) applies compiler-style graph passes
//     (BN folding, conv+ReLU fusion, identity elimination) before executing —
//     the "TensorRT" stand-in.
// Both consume the same MultiTaskModel, demonstrating that model fusion is
// complementary to engine-level graph optimization (paper Table 3).
#ifndef GMORPH_SRC_RUNTIME_ENGINE_H_
#define GMORPH_SRC_RUNTIME_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/multitask_model.h"

namespace gmorph {

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  // Runs inference; returns per-task logits.
  virtual std::vector<Tensor> Run(const Tensor& input) = 0;

  virtual std::string Name() const = 0;
};

class EagerEngine : public InferenceEngine {
 public:
  // `model` must outlive the engine.
  explicit EagerEngine(MultiTaskModel* model) : model_(model) {}

  std::vector<Tensor> Run(const Tensor& input) override {
    return model_->Forward(input, /*training=*/false);
  }
  std::string Name() const override { return "eager"; }

 private:
  MultiTaskModel* model_;
};

enum class EngineKind { kEager, kFused };

std::unique_ptr<InferenceEngine> MakeEngine(EngineKind kind, MultiTaskModel* model);

// A self-contained engine instance: the engine plus the model it executes.
// Engines reference live model state (linear weight handles, fallback
// modules) and are not safe for concurrent Run() calls, so a serving replica
// pool instantiates one EngineReplica per worker — each replica owns its own
// MultiTaskModel materialized from the (weight-carrying) graph, sharing no
// mutable state with its siblings. This is also the hot-swap unit: a swap
// hands a whole replica (model + engine) to the pool and receives the
// previous one back, so in-flight batches on the old engine stay valid until
// they complete.
struct EngineReplica {
  std::unique_ptr<MultiTaskModel> model;
  std::unique_ptr<InferenceEngine> engine;

  explicit operator bool() const { return engine != nullptr; }
};

// Builds a replica of `kind` over its own copy of `graph` (weights stored in
// the graph are materialized into the fresh model; `seed` covers any
// parameters the graph does not pin).
EngineReplica MakeEngineReplica(EngineKind kind, const AbsGraph& graph, uint64_t seed = 42);

// Median wall-clock latency (ms) of `engine` on a zero batch of `batch` rows.
// Shares the warmup/median logic with MeasureLatencyMs (src/obs/timing.h),
// so search-time and engine-bench latencies are measured identically.
double MeasureEngineLatencyMs(InferenceEngine& engine, const Shape& per_sample_input,
                              int64_t batch = 1, int warmup = 1, int repeats = 5);

// Variant over a caller-owned input batch: the tensor is allocated once by the
// caller and reused across every warmup and measured run (used by the serving
// simulator's per-batch-size calibration).
double MeasureEngineLatencyMs(InferenceEngine& engine, const Tensor& input, int warmup = 1,
                              int repeats = 5);

}  // namespace gmorph

#endif  // GMORPH_SRC_RUNTIME_ENGINE_H_
