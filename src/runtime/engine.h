// Inference engines.
//
// The paper evaluates GMorph's fused models on two engines: PyTorch eager
// execution and TensorRT (a graph-optimizing compiler). Here:
//   - EagerEngine executes the multi-task tree module-by-module — the
//     "PyTorch" stand-in.
//   - FusedEngine (fused_engine.h) applies compiler-style graph passes
//     (BN folding, conv+ReLU fusion, identity elimination) before executing —
//     the "TensorRT" stand-in.
// Both consume the same MultiTaskModel, demonstrating that model fusion is
// complementary to engine-level graph optimization (paper Table 3).
#ifndef GMORPH_SRC_RUNTIME_ENGINE_H_
#define GMORPH_SRC_RUNTIME_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/multitask_model.h"

namespace gmorph {

class InferenceEngine {
 public:
  virtual ~InferenceEngine() = default;

  // Runs inference; returns per-task logits.
  virtual std::vector<Tensor> Run(const Tensor& input) = 0;

  virtual std::string Name() const = 0;
};

class EagerEngine : public InferenceEngine {
 public:
  // `model` must outlive the engine.
  explicit EagerEngine(MultiTaskModel* model) : model_(model) {}

  std::vector<Tensor> Run(const Tensor& input) override {
    return model_->Forward(input, /*training=*/false);
  }
  std::string Name() const override { return "eager"; }

 private:
  MultiTaskModel* model_;
};

enum class EngineKind { kEager, kFused };

std::unique_ptr<InferenceEngine> MakeEngine(EngineKind kind, MultiTaskModel* model);

// Median wall-clock latency (ms) of `engine` on a zero batch of `batch` rows.
// Shares the warmup/median logic with MeasureLatencyMs (src/obs/timing.h),
// so search-time and engine-bench latencies are measured identically.
double MeasureEngineLatencyMs(InferenceEngine& engine, const Shape& per_sample_input,
                              int64_t batch = 1, int warmup = 1, int repeats = 5);

// Variant over a caller-owned input batch: the tensor is allocated once by the
// caller and reused across every warmup and measured run (used by the serving
// simulator's per-batch-size calibration).
double MeasureEngineLatencyMs(InferenceEngine& engine, const Tensor& input, int warmup = 1,
                              int repeats = 5);

}  // namespace gmorph

#endif  // GMORPH_SRC_RUNTIME_ENGINE_H_
