#include "src/runtime/roofline.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "src/obs/perf_counters.h"

namespace gmorph {
namespace {

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

void AppendJsonNumber(std::string& out, const char* key, double v, bool* first) {
  if (!*first) {
    out += ',';
  }
  *first = false;
  out += '"';
  out += key;
  out += "\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void AppendJsonString(std::string& out, const char* key, const std::string& v, bool* first) {
  if (!*first) {
    out += ',';
  }
  *first = false;
  out += '"';
  out += key;
  out += "\":\"";
  for (const char c : v) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

RooflineReport BuildRooflineReport(const std::vector<FusedEngine::StepProfile>& profile,
                                   const kernels::MachineCeilings& ceilings, int64_t batch,
                                   int runs, int top_k) {
  RooflineReport report;
  report.ceilings = ceilings;
  report.counters_available = obs::PerfCountersAvailable();
  report.counters_error = obs::PerfCountersError();
  report.batch = batch;
  report.runs = runs;
  const double ridge = ceilings.RidgeIntensity();
  for (const FusedEngine::StepProfile& p : profile) {
    RooflineStep s;
    s.label = p.label;
    s.solver = p.solver;
    s.node = p.node;
    s.calls = p.calls;
    s.total_ms = p.total_ms;
    s.ms_per_call = p.calls > 0 ? p.total_ms / static_cast<double>(p.calls) : 0.0;
    s.flops_per_call = p.flops * static_cast<double>(batch);
    s.bytes_per_call = p.bytes * static_cast<double>(batch);
    if (s.ms_per_call > 0.0) {
      s.gflops = s.flops_per_call / (s.ms_per_call * 1e6);
      s.gbps = s.bytes_per_call / (s.ms_per_call * 1e6);
    }
    s.intensity = s.bytes_per_call > 0.0 ? s.flops_per_call / s.bytes_per_call : 0.0;
    if (p.counters.valid) {
      s.ipc = p.counters.Ipc();
      s.llc_miss_rate = p.counters.LlcMissRate();
      s.branch_mpki = p.counters.instructions > 0
                          ? 1000.0 * static_cast<double>(p.counters.branch_misses) /
                                static_cast<double>(p.counters.instructions)
                          : 0.0;
    }
    if (p.calls == 0) {
      s.bound = "idle";
    } else if (s.flops_per_call <= 0.0) {
      s.bound = "opaque";
    } else if (s.intensity < ridge) {
      s.bound = "memory";
      s.pct_of_roof =
          ceilings.triad_gbps > 0.0 ? 100.0 * s.gbps / ceilings.triad_gbps : 0.0;
    } else {
      s.bound = "compute";
      s.pct_of_roof =
          ceilings.peak_gflops > 0.0 ? 100.0 * s.gflops / ceilings.peak_gflops : 0.0;
    }
    report.total_ms += s.total_ms;
    report.steps.push_back(std::move(s));
  }
  std::vector<int> order(report.steps.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return report.steps[static_cast<size_t>(a)].total_ms >
           report.steps[static_cast<size_t>(b)].total_ms;
  });
  const int k = std::min<int>(top_k, static_cast<int>(order.size()));
  report.hot.assign(order.begin(), order.begin() + k);
  return report;
}

std::string RooflineReportText(const RooflineReport& report) {
  std::ostringstream os;
  os << "roofline: batch=" << report.batch << " runs=" << report.runs << " ceilings: "
     << Fmt("%.1f", report.ceilings.peak_gflops) << " GFLOP/s, "
     << Fmt("%.1f", report.ceilings.triad_gbps) << " GB/s (ridge "
     << Fmt("%.2f", report.ceilings.RidgeIntensity()) << " flop/B, threads "
     << report.ceilings.threads << ")\n";
  if (report.counters_available) {
    os << "counters: available\n";
  } else {
    os << "counters: unavailable (" << report.counters_error << ")\n";
  }
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %9s %9s %8s %8s %7s %6s %8s %7s %-8s %6s\n",
                "step", "total_ms", "ms/call", "GFLOP/s", "GB/s", "flop/B", "IPC",
                "LLCmiss%", "brMPKI", "bound", "%roof");
  os << line;
  for (const RooflineStep& s : report.steps) {
    std::string label = s.label;
    if (label.size() > 28) {
      label.resize(28);
    }
    std::snprintf(line, sizeof(line),
                  "%-28s %9.3f %9.4f %8.2f %8.2f %7.2f %6.2f %8.2f %7.2f %-8s %6.1f\n",
                  label.c_str(), s.total_ms, s.ms_per_call, s.gflops, s.gbps, s.intensity,
                  s.ipc, 100.0 * s.llc_miss_rate, s.branch_mpki, s.bound.c_str(),
                  s.pct_of_roof);
    os << line;
  }
  os << "total: " << Fmt("%.3f", report.total_ms) << " ms across "
     << report.steps.size() << " steps\n";
  os << "hot steps:";
  for (const int i : report.hot) {
    const RooflineStep& s = report.steps[static_cast<size_t>(i)];
    os << "  [" << i << "] " << s.label << " (" << Fmt("%.3f", s.total_ms) << " ms, "
       << s.bound << ")";
  }
  os << "\n";
  return os.str();
}

std::string RooflineReportJson(const RooflineReport& report) {
  std::string out = "{";
  bool first = true;
  AppendJsonString(out, "report", "roofline", &first);
  AppendJsonNumber(out, "batch", static_cast<double>(report.batch), &first);
  AppendJsonNumber(out, "runs", report.runs, &first);
  AppendJsonNumber(out, "total_ms", report.total_ms, &first);
  out += ",\"machine\":{";
  bool mfirst = true;
  AppendJsonNumber(out, "peak_gflops", report.ceilings.peak_gflops, &mfirst);
  AppendJsonNumber(out, "triad_gbps", report.ceilings.triad_gbps, &mfirst);
  AppendJsonNumber(out, "ridge_intensity", report.ceilings.RidgeIntensity(), &mfirst);
  AppendJsonNumber(out, "threads", report.ceilings.threads, &mfirst);
  out += '}';
  out += ",\"counters_available\":";
  out += report.counters_available ? "true" : "false";
  if (!report.counters_available) {
    out += ',';
    bool efirst = true;
    AppendJsonString(out, "counters_error", report.counters_error, &efirst);
  }
  out += ",\"steps\":[";
  for (size_t i = 0; i < report.steps.size(); ++i) {
    const RooflineStep& s = report.steps[i];
    if (i > 0) {
      out += ',';
    }
    out += '{';
    bool sf = true;
    AppendJsonString(out, "label", s.label, &sf);
    AppendJsonString(out, "solver", s.solver, &sf);
    AppendJsonNumber(out, "node", s.node, &sf);
    AppendJsonNumber(out, "calls", static_cast<double>(s.calls), &sf);
    AppendJsonNumber(out, "total_ms", s.total_ms, &sf);
    AppendJsonNumber(out, "ms_per_call", s.ms_per_call, &sf);
    AppendJsonNumber(out, "flops_per_call", s.flops_per_call, &sf);
    AppendJsonNumber(out, "bytes_per_call", s.bytes_per_call, &sf);
    AppendJsonNumber(out, "gflops", s.gflops, &sf);
    AppendJsonNumber(out, "gbps", s.gbps, &sf);
    AppendJsonNumber(out, "intensity", s.intensity, &sf);
    AppendJsonNumber(out, "ipc", s.ipc, &sf);
    AppendJsonNumber(out, "llc_miss_rate", s.llc_miss_rate, &sf);
    AppendJsonNumber(out, "branch_mpki", s.branch_mpki, &sf);
    AppendJsonString(out, "bound", s.bound, &sf);
    AppendJsonNumber(out, "pct_of_roof", s.pct_of_roof, &sf);
    out += '}';
  }
  out += "],\"hot\":[";
  for (size_t i = 0; i < report.hot.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += std::to_string(report.hot[i]);
  }
  out += "]}";
  return out;
}

}  // namespace gmorph
