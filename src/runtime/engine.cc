#include "src/runtime/engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/timer.h"
#include "src/runtime/fused_engine.h"

namespace gmorph {

std::unique_ptr<InferenceEngine> MakeEngine(EngineKind kind, MultiTaskModel* model) {
  GMORPH_CHECK(model != nullptr);
  switch (kind) {
    case EngineKind::kEager:
      return std::make_unique<EagerEngine>(model);
    case EngineKind::kFused:
      return std::make_unique<FusedEngine>(model);
  }
  GMORPH_CHECK_MSG(false, "unknown engine kind");
  return nullptr;
}

double MeasureEngineLatencyMs(InferenceEngine& engine, const Shape& per_sample_input,
                              int64_t batch, int warmup, int repeats) {
  Tensor input = Tensor::Zeros(per_sample_input.WithBatch(batch));
  for (int i = 0; i < warmup; ++i) {
    engine.Run(input);
  }
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    engine.Run(input);
    samples.push_back(timer.Millis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace gmorph
