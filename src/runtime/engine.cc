#include "src/runtime/engine.h"

#include "src/common/check.h"
#include "src/obs/timing.h"
#include "src/runtime/fused_engine.h"

namespace gmorph {

std::unique_ptr<InferenceEngine> MakeEngine(EngineKind kind, MultiTaskModel* model) {
  GMORPH_CHECK(model != nullptr);
  switch (kind) {
    case EngineKind::kEager:
      return std::make_unique<EagerEngine>(model);
    case EngineKind::kFused:
      return std::make_unique<FusedEngine>(model);
  }
  GMORPH_CHECK(false, "unknown engine kind");
  return nullptr;
}

EngineReplica MakeEngineReplica(EngineKind kind, const AbsGraph& graph, uint64_t seed) {
  EngineReplica replica;
  Rng rng(seed);
  replica.model = std::make_unique<MultiTaskModel>(graph, rng);
  replica.engine = MakeEngine(kind, replica.model.get());
  return replica;
}

double MeasureEngineLatencyMs(InferenceEngine& engine, const Shape& per_sample_input,
                              int64_t batch, int warmup, int repeats) {
  Tensor input = Tensor::Zeros(per_sample_input.WithBatch(batch));
  return MeasureEngineLatencyMs(engine, input, warmup, repeats);
}

double MeasureEngineLatencyMs(InferenceEngine& engine, const Tensor& input, int warmup,
                              int repeats) {
  return MedianTimedMs([&] { engine.Run(input); }, warmup, repeats);
}

}  // namespace gmorph
