// Roofline attribution over a FusedEngine step profile.
//
// Combines three ingredients into one per-step report:
//   wall time + calls      — the engine's existing step profile,
//   hardware counters      — per-step perf_event deltas (when available),
//   flops / bytes          — the planner's per-step cost model,
// against the machine's measured ceilings (kernels::MachineCeilings): each
// step's arithmetic intensity (flop/byte) is compared to the ridge point
// peak_gflops / triad_gbps and the step is classified compute-bound or
// memory-bound with its percent-of-roof. Opaque module fallbacks have no cost
// model and are labeled "opaque" rather than misattributed.
//
// Counters may be unavailable (perf_event_open denied); the report then
// carries counters_available = false with the reason and every derived
// counter column reads 0 — the time/flops/roofline half is unaffected.
#ifndef GMORPH_SRC_RUNTIME_ROOFLINE_H_
#define GMORPH_SRC_RUNTIME_ROOFLINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernels/machine.h"
#include "src/runtime/fused_engine.h"

namespace gmorph {

struct RooflineStep {
  std::string label;
  std::string solver;
  int node = -1;
  int64_t calls = 0;
  double total_ms = 0.0;
  double ms_per_call = 0.0;
  double flops_per_call = 0.0;  // batch applied
  double bytes_per_call = 0.0;
  double gflops = 0.0;          // achieved
  double gbps = 0.0;            // achieved logical traffic rate
  double intensity = 0.0;       // flop / byte
  // Derived from the counter deltas; 0 when counters were unavailable.
  double ipc = 0.0;
  double llc_miss_rate = 0.0;        // LLC load misses / LLC loads
  double branch_mpki = 0.0;          // branch misses per kilo-instruction
  // "compute" | "memory" | "opaque" (no cost model) | "idle" (never ran).
  std::string bound;
  double pct_of_roof = 0.0;  // achieved rate / binding ceiling, in percent
};

struct RooflineReport {
  kernels::MachineCeilings ceilings;
  bool counters_available = false;
  std::string counters_error;  // why, when unavailable
  int64_t batch = 1;
  int runs = 0;
  double total_ms = 0.0;             // sum over steps
  std::vector<RooflineStep> steps;   // plan order
  std::vector<int> hot;              // top-k step indices by total_ms
};

// Builds the report from an engine profile taken over `runs` executions at
// `batch`. `top_k` bounds the hot list (clamped to the step count).
RooflineReport BuildRooflineReport(const std::vector<FusedEngine::StepProfile>& profile,
                                   const kernels::MachineCeilings& ceilings, int64_t batch,
                                   int runs, int top_k = 5);

// Per-step text table (fixed-width, one line per step, hot list + ceilings
// in the footer).
std::string RooflineReportText(const RooflineReport& report);

// Single JSON object: machine ceilings, counter availability, per-step
// records, and the hot list.
std::string RooflineReportJson(const RooflineReport& report);

}  // namespace gmorph

#endif  // GMORPH_SRC_RUNTIME_ROOFLINE_H_
