// Engine-level int8 scorer for the mutation search.
//
// CandidateEvaluator (core layer) cannot link against the runtime layer, so
// it takes this function through EvalOptions::quant_score; the driver that
// owns both layers (gmorph_cli, tests) injects it when quantized scoring is
// requested. The scorer lowers the fine-tuned candidate through the
// FusedEngine, calibrates on slices of the representative inputs, applies the
// recipe, then measures the int8 plan's latency and per-task test scores.
#ifndef GMORPH_SRC_RUNTIME_QUANT_SCORING_H_
#define GMORPH_SRC_RUNTIME_QUANT_SCORING_H_

#include <vector>

#include "src/core/candidate_eval.h"
#include "src/core/multitask_model.h"
#include "src/data/dataset.h"
#include "src/runtime/fused_engine.h"

namespace gmorph {

// Per-task scores of an engine (f32 or quantized) on `test` under each task's
// metric — the engine sibling of EvaluateMultiTask, which drives
// Module::Forward instead. Scoring the same engine before and after
// Quantize() isolates exactly the drop the int8 plan adds.
std::vector<double> EngineEvaluateMultiTask(FusedEngine& engine, const MultiTaskDataset& test,
                                            int64_t batch_size = 64);

// QuantScoreFn implementation (see candidate_eval.h for the contract).
// Returns within_budget=false with quantized_steps=0 when the plan has no
// quantizable step (e.g. all-opaque fallbacks).
QuantOutcome ScoreQuantizedEngine(MultiTaskModel& model, const MultiTaskDataset& train,
                                  const MultiTaskDataset& test,
                                  const std::vector<double>& f32_scores,
                                  const EvalOptions& options);

}  // namespace gmorph

#endif  // GMORPH_SRC_RUNTIME_QUANT_SCORING_H_
