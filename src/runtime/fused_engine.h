// FusedEngine: compiler-style optimized executor (the "TensorRT" stand-in).
//
// At construction it lowers the multi-task tree through three passes:
//   1. BN folding    — Conv+BN(+ReLU) blocks become a single convolution with
//                      folded weights/bias (uses the live running statistics).
//   2. Op fusion     — the ReLU is applied in-place inside the conv kernel
//                      epilogue instead of as a separate pass over memory.
//   3. Identity elimination — rescale adapters that are identities (inserted
//                      between equal shapes) are dropped from the plan.
// Blocks it cannot lower (residual, transformer, pooling, heads) fall back to
// the module's inference forward — a realistic partial lowering.
#ifndef GMORPH_SRC_RUNTIME_FUSED_ENGINE_H_
#define GMORPH_SRC_RUNTIME_FUSED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/engine.h"
#include "src/tensor/conv_ops.h"

namespace gmorph {

class FusedEngine : public InferenceEngine {
 public:
  // `model` must outlive the engine; the plan holds folded copies of conv
  // parameters and raw pointers to fallback modules.
  explicit FusedEngine(MultiTaskModel* model);

  std::vector<Tensor> Run(const Tensor& input) override;
  std::string Name() const override { return "fused"; }

  // Introspection for tests / reporting.
  int num_fused_convs() const { return num_fused_convs_; }
  int num_eliminated() const { return num_eliminated_; }

 private:
  enum class StepKind { kFusedConvReLU, kIdentity, kModule };

  struct Step {
    StepKind kind = StepKind::kModule;
    int node = -1;
    int parent = -1;
    // kFusedConvReLU:
    Tensor weight;  // folded (O, C, K, K)
    Tensor bias;    // folded (O)
    Conv2dArgs conv_args;
    // kModule:
    Module* module = nullptr;
  };

  MultiTaskModel* model_;
  std::vector<Step> plan_;
  std::vector<int> head_nodes_;  // per task
  int num_nodes_ = 0;
  int num_fused_convs_ = 0;
  int num_eliminated_ = 0;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_RUNTIME_FUSED_ENGINE_H_
