// FusedEngine: compiler-style optimized executor (the "TensorRT" stand-in).
//
// At construction the multi-task tree is lowered into a flat execution plan:
//
//   1. BN folding      — every Conv+BN pair (VGG layers, ResNet stem, the
//                        three convolutions of a residual block) becomes a
//                        single convolution with folded weights/bias.
//   2. Epilogue fusion — ReLU and the residual skip-add are applied inside
//                        the conv kernel's per-sample epilogue
//                        (Conv2dForwardInto); Linear+ReLU heads fuse the same
//                        way (LinearForwardInto).
//   3. Identity/reshape elimination — identity rescale adapters and Flatten
//                        become alias entries in the value table (no step, no
//                        copy); only genuinely opaque blocks (transformer,
//                        embeddings) fall back to Module::Forward.
//   4. Static memory planning — per-activation liveness over the plan is
//                        computed at construction and values are assigned to
//                        a small set of reusable arena buffers (greedy
//                        interval coloring keyed by byte size), so
//                        steady-state Run() performs zero tensor-storage
//                        allocations.
//   5. Branch-parallel scheduling — after the shared prefix, per-task
//                        subtrees are independent and are dispatched onto the
//                        process pool; nested kernel parallelism degrades to
//                        serial via the existing nesting guard.
//
// Returned output tensors alias engine-owned buffers: they are valid until
// the next Run() on this engine. Like Module, a FusedEngine must not be used
// from concurrent executions. The plan snapshots conv weights (folded) and
// references linear weights by handle; rebuild the engine after re-training.
#ifndef GMORPH_SRC_RUNTIME_FUSED_ENGINE_H_
#define GMORPH_SRC_RUNTIME_FUSED_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/plan_ir.h"
#include "src/kernels/solver.h"
#include "src/obs/perf_counters.h"
#include "src/quant/calibrate.h"
#include "src/quant/quant_ops.h"
#include "src/quant/recipe.h"
#include "src/runtime/engine.h"
#include "src/tensor/conv_ops.h"

namespace gmorph {

class FusedEngine : public InferenceEngine {
 public:
  struct Options {
    // Dispatch divergent branches onto the process pool instead of running
    // them sequentially.
    bool branch_parallel = true;
  };

  // `model` must outlive the engine; the plan holds folded copies of conv
  // parameters, handles to linear parameters, and raw pointers to fallback
  // modules.
  explicit FusedEngine(MultiTaskModel* model);
  FusedEngine(MultiTaskModel* model, const Options& options);

  std::vector<Tensor> Run(const Tensor& input) override;
  std::string Name() const override { return "fused"; }

  // ---- Int8 post-training quantization ----
  // Calibration: runs the f32 plan over each batch while observing the input
  // range of every conv/linear step, then derives the per-step quantization
  // recipe (u8 asymmetric activation params + per-output-channel s8 weight
  // scales). The engine is left unchanged — apply the recipe with Quantize().
  quant::QuantRecipe Calibrate(const std::vector<Tensor>& batches);
  // Applies a recipe: packs s8 weights (conv weights transposed to (CKK, O)
  // for the u8·s8 product), precomputes column sums / dequant scales / bias
  // copies, drops all cached bindings, and re-annotates solvers. Steps whose
  // seq/kind/channel-count do not match the live plan are skipped. Returns
  // the number of steps switched to int8. Steady-state Run() afterwards still
  // performs zero tensor-storage allocations — quantized steps draw their u8
  // im2col / s32 accumulator workspace from the thread-local scratch arena.
  int Quantize(const quant::QuantRecipe& recipe);
  int num_quantized_steps() const { return num_quantized_steps_; }

  // ---- Introspection for tests / reporting ----
  int num_fused_convs() const { return num_fused_convs_; }
  int num_eliminated() const { return num_eliminated_; }
  int num_fused_linears() const { return num_fused_linears_; }
  int num_fallback_modules() const { return num_fallback_modules_; }
  int num_steps() const { return static_cast<int>(steps_.size()); }
  // Arena slots after liveness coloring and their total per-sample footprint;
  // without planning each non-opaque node would hold its own activation.
  int num_buffers() const { return static_cast<int>(buffers_.size()); }
  int64_t planned_bytes_per_sample() const;

  // Per-step cumulative wall time, invocation count, and hardware-counter
  // deltas since construction (or the last ResetProfile). Counter deltas are
  // only accumulated while obs::EnableStepCounters() is armed and
  // perf_event_open is permitted; otherwise `counters` stays invalid and
  // wall-time profiling is unaffected. `flops` / `bytes` are the step's
  // per-sample arithmetic work and logical tensor traffic (operands +
  // results; intermediate im2col materialization excluded) — 0 for opaque
  // module fallbacks, which a roofline report cannot attribute.
  struct StepProfile {
    std::string label;
    std::string solver;  // plan-time annotation; empty for untunable kinds
    int node = -1;
    int64_t calls = 0;
    double total_ms = 0.0;
    double flops = 0.0;  // per sample
    double bytes = 0.0;  // per sample
    obs::PerfCounts counters;
  };
  std::vector<StepProfile> Profile() const;
  void ResetProfile();

  // Human-readable plan: steps, value table, buffer assignment, groups.
  std::string DumpPlan() const;

  // Snapshots the lowered plan (values, steps, groups, buffer assignment —
  // but not the engine's own liveness bookkeeping) for the PlanVerifier and
  // plan-dump tooling. Construction runs VerifyPlan over this export in debug
  // builds, and in release builds when GMORPH_VERIFY=1 is set.
  PlanIR ExportPlan() const;

  // The kernel problem descriptors this plan executes at the given batch
  // size (deduplicated): the per-sample im2col GEMM of every conv step, the
  // batched GEMM of every linear step, and every max-pool. This is the shape
  // list `gmorph_cli --autotune` feeds the autotuner.
  std::vector<kernels::ProblemDesc> KernelProblems(int64_t batch) const;

 private:
  enum class OpKind {
    kConv,           // folded conv (+skip add)(+ReLU) epilogue
    kLinear,         // linear (+ReLU)
    kMaxPool,
    kGlobalAvgPool,
    kMeanPoolTokens,
    kBilinearResize,
    kTokenResize,
    kModule,         // opaque fallback
  };

  // One SSA-style activation. Aliases (identity rescale, flatten) resolve to
  // a root value and share its buffer; module outputs are bound dynamically.
  struct Value {
    Shape shape;          // per-sample
    int alias_of = -1;    // root value id if this is an alias entry
    bool from_module = false;
    bool is_head = false;
    int buffer = -1;      // arena slot (planned root values only)
    int def_seq = -1;
    int def_group = 0;
    // def + every use, as (step seq, group id); used by the happens-before
    // compatibility test during buffer coloring.
    std::vector<std::pair<int, int>> events;
    // Aliases of this value that must be rebound after its module step runs
    // (only populated when from_module is set).
    std::vector<int> dependent_aliases;
  };

  struct Step {
    OpKind kind = OpKind::kModule;
    int node = -1;     // graph node (profiling / dump)
    std::string label;
    int in0 = -1;      // value ids
    int skip = -1;     // residual skip value (kConv only)
    int out = -1;
    int group = 0;
    // kConv: folded parameters. kLinear: handles into the live module.
    Tensor weight;
    Tensor bias;
    Conv2dArgs conv_args;
    bool relu = false;
    // kMaxPool
    int64_t pool_kernel = 0;
    int64_t pool_stride = 0;
    // Solver resolved at plan time for the step's tunable kernel (per-sample
    // descriptor); empty for step kinds without one. Exported with the plan
    // so the PlanVerifier can lint applicability.
    std::string solver;
    // Set by Quantize(): packed int8 parameters for kConv / kLinear steps.
    // A step with one of these executes on the u8·s8 path.
    std::unique_ptr<quant::QConvWeights> qconv;
    std::unique_ptr<quant::QLinearWeights> qlinear;
    bool quantized() const { return qconv != nullptr || qlinear != nullptr; }
    // kModule
    Module* module = nullptr;
    // Profiling accumulators (each step is executed by one thread at a time).
    int64_t calls = 0;
    double seconds = 0.0;
    obs::PerfCounts counters;
  };

  // A maximal chain of the tree: steps run in order, then children fork (in
  // parallel when enabled).
  struct Group {
    int parent = -1;
    std::vector<int> steps;
    std::vector<int> children;
  };

  struct Buffer {
    int64_t elems_per_sample = 0;
    bool reusable = true;  // head buffers are dedicated
    std::vector<int> values;
  };

  // Buffers and per-value tensor handles materialized for one batch size.
  struct Binding {
    std::vector<Tensor> buffers;
    std::vector<Tensor> values;
    // Per-step GEMM solver pinned at binding time (kLinear only; nullptr for
    // other kinds). Resolving once per (plan, batch) keeps the steady-state
    // Run() free of tuning-DB lookups.
    std::vector<const kernels::GemmSolver*> step_solvers;
    // Same, for quantized steps (kConv and kLinear on the int8 path).
    std::vector<const kernels::QGemmSolver*> step_qsolvers;
  };

  // ---- Construction passes ----
  void LowerNode(int node_id, int group);
  void LowerFrom(int node_id, int group);
  int NewValue(const Shape& per_sample_shape, int group);
  int NewAlias(int of_value, const Shape& per_sample_shape);
  int AddStep(Step step);
  void RecordUse(int value, int seq, int group);
  void PlanBuffers();
  bool HappensBefore(const std::pair<int, int>& event, int seq, int group) const;
  // Parallelism a step in `group` runs under: 1 inside a branch-parallel
  // fork (kernels nest to serial there), the kernel pool width otherwise.
  int GroupThreads(int group) const;
  // Fills `desc` with the step's tunable-kernel descriptor at `batch`
  // (kConv: the per-sample im2col GEMM; kLinear: the batched GEMM; kMaxPool:
  // the pool). Returns false for step kinds without one.
  bool StepProblemDesc(const Step& step, int64_t batch, kernels::ProblemDesc* desc) const;
  // Per-sample arithmetic work and logical tensor traffic of a step (see
  // StepProfile::flops/bytes); both 0 for opaque module fallbacks.
  void StepCostPerSample(const Step& step, double* flops, double* bytes) const;
  // Records each step's registry-resolved solver name (tuned winner when a
  // tuning DB is loaded, heuristic default otherwise) at batch 1.
  void AnnotateSolvers();
  // Runs the PlanVerifier over ExportPlan(): always in debug builds, opt-in
  // via GMORPH_VERIFY=1 in release. Fatal on error (a planner bug).
  void MaybeVerifyPlan() const;

  // ---- Execution ----
  Binding& BindingFor(int64_t batch);
  void ExecGroup(int group, Binding& bind);
  void ExecStep(int seq, Binding& bind);
  int ResolveAlias(int value) const;

  MultiTaskModel* model_;
  Options options_;
  std::vector<Step> steps_;
  std::vector<Value> values_;
  std::vector<Group> groups_;
  std::vector<Buffer> buffers_;
  std::vector<int> node_value_;   // graph node id -> value id
  std::vector<int> head_values_;  // per task
  std::vector<int> input_aliases_;  // alias values rooted at the input
  std::map<int64_t, std::unique_ptr<Binding>> bindings_;  // by batch size

  int num_fused_convs_ = 0;
  int num_eliminated_ = 0;
  int num_fused_linears_ = 0;
  int num_fallback_modules_ = 0;
  int num_quantized_steps_ = 0;
  // Non-null only while Calibrate() drives observed runs.
  quant::CalibrationObserver* observer_ = nullptr;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_RUNTIME_FUSED_ENGINE_H_
