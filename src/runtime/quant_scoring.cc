#include "src/runtime/quant_scoring.h"

#include <algorithm>
#include <cstring>

#include "src/data/eval.h"
#include "src/obs/timing.h"
#include "src/runtime/fused_engine.h"

namespace gmorph {
namespace {

// Per-task logits of the quantized engine over a whole split (the engine
// sibling of PredictAllTasks, which drives Module::Forward instead).
std::vector<Tensor> EnginePredictAllTasks(FusedEngine& engine, const MultiTaskDataset& data,
                                          int64_t batch_size) {
  const int64_t n = data.size();
  std::vector<Tensor> all;
  std::vector<int64_t> written;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t count = std::min(batch_size, n - start);
    // Engine outputs alias internal buffers (valid until the next Run), so
    // rows are copied out before the next batch executes.
    std::vector<Tensor> outs = engine.Run(data.InputBatch(start, count));
    if (all.empty()) {
      all.resize(outs.size());
      written.assign(outs.size(), 0);
    }
    for (size_t t = 0; t < outs.size(); ++t) {
      const int64_t k = outs[t].shape()[1];
      if (all[t].empty()) {
        all[t] = Tensor(Shape{n, k});
      }
      std::memcpy(all[t].data() + written[t] * k, outs[t].data(),
                  static_cast<size_t>(outs[t].size()) * sizeof(float));
      written[t] += count;
    }
  }
  return all;
}

}  // namespace

std::vector<double> EngineEvaluateMultiTask(FusedEngine& engine, const MultiTaskDataset& test,
                                            int64_t batch_size) {
  std::vector<Tensor> logits = EnginePredictAllTasks(engine, test, batch_size);
  std::vector<double> scores(logits.size());
  for (size_t t = 0; t < logits.size(); ++t) {
    scores[t] = ComputeMetric(logits[t], test.tasks[t]);
  }
  return scores;
}

QuantOutcome ScoreQuantizedEngine(MultiTaskModel& model, const MultiTaskDataset& train,
                                  const MultiTaskDataset& test,
                                  const std::vector<double>& f32_scores,
                                  const EvalOptions& options) {
  QuantOutcome out;
  FusedEngine engine(&model);

  std::vector<Tensor> calib;
  const int64_t n = train.size();
  int64_t start = 0;
  for (int b = 0; b < options.quant.calib_batches && start < n; ++b) {
    const int64_t count = std::min<int64_t>(options.quant.calib_batch_size, n - start);
    calib.push_back(train.InputBatch(start, count));
    start += count;
  }
  const quant::QuantRecipe recipe = engine.Calibrate(calib);
  out.quantized_steps = engine.Quantize(recipe);
  if (out.quantized_steps == 0) {
    return out;  // nothing quantizable; not a mixed-precision candidate
  }

  out.task_scores = EngineEvaluateMultiTask(engine, test, options.finetune.batch_size);
  out.max_drop = 0.0;
  for (size_t t = 0; t < out.task_scores.size() && t < f32_scores.size(); ++t) {
    out.max_drop = std::max(out.max_drop, f32_scores[t] - out.task_scores[t]);
  }
  out.within_budget = out.max_drop <= options.quant.drop_budget + 1e-9;

  const Shape input_shape = model.graph()
                                .node(model.graph().root())
                                .output_shape.WithBatch(options.latency.batch_size);
  const Tensor input = Tensor::Zeros(input_shape);
  out.latency_ms = MedianTimedMs([&] { engine.Run(input); }, options.latency.warmup_runs,
                                 options.latency.measured_runs);
  return out;
}

}  // namespace gmorph
