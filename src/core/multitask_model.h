// MultiTaskModel: a trainable/executable materialization of an AbsGraph
// (the paper's Model Generator output).
//
// Construction instantiates one module per graph node, initializing it from
// the node's stored weights when present (weight inheritance from the base
// candidate) and freshly otherwise (e.g. inserted rescale adapters). Forward
// walks the tree once — shared prefixes execute once — and returns one logits
// tensor per task; Backward accumulates gradients from all task heads.
#ifndef GMORPH_SRC_CORE_MULTITASK_MODEL_H_
#define GMORPH_SRC_CORE_MULTITASK_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/abs_graph.h"
#include "src/nn/module.h"

namespace gmorph {

class MultiTaskModel {
 public:
  MultiTaskModel(const AbsGraph& graph, Rng& rng);

  // Returns per-task logits, indexed by task id.
  std::vector<Tensor> Forward(const Tensor& input, bool training);

  // grad_per_task[t] is dL/d(logits of task t); tensors may be empty to skip
  // a task. Returns dL/d(input).
  Tensor Backward(const std::vector<Tensor>& grad_per_task);

  std::vector<Parameter*> Parameters();
  void ZeroGrad();

  const AbsGraph& graph() const { return graph_; }
  // The module materialized for graph node `id` (null for the root). Used by
  // the fused runtime engine to read live parameters (e.g. BN running stats).
  Module* module(int id) { return modules_[static_cast<size_t>(id)].get(); }
  int num_tasks() const { return graph_.num_tasks(); }
  int64_t TotalCapacity() const;

  // Copy of the graph with each node's weights replaced by the current
  // (trained) module parameters — the parser's job for trained models.
  AbsGraph ExportTrainedGraph() const;

 private:
  AbsGraph graph_;
  // modules_[i] corresponds to graph_.node(i); null for the root.
  std::vector<std::unique_ptr<Module>> modules_;
  // Per-node trace labels, precomputed so the Forward hot path never builds
  // strings (span names must outlive each call; the disabled-tracing path
  // touches nothing but the enable flag).
  std::vector<std::string> node_labels_;
  std::vector<int> topo_order_;
  std::vector<int> head_of_task_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_MULTITASK_MODEL_H_
