#include "src/core/latency.h"

#include <algorithm>
#include <vector>

#include "src/common/timer.h"

namespace gmorph {

double MeasureLatencyMs(MultiTaskModel& model, const LatencyOptions& options) {
  const Shape input_shape =
      model.graph().node(model.graph().root()).output_shape.WithBatch(options.batch_size);
  Tensor input = Tensor::Zeros(input_shape);
  for (int i = 0; i < options.warmup_runs; ++i) {
    model.Forward(input, /*training=*/false);
  }
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(options.measured_runs));
  for (int i = 0; i < options.measured_runs; ++i) {
    Timer timer;
    model.Forward(input, /*training=*/false);
    samples.push_back(timer.Millis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace gmorph
