#include "src/core/latency.h"

#include "src/obs/timing.h"

namespace gmorph {

double MeasureLatencyMs(MultiTaskModel& model, const LatencyOptions& options) {
  const Shape input_shape =
      model.graph().node(model.graph().root()).output_shape.WithBatch(options.batch_size);
  Tensor input = Tensor::Zeros(input_shape);
  return MedianTimedMs([&] { model.Forward(input, /*training=*/false); }, options.warmup_runs,
                       options.measured_runs);
}

}  // namespace gmorph
