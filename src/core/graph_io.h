// AbsGraph persistence: saves/loads a fused multi-task model (structure +
// trained weights) so search results can be deployed or reloaded later —
// the counterpart of the paper's PyTorch checkpoint output.
//
// Deserialization never constructs a partially-initialized graph: TryLoadGraph
// decodes into a plain node list, then runs the GraphVerifier over the result
// and only returns a graph when it is clean. Failures come back as structured
// diagnostics (io.open / io.magic / io.header / io.truncated / io.bounds for
// decode errors, graph.* for semantic ones), never as a throw or a half-built
// object.
#ifndef GMORPH_SRC_CORE_GRAPH_IO_H_
#define GMORPH_SRC_CORE_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "src/analysis/diagnostics.h"
#include "src/core/abs_graph.h"

namespace gmorph {

struct GraphLoadResult {
  std::optional<AbsGraph> graph;  // engaged only when diagnostics has no errors
  DiagnosticList diagnostics;
  bool ok() const { return graph.has_value(); }
};

GraphLoadResult TryLoadGraph(std::istream& in);
GraphLoadResult TryLoadGraph(const std::string& path);

bool SaveGraph(std::ostream& out, const AbsGraph& graph);
bool SaveGraph(const std::string& path, const AbsGraph& graph);

// Compatibility wrapper over TryLoadGraph; returns false on any diagnostic
// error and leaves `graph` untouched in that case.
bool LoadGraph(const std::string& path, AbsGraph& graph);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_GRAPH_IO_H_
