// AbsGraph persistence: saves/loads a fused multi-task model (structure +
// trained weights) so search results can be deployed or reloaded later —
// the counterpart of the paper's PyTorch checkpoint output.
#ifndef GMORPH_SRC_CORE_GRAPH_IO_H_
#define GMORPH_SRC_CORE_GRAPH_IO_H_

#include <string>

#include "src/core/abs_graph.h"

namespace gmorph {

// Binary round-trip; returns false on I/O failure / format mismatch.
bool SaveGraph(const std::string& path, const AbsGraph& graph);
bool LoadGraph(const std::string& path, AbsGraph& graph);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_GRAPH_IO_H_
