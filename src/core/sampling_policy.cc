#include "src/core/sampling_policy.h"

#include <algorithm>
#include <cmath>

namespace gmorph {

SimulatedAnnealingPolicy::SimulatedAnnealingPolicy(const AnnealingOptions& options)
    : options_(options) {}

double SimulatedAnnealingPolicy::EliteProbability(size_t num_elites) const {
  if (num_elites == 0) {
    return 0.0;
  }
  const double current_temp =
      options_.initial_temp * std::pow(options_.alpha, static_cast<double>(iteration_));
  const double exponent =
      (1.0 - last_drop_) / std::max(current_temp * options_.initial_temp, 1e-9);
  const double elite_frac = std::min(
      1.0, static_cast<double>(num_elites) / static_cast<double>(options_.max_elites));
  return (1.0 - std::exp(-exponent)) * std::sqrt(elite_frac);
}

const AbsGraph& SimulatedAnnealingPolicy::SampleBase(const AbsGraph& original,
                                                     const HistoryDatabase& history, Rng& rng) {
  const auto& elites = history.elites();
  const double p = EliteProbability(elites.size());
  if (!elites.empty() && rng.NextBool(p)) {
    return elites[static_cast<size_t>(rng.NextInt(static_cast<int>(elites.size())))].graph;
  }
  return original;
}

void SimulatedAnnealingPolicy::Observe(double accuracy_drop) {
  last_drop_ = std::clamp(accuracy_drop, 0.0, 1.0);
}

void SimulatedAnnealingPolicy::AdvanceIteration() { ++iteration_; }

const AbsGraph& RandomPolicy::SampleBase(const AbsGraph& original,
                                         const HistoryDatabase& /*history*/, Rng& /*rng*/) {
  return original;
}

void RandomPolicy::Observe(double /*accuracy_drop*/) {}

}  // namespace gmorph
