#include "src/core/abs_graph.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/common/check.h"

namespace gmorph {

bool CapacitySignature::MoreAggressiveThan(const CapacitySignature& other) const {
  if (per_task_total.size() != other.per_task_total.size()) {
    return false;
  }
  if (total > other.total || shared_total < other.shared_total) {
    return false;
  }
  for (size_t t = 0; t < per_task_total.size(); ++t) {
    if (per_task_total[t] > other.per_task_total[t] ||
        per_task_specific[t] > other.per_task_specific[t]) {
      return false;
    }
  }
  return true;
}

AbsGraph AbsGraph::WithRoot(const Shape& input_shape, int num_tasks) {
  AbsGraph g;
  g.num_tasks_ = num_tasks;
  AbsNode root;
  root.id = 0;
  root.task_id = -1;
  root.op_id = -1;
  root.input_shape = input_shape;
  root.output_shape = input_shape;
  root.capacity = 0;
  root.parent = -1;
  g.nodes_.push_back(std::move(root));
  return g;
}

AbsGraph AbsGraph::FromNodes(std::vector<AbsNode> nodes, int num_tasks) {
  AbsGraph g = FromNodesUnchecked(std::move(nodes), num_tasks);
  g.Validate();
  return g;
}

AbsGraph AbsGraph::FromNodesUnchecked(std::vector<AbsNode> nodes, int num_tasks) {
  AbsGraph g;
  g.nodes_ = std::move(nodes);
  g.num_tasks_ = num_tasks;
  return g;
}

int AbsGraph::HeadOfTask(int t) const {
  for (const AbsNode& n : nodes_) {
    if (n.IsHead() && n.task_id == t) {
      return n.id;
    }
  }
  return -1;
}

int AbsGraph::AddNode(int parent, int task_id, int op_id, const BlockSpec& spec,
                      std::vector<Tensor> weights) {
  GMORPH_CHECK(parent >= 0 && parent < size());
  AbsNode n;
  n.id = size();
  n.task_id = task_id;
  n.op_id = op_id;
  n.spec = spec;
  n.input_shape = nodes_[static_cast<size_t>(parent)].output_shape;
  n.output_shape = BlockOutShape(spec, n.input_shape);
  n.capacity = BlockCapacity(spec);
  n.parent = parent;
  n.weights = std::move(weights);
  nodes_[static_cast<size_t>(parent)].children.push_back(n.id);
  nodes_.push_back(std::move(n));
  return size() - 1;
}

void AbsGraph::Reparent(int child, int new_parent) {
  GMORPH_CHECK(child > 0 && child < size() && new_parent >= 0 && new_parent < size());
  GMORPH_CHECK(!IsAncestor(child, new_parent), "reparent would create a cycle");
  AbsNode& c = nodes_[static_cast<size_t>(child)];
  AbsNode& old_parent = nodes_[static_cast<size_t>(c.parent)];
  old_parent.children.erase(
      std::find(old_parent.children.begin(), old_parent.children.end(), child));
  c.parent = new_parent;
  nodes_[static_cast<size_t>(new_parent)].children.push_back(child);
}

int AbsGraph::GarbageCollect() {
  // Iteratively mark childless non-head internal nodes dead.
  std::vector<bool> dead(nodes_.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const AbsNode& n : nodes_) {
      if (n.IsRoot() || n.IsHead() || dead[static_cast<size_t>(n.id)]) {
        continue;
      }
      bool has_live_child = false;
      for (int c : n.children) {
        if (!dead[static_cast<size_t>(c)]) {
          has_live_child = true;
          break;
        }
      }
      if (!has_live_child) {
        dead[static_cast<size_t>(n.id)] = true;
        changed = true;
      }
    }
  }
  const int removed =
      static_cast<int>(std::count(dead.begin(), dead.end(), true));
  if (removed == 0) {
    return 0;
  }
  // Renumber survivors in original order (root stays 0).
  std::vector<int> remap(nodes_.size(), -1);
  std::vector<AbsNode> fresh;
  fresh.reserve(nodes_.size() - static_cast<size_t>(removed));
  for (const AbsNode& n : nodes_) {
    if (!dead[static_cast<size_t>(n.id)]) {
      remap[static_cast<size_t>(n.id)] = static_cast<int>(fresh.size());
      fresh.push_back(n);
    }
  }
  for (AbsNode& n : fresh) {
    n.id = remap[static_cast<size_t>(n.id)];
    if (n.parent >= 0) {
      n.parent = remap[static_cast<size_t>(n.parent)];
      GMORPH_CHECK(n.parent >= 0);
    }
    std::vector<int> kids;
    for (int c : n.children) {
      if (remap[static_cast<size_t>(c)] >= 0) {
        kids.push_back(remap[static_cast<size_t>(c)]);
      }
    }
    n.children = std::move(kids);
  }
  nodes_ = std::move(fresh);
  return removed;
}

std::vector<int> AbsGraph::TopologicalOrder() const {
  std::vector<int> order;
  order.reserve(nodes_.size());
  // Visited guard: on a well-formed tree it never triggers, but it keeps the
  // walk terminating on malformed input (e.g. a corrupted deserialized graph
  // on its way into Validate()).
  std::vector<bool> visited(nodes_.size(), false);
  std::deque<int> queue = {root()};
  visited[static_cast<size_t>(root())] = true;
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    order.push_back(id);
    for (int c : nodes_[static_cast<size_t>(id)].children) {
      if (!visited[static_cast<size_t>(c)]) {
        visited[static_cast<size_t>(c)] = true;
        queue.push_back(c);
      }
    }
  }
  return order;
}

bool AbsGraph::IsAncestor(int ancestor, int node) const {
  int cur = node;
  while (cur != -1) {
    if (cur == ancestor) {
      return true;
    }
    cur = nodes_[static_cast<size_t>(cur)].parent;
  }
  return false;
}

std::set<int> AbsGraph::TasksServed(int id) const {
  std::set<int> tasks;
  std::deque<int> queue = {id};
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    const AbsNode& n = nodes_[static_cast<size_t>(cur)];
    if (n.IsHead()) {
      tasks.insert(n.task_id);
    }
    for (int c : n.children) {
      queue.push_back(c);
    }
  }
  return tasks;
}

std::map<Shape, std::vector<int>> AbsGraph::ShapeDictionary() const {
  std::map<Shape, std::vector<int>> dict;
  for (const AbsNode& n : nodes_) {
    if (!n.IsRoot()) {
      dict[n.input_shape].push_back(n.id);
    }
  }
  return dict;
}

CapacitySignature AbsGraph::Signature() const {
  CapacitySignature sig;
  sig.per_task_total.assign(static_cast<size_t>(num_tasks_), 0);
  sig.per_task_specific.assign(static_cast<size_t>(num_tasks_), 0);
  for (const AbsNode& n : nodes_) {
    if (n.IsRoot()) {
      continue;
    }
    sig.total += n.capacity;
    const std::set<int> served = TasksServed(n.id);
    for (int t : served) {
      sig.per_task_total[static_cast<size_t>(t)] += n.capacity;
    }
    if (served.size() == 1) {
      sig.per_task_specific[static_cast<size_t>(*served.begin())] += n.capacity;
    } else if (served.size() > 1) {
      sig.shared_total += n.capacity;
    }
  }
  return sig;
}

int64_t AbsGraph::TotalCapacity() const {
  int64_t n = 0;
  for (const AbsNode& node : nodes_) {
    n += node.capacity;
  }
  return n;
}

int64_t AbsGraph::TotalFlops() const {
  int64_t f = 0;
  for (const AbsNode& n : nodes_) {
    if (!n.IsRoot()) {
      f += BlockFlops(n.spec, n.input_shape);
    }
  }
  return f;
}

void AbsGraph::Validate() const {
  GMORPH_CHECK(!nodes_.empty() && nodes_[0].IsRoot());
  std::vector<int> seen_heads(static_cast<size_t>(num_tasks_), 0);
  int reached = 0;
  for (int id : TopologicalOrder()) {
    ++reached;
    const AbsNode& n = nodes_[static_cast<size_t>(id)];
    GMORPH_CHECK(n.id == id);
    if (n.IsRoot()) {
      continue;
    }
    const AbsNode& p = nodes_[static_cast<size_t>(n.parent)];
    GMORPH_CHECK(p.output_shape == n.input_shape,
                     "edge shape mismatch at node " << id << ": parent outputs "
                                                    << p.output_shape.ToString() << ", node "
                                                    << n.spec.ToString() << " expects "
                                                    << n.input_shape.ToString());
    GMORPH_CHECK(std::find(p.children.begin(), p.children.end(), id) != p.children.end());
    GMORPH_CHECK(BlockOutShape(n.spec, n.input_shape) == n.output_shape,
                     "stale output shape at node " << id);
    if (n.IsHead()) {
      GMORPH_CHECK(n.task_id >= 0 && n.task_id < num_tasks_);
      ++seen_heads[static_cast<size_t>(n.task_id)];
    } else {
      GMORPH_CHECK(!n.children.empty(), "dangling non-head node " << id);
    }
  }
  GMORPH_CHECK(reached == size(), "unreachable nodes present");
  for (int t = 0; t < num_tasks_; ++t) {
    GMORPH_CHECK(seen_heads[static_cast<size_t>(t)] == 1,
                     "task " << t << " has " << seen_heads[static_cast<size_t>(t)] << " heads");
  }
}

std::string AbsGraph::ToString() const {
  std::ostringstream os;
  // DFS with indentation.
  struct Frame {
    int id;
    int depth;
  };
  std::vector<Frame> stack = {{root(), 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const AbsNode& n = nodes_[static_cast<size_t>(f.id)];
    for (int i = 0; i < f.depth; ++i) {
      os << "  ";
    }
    if (n.IsRoot()) {
      os << "input " << n.output_shape.ToString() << "\n";
    } else {
      os << "#" << n.id << " t" << n.task_id << "." << n.op_id << " " << n.spec.ToString()
         << " " << n.input_shape.ToString() << "->" << n.output_shape.ToString() << "\n";
    }
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return os.str();
}

std::string AbsGraph::Fingerprint() const {
  std::ostringstream os;
  for (int id : TopologicalOrder()) {
    const AbsNode& n = nodes_[static_cast<size_t>(id)];
    os << n.parent << ":" << n.task_id << ":" << n.spec.ToString() << ":"
       << n.input_shape.ToString() << ";";
  }
  return os.str();
}

}  // namespace gmorph
