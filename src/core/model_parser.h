// Model Parser (paper §4.2): converts user-provided task-specific models into
// the abstract-graph IR, carrying per-block trained weights on the nodes.
//
// The reverse direction — a trained multi-task model back to a graph — is
// MultiTaskModel::ExportTrainedGraph(), since the executable model retains its
// graph.
#ifndef GMORPH_SRC_CORE_MODEL_PARSER_H_
#define GMORPH_SRC_CORE_MODEL_PARSER_H_

#include <vector>

#include "src/core/abs_graph.h"
#include "src/models/task_model.h"

namespace gmorph {

// Parses pre-trained task models (all consuming the same input shape) into one
// abstract graph: a root placeholder plus one chain of blocks per task.
AbsGraph ParseTaskModels(const std::vector<const TaskModel*>& models);

// Spec-only variant: builds the graph without weights (used for search-space
// analysis and tests).
AbsGraph ParseModelSpecs(const std::vector<ModelSpec>& specs);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_MODEL_PARSER_H_
