// Graph mutation (paper §4.3.2-4.3.3).
//
// All five paper mutation operations reduce to one primitive — "guest reuses
// host's input" — applied at different relative positions: re-parent the
// guest under the host's parent, inserting a rescale adapter when the shapes
// differ, then garbage-collect the guest's dead former ancestors. In-branch
// mutation (panel 1) is the case where the host is an ancestor of the guest;
// the four cross-branch panels are host/guest order combinations across
// branches.
#ifndef GMORPH_SRC_CORE_MUTATION_H_
#define GMORPH_SRC_CORE_MUTATION_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/abs_graph.h"
#include "src/core/shareable.h"

namespace gmorph {

enum class MutationKind { kInBranch, kCrossBranch };

std::string MutationKindName(MutationKind kind);

// Classifies a (valid) pair before it is applied.
MutationKind ClassifyMutation(const AbsGraph& g, const SharePair& pair);

// Applies one mutation in place. Returns false (graph untouched) if the pair
// is invalid for this graph. The graph is validated after the mutation.
bool ApplyMutation(AbsGraph& g, const SharePair& pair);

// Applies a sequence of pairs to a copy of `base` (a graph mutation pass,
// Fig. 6). Pairs that became invalid after earlier mutations are skipped.
// Returns std::nullopt if no pair could be applied.
std::optional<AbsGraph> MutatePass(const AbsGraph& base, const std::vector<SharePair>& pairs);

// Samples and applies up to `num_mutations` random valid pairs under the
// given similarity mode, re-discovering pairs after each application (ids
// shift when garbage collection renumbers nodes). Needs common/rng.
std::optional<AbsGraph> SampleMutatePass(const AbsGraph& base, int num_mutations,
                                         ShapeSimilarity mode, Rng& rng);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_MUTATION_H_
