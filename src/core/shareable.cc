#include "src/core/shareable.h"

namespace gmorph {

bool ShapesSimilar(const Shape& a, const Shape& b) {
  if (a.Rank() != b.Rank()) {
    return false;
  }
  for (int i = 0; i < a.Rank(); ++i) {
    if (a[i] == b[i]) {
      return true;
    }
  }
  return false;
}

bool RescaleFeasible(const Shape& from, const Shape& to) {
  if (from == to) {
    return true;
  }
  return from.Rank() == to.Rank() && (from.Rank() == 2 || from.Rank() == 3);
}

bool PairValid(const AbsGraph& g, const SharePair& pair, ShapeSimilarity mode) {
  if (pair.host <= 0 || pair.guest <= 0 || pair.host >= g.size() || pair.guest >= g.size() ||
      pair.host == pair.guest) {
    return false;
  }
  const AbsNode& host = g.node(pair.host);
  const AbsNode& guest = g.node(pair.guest);
  const int p = host.parent;
  // Re-parenting the guest under p must not create a cycle.
  if (g.IsAncestor(pair.guest, p)) {
    return false;
  }
  // No-op: the guest already consumes exactly these features.
  if (guest.parent == p && guest.input_shape == host.input_shape) {
    return false;
  }
  if (!RescaleFeasible(host.input_shape, guest.input_shape)) {
    return false;
  }
  switch (mode) {
    case ShapeSimilarity::kSimilar:
      return ShapesSimilar(host.input_shape, guest.input_shape);
    case ShapeSimilarity::kDissimilar:
      return host.input_shape.Rank() == guest.input_shape.Rank() &&
             !ShapesSimilar(host.input_shape, guest.input_shape);
    case ShapeSimilarity::kAny:
      return true;
  }
  return false;
}

std::vector<SharePair> FindShareablePairs(const AbsGraph& g, ShapeSimilarity mode) {
  std::vector<SharePair> pairs;
  for (int host = 1; host < g.size(); ++host) {
    for (int guest = 1; guest < g.size(); ++guest) {
      const SharePair pair{host, guest};
      if (PairValid(g, pair, mode)) {
        pairs.push_back(pair);
      }
    }
  }
  return pairs;
}

}  // namespace gmorph
