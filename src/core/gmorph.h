// The GMorph driver: Algorithm 1 (graph mutation optimization).
//
// Inputs: pre-trained task models sharing one input stream, representative
// (train) inputs, a labeled test split, and an optimization config. Output:
// the fastest trained multi-task graph meeting the accuracy-drop target,
// plus a per-iteration trace used by the evaluation benches.
#ifndef GMORPH_SRC_CORE_GMORPH_H_
#define GMORPH_SRC_CORE_GMORPH_H_

#include <memory>
#include <vector>

#include "src/core/abs_graph.h"
#include "src/core/finetune.h"
#include "src/core/history.h"
#include "src/core/latency.h"
#include "src/core/sampling_policy.h"
#include "src/data/dataset.h"
#include "src/models/task_model.h"

namespace gmorph {

enum class PolicyKind { kSimulatedAnnealing, kRandom };
enum class OptimizeMetric { kLatency, kFlops };

struct GMorphOptions {
  // Accuracy-drop threshold as a fraction (0.01 = the paper's "< 1%").
  double accuracy_drop_threshold = 0.0;
  int iterations = 30;
  // Mutations applied per graph mutation pass (uniform in [1, max]).
  int max_mutations_per_pass = 2;
  PolicyKind policy = PolicyKind::kSimulatedAnnealing;
  AnnealingOptions annealing;
  // Predictive filtering toggles (paper's "w P" and "w P+R" variants).
  bool predictive_termination = false;
  bool rule_based_filtering = false;
  OptimizeMetric metric = OptimizeMetric::kLatency;
  FinetuneOptions finetune;
  LatencyOptions latency;
  // Parallel search (paper §7): sample `parallel_candidates` mutations per
  // round and fine-tune them concurrently on `num_threads` workers. The
  // defaults reproduce the paper's sequential prototype. In parallel rounds
  // the sampling policy sees observations only at round boundaries (standard
  // synchronous parallel simulated annealing).
  int parallel_candidates = 1;
  int num_threads = 1;
  uint64_t seed = 42;
  bool verbose = false;
};

struct IterationRecord {
  int iteration = 0;
  double candidate_latency_ms = 0.0;
  int64_t candidate_flops = 0;
  double accuracy_drop = 0.0;
  bool met_target = false;
  bool filtered_by_rule = false;
  bool terminated_early = false;
  bool duplicate = false;
  // Candidate failed the GraphVerifier static-analysis pass (never fine-tuned).
  bool rejected_by_verifier = false;
  double finetune_seconds = 0.0;
  double elapsed_seconds = 0.0;      // cumulative search time at iteration end
  double best_latency_ms = 0.0;      // best satisfying latency so far
  int64_t best_flops = 0;            // FLOPs of the best satisfying model so far
};

struct GMorphResult {
  AbsGraph best_graph;  // trained weights on nodes; original graph if no win
  bool found_improvement = false;
  double original_latency_ms = 0.0;
  double best_latency_ms = 0.0;
  int64_t original_flops = 0;
  int64_t best_flops = 0;
  double speedup = 1.0;
  std::vector<double> teacher_scores;
  std::vector<double> best_task_scores;
  std::vector<IterationRecord> trace;
  double search_seconds = 0.0;
  int candidates_finetuned = 0;
  int candidates_filtered = 0;
  // Candidates rejected by the GraphVerifier before fine-tuning. Nonzero
  // means the mutation engine emitted an ill-formed graph (a bug), but the
  // search degrades gracefully instead of crashing mid-run.
  int candidates_rejected = 0;
};

class GMorph {
 public:
  // `teachers` must outlive the GMorph object. `train` provides the
  // representative inputs for distillation; `test` the labeled split for
  // scoring.
  GMorph(std::vector<TaskModel*> teachers, const MultiTaskDataset* train,
         const MultiTaskDataset* test, const GMorphOptions& options);

  GMorphResult Run();

  // The parsed original abstract graph (before any mutation).
  const AbsGraph& original_graph() const { return original_graph_; }

 private:
  std::vector<TaskModel*> teachers_;
  const MultiTaskDataset* train_;
  const MultiTaskDataset* test_;
  GMorphOptions options_;
  AbsGraph original_graph_;
};

// Convenience: builds the policy named by `kind`.
std::unique_ptr<SamplingPolicy> MakePolicy(PolicyKind kind, const AnnealingOptions& annealing);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_GMORPH_H_
