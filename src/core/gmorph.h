// The GMorph driver: Algorithm 1 (graph mutation optimization), structured as
// a staged, resumable candidate-evaluation pipeline.
//
// Inputs: pre-trained task models sharing one input stream, representative
// (train) inputs, a labeled test split, and an optimization config. Output:
// the fastest trained multi-task graph meeting the accuracy-drop target,
// plus a per-iteration trace used by the evaluation benches.
//
// Each search round runs three phases over `parallel_candidates` slots
// (width 1 degenerates to the paper's sequential Algorithm 1):
//   1. serial:   policy sampling + mutation + dedup, then
//                CandidateEvaluator::Screen (cache probe, verifier gate,
//                rule filter, latency profile);
//   2. parallel: CandidateEvaluator::Finetune on `num_threads` workers;
//   3. serial:   CandidateEvaluator::Finish + elite/best/policy integration.
// Every candidate draws from its own RNG stream derived from
// (seed, iteration, slot), so traces are independent of the thread count and
// a resumed search re-derives the exact streams from the iteration cursor.
#ifndef GMORPH_SRC_CORE_GMORPH_H_
#define GMORPH_SRC_CORE_GMORPH_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/abs_graph.h"
#include "src/core/candidate_eval.h"
#include "src/core/finetune.h"
#include "src/core/history.h"
#include "src/core/latency.h"
#include "src/core/sampling_policy.h"
#include "src/data/dataset.h"
#include "src/models/task_model.h"

namespace gmorph {

struct SearchCheckpoint;

enum class PolicyKind { kSimulatedAnnealing, kRandom };
enum class OptimizeMetric { kLatency, kFlops };

struct GMorphOptions {
  // Accuracy-drop threshold as a fraction (0.01 = the paper's "< 1%").
  double accuracy_drop_threshold = 0.0;
  int iterations = 30;
  // Mutations applied per graph mutation pass (uniform in [1, max]).
  int max_mutations_per_pass = 2;
  PolicyKind policy = PolicyKind::kSimulatedAnnealing;
  AnnealingOptions annealing;
  // Predictive filtering toggles (paper's "w P" and "w P+R" variants).
  bool predictive_termination = false;
  bool rule_based_filtering = false;
  OptimizeMetric metric = OptimizeMetric::kLatency;
  FinetuneOptions finetune;
  LatencyOptions latency;
  // Int8 scoring of met-target candidates (mixed-precision winners). The
  // scorer lives in the runtime layer; the driver that owns both layers
  // injects it (gmorph_cli sets ScoreQuantizedEngine when `quantize_search`
  // is on). `quant.enabled` without a scorer is a no-op.
  QuantEvalOptions quant;
  QuantScoreFn quant_score;
  // Parallel search (paper §7): sample `parallel_candidates` mutations per
  // round and fine-tune them concurrently on `num_threads` workers. The
  // defaults reproduce the paper's sequential prototype. In parallel rounds
  // the sampling policy sees observations only at round boundaries (standard
  // synchronous parallel simulated annealing).
  int parallel_candidates = 1;
  int num_threads = 1;
  uint64_t seed = 42;
  bool verbose = false;
  // Content-addressed evaluation cache (eval_cache.h): reuse verify/fine-tune
  // outcomes across runs keyed by graph fingerprint + eval-options hash.
  bool use_eval_cache = false;
  // Cache directory; empty resolves $GMORPH_CACHE_DIR then "gmorph_bench_cache".
  std::string cache_dir;
  // When non-empty, a resumable checkpoint is written here every
  // `checkpoint_every` iterations and at search end (atomic tmp+rename).
  std::string checkpoint_path;
  int checkpoint_every = 0;  // 0: only at search end
};

// Hash of the options that determine search semantics (everything except
// budget/execution knobs: iterations, num_threads, verbose, cache and
// checkpoint settings). A checkpoint only resumes under a matching hash.
uint64_t SearchOptionsHash(const GMorphOptions& options);

struct IterationRecord {
  int iteration = 0;
  double candidate_latency_ms = 0.0;
  int64_t candidate_flops = 0;
  double accuracy_drop = 0.0;
  bool met_target = false;
  bool filtered_by_rule = false;
  bool terminated_early = false;
  bool duplicate = false;
  // Candidate failed the GraphVerifier static-analysis pass (never fine-tuned).
  bool rejected_by_verifier = false;
  // Outcome reused from the evaluation cache (no fine-tuning paid this run).
  bool cache_hit = false;
  double finetune_seconds = 0.0;
  double elapsed_seconds = 0.0;      // cumulative search time at iteration end
  double best_latency_ms = 0.0;      // best satisfying latency so far
  int64_t best_flops = 0;            // FLOPs of the best satisfying model so far
  StageSeconds stages;               // per-stage wall time of this iteration
};

struct GMorphResult {
  AbsGraph best_graph;  // trained weights on nodes; original graph if no win
  bool found_improvement = false;
  double original_latency_ms = 0.0;
  double best_latency_ms = 0.0;
  int64_t original_flops = 0;
  int64_t best_flops = 0;
  double speedup = 1.0;
  std::vector<double> teacher_scores;
  std::vector<double> best_task_scores;
  // Int8 plan score of the best graph (engaged when quant scoring ran for
  // it). Not checkpointed: a resumed search rebuilds it when the best
  // candidate is re-integrated, and loses it otherwise.
  std::optional<QuantOutcome> best_quant;
  std::vector<IterationRecord> trace;
  double search_seconds = 0.0;
  int candidates_finetuned = 0;
  int candidates_filtered = 0;
  // Candidates rejected by the GraphVerifier before fine-tuning. Nonzero
  // means the mutation engine emitted an ill-formed graph (a bug), but the
  // search degrades gracefully instead of crashing mid-run.
  int candidates_rejected = 0;
  // Candidates whose outcome was served by the evaluation cache.
  int cache_hits = 0;
  // Whole-search wall-time breakdown (sample/verify/profile/finetune/score).
  StageSeconds stage_seconds;
  // Checkpoints written during this run (periodic + final).
  int checkpoints_written = 0;
};

class GMorph {
 public:
  // `teachers` must outlive the GMorph object. `train` provides the
  // representative inputs for distillation; `test` the labeled split for
  // scoring.
  GMorph(std::vector<TaskModel*> teachers, const MultiTaskDataset* train,
         const MultiTaskDataset* test, const GMorphOptions& options);

  GMorphResult Run();

  // Continues an interrupted search from `checkpoint` (see
  // search_checkpoint.h). The options must hash-match the checkpoint; the
  // continuation reproduces the uninterrupted run's deterministic trace
  // fields exactly (wall-clock fields necessarily differ).
  GMorphResult Resume(const SearchCheckpoint& checkpoint);

  // The parsed original abstract graph (before any mutation).
  const AbsGraph& original_graph() const { return original_graph_; }

 private:
  GMorphResult RunInternal(const SearchCheckpoint* resume);

  std::vector<TaskModel*> teachers_;
  const MultiTaskDataset* train_;
  const MultiTaskDataset* test_;
  GMorphOptions options_;
  AbsGraph original_graph_;
};

// Convenience: builds the policy named by `kind`.
std::unique_ptr<SamplingPolicy> MakePolicy(PolicyKind kind, const AnnealingOptions& annealing);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_GMORPH_H_
