// Search checkpoint/resume for the GMorph driver.
//
// A SearchCheckpoint freezes everything the staged search pipeline needs to
// continue as if it had never stopped: the iteration cursor, the accumulated
// trace and counters, the history database (evaluated fingerprints, elites
// with trained weights, non-promising capacity signatures), the sampling
// policy state, and the baseline measurements. RNG state is NOT serialized —
// every candidate draws from a stream derived from (seed, iteration, slot)
// (Rng::MixSeed), so the cursor alone fixes all future randomness and the
// resumed run reproduces the uninterrupted run's deterministic trace fields
// bit-for-bit.
//
// On-disk format: the text line "gmorph-checkpoint v1" followed by a binary
// payload. Embedded graphs reuse the graph_io format (each graph record reads
// back exactly its own bytes and re-runs the GraphVerifier on load). Saves go
// through a temp file + rename so an interrupted write never clobbers the
// previous good checkpoint. Loads mirror graph_io's discipline: a
// bounds-checked reader that reports ckpt.* diagnostics (ckpt.open,
// ckpt.magic, ckpt.version, ckpt.truncated, ckpt.bounds) instead of crashing
// or returning a half-built state.
#ifndef GMORPH_SRC_CORE_SEARCH_CHECKPOINT_H_
#define GMORPH_SRC_CORE_SEARCH_CHECKPOINT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/gmorph.h"

namespace gmorph {

struct SearchCheckpoint {
  // Guards against resuming under different search semantics; must equal
  // SearchOptionsHash(options) of the resuming run.
  uint64_t options_hash = 0;
  // First iteration the resumed run will execute (0-based).
  int next_iteration = 0;
  // Search wall time consumed before this checkpoint (resumed runs report
  // cumulative search_seconds on top of it).
  double elapsed_seconds = 0.0;

  // Baseline measurements (not re-measured on resume).
  double original_latency_ms = 0.0;
  int64_t original_flops = 0;
  std::vector<double> teacher_scores;

  // Best-so-far state. `best_graph` is the original graph until a candidate
  // meets the target.
  bool found_improvement = false;
  AbsGraph best_graph;
  double best_latency_ms = 0.0;
  int64_t best_flops = 0;
  double best_cost = 0.0;  // under the configured metric
  std::vector<double> best_task_scores;

  // Accumulated trace and counters.
  std::vector<IterationRecord> trace;
  int candidates_finetuned = 0;
  int candidates_filtered = 0;
  int candidates_rejected = 0;
  int cache_hits = 0;
  StageSeconds stage_seconds;

  // History database contents.
  std::vector<std::string> fingerprints;
  struct EliteRecord {
    AbsGraph graph;  // carries trained weights
    double cost = 0.0;
    double accuracy_drop = 0.0;
  };
  std::vector<EliteRecord> elites;
  std::vector<CapacitySignature> non_promising;

  PolicyState policy;
};

struct CheckpointLoadResult {
  std::optional<SearchCheckpoint> checkpoint;  // engaged only when clean
  DiagnosticList diagnostics;
  bool ok() const { return checkpoint.has_value(); }
};

// Atomic save (temp file + rename). Returns false on any I/O failure, leaving
// a previous checkpoint at `path` untouched.
bool SaveCheckpoint(const std::string& path, const SearchCheckpoint& checkpoint);

CheckpointLoadResult TryLoadCheckpoint(const std::string& path);

// Lints a checkpoint file for `gmorph_cli --verify`: decodes it fully
// (surfacing ckpt.* and embedded io.*/graph.* diagnostics) and appends a
// ckpt.summary note with the cursor and history sizes when clean.
DiagnosticList VerifyCheckpointFile(const std::string& path);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_SEARCH_CHECKPOINT_H_
