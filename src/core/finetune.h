// Accuracy estimator: distillation-based fine-tuning (paper §5.2) with
// early stopping and predictive early termination (paper §5.1).
//
// The student multi-task model is trained to reproduce the *teachers'* output
// features under a weighted L1 objective — task labels are never consumed by
// training, matching the paper's label-free setup. Labels are used only to
// measure the test score every `eval_interval` epochs; fine-tuning stops as
// soon as every task's drop is within the target, or — when predictive
// termination is enabled — as soon as the extrapolated learning curve says
// the target is unreachable.
#ifndef GMORPH_SRC_CORE_FINETUNE_H_
#define GMORPH_SRC_CORE_FINETUNE_H_

#include <vector>

#include "src/core/multitask_model.h"
#include "src/data/dataset.h"

namespace gmorph {

struct FinetuneOptions {
  int max_epochs = 8;
  int64_t batch_size = 32;
  float lr = 1e-3f;
  int eval_interval = 2;  // the paper's delta: epochs between test evaluations
  bool early_stop_on_target = true;
  bool predictive_termination = false;
  // Allowed per-task drop below the teacher score, as a fraction (0.01 = 1%).
  double target_drop = 0.0;
  // Per-task weights for the distillation loss; empty = uniform.
  std::vector<float> task_loss_weights;
};

struct FinetuneResult {
  bool met_target = false;
  bool terminated_early = false;  // by predictive termination
  double max_drop = 0.0;          // worst task drop at the end (fraction)
  std::vector<double> task_scores;
  int epochs_run = 0;
  double seconds = 0.0;
};

// Per-task logits of the student over a whole split.
std::vector<Tensor> PredictAllTasks(MultiTaskModel& model, const MultiTaskDataset& data,
                                    int64_t batch_size = 64);

// Per-task scores of the student on `test` under each task's metric.
std::vector<double> EvaluateMultiTask(MultiTaskModel& model, const MultiTaskDataset& test,
                                      int64_t batch_size = 64);

// Fine-tunes `student` in place.
//   teacher_train_logits[t]: teacher outputs on the representative inputs
//                            (the distillation targets), shape (N, classes_t).
//   teacher_test_scores[t]:  teacher score on the test split (drop baseline).
FinetuneResult DistillFinetune(MultiTaskModel& student,
                               const std::vector<Tensor>& teacher_train_logits,
                               const MultiTaskDataset& train, const MultiTaskDataset& test,
                               const std::vector<double>& teacher_test_scores,
                               const FinetuneOptions& options);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_FINETUNE_H_
