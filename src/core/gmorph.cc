#include "src/core/gmorph.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/parallel_for.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/timing.h"
#include "src/obs/trace.h"
#include "src/core/eval_cache.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"
#include "src/core/search_checkpoint.h"
#include "src/data/teacher.h"

namespace gmorph {
namespace {

// The evaluation-relevant option subset (threshold/termination folded into the
// finetune block, matching what DistillFinetune actually sees).
EvalOptions MakeEvalOptions(const GMorphOptions& options) {
  EvalOptions eval;
  eval.finetune = options.finetune;
  eval.finetune.target_drop = options.accuracy_drop_threshold;
  eval.finetune.predictive_termination = options.predictive_termination;
  eval.latency = options.latency;
  eval.rule_based_filtering = options.rule_based_filtering;
  eval.quant = options.quant;
  eval.quant_score = options.quant_score;
  return eval;
}

}  // namespace

std::unique_ptr<SamplingPolicy> MakePolicy(PolicyKind kind, const AnnealingOptions& annealing) {
  switch (kind) {
    case PolicyKind::kSimulatedAnnealing:
      return std::make_unique<SimulatedAnnealingPolicy>(annealing);
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
  }
  GMORPH_CHECK(false, "unknown policy");
  return nullptr;
}

uint64_t SearchOptionsHash(const GMorphOptions& o) {
  // Everything that determines search *semantics*. Budget/execution knobs
  // (iterations, num_threads, verbose, cache + checkpoint settings) are
  // deliberately excluded: resuming a checkpoint under a larger iteration
  // budget or a different thread count is the point of having checkpoints.
  std::ostringstream os;
  os.precision(17);
  os << "searchopts v1|" << o.accuracy_drop_threshold << "|" << o.max_mutations_per_pass << "|"
     << static_cast<int>(o.policy) << "|" << o.annealing.alpha << "|" << o.annealing.initial_temp
     << "|" << o.annealing.max_elites << "|" << o.predictive_termination << "|"
     << o.rule_based_filtering << "|" << static_cast<int>(o.metric) << "|"
     << o.parallel_candidates << "|" << o.seed << "|" << HashEvalOptions(MakeEvalOptions(o));
  return Fnv1aHash(os.str());
}

GMorph::GMorph(std::vector<TaskModel*> teachers, const MultiTaskDataset* train,
               const MultiTaskDataset* test, const GMorphOptions& options)
    : teachers_(std::move(teachers)), train_(train), test_(test), options_(options) {
  GMORPH_CHECK(!teachers_.empty() && train_ != nullptr && test_ != nullptr);
  GMORPH_CHECK(train_->tasks.size() == teachers_.size());
  original_graph_ = ParseTaskModels(
      std::vector<const TaskModel*>(teachers_.begin(), teachers_.end()));
}

GMorphResult GMorph::Run() { return RunInternal(nullptr); }

GMorphResult GMorph::Resume(const SearchCheckpoint& checkpoint) {
  GMORPH_CHECK(checkpoint.options_hash == SearchOptionsHash(options_),
               "checkpoint was written under different search options");
  return RunInternal(&checkpoint);
}

GMorphResult GMorph::RunInternal(const SearchCheckpoint* resume) {
  obs::TraceSpan run_span("search/run", obs::TraceCat::kSearch);
  obs::Counter& m_finetuned = obs::GetCounter("search.candidates_finetuned");
  obs::Counter& m_filtered = obs::GetCounter("search.candidates_filtered");
  obs::Counter& m_rejected = obs::GetCounter("search.candidates_rejected");
  obs::Counter& m_duplicates = obs::GetCounter("search.candidates_duplicate");
  obs::Counter& m_cache_hits = obs::GetCounter("search.cache_hits");
  obs::Counter& m_elites = obs::GetCounter("search.elites_admitted");
  obs::Histogram& m_candidate_latency = obs::GetHistogram("search.candidate_latency_ms");
  obs::Gauge& m_best_latency = obs::GetGauge("search.best_latency_ms");
  Timer search_timer;
  GMorphResult result;

  // Distillation targets are recomputed (deterministic teacher forward passes;
  // the logits are too large to belong in a checkpoint).
  std::vector<Tensor> teacher_train_logits;
  teacher_train_logits.reserve(teachers_.size());
  for (TaskModel* teacher : teachers_) {
    teacher_train_logits.push_back(PredictAll(*teacher, *train_));
  }

  auto candidate_cost = [&](double latency_ms, int64_t flops) {
    return options_.metric == OptimizeMetric::kLatency ? latency_ms
                                                       : static_cast<double>(flops);
  };

  HistoryDatabase history(options_.annealing.max_elites);
  std::unique_ptr<SamplingPolicy> policy = MakePolicy(options_.policy, options_.annealing);
  double best_cost = 0.0;
  double elapsed_offset = 0.0;
  int iter = 0;

  if (resume == nullptr) {
    for (size_t t = 0; t < teachers_.size(); ++t) {
      result.teacher_scores.push_back(EvaluateTeacher(*teachers_[t], *test_, t));
    }
    // Baseline: the original multi-DNNs rewritten as one input-sharing graph.
    // The baseline model draws from its own derived stream so candidate
    // streams are untouched by it.
    Rng baseline_rng(Rng::MixSeed(options_.seed, 0, 0));
    MultiTaskModel original_model(original_graph_, baseline_rng);
    result.original_latency_ms = MeasureLatencyMs(original_model, options_.latency);
    result.original_flops = original_graph_.TotalFlops();
    result.best_graph = original_graph_;
    result.best_latency_ms = result.original_latency_ms;
    result.best_flops = result.original_flops;
    result.best_task_scores = result.teacher_scores;
    best_cost = candidate_cost(result.best_latency_ms, result.best_flops);
    history.MarkEvaluated(original_graph_);
  } else {
    // Restore: baseline measurements, best-so-far, trace, counters, the
    // history database, and the policy state come from the checkpoint; all
    // future randomness re-derives from (seed, iteration, slot).
    result.teacher_scores = resume->teacher_scores;
    result.original_latency_ms = resume->original_latency_ms;
    result.original_flops = resume->original_flops;
    result.found_improvement = resume->found_improvement;
    result.best_graph = resume->best_graph;
    result.best_latency_ms = resume->best_latency_ms;
    result.best_flops = resume->best_flops;
    result.best_task_scores = resume->best_task_scores;
    result.trace = resume->trace;
    result.candidates_finetuned = resume->candidates_finetuned;
    result.candidates_filtered = resume->candidates_filtered;
    result.candidates_rejected = resume->candidates_rejected;
    result.cache_hits = resume->cache_hits;
    result.stage_seconds = resume->stage_seconds;
    best_cost = resume->best_cost;
    elapsed_offset = resume->elapsed_seconds;
    iter = resume->next_iteration;
    for (const std::string& fp : resume->fingerprints) {
      history.MarkEvaluatedFingerprint(fp);
    }
    // Insertion in stored (sorted) order keeps the stable elite ranking.
    for (const SearchCheckpoint::EliteRecord& e : resume->elites) {
      history.AddElite(e.graph, e.cost, e.accuracy_drop);
    }
    for (const CapacitySignature& sig : resume->non_promising) {
      history.AddNonPromising(sig);
    }
    policy->RestoreState(resume->policy);
  }

  const EvalOptions eval_options = MakeEvalOptions(options_);
  std::unique_ptr<EvaluationCache> cache;
  if (options_.use_eval_cache) {
    cache = std::make_unique<EvaluationCache>(EvaluationCache::ResolveDir(options_.cache_dir),
                                              HashEvalOptions(eval_options));
    if (options_.verbose && !cache->load_diagnostics().empty()) {
      GMORPH_LOG_INFO << "evaluation cache load reported:\n"
                      << cache->load_diagnostics().ToString();
    }
  }
  CandidateEvaluator evaluator(&teacher_train_logits, train_, test_, &result.teacher_scores,
                               eval_options, cache.get());

  auto build_checkpoint = [&]() {
    SearchCheckpoint ckpt;
    ckpt.options_hash = SearchOptionsHash(options_);
    ckpt.next_iteration = iter;
    ckpt.elapsed_seconds = elapsed_offset + search_timer.Seconds();
    ckpt.original_latency_ms = result.original_latency_ms;
    ckpt.original_flops = result.original_flops;
    ckpt.teacher_scores = result.teacher_scores;
    ckpt.found_improvement = result.found_improvement;
    ckpt.best_graph = result.best_graph;
    ckpt.best_latency_ms = result.best_latency_ms;
    ckpt.best_flops = result.best_flops;
    ckpt.best_cost = best_cost;
    ckpt.best_task_scores = result.best_task_scores;
    ckpt.trace = result.trace;
    ckpt.candidates_finetuned = result.candidates_finetuned;
    ckpt.candidates_filtered = result.candidates_filtered;
    ckpt.candidates_rejected = result.candidates_rejected;
    ckpt.cache_hits = result.cache_hits;
    ckpt.stage_seconds = result.stage_seconds;
    ckpt.fingerprints.assign(history.fingerprints().begin(), history.fingerprints().end());
    for (const EliteEntry& e : history.elites()) {
      ckpt.elites.push_back({e.graph, e.cost, e.accuracy_drop});
    }
    ckpt.non_promising = history.non_promising();
    ckpt.policy = policy->ExportState();
    return ckpt;
  };
  auto write_checkpoint = [&]() {
    if (SaveCheckpoint(options_.checkpoint_path, build_checkpoint())) {
      ++result.checkpoints_written;
    } else {
      GMORPH_LOG_INFO << "failed to write checkpoint to " << options_.checkpoint_path;
    }
  };

  // One slot per iteration of the current round.
  struct Slot {
    IterationRecord record;
    std::optional<PendingEval> pending;
  };
  const int round_width = std::max(1, options_.parallel_candidates);
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1 && round_width > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads, "search");
  }
  int last_checkpoint_iter = iter;

  while (iter < options_.iterations) {
    const int round = std::min(round_width, options_.iterations - iter);
    std::vector<Slot> slots(static_cast<size_t>(round));

    // Phase 1 (serial): sample, mutate, dedup, screen. With round_width == 1
    // this degenerates to the paper's sequential Algorithm 1. Each candidate
    // owns the RNG stream (seed, iteration, slot): results are independent of
    // thread interleaving, and a resumed run re-derives identical streams
    // from the cursor alone.
    for (size_t slot_idx = 0; slot_idx < slots.size(); ++slot_idx) {
      Slot& s = slots[slot_idx];
      s.record.iteration = ++iter;
      obs::TraceSpan iter_span("search/iteration", obs::TraceCat::kSearch);
      Rng cand_rng(Rng::MixSeed(options_.seed, static_cast<uint64_t>(s.record.iteration),
                                static_cast<uint64_t>(slot_idx + 1)));
      std::optional<AbsGraph> mutated;
      {
        obs::TraceSpan sample_span("search/sample", obs::TraceCat::kSearch,
                                   &s.record.stages.sample);
        const AbsGraph& base = policy->SampleBase(original_graph_, history, cand_rng);
        const int num_mutations = cand_rng.NextIntRange(1, options_.max_mutations_per_pass);
        mutated = SampleMutatePass(base, num_mutations, ShapeSimilarity::kSimilar, cand_rng);
        policy->AdvanceIteration();
        if (!mutated.has_value() || history.AlreadyEvaluated(*mutated)) {
          s.record.duplicate = true;
          mutated.reset();
        } else {
          history.MarkEvaluated(*mutated);
        }
      }
      if (!mutated.has_value()) {
        m_duplicates.Increment();
        continue;
      }
      s.pending = evaluator.Screen(std::move(*mutated), history, cand_rng);
    }

    // Phase 2: fine-tune pending candidates (concurrently when a pool
    // exists). Each task touches only its own candidate plus read-only state.
    for (Slot& s : slots) {
      if (!s.pending.has_value() || s.pending->done) {
        continue;
      }
      if (pool != nullptr) {
        // The worker already owns one whole candidate: mark the task as a
        // parallel region so kernel-level ParallelFor calls inside
        // fine-tuning run serially instead of oversubscribing the machine.
        PendingEval* pending = &*s.pending;
        pool->Submit([&evaluator, pending] {
          ParallelRegionGuard guard;
          evaluator.Finetune(*pending);
        });
      } else {
        evaluator.Finetune(*s.pending);
      }
    }
    if (pool != nullptr) {
      pool->WaitAll();
    }

    // Phase 3 (serial): integrate outcomes in iteration order.
    for (Slot& s : slots) {
      IterationRecord& record = s.record;
      if (s.pending.has_value()) {
        EvalOutcome out = evaluator.Finish(*s.pending);
        record.candidate_latency_ms = out.latency_ms;
        record.candidate_flops = out.flops;
        record.stages.Accumulate(out.stages);
        switch (out.status) {
          case EvalStatus::kRejectedByVerifier:
            record.rejected_by_verifier = true;
            ++result.candidates_rejected;
            m_rejected.Increment();
            if (options_.verbose) {
              GMORPH_LOG_INFO << "iter " << record.iteration
                              << " candidate rejected by verifier:\n"
                              << s.pending->verifier_report;
            }
            break;
          case EvalStatus::kFilteredByRule:
            record.filtered_by_rule = true;
            ++result.candidates_filtered;
            m_filtered.Increment();
            break;
          case EvalStatus::kCacheHit:
          case EvalStatus::kEvaluated: {
            if (out.status == EvalStatus::kCacheHit) {
              record.cache_hit = true;
              ++result.cache_hits;
              m_cache_hits.Increment();
            } else {
              ++result.candidates_finetuned;
              m_finetuned.Increment();
            }
            m_candidate_latency.Observe(out.latency_ms);
            record.accuracy_drop = out.accuracy_drop;
            record.met_target = out.met_target;
            record.terminated_early = out.terminated_early;
            record.finetune_seconds = out.finetune_seconds;
            // Cache hits feed the policy exactly like fresh evaluations so a
            // warm-cache rerun follows the identical search trajectory.
            policy->Observe(std::max(0.0, out.accuracy_drop));
            if (out.met_target) {
              GMORPH_CHECK(out.trained_graph.has_value());
              const double cost = candidate_cost(out.latency_ms, out.flops);
              history.AddElite(*out.trained_graph, cost, out.accuracy_drop);
              m_elites.Increment();
              if (cost < best_cost) {
                best_cost = cost;
                result.best_graph = std::move(*out.trained_graph);
                result.best_latency_ms = out.latency_ms;
                result.best_flops = out.flops;
                result.best_task_scores = out.task_scores;
                result.best_quant = out.quant;
                result.found_improvement = true;
              }
            } else {
              history.AddNonPromising(s.pending->graph.Signature());
            }
            if (options_.verbose) {
              GMORPH_LOG_INFO << "iter " << record.iteration
                              << " lat=" << record.candidate_latency_ms
                              << "ms drop=" << record.accuracy_drop
                              << (out.met_target ? " [elite]" : "")
                              << (record.cache_hit ? " [cached]" : "")
                              << (out.quant.has_value() && out.quant->within_budget
                                      ? " [int8 ok]"
                                      : out.quant.has_value() ? " [int8 over budget]" : "")
                              << " best=" << result.best_latency_ms << "ms";
            }
            break;
          }
        }
      }
      record.best_latency_ms = result.best_latency_ms;
      m_best_latency.Set(result.best_latency_ms);
      record.best_flops = result.best_flops;
      record.elapsed_seconds = elapsed_offset + search_timer.Seconds();
      result.stage_seconds.Accumulate(record.stages);
      result.trace.push_back(record);
    }

    // Checkpoints are written only at round boundaries so a resumed run's
    // rounds line up with the uninterrupted run's.
    if (!options_.checkpoint_path.empty() && options_.checkpoint_every > 0 &&
        iter - last_checkpoint_iter >= options_.checkpoint_every && iter < options_.iterations) {
      write_checkpoint();
      last_checkpoint_iter = iter;
    }
  }

  if (!options_.checkpoint_path.empty()) {
    write_checkpoint();
  }
  result.search_seconds = elapsed_offset + search_timer.Seconds();
  result.speedup = result.best_latency_ms > 0.0
                       ? result.original_latency_ms / result.best_latency_ms
                       : 1.0;
  return result;
}

}  // namespace gmorph
