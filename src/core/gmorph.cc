#include "src/core/gmorph.h"

#include <algorithm>

#include "src/analysis/graph_verifier.h"
#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/parallel_for.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/core/model_parser.h"
#include "src/core/mutation.h"
#include "src/data/teacher.h"

namespace gmorph {

std::unique_ptr<SamplingPolicy> MakePolicy(PolicyKind kind, const AnnealingOptions& annealing) {
  switch (kind) {
    case PolicyKind::kSimulatedAnnealing:
      return std::make_unique<SimulatedAnnealingPolicy>(annealing);
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
  }
  GMORPH_CHECK(false, "unknown policy");
  return nullptr;
}

GMorph::GMorph(std::vector<TaskModel*> teachers, const MultiTaskDataset* train,
               const MultiTaskDataset* test, const GMorphOptions& options)
    : teachers_(std::move(teachers)), train_(train), test_(test), options_(options) {
  GMORPH_CHECK(!teachers_.empty() && train_ != nullptr && test_ != nullptr);
  GMORPH_CHECK(train_->tasks.size() == teachers_.size());
  original_graph_ = ParseTaskModels(
      std::vector<const TaskModel*>(teachers_.begin(), teachers_.end()));
}

GMorphResult GMorph::Run() {
  Rng rng(options_.seed);
  Timer search_timer;
  GMorphResult result;

  // Distillation targets and teacher baselines are fixed for the whole search.
  std::vector<Tensor> teacher_train_logits;
  teacher_train_logits.reserve(teachers_.size());
  for (TaskModel* teacher : teachers_) {
    teacher_train_logits.push_back(PredictAll(*teacher, *train_));
    result.teacher_scores.push_back(
        EvaluateTeacher(*teacher, *test_,
                        result.teacher_scores.size()));
  }

  // Baseline: the original multi-DNNs rewritten as one input-sharing graph.
  MultiTaskModel original_model(original_graph_, rng);
  result.original_latency_ms = MeasureLatencyMs(original_model, options_.latency);
  result.original_flops = original_graph_.TotalFlops();
  result.best_graph = original_graph_;
  result.best_latency_ms = result.original_latency_ms;
  result.best_flops = result.original_flops;
  result.best_task_scores = result.teacher_scores;

  auto candidate_cost = [&](double latency_ms, int64_t flops) {
    return options_.metric == OptimizeMetric::kLatency ? latency_ms
                                                       : static_cast<double>(flops);
  };
  double best_cost = candidate_cost(result.best_latency_ms, result.best_flops);

  HistoryDatabase history(options_.annealing.max_elites);
  history.MarkEvaluated(original_graph_);
  std::unique_ptr<SamplingPolicy> policy = MakePolicy(options_.policy, options_.annealing);

  FinetuneOptions finetune = options_.finetune;
  finetune.target_drop = options_.accuracy_drop_threshold;
  finetune.predictive_termination = options_.predictive_termination;

  // One entry per search iteration; filtered/duplicate slots carry no model.
  struct Candidate {
    IterationRecord record;
    std::optional<AbsGraph> graph;
    std::unique_ptr<MultiTaskModel> model;
    FinetuneResult finetune;
  };
  const int round_width = std::max(1, options_.parallel_candidates);
  std::unique_ptr<ThreadPool> pool;
  if (options_.num_threads > 1 && round_width > 1) {
    pool = std::make_unique<ThreadPool>(options_.num_threads);
  }

  int iter = 0;
  while (iter < options_.iterations) {
    const int round = std::min(round_width, options_.iterations - iter);
    std::vector<Candidate> candidates(static_cast<size_t>(round));

    // Phase 1 (serial): sample and generate this round's candidates. With
    // round_width == 1 this degenerates to the paper's Algorithm 1.
    for (Candidate& c : candidates) {
      c.record.iteration = ++iter;
      c.record.best_latency_ms = result.best_latency_ms;
      const AbsGraph& base = policy->SampleBase(original_graph_, history, rng);
      const int num_mutations = rng.NextIntRange(1, options_.max_mutations_per_pass);
      std::optional<AbsGraph> mutated =
          SampleMutatePass(base, num_mutations, ShapeSimilarity::kSimilar, rng);
      policy->AdvanceIteration();
      if (!mutated.has_value() || history.AlreadyEvaluated(*mutated)) {
        c.record.duplicate = true;
        continue;
      }
      history.MarkEvaluated(*mutated);
      // Static analysis gate: an ill-formed candidate would crash lowering or
      // fine-tuning; reject it here and count it as a mutation-engine bug.
      const DiagnosticList verdict = VerifyGraph(*mutated);
      if (!verdict.ok()) {
        c.record.rejected_by_verifier = true;
        ++result.candidates_rejected;
        if (options_.verbose) {
          GMORPH_LOG_INFO << "iter " << c.record.iteration
                          << " candidate rejected by verifier:\n" << verdict.ToString();
        }
        continue;
      }
      c.record.candidate_flops = mutated->TotalFlops();
      // Rule-based filter: skip fine-tuning candidates more aggressive than a
      // known non-promising one.
      if (options_.rule_based_filtering && history.FilteredByRule(mutated->Signature())) {
        c.record.filtered_by_rule = true;
        ++result.candidates_filtered;
        continue;
      }
      // Generate the trainable model; weight inheritance from the base graph
      // happens through the node weights the mutated graph carries.
      c.graph = std::move(mutated);
      c.model = std::make_unique<MultiTaskModel>(*c.graph, rng);
      c.record.candidate_latency_ms = MeasureLatencyMs(*c.model, options_.latency);
    }

    // Phase 2: fine-tune candidates (concurrently when a pool exists). Each
    // task touches only its own candidate plus read-only shared state.
    auto finetune_one = [&](Candidate& c) {
      c.finetune = DistillFinetune(*c.model, teacher_train_logits, *train_, *test_,
                                   result.teacher_scores, finetune);
    };
    for (Candidate& c : candidates) {
      if (c.model == nullptr) {
        continue;
      }
      if (pool != nullptr) {
        // Each worker already owns a candidate: mark the task as a parallel
        // region so kernel-level ParallelFor calls inside fine-tuning run
        // serially instead of oversubscribing the machine.
        pool->Submit([&finetune_one, &c] {
          ParallelRegionGuard guard;
          finetune_one(c);
        });
      } else {
        finetune_one(c);
      }
    }
    if (pool != nullptr) {
      pool->WaitAll();
    }

    // Phase 3 (serial): integrate results in iteration order.
    for (Candidate& c : candidates) {
      IterationRecord& record = c.record;
      if (c.model != nullptr) {
        const FinetuneResult& ft = c.finetune;
        ++result.candidates_finetuned;
        record.accuracy_drop = ft.max_drop;
        record.met_target = ft.met_target;
        record.terminated_early = ft.terminated_early;
        record.finetune_seconds = ft.seconds;
        policy->Observe(std::max(0.0, ft.max_drop));

        if (ft.met_target) {
          AbsGraph trained = c.model->ExportTrainedGraph();
          history.AddElite(trained, record.candidate_latency_ms, ft.max_drop);
          const double cost =
              candidate_cost(record.candidate_latency_ms, record.candidate_flops);
          if (cost < best_cost) {
            best_cost = cost;
            result.best_graph = std::move(trained);
            result.best_latency_ms = record.candidate_latency_ms;
            result.best_flops = record.candidate_flops;
            result.best_task_scores = ft.task_scores;
            result.found_improvement = true;
          }
        } else {
          history.AddNonPromising(c.graph->Signature());
        }
        if (options_.verbose) {
          GMORPH_LOG_INFO << "iter " << record.iteration
                          << " lat=" << record.candidate_latency_ms
                          << "ms drop=" << record.accuracy_drop
                          << (ft.met_target ? " [elite]" : "")
                          << " best=" << result.best_latency_ms << "ms";
        }
      }
      record.best_latency_ms = result.best_latency_ms;
      record.best_flops = result.best_flops;
      record.elapsed_seconds = search_timer.Seconds();
      result.trace.push_back(record);
    }
  }

  result.search_seconds = search_timer.Seconds();
  result.speedup = result.best_latency_ms > 0.0
                       ? result.original_latency_ms / result.best_latency_ms
                       : 1.0;
  return result;
}

}  // namespace gmorph
