#include "src/core/filtering.h"

#include <algorithm>
#include <cmath>

namespace gmorph {

double EstimateConvergenceRate(double f0, double f1, double f2, double f3) {
  // Non-finite inputs (a diverged fine-tuning run producing NaN/inf scores)
  // must not poison the predictive-termination decision: report the neutral
  // rate 1.0, which the caller treats as "no convergence signal".
  if (!std::isfinite(f0) || !std::isfinite(f1) || !std::isfinite(f2) || !std::isfinite(f3)) {
    return 1.0;
  }
  const double d1 = std::fabs(f1 - f0);
  const double d2 = std::fabs(f2 - f1);
  const double d3 = std::fabs(f3 - f2);
  constexpr double kTiny = 1e-12;
  if (d1 < kTiny || d2 < kTiny || d3 < kTiny) {
    return 1.0;
  }
  const double denom = std::log(d2) - std::log(d1);
  if (std::fabs(denom) < kTiny) {
    return 1.0;
  }
  const double rate = (std::log(d3) - std::log(d2)) / denom;
  return std::isfinite(rate) ? rate : 1.0;
}

double ExtrapolateFinal(const std::vector<double>& measurements, int remaining_steps) {
  if (measurements.empty()) {
    return 0.0;
  }
  // With a non-finite tail there is no curve to extrapolate; return the last
  // finite measurement (or 0 when none exists) instead of propagating NaN
  // into the termination comparison, where NaN would disable early stopping.
  const size_t n = measurements.size();
  if (!std::isfinite(measurements.back())) {
    for (size_t i = n; i-- > 0;) {
      if (std::isfinite(measurements[i])) {
        return measurements[i];
      }
    }
    return 0.0;
  }
  if (measurements.size() < 2 || remaining_steps <= 0) {
    return measurements.back();
  }
  const double prev = measurements[n - 2];
  if (!std::isfinite(prev)) {
    return measurements.back();
  }
  const double last_inc = measurements.back() - prev;
  double q = 0.5;
  if (n >= 3 && std::isfinite(measurements[n - 3])) {
    const double prev_inc = prev - measurements[n - 3];
    if (std::fabs(prev_inc) > 1e-12) {
      q = std::clamp(std::fabs(last_inc / prev_inc), 0.0, 0.95);
    }
  }
  double value = measurements.back();
  double inc = last_inc;
  for (int i = 0; i < remaining_steps; ++i) {
    inc *= q;
    value += inc;
  }
  return std::isfinite(value) ? value : measurements.back();
}

}  // namespace gmorph
