#include "src/core/filtering.h"

#include <algorithm>
#include <cmath>

namespace gmorph {

double EstimateConvergenceRate(double f0, double f1, double f2, double f3) {
  const double d1 = std::fabs(f1 - f0);
  const double d2 = std::fabs(f2 - f1);
  const double d3 = std::fabs(f3 - f2);
  constexpr double kTiny = 1e-12;
  if (d1 < kTiny || d2 < kTiny || d3 < kTiny) {
    return 1.0;
  }
  const double denom = std::log(d2) - std::log(d1);
  if (std::fabs(denom) < kTiny) {
    return 1.0;
  }
  return (std::log(d3) - std::log(d2)) / denom;
}

double ExtrapolateFinal(const std::vector<double>& measurements, int remaining_steps) {
  if (measurements.empty()) {
    return 0.0;
  }
  if (measurements.size() < 2 || remaining_steps <= 0) {
    return measurements.back();
  }
  const size_t n = measurements.size();
  const double last_inc = measurements[n - 1] - measurements[n - 2];
  double q = 0.5;
  if (n >= 3) {
    const double prev_inc = measurements[n - 2] - measurements[n - 3];
    if (std::fabs(prev_inc) > 1e-12) {
      q = std::clamp(std::fabs(last_inc / prev_inc), 0.0, 0.95);
    }
  }
  double value = measurements.back();
  double inc = last_inc;
  for (int i = 0; i < remaining_steps; ++i) {
    inc *= q;
    value += inc;
  }
  return value;
}

}  // namespace gmorph
