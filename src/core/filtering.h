// Predictive filtering (paper §5.1).
//
// Rule-based filtering lives in HistoryDatabase::FilteredByRule (capacity
// signatures). This header provides the learning-curve side: estimating the
// convergence rate from four equally spaced test-accuracy measurements and
// extrapolating the final accuracy to decide early termination.
#ifndef GMORPH_SRC_CORE_FILTERING_H_
#define GMORPH_SRC_CORE_FILTERING_H_

#include <vector>

namespace gmorph {

// The paper's convergence-rate estimator over four consecutive measurements
// f(x), f(x+d), f(x+2d), f(x+3d):
//   alpha = [log|f2-f3| - log|f1-f2|] / [log|f1-f2| - log|f0-f1|].
// Returns 1.0 (linear convergence) when increments vanish or the ratio is
// degenerate.
double EstimateConvergenceRate(double f0, double f1, double f2, double f3);

// Projects the measurement sequence `remaining_steps` intervals ahead by
// geometric extrapolation of the increments (the practical instantiation of
// iterating the convergence model): q = |Δ_last| / |Δ_prev| clamped to
// [0, 0.95], future increments shrink by q each step. Requires >= 2
// measurements; with fewer it returns the last value.
double ExtrapolateFinal(const std::vector<double>& measurements, int remaining_steps);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_FILTERING_H_
