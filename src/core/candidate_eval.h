// Per-candidate evaluation pipeline for the mutation search (Algorithm 1's
// inner loop, factored out of the driver).
//
// A candidate flows through fixed stages:
//   cache probe -> verify -> rule-filter -> latency-profile -> fine-tune -> score
// The stages are split across three calls so sequential and parallel search
// share one code path:
//   Screen()   (serial)       cache probe, GraphVerifier gate, rule-based
//                             filter, model generation + latency profile.
//                             Latency stays in the serial phase so concurrent
//                             fine-tuning cannot distort wall-clock numbers.
//   Finetune() (thread-safe)  distillation fine-tuning; touches only the one
//                             pending candidate plus read-only shared state.
//   Finish()   (serial)       score integration: trained-graph export and
//                             evaluation-cache store.
// Every stage records its wall time in StageSeconds so the driver can report
// a per-iteration and whole-search cost breakdown.
#ifndef GMORPH_SRC_CORE_CANDIDATE_EVAL_H_
#define GMORPH_SRC_CORE_CANDIDATE_EVAL_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/abs_graph.h"
#include "src/core/eval_cache.h"
#include "src/core/finetune.h"
#include "src/core/history.h"
#include "src/core/latency.h"
#include "src/core/multitask_model.h"
#include "src/data/dataset.h"

namespace gmorph {

// Wall-time breakdown of one candidate evaluation (or a whole search when
// accumulated). `finetune` is summed per candidate, so under parallel rounds
// it reads as worker-seconds rather than elapsed wall time.
struct StageSeconds {
  double sample = 0.0;    // policy sampling + mutation pass (driver side)
  double verify = 0.0;    // GraphVerifier gate
  double profile = 0.0;   // model generation + latency measurement
  double finetune = 0.0;  // distillation fine-tuning (incl. periodic scoring)
  double score = 0.0;     // trained-graph export + cache store
  void Accumulate(const StageSeconds& other);
  double Total() const { return sample + verify + profile + finetune + score; }
};

enum class EvalStatus {
  kRejectedByVerifier,  // ill-formed graph; never profiled or fine-tuned
  kFilteredByRule,      // skipped via capacity-signature rule (paper §5.1)
  kCacheHit,            // outcome reused from the evaluation cache
  kEvaluated,           // fine-tuned this run
};

// Knobs for scoring a candidate's int8 plan (post-training quantization via
// FusedEngine::Calibrate/Quantize). The scorer itself lives in the runtime
// layer and is injected through EvalOptions::quant_score — core cannot link
// against gmorph_runtime without a dependency cycle.
struct QuantEvalOptions {
  bool enabled = false;
  // Calibration stream: `calib_batches` slices of `calib_batch_size` rows
  // taken from the front of the representative (train) inputs.
  int calib_batches = 2;
  int64_t calib_batch_size = 16;
  // Allowed per-task score drop of the int8 plan relative to the candidate's
  // own f32 scores, as an absolute fraction (0.01 = 1 point of accuracy).
  double drop_budget = 0.01;
};

// Result of scoring one candidate's int8 plan.
struct QuantOutcome {
  bool within_budget = false;  // quantized AND every task within drop_budget
  int quantized_steps = 0;     // conv/linear steps switched to int8
  double latency_ms = 0.0;     // engine latency of the quantized plan
  double max_drop = 0.0;       // worst task drop vs the candidate's f32 scores
  std::vector<double> task_scores;
};

// Runtime-layer scorer signature (see runtime/quant_scoring.h for the
// implementation): calibrates + quantizes the candidate's engine, then
// re-scores it on the test split. `f32_scores` are the candidate's fine-tuned
// per-task scores (the drop baseline).
struct EvalOptions;
using QuantScoreFn = std::function<QuantOutcome(
    MultiTaskModel& model, const MultiTaskDataset& train, const MultiTaskDataset& test,
    const std::vector<double>& f32_scores, const EvalOptions& options)>;

// The structured result of one candidate evaluation.
struct EvalOutcome {
  EvalStatus status = EvalStatus::kEvaluated;
  double latency_ms = 0.0;
  int64_t flops = 0;
  double accuracy_drop = 0.0;
  bool met_target = false;
  bool terminated_early = false;
  int epochs_run = 0;
  double finetune_seconds = 0.0;  // 0 on cache hits: no training paid this run
  std::vector<double> task_scores;
  StageSeconds stages;
  // Trained weights; engaged exactly when met_target (the elite candidate).
  std::optional<AbsGraph> trained_graph;
  // Int8 plan score; engaged when quant scoring is enabled, the candidate met
  // the f32 target, and the scorer ran (mixed-precision winner candidate).
  std::optional<QuantOutcome> quant;
};

// The evaluation-relevant option subset. Its hash namespaces the evaluation
// cache: two searches share cached outcomes iff these options agree.
struct EvalOptions {
  FinetuneOptions finetune;  // target_drop / predictive_termination folded in
  LatencyOptions latency;
  bool rule_based_filtering = false;
  // Int8 scoring of met-target candidates. The quant fields join the options
  // hash only when `quant.enabled` is set, so enabling the feature does not
  // invalidate existing f32 evaluation caches.
  QuantEvalOptions quant;
  QuantScoreFn quant_score;  // injected by the runtime layer; may be empty
};

uint64_t HashEvalOptions(const EvalOptions& options);

// A candidate between Screen() and Finish(). When `done` is set the outcome
// was finalized by screening (reject / filter / cache hit) and Finetune() is
// a no-op.
struct PendingEval {
  AbsGraph graph;
  std::string fingerprint;
  bool done = false;
  EvalOutcome outcome;
  std::string verifier_report;  // non-empty iff rejected by the verifier
  std::unique_ptr<MultiTaskModel> model;
  FinetuneResult finetune;
};

class CandidateEvaluator {
 public:
  // All pointers must outlive the evaluator; `cache` may be null (disabled).
  CandidateEvaluator(const std::vector<Tensor>* teacher_train_logits,
                     const MultiTaskDataset* train, const MultiTaskDataset* test,
                     const std::vector<double>* teacher_scores, const EvalOptions& options,
                     EvaluationCache* cache);

  // Serial screening stage; `model_rng` initializes fresh modules (inserted
  // adapters) of the generated model.
  PendingEval Screen(AbsGraph candidate, const HistoryDatabase& history, Rng& model_rng);

  // Fine-tunes one pending candidate. Safe to call concurrently for distinct
  // candidates: shared state is read-only.
  void Finetune(PendingEval& pending) const;

  // Serializes the outcome (trained-graph export, cache store) and returns
  // it. `pending.graph` stays valid for the caller (signature bookkeeping).
  EvalOutcome Finish(PendingEval& pending);

  // Convenience: the full pipeline for one candidate.
  EvalOutcome Evaluate(AbsGraph candidate, const HistoryDatabase& history, Rng& model_rng);

  const EvalOptions& options() const { return options_; }

 private:
  const std::vector<Tensor>* teacher_train_logits_;
  const MultiTaskDataset* train_;
  const MultiTaskDataset* test_;
  const std::vector<double>* teacher_scores_;
  EvalOptions options_;
  EvaluationCache* cache_;  // not owned; null disables caching
};

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_CANDIDATE_EVAL_H_
