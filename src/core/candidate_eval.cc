#include "src/core/candidate_eval.h"

#include <algorithm>
#include <sstream>

#include "src/analysis/driver.h"
#include "src/common/check.h"
#include "src/obs/trace.h"

namespace gmorph {

void StageSeconds::Accumulate(const StageSeconds& other) {
  sample += other.sample;
  verify += other.verify;
  profile += other.profile;
  finetune += other.finetune;
  score += other.score;
}

uint64_t HashEvalOptions(const EvalOptions& o) {
  std::ostringstream os;
  os.precision(17);
  os << "evalopts v1|" << o.finetune.max_epochs << "|" << o.finetune.batch_size << "|"
     << o.finetune.lr << "|" << o.finetune.eval_interval << "|"
     << o.finetune.early_stop_on_target << "|" << o.finetune.predictive_termination << "|"
     << o.finetune.target_drop << "|";
  for (const float w : o.finetune.task_loss_weights) {
    os << w << ",";
  }
  os << "|" << o.latency.warmup_runs << "|" << o.latency.measured_runs << "|"
     << o.latency.batch_size << "|" << o.rule_based_filtering;
  // Quant fields join the hash only when enabled so the f32-only cache
  // namespace is byte-stable across this feature's introduction.
  if (o.quant.enabled) {
    os << "|quant|" << o.quant.calib_batches << "|" << o.quant.calib_batch_size << "|"
       << o.quant.drop_budget;
  }
  return Fnv1aHash(os.str());
}

CandidateEvaluator::CandidateEvaluator(const std::vector<Tensor>* teacher_train_logits,
                                       const MultiTaskDataset* train,
                                       const MultiTaskDataset* test,
                                       const std::vector<double>* teacher_scores,
                                       const EvalOptions& options, EvaluationCache* cache)
    : teacher_train_logits_(teacher_train_logits),
      train_(train),
      test_(test),
      teacher_scores_(teacher_scores),
      options_(options),
      cache_(cache) {
  GMORPH_CHECK(teacher_train_logits_ != nullptr && train_ != nullptr && test_ != nullptr &&
               teacher_scores_ != nullptr);
}

PendingEval CandidateEvaluator::Screen(AbsGraph candidate, const HistoryDatabase& history,
                                       Rng& model_rng) {
  PendingEval pending;
  pending.graph = std::move(candidate);
  pending.fingerprint = pending.graph.Fingerprint();
  EvalOutcome& out = pending.outcome;
  out.flops = pending.graph.TotalFlops();

  // Cache probe first: a hit skips verification (the entry was verified when
  // stored and the trained graph re-verifies on load) and, crucially, the
  // fine-tuning cost.
  if (cache_ != nullptr) {
    obs::TraceSpan probe_span("eval/cache_probe", obs::TraceCat::kEval);
    if (std::optional<EvaluationCache::CachedEval> hit = cache_->Lookup(pending.fingerprint)) {
      out.status = EvalStatus::kCacheHit;
      out.latency_ms = hit->entry.latency_ms;
      out.accuracy_drop = hit->entry.accuracy_drop;
      out.met_target = hit->entry.met_target;
      out.terminated_early = hit->entry.terminated_early;
      out.epochs_run = hit->entry.epochs_run;
      out.task_scores = hit->entry.task_scores;
      out.trained_graph = std::move(hit->trained_graph);
      // Quant outcomes are not cached (they depend on runtime solvers, not
      // just the graph); rebuild the model from the trained weights and
      // re-score the int8 plan so warm-cache searches still see it.
      if (options_.quant.enabled && options_.quant_score && out.met_target &&
          out.trained_graph.has_value()) {
        MultiTaskModel model(*out.trained_graph, model_rng);
        out.quant = options_.quant_score(model, *train_, *test_, out.task_scores, options_);
      }
      pending.done = true;
      return pending;
    }
  }

  // Static-analysis gate: an ill-formed candidate would crash lowering or
  // fine-tuning; reject it here (a mutation-engine bug, but the search
  // degrades gracefully instead of crashing mid-run).
  DiagnosticList verdict;
  {
    obs::TraceSpan verify_span("eval/verify", obs::TraceCat::kEval, &out.stages.verify);
    verdict = RunGraphPasses(pending.graph);
  }
  if (!verdict.ok()) {
    out.status = EvalStatus::kRejectedByVerifier;
    pending.verifier_report = verdict.ToString();
    pending.done = true;
    return pending;
  }

  // Rule-based filter: skip fine-tuning candidates more aggressive in sharing
  // than a known non-promising one.
  {
    obs::TraceSpan filter_span("eval/filter", obs::TraceCat::kEval);
    if (options_.rule_based_filtering && history.FilteredByRule(pending.graph.Signature())) {
      out.status = EvalStatus::kFilteredByRule;
      pending.done = true;
      return pending;
    }
  }

  // Model generation (weight inheritance happens through the node weights the
  // mutated graph carries) + latency profile.
  {
    obs::TraceSpan profile_span("eval/profile", obs::TraceCat::kEval, &out.stages.profile);
    pending.model = std::make_unique<MultiTaskModel>(pending.graph, model_rng);
    out.latency_ms = MeasureLatencyMs(*pending.model, options_.latency);
  }
  return pending;
}

void CandidateEvaluator::Finetune(PendingEval& pending) const {
  if (pending.done) {
    return;
  }
  GMORPH_CHECK(pending.model != nullptr);
  obs::TraceSpan finetune_span("eval/finetune", obs::TraceCat::kEval);
  pending.finetune = DistillFinetune(*pending.model, *teacher_train_logits_, *train_, *test_,
                                     *teacher_scores_, options_.finetune);
}

EvalOutcome CandidateEvaluator::Finish(PendingEval& pending) {
  EvalOutcome& out = pending.outcome;
  if (pending.done) {
    return std::move(out);
  }
  const FinetuneResult& ft = pending.finetune;
  out.status = EvalStatus::kEvaluated;
  out.accuracy_drop = ft.max_drop;
  out.met_target = ft.met_target;
  out.terminated_early = ft.terminated_early;
  out.epochs_run = ft.epochs_run;
  out.finetune_seconds = ft.seconds;
  out.stages.finetune = ft.seconds;
  out.task_scores = ft.task_scores;

  {
    obs::TraceSpan score_span("eval/score", obs::TraceCat::kEval, &out.stages.score);
    if (out.met_target) {
      out.trained_graph = pending.model->ExportTrainedGraph();
      // Int8 scoring only for candidates that already earned elite status at
      // f32: calibrate + quantize the fine-tuned model and measure the drop
      // the int8 plan adds on top. The search metric stays the f32 latency;
      // the outcome rides along so the driver can surface mixed-precision
      // winners (and their int8 latency) without perturbing the trajectory.
      if (options_.quant.enabled && options_.quant_score) {
        out.quant =
            options_.quant_score(*pending.model, *train_, *test_, out.task_scores, options_);
      }
    }
    if (cache_ != nullptr) {
      EvaluationCache::Entry entry;
      entry.met_target = out.met_target;
      entry.terminated_early = out.terminated_early;
      entry.epochs_run = out.epochs_run;
      entry.accuracy_drop = out.accuracy_drop;
      entry.latency_ms = out.latency_ms;
      entry.flops = out.flops;
      entry.finetune_seconds = out.finetune_seconds;
      entry.task_scores = out.task_scores;
      cache_->Store(pending.fingerprint, entry,
                    out.trained_graph.has_value() ? &*out.trained_graph : nullptr);
    }
  }
  return std::move(out);
}

EvalOutcome CandidateEvaluator::Evaluate(AbsGraph candidate, const HistoryDatabase& history,
                                         Rng& model_rng) {
  PendingEval pending = Screen(std::move(candidate), history, model_rng);
  Finetune(pending);
  return Finish(pending);
}

}  // namespace gmorph
