#include "src/core/multitask_model.h"

#include "src/common/check.h"
#include "src/models/model_spec.h"
#include "src/obs/trace.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {

MultiTaskModel::MultiTaskModel(const AbsGraph& graph, Rng& rng) : graph_(graph) {
  graph_.Validate();
  modules_.resize(static_cast<size_t>(graph_.size()));
  node_labels_.resize(static_cast<size_t>(graph_.size()));
  for (const AbsNode& n : graph_.nodes()) {
    if (n.IsRoot()) {
      continue;
    }
    auto module = MakeModule(n.spec, rng);
    if (!n.weights.empty()) {
      module->ImportParameters(n.weights);
    }
    modules_[static_cast<size_t>(n.id)] = std::move(module);
    node_labels_[static_cast<size_t>(n.id)] =
        "node/" + std::to_string(n.id) + ":" + BlockTypeName(n.spec.type);
  }
  topo_order_ = graph_.TopologicalOrder();
  head_of_task_.resize(static_cast<size_t>(graph_.num_tasks()));
  for (int t = 0; t < graph_.num_tasks(); ++t) {
    head_of_task_[static_cast<size_t>(t)] = graph_.HeadOfTask(t);
    GMORPH_CHECK(head_of_task_[static_cast<size_t>(t)] >= 0);
  }
}

std::vector<Tensor> MultiTaskModel::Forward(const Tensor& input, bool training) {
  std::vector<Tensor> activations(static_cast<size_t>(graph_.size()));
  activations[0] = input;
  for (int id : topo_order_) {
    if (id == graph_.root()) {
      continue;
    }
    const AbsNode& n = graph_.node(id);
    obs::TraceSpan span(node_labels_[static_cast<size_t>(id)], obs::TraceCat::kEngine);
    activations[static_cast<size_t>(id)] =
        modules_[static_cast<size_t>(id)]->Forward(activations[static_cast<size_t>(n.parent)],
                                                   training);
  }
  std::vector<Tensor> outputs(head_of_task_.size());
  for (size_t t = 0; t < head_of_task_.size(); ++t) {
    outputs[t] = activations[static_cast<size_t>(head_of_task_[t])];
  }
  return outputs;
}

Tensor MultiTaskModel::Backward(const std::vector<Tensor>& grad_per_task) {
  GMORPH_CHECK(grad_per_task.size() == head_of_task_.size());
  std::vector<Tensor> grads(static_cast<size_t>(graph_.size()));
  for (size_t t = 0; t < head_of_task_.size(); ++t) {
    if (!grad_per_task[t].empty()) {
      grads[static_cast<size_t>(head_of_task_[t])] = grad_per_task[t].Clone();
    }
  }
  // Reverse topological order: children deliver their input-gradients to the
  // parent, summing at shared nodes.
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const int id = *it;
    if (id == graph_.root()) {
      continue;
    }
    Tensor& g = grads[static_cast<size_t>(id)];
    if (g.empty()) {
      continue;  // no task downstream of this node contributed gradient
    }
    Tensor g_parent = modules_[static_cast<size_t>(id)]->Backward(g);
    const int parent = graph_.node(id).parent;
    Tensor& slot = grads[static_cast<size_t>(parent)];
    if (slot.empty()) {
      slot = std::move(g_parent);
    } else {
      AddInPlace(slot, g_parent);
    }
  }
  Tensor root_grad = std::move(grads[0]);
  if (root_grad.empty()) {
    return root_grad;
  }
  return root_grad;
}

std::vector<Parameter*> MultiTaskModel::Parameters() {
  std::vector<Parameter*> out;
  for (auto& m : modules_) {
    if (m) {
      for (Parameter* p : m->Parameters()) {
        out.push_back(p);
      }
    }
  }
  return out;
}

void MultiTaskModel::ZeroGrad() {
  for (auto& m : modules_) {
    if (m) {
      m->ZeroGrad();
    }
  }
}

int64_t MultiTaskModel::TotalCapacity() const {
  int64_t n = 0;
  for (const auto& m : modules_) {
    if (m) {
      n += m->ParamCount();
    }
  }
  return n;
}

AbsGraph MultiTaskModel::ExportTrainedGraph() const {
  AbsGraph g = graph_;
  for (const AbsNode& n : graph_.nodes()) {
    if (!n.IsRoot()) {
      g.mutable_node(n.id).weights = modules_[static_cast<size_t>(n.id)]->ExportParameters();
    }
  }
  return g;
}

}  // namespace gmorph
