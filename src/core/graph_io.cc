#include "src/core/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <utility>

#include "src/analysis/graph_verifier.h"

namespace gmorph {
namespace {

constexpr uint64_t kMagic = 0x474d4f5250484731ull;  // "GMORPHG1"

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteShape(std::ostream& out, const Shape& shape) {
  WritePod(out, static_cast<int64_t>(shape.Rank()));
  for (int64_t d : shape.dims()) {
    WritePod(out, d);
  }
}

void WriteSpec(std::ostream& out, const BlockSpec& spec) {
  WritePod(out, static_cast<int64_t>(spec.type));
  for (int64_t v : {spec.in_channels, spec.out_channels, spec.kernel, spec.stride, spec.padding,
                    spec.pool_kernel, spec.pool_stride, spec.in_features, spec.out_features,
                    spec.dim, spec.heads, spec.mlp_ratio, spec.vocab, spec.seq_len,
                    spec.image_size, spec.patch}) {
    WritePod(out, v);
  }
  WriteShape(out, spec.rescale_in);
  WriteShape(out, spec.rescale_out);
}

// Decoder that accumulates a diagnostic on the first failure and goes inert,
// so the read loop can bail without scattering error construction everywhere.
class Reader {
 public:
  Reader(std::istream& in, DiagnosticList& diags) : in_(in), diags_(diags) {}

  bool failed() const { return failed_; }

  void Fail(const char* rule, const std::string& what) {
    if (!failed_) {
      failed_ = true;
      diags_.Error(rule, "stream") << what;
    }
  }

  template <typename T>
  bool Pod(T& value, const char* what) {
    if (failed_) {
      return false;
    }
    if (!ReadPod(in_, value)) {
      Fail("io.truncated", std::string("stream ended inside ") + what);
      return false;
    }
    return true;
  }

  bool ReadShapeChecked(Shape& shape, const char* what) {
    int64_t rank = 0;
    if (!Pod(rank, what)) {
      return false;
    }
    if (rank < 0 || rank > 8) {
      Fail("io.bounds", std::string(what) + ": shape rank " + std::to_string(rank));
      return false;
    }
    std::vector<int64_t> dims(static_cast<size_t>(rank));
    int64_t elements = 1;
    for (auto& d : dims) {
      // Bound dimensions so corrupted files cannot trigger huge allocations.
      if (!Pod(d, what)) {
        return false;
      }
      if (d < 0 || d > (1 << 24)) {
        Fail("io.bounds", std::string(what) + ": dimension " + std::to_string(d));
        return false;
      }
      elements *= std::max<int64_t>(d, 1);
      if (elements > (int64_t{1} << 28)) {
        Fail("io.bounds", std::string(what) + ": shape exceeds element budget");
        return false;
      }
    }
    shape = Shape(std::move(dims));
    return true;
  }

  bool ReadSpecChecked(BlockSpec& spec) {
    int64_t type = 0;
    if (!Pod(type, "block spec")) {
      return false;
    }
    spec.type = static_cast<BlockType>(type);
    for (int64_t* field : {&spec.in_channels, &spec.out_channels, &spec.kernel, &spec.stride,
                           &spec.padding, &spec.pool_kernel, &spec.pool_stride, &spec.in_features,
                           &spec.out_features, &spec.dim, &spec.heads, &spec.mlp_ratio,
                           &spec.vocab, &spec.seq_len, &spec.image_size, &spec.patch}) {
      if (!Pod(*field, "block spec")) {
        return false;
      }
    }
    return ReadShapeChecked(spec.rescale_in, "rescale_in") &&
           ReadShapeChecked(spec.rescale_out, "rescale_out");
  }

 private:
  std::istream& in_;
  DiagnosticList& diags_;
  bool failed_ = false;
};

GraphLoadResult LoadFromStream(std::istream& in) {
  GraphLoadResult result;
  Reader r(in, result.diagnostics);
  uint64_t magic = 0;
  int64_t num_tasks = 0;
  int64_t count = 0;
  if (!r.Pod(magic, "header")) {
    return result;
  }
  if (magic != kMagic) {
    r.Fail("io.magic", "not a GMorph graph file (bad magic)");
    return result;
  }
  if (!r.Pod(num_tasks, "header") || !r.Pod(count, "header")) {
    return result;
  }
  if (count <= 0 || count > (1 << 20)) {
    r.Fail("io.header", "node count " + std::to_string(count) + " out of range");
    return result;
  }
  if (num_tasks < 0 || num_tasks > count) {
    r.Fail("io.header", "num_tasks " + std::to_string(num_tasks) + " impossible for " +
                            std::to_string(count) + " nodes");
    return result;
  }
  std::vector<AbsNode> nodes(static_cast<size_t>(count));
  int64_t position = 0;
  for (AbsNode& n : nodes) {
    int64_t id = 0;
    int64_t task_id = 0;
    int64_t op_id = 0;
    int64_t parent = 0;
    if (!r.Pod(id, "node header") || !r.Pod(task_id, "node header") ||
        !r.Pod(op_id, "node header") || !r.Pod(parent, "node header") ||
        !r.Pod(n.capacity, "node header")) {
      return result;
    }
    // Ids/parents must index into the node array or validation below would
    // dereference out of bounds on corrupted input.
    if (id != position || parent < -1 || parent >= count) {
      r.Fail("io.bounds", "node " + std::to_string(position) + ": id " + std::to_string(id) +
                              " / parent " + std::to_string(parent) + " out of range");
      return result;
    }
    ++position;
    n.id = static_cast<int>(id);
    n.task_id = static_cast<int>(task_id);
    n.op_id = static_cast<int>(op_id);
    n.parent = static_cast<int>(parent);
    if (!r.ReadSpecChecked(n.spec) || !r.ReadShapeChecked(n.input_shape, "input shape") ||
        !r.ReadShapeChecked(n.output_shape, "output shape")) {
      return result;
    }
    int64_t num_children = 0;
    if (!r.Pod(num_children, "child list")) {
      return result;
    }
    if (num_children < 0 || num_children > count) {
      r.Fail("io.bounds", "node " + std::to_string(n.id) + ": child count " +
                              std::to_string(num_children));
      return result;
    }
    for (int64_t i = 0; i < num_children; ++i) {
      int64_t c = 0;
      if (!r.Pod(c, "child list")) {
        return result;
      }
      if (c < 0 || c >= count) {
        r.Fail("io.bounds",
               "node " + std::to_string(n.id) + ": child id " + std::to_string(c));
        return result;
      }
      n.children.push_back(static_cast<int>(c));
    }
    int64_t num_weights = 0;
    if (!r.Pod(num_weights, "weight list")) {
      return result;
    }
    if (num_weights < 0 || num_weights > 64) {
      r.Fail("io.bounds", "node " + std::to_string(n.id) + ": weight count " +
                              std::to_string(num_weights));
      return result;
    }
    for (int64_t i = 0; i < num_weights; ++i) {
      Shape shape;
      if (!r.ReadShapeChecked(shape, "weight shape")) {
        return result;
      }
      Tensor t{shape};
      in.read(reinterpret_cast<char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
      if (!in) {
        r.Fail("io.truncated", "stream ended inside weight data");
        return result;
      }
      n.weights.push_back(std::move(t));
    }
  }
  // Semantic validation goes through the verifier — no partially-initialized
  // graph ever escapes, and the caller gets every finding, not just the first.
  AbsGraph graph = AbsGraph::FromNodesUnchecked(std::move(nodes), static_cast<int>(num_tasks));
  DiagnosticList verdict = VerifyGraph(graph);
  const bool clean = verdict.ok();
  result.diagnostics.Merge(std::move(verdict));
  if (clean) {
    result.graph = std::move(graph);
  }
  return result;
}

}  // namespace

GraphLoadResult TryLoadGraph(std::istream& in) {
  return LoadFromStream(in);
}

GraphLoadResult TryLoadGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    GraphLoadResult result;
    result.diagnostics.Error("io.open", path) << "cannot open graph file";
    return result;
  }
  return LoadFromStream(in);
}

bool SaveGraph(std::ostream& out, const AbsGraph& graph) {
  if (!out) {
    return false;
  }
  WritePod(out, kMagic);
  WritePod(out, static_cast<int64_t>(graph.num_tasks()));
  WritePod(out, static_cast<int64_t>(graph.size()));
  for (const AbsNode& n : graph.nodes()) {
    WritePod(out, static_cast<int64_t>(n.id));
    WritePod(out, static_cast<int64_t>(n.task_id));
    WritePod(out, static_cast<int64_t>(n.op_id));
    WritePod(out, static_cast<int64_t>(n.parent));
    WritePod(out, n.capacity);
    WriteSpec(out, n.spec);
    WriteShape(out, n.input_shape);
    WriteShape(out, n.output_shape);
    WritePod(out, static_cast<int64_t>(n.children.size()));
    for (int c : n.children) {
      WritePod(out, static_cast<int64_t>(c));
    }
    WritePod(out, static_cast<int64_t>(n.weights.size()));
    for (const Tensor& t : n.weights) {
      WriteShape(out, t.shape());
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.size() * sizeof(float)));
    }
  }
  return static_cast<bool>(out);
}

bool SaveGraph(const std::string& path, const AbsGraph& graph) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return out && SaveGraph(out, graph);
}

bool LoadGraph(const std::string& path, AbsGraph& graph) {
  GraphLoadResult result = TryLoadGraph(path);
  if (!result.ok()) {
    return false;
  }
  graph = std::move(*result.graph);
  return true;
}

}  // namespace gmorph
