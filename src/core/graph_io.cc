#include "src/core/graph_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

namespace gmorph {
namespace {

constexpr uint64_t kMagic = 0x474d4f5250484731ull;  // "GMORPHG1"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

void WriteShape(std::ofstream& out, const Shape& shape) {
  WritePod(out, static_cast<int64_t>(shape.Rank()));
  for (int64_t d : shape.dims()) {
    WritePod(out, d);
  }
}

bool ReadShape(std::ifstream& in, Shape& shape) {
  int64_t rank = 0;
  if (!ReadPod(in, rank) || rank < 0 || rank > 8) {
    return false;
  }
  std::vector<int64_t> dims(static_cast<size_t>(rank));
  int64_t elements = 1;
  for (auto& d : dims) {
    // Bound dimensions so corrupted files cannot trigger huge allocations.
    if (!ReadPod(in, d) || d < 0 || d > (1 << 24)) {
      return false;
    }
    elements *= std::max<int64_t>(d, 1);
    if (elements > (int64_t{1} << 28)) {
      return false;
    }
  }
  shape = Shape(std::move(dims));
  return true;
}

void WriteSpec(std::ofstream& out, const BlockSpec& spec) {
  WritePod(out, static_cast<int64_t>(spec.type));
  for (int64_t v : {spec.in_channels, spec.out_channels, spec.kernel, spec.stride, spec.padding,
                    spec.pool_kernel, spec.pool_stride, spec.in_features, spec.out_features,
                    spec.dim, spec.heads, spec.mlp_ratio, spec.vocab, spec.seq_len,
                    spec.image_size, spec.patch}) {
    WritePod(out, v);
  }
  WriteShape(out, spec.rescale_in);
  WriteShape(out, spec.rescale_out);
}

bool ReadSpec(std::ifstream& in, BlockSpec& spec) {
  int64_t type = 0;
  if (!ReadPod(in, type)) {
    return false;
  }
  spec.type = static_cast<BlockType>(type);
  for (int64_t* field : {&spec.in_channels, &spec.out_channels, &spec.kernel, &spec.stride,
                         &spec.padding, &spec.pool_kernel, &spec.pool_stride, &spec.in_features,
                         &spec.out_features, &spec.dim, &spec.heads, &spec.mlp_ratio,
                         &spec.vocab, &spec.seq_len, &spec.image_size, &spec.patch}) {
    if (!ReadPod(in, *field)) {
      return false;
    }
  }
  return ReadShape(in, spec.rescale_in) && ReadShape(in, spec.rescale_out);
}

}  // namespace

bool SaveGraph(const std::string& path, const AbsGraph& graph) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  WritePod(out, kMagic);
  WritePod(out, static_cast<int64_t>(graph.num_tasks()));
  WritePod(out, static_cast<int64_t>(graph.size()));
  for (const AbsNode& n : graph.nodes()) {
    WritePod(out, static_cast<int64_t>(n.id));
    WritePod(out, static_cast<int64_t>(n.task_id));
    WritePod(out, static_cast<int64_t>(n.op_id));
    WritePod(out, static_cast<int64_t>(n.parent));
    WritePod(out, n.capacity);
    WriteSpec(out, n.spec);
    WriteShape(out, n.input_shape);
    WriteShape(out, n.output_shape);
    WritePod(out, static_cast<int64_t>(n.children.size()));
    for (int c : n.children) {
      WritePod(out, static_cast<int64_t>(c));
    }
    WritePod(out, static_cast<int64_t>(n.weights.size()));
    for (const Tensor& t : n.weights) {
      WriteShape(out, t.shape());
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.size() * sizeof(float)));
    }
  }
  return static_cast<bool>(out);
}

bool LoadGraph(const std::string& path, AbsGraph& graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint64_t magic = 0;
  int64_t num_tasks = 0;
  int64_t count = 0;
  if (!ReadPod(in, magic) || magic != kMagic || !ReadPod(in, num_tasks) ||
      !ReadPod(in, count) || count <= 0) {
    return false;
  }
  if (count > (1 << 20)) {
    return false;
  }
  std::vector<AbsNode> nodes(static_cast<size_t>(count));
  int64_t position = 0;
  for (AbsNode& n : nodes) {
    int64_t id = 0;
    int64_t task_id = 0;
    int64_t op_id = 0;
    int64_t parent = 0;
    if (!ReadPod(in, id) || !ReadPod(in, task_id) || !ReadPod(in, op_id) ||
        !ReadPod(in, parent) || !ReadPod(in, n.capacity)) {
      return false;
    }
    // Ids/parents must index into the node array or validation below would
    // dereference out of bounds on corrupted input.
    if (id != position || parent < -1 || parent >= count) {
      return false;
    }
    ++position;
    n.id = static_cast<int>(id);
    n.task_id = static_cast<int>(task_id);
    n.op_id = static_cast<int>(op_id);
    n.parent = static_cast<int>(parent);
    if (!ReadSpec(in, n.spec) || !ReadShape(in, n.input_shape) ||
        !ReadShape(in, n.output_shape)) {
      return false;
    }
    int64_t num_children = 0;
    if (!ReadPod(in, num_children) || num_children < 0 || num_children > count) {
      return false;
    }
    for (int64_t i = 0; i < num_children; ++i) {
      int64_t c = 0;
      if (!ReadPod(in, c) || c < 0 || c >= count) {
        return false;
      }
      n.children.push_back(static_cast<int>(c));
    }
    int64_t num_weights = 0;
    if (!ReadPod(in, num_weights) || num_weights < 0) {
      return false;
    }
    for (int64_t i = 0; i < num_weights; ++i) {
      Shape shape;
      if (!ReadShape(in, shape)) {
        return false;
      }
      Tensor t{shape};
      in.read(reinterpret_cast<char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
      if (!in) {
        return false;
      }
      n.weights.push_back(std::move(t));
    }
  }
  graph = AbsGraph::FromNodes(std::move(nodes), static_cast<int>(num_tasks));
  return true;
}

}  // namespace gmorph
