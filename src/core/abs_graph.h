// Abstract graph (paper §4.1): the tree-shaped IR over which graph mutation
// operates.
//
// The root is a placeholder for the shared input tensor; every other node is
// one computation block (BlockSpec) originating from some task's DNN. Each
// task's chain ends in its Head node. Feature sharing turns the initial
// "bundle of chains" into a tree: shared prefixes are computed once.
//
// Nodes carry their (optional) trained weights as immutable tensors — copies
// of an AbsGraph share weight storage, which keeps the history database cheap;
// the model generator deep-copies weights into trainable modules.
#ifndef GMORPH_SRC_CORE_ABS_GRAPH_H_
#define GMORPH_SRC_CORE_ABS_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/models/model_spec.h"
#include "src/tensor/shape.h"
#include "src/tensor/tensor.h"

namespace gmorph {

struct AbsNode {
  int id = -1;       // index into AbsGraph::nodes()
  int task_id = -1;  // task/DNN the block originated from (root: -1)
  int op_id = -1;    // topological order within the originating DNN
  BlockSpec spec;
  Shape input_shape;   // per-sample
  Shape output_shape;  // per-sample
  int64_t capacity = 0;
  int parent = -1;
  std::vector<int> children;
  // Trained weights in Module::Parameters() order; empty => fresh init.
  std::vector<Tensor> weights;

  bool IsRoot() const { return parent == -1 && op_id == -1; }
  bool IsHead() const { return spec.type == BlockType::kHead; }
};

// Capacity accounting used by rule-based filtering (paper §5.1).
struct CapacitySignature {
  int64_t total = 0;
  std::vector<int64_t> per_task_total;     // capacity on the task's root->head path
  std::vector<int64_t> per_task_specific;  // capacity serving only that task
  int64_t shared_total = 0;                // capacity serving more than one task

  // True if *this is more aggressive in feature sharing than `other`:
  // (1) fewer total capacity, (2) fewer per-task totals, (3) fewer per-task
  // task-specific capacity, (4) more shared capacity — all must hold.
  bool MoreAggressiveThan(const CapacitySignature& other) const;
};

class AbsGraph {
 public:
  AbsGraph() = default;

  // Creates a graph containing only the input placeholder root.
  static AbsGraph WithRoot(const Shape& input_shape, int num_tasks);

  // Reassembles a graph from raw nodes (deserialization); validates.
  static AbsGraph FromNodes(std::vector<AbsNode> nodes, int num_tasks);

  // Reassembles without validating. For the deserializer and the static
  // verifier, which diagnose malformed graphs instead of throwing; every
  // other caller wants FromNodes.
  static AbsGraph FromNodesUnchecked(std::vector<AbsNode> nodes, int num_tasks);

  int num_tasks() const { return num_tasks_; }
  const std::vector<AbsNode>& nodes() const { return nodes_; }
  const AbsNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  AbsNode& mutable_node(int id) { return nodes_[static_cast<size_t>(id)]; }
  int root() const { return 0; }
  int size() const { return static_cast<int>(nodes_.size()); }

  // Head node id of task `t`, or -1 if absent.
  int HeadOfTask(int t) const;

  // Appends a node under `parent`; computes output shape and capacity from the
  // spec. Returns the new node id.
  int AddNode(int parent, int task_id, int op_id, const BlockSpec& spec,
              std::vector<Tensor> weights = {});

  // Moves node `child` (with its subtree) under `new_parent`. The caller is
  // responsible for shape compatibility and acyclicity.
  void Reparent(int child, int new_parent);

  // Removes dead branches: repeatedly deletes childless non-head, non-root
  // nodes, then renumbers ids into a compact range. Returns ids removed count.
  int GarbageCollect();

  // Ids in topological order (parents before children), root first.
  std::vector<int> TopologicalOrder() const;

  // True if `ancestor` is on the root path of `node` (or equal to it).
  bool IsAncestor(int ancestor, int node) const;

  // Which tasks' heads live in the subtree of `id`.
  std::set<int> TasksServed(int id) const;

  // The shape dictionary D: input shape -> nodes that consume it.
  std::map<Shape, std::vector<int>> ShapeDictionary() const;

  CapacitySignature Signature() const;

  int64_t TotalCapacity() const;
  // Sum of per-sample forward FLOPs over all nodes.
  int64_t TotalFlops() const;

  // Structural validation: tree shape, per-task head uniqueness, edge shape
  // compatibility. Throws CheckError on violation.
  void Validate() const;

  // Human-readable tree dump.
  std::string ToString() const;

  // Structural fingerprint (ignores weights); equal graphs share topology,
  // specs and shapes. Used to deduplicate evaluated candidates.
  std::string Fingerprint() const;

 private:
  std::vector<AbsNode> nodes_;
  int num_tasks_ = 0;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_ABS_GRAPH_H_
