// Latency estimator (paper §3): measures real wall-clock inference time of a
// multi-task model on the target engine. FLOPs estimation is
// AbsGraph::TotalFlops().
#ifndef GMORPH_SRC_CORE_LATENCY_H_
#define GMORPH_SRC_CORE_LATENCY_H_

#include "src/core/multitask_model.h"

namespace gmorph {

struct LatencyOptions {
  int warmup_runs = 1;
  int measured_runs = 5;
  int64_t batch_size = 1;
};

// Median forward latency in milliseconds over `measured_runs` (after warmup)
// for a zero-filled input batch. Weights do not affect dense-kernel latency,
// so untrained candidates measure identically to trained ones.
double MeasureLatencyMs(MultiTaskModel& model, const LatencyOptions& options = {});

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_LATENCY_H_
