// History database (paper §4.3): stores evaluated candidates, the elite list
// (candidates meeting the accuracy target, ranked by search cost), and the
// capacity signatures of non-promising candidates for rule-based filtering.
#ifndef GMORPH_SRC_CORE_HISTORY_H_
#define GMORPH_SRC_CORE_HISTORY_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/abs_graph.h"

namespace gmorph {

struct EliteEntry {
  AbsGraph graph;  // carries trained weights
  // Ordering key under the configured search metric (latency ms or FLOPs).
  // FLOPs-metric searches rank deterministically even under CPU contention.
  double cost = 0.0;
  double accuracy_drop = 0.0;
};

class HistoryDatabase {
 public:
  explicit HistoryDatabase(size_t max_elites = 16) : max_elites_(max_elites) {}

  // Deduplication of structurally identical candidates.
  bool AlreadyEvaluated(const AbsGraph& g) const;
  void MarkEvaluated(const AbsGraph& g);
  // Restores a fingerprint recorded by a previous run (checkpoint resume).
  void MarkEvaluatedFingerprint(std::string fingerprint);

  // Elite candidates (meet the accuracy target). Keeps the `max_elites_`
  // lowest-cost entries; ties evict in insertion order (stable sort), so a
  // resumed search reproduces the exact elite list.
  void AddElite(AbsGraph graph, double cost, double accuracy_drop);
  const std::vector<EliteEntry>& elites() const { return elites_; }

  // Rule-based filtering support: signatures of candidates that failed the
  // accuracy target.
  void AddNonPromising(const CapacitySignature& signature);
  // True if `signature` is at least as aggressive in sharing as some known
  // non-promising candidate (and therefore can be skipped before training).
  // Non-strict: an equal signature is filtered too — a capacity profile that
  // already failed cannot succeed by restructuring alone.
  bool FilteredByRule(const CapacitySignature& signature) const;

  size_t num_evaluated() const { return fingerprints_.size(); }
  size_t num_non_promising() const { return non_promising_.size(); }

  // Checkpoint serialization support (see search_checkpoint.h).
  const std::set<std::string>& fingerprints() const { return fingerprints_; }
  const std::vector<CapacitySignature>& non_promising() const { return non_promising_; }

 private:
  size_t max_elites_;
  std::set<std::string> fingerprints_;
  std::vector<EliteEntry> elites_;
  std::vector<CapacitySignature> non_promising_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_HISTORY_H_
