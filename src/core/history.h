// History database (paper §4.3): stores evaluated candidates, the elite list
// (candidates meeting the accuracy target, ranked by latency), and the
// capacity signatures of non-promising candidates for rule-based filtering.
#ifndef GMORPH_SRC_CORE_HISTORY_H_
#define GMORPH_SRC_CORE_HISTORY_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/abs_graph.h"

namespace gmorph {

struct EliteEntry {
  AbsGraph graph;  // carries trained weights
  double latency_ms = 0.0;
  double accuracy_drop = 0.0;
};

class HistoryDatabase {
 public:
  explicit HistoryDatabase(size_t max_elites = 16) : max_elites_(max_elites) {}

  // Deduplication of structurally identical candidates.
  bool AlreadyEvaluated(const AbsGraph& g) const;
  void MarkEvaluated(const AbsGraph& g);

  // Elite candidates (meet the accuracy target). Keeps the `max_elites_`
  // lowest-latency entries.
  void AddElite(AbsGraph graph, double latency_ms, double accuracy_drop);
  const std::vector<EliteEntry>& elites() const { return elites_; }

  // Rule-based filtering support: signatures of candidates that failed the
  // accuracy target.
  void AddNonPromising(const CapacitySignature& signature);
  // True if `signature` is more aggressive in sharing than some known
  // non-promising candidate (and therefore can be skipped before training).
  bool FilteredByRule(const CapacitySignature& signature) const;

  size_t num_evaluated() const { return fingerprints_.size(); }
  size_t num_non_promising() const { return non_promising_.size(); }

 private:
  size_t max_elites_;
  std::set<std::string> fingerprints_;
  std::vector<EliteEntry> elites_;
  std::vector<CapacitySignature> non_promising_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_HISTORY_H_
