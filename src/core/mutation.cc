#include "src/core/mutation.h"

#include "src/common/check.h"

namespace gmorph {

std::string MutationKindName(MutationKind kind) {
  return kind == MutationKind::kInBranch ? "in-branch" : "cross-branch";
}

MutationKind ClassifyMutation(const AbsGraph& g, const SharePair& pair) {
  // In-branch: the pair lies on one root->leaf path (host above guest; the
  // opposite order is structurally invalid).
  return g.IsAncestor(pair.host, pair.guest) ? MutationKind::kInBranch
                                             : MutationKind::kCrossBranch;
}

bool ApplyMutation(AbsGraph& g, const SharePair& pair) {
  if (!PairValid(g, pair, ShapeSimilarity::kAny)) {
    return false;
  }
  const AbsNode& host = g.node(pair.host);
  const AbsNode& guest = g.node(pair.guest);
  const int p = host.parent;
  if (host.input_shape == guest.input_shape) {
    g.Reparent(pair.guest, p);
  } else {
    const int rescale = g.AddNode(p, guest.task_id, guest.op_id,
                                  RescaleSpec(host.input_shape, guest.input_shape));
    g.Reparent(pair.guest, rescale);
  }
  g.GarbageCollect();
  g.Validate();
  return true;
}

std::optional<AbsGraph> MutatePass(const AbsGraph& base, const std::vector<SharePair>& pairs) {
  AbsGraph g = base;
  bool any = false;
  for (const SharePair& pair : pairs) {
    any = ApplyMutation(g, pair) || any;
  }
  if (!any) {
    return std::nullopt;
  }
  return g;
}

std::optional<AbsGraph> SampleMutatePass(const AbsGraph& base, int num_mutations,
                                         ShapeSimilarity mode, Rng& rng) {
  AbsGraph g = base;
  bool any = false;
  for (int i = 0; i < num_mutations; ++i) {
    // Node ids shift after each mutation (garbage collection renumbers), so
    // pairs are re-discovered on the evolving graph.
    const std::vector<SharePair> pairs = FindShareablePairs(g, mode);
    if (pairs.empty()) {
      break;
    }
    const SharePair pick = pairs[static_cast<size_t>(rng.NextInt(static_cast<int>(pairs.size())))];
    any = ApplyMutation(g, pick) || any;
  }
  if (!any) {
    return std::nullopt;
  }
  return g;
}

}  // namespace gmorph
