#include "src/core/search_checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/artifact_header.h"
#include "src/core/graph_io.h"

namespace gmorph {
namespace {

const std::string kHeader = ArtifactHeaderLine(kCheckpointArtifact);

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void WriteBool(std::ostream& out, bool value) {
  WritePod(out, static_cast<int64_t>(value ? 1 : 0));
}

void WriteScores(std::ostream& out, const std::vector<double>& scores) {
  WritePod(out, static_cast<int64_t>(scores.size()));
  for (double s : scores) {
    WritePod(out, s);
  }
}

void WriteStages(std::ostream& out, const StageSeconds& s) {
  for (double v : {s.sample, s.verify, s.profile, s.finetune, s.score}) {
    WritePod(out, v);
  }
}

void WriteInt64Vec(std::ostream& out, const std::vector<int64_t>& v) {
  WritePod(out, static_cast<int64_t>(v.size()));
  for (int64_t x : v) {
    WritePod(out, x);
  }
}

// Mirrors graph_io's Reader: goes inert on the first failure, reporting a
// ckpt.* diagnostic, so the decode loop can bail without error plumbing.
class Reader {
 public:
  Reader(std::istream& in, DiagnosticList& diags, const std::string& path)
      : in_(in), diags_(diags), path_(path) {}

  bool failed() const { return failed_; }

  void Fail(const char* rule, const std::string& what) {
    if (!failed_) {
      failed_ = true;
      diags_.Error(rule, path_) << what;
    }
  }

  template <typename T>
  bool Pod(T& value, const char* what) {
    if (failed_) {
      return false;
    }
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_) {
      Fail("ckpt.truncated", std::string("file ended inside ") + what);
      return false;
    }
    return true;
  }

  bool Bool(bool& value, const char* what) {
    int64_t raw = 0;
    if (!Pod(raw, what)) {
      return false;
    }
    if (raw != 0 && raw != 1) {
      Fail("ckpt.bounds", std::string(what) + ": flag value " + std::to_string(raw));
      return false;
    }
    value = raw != 0;
    return true;
  }

  bool Count(int64_t& value, int64_t max, const char* what) {
    if (!Pod(value, what)) {
      return false;
    }
    if (value < 0 || value > max) {
      Fail("ckpt.bounds", std::string(what) + ": count " + std::to_string(value) +
                              " out of range [0, " + std::to_string(max) + "]");
      return false;
    }
    return true;
  }

  bool Scores(std::vector<double>& scores, const char* what) {
    int64_t count = 0;
    if (!Count(count, 4096, what)) {
      return false;
    }
    scores.resize(static_cast<size_t>(count));
    for (double& s : scores) {
      if (!Pod(s, what)) {
        return false;
      }
    }
    return true;
  }

  bool Stages(StageSeconds& s, const char* what) {
    return Pod(s.sample, what) && Pod(s.verify, what) && Pod(s.profile, what) &&
           Pod(s.finetune, what) && Pod(s.score, what);
  }

  bool Int64Vec(std::vector<int64_t>& v, const char* what) {
    int64_t count = 0;
    if (!Count(count, 4096, what)) {
      return false;
    }
    v.resize(static_cast<size_t>(count));
    for (int64_t& x : v) {
      if (!Pod(x, what)) {
        return false;
      }
    }
    return true;
  }

  // Embedded graph via graph_io; its io.*/graph.* diagnostics are merged so
  // a corrupt embedded graph is attributed precisely, not just "truncated".
  bool Graph(std::istream& in, AbsGraph& graph, const char* what) {
    if (failed_) {
      return false;
    }
    GraphLoadResult result = TryLoadGraph(in);
    if (!result.ok()) {
      diags_.Merge(result.diagnostics);
      Fail("ckpt.truncated", std::string("embedded graph unreadable in ") + what);
      return false;
    }
    graph = std::move(*result.graph);
    return true;
  }

 private:
  std::istream& in_;
  DiagnosticList& diags_;
  std::string path_;
  bool failed_ = false;
};

CheckpointLoadResult LoadFromStream(std::istream& in, const std::string& path) {
  CheckpointLoadResult result;
  std::string header;
  if (!std::getline(in, header)) {
    result.diagnostics.Error("ckpt.magic", path) << "empty file (missing header line)";
    return result;
  }
  switch (CheckArtifactHeaderLine(header, kCheckpointArtifact)) {
    case HeaderCheck::kMissing:
      result.diagnostics.Error("ckpt.magic", path)
          << "not a GMorph checkpoint (header '" << header << "')";
      return result;
    case HeaderCheck::kWrongVersion:
      result.diagnostics.Error("ckpt.version", path)
          << "unsupported checkpoint version '" << header << "' (expected '" << kHeader << "')";
      return result;
    case HeaderCheck::kOk:
      break;
  }

  SearchCheckpoint ckpt;
  Reader r(in, result.diagnostics, path);
  int64_t next_iteration = 0;
  if (!r.Pod(ckpt.options_hash, "options hash") || !r.Pod(next_iteration, "iteration cursor") ||
      !r.Pod(ckpt.elapsed_seconds, "elapsed seconds")) {
    return result;
  }
  if (next_iteration < 0 || next_iteration > (1 << 24)) {
    r.Fail("ckpt.bounds", "iteration cursor " + std::to_string(next_iteration));
    return result;
  }
  ckpt.next_iteration = static_cast<int>(next_iteration);

  if (!r.Pod(ckpt.original_latency_ms, "baseline") || !r.Pod(ckpt.original_flops, "baseline") ||
      !r.Scores(ckpt.teacher_scores, "teacher scores")) {
    return result;
  }

  if (!r.Bool(ckpt.found_improvement, "best flag") ||
      !r.Graph(in, ckpt.best_graph, "best graph") ||
      !r.Pod(ckpt.best_latency_ms, "best metrics") || !r.Pod(ckpt.best_flops, "best metrics") ||
      !r.Pod(ckpt.best_cost, "best metrics") || !r.Scores(ckpt.best_task_scores, "best scores")) {
    return result;
  }

  int64_t trace_count = 0;
  if (!r.Count(trace_count, 1 << 20, "trace")) {
    return result;
  }
  ckpt.trace.resize(static_cast<size_t>(trace_count));
  for (IterationRecord& rec : ckpt.trace) {
    int64_t iteration = 0;
    if (!r.Pod(iteration, "trace record") || !r.Pod(rec.candidate_latency_ms, "trace record") ||
        !r.Pod(rec.candidate_flops, "trace record") || !r.Pod(rec.accuracy_drop, "trace record") ||
        !r.Bool(rec.met_target, "trace record") || !r.Bool(rec.filtered_by_rule, "trace record") ||
        !r.Bool(rec.terminated_early, "trace record") || !r.Bool(rec.duplicate, "trace record") ||
        !r.Bool(rec.rejected_by_verifier, "trace record") ||
        !r.Bool(rec.cache_hit, "trace record") || !r.Pod(rec.finetune_seconds, "trace record") ||
        !r.Pod(rec.elapsed_seconds, "trace record") || !r.Pod(rec.best_latency_ms, "trace record") ||
        !r.Pod(rec.best_flops, "trace record") || !r.Stages(rec.stages, "trace record")) {
      return result;
    }
    rec.iteration = static_cast<int>(iteration);
  }

  int64_t finetuned = 0;
  int64_t filtered = 0;
  int64_t rejected = 0;
  int64_t hits = 0;
  if (!r.Count(finetuned, 1 << 24, "counters") || !r.Count(filtered, 1 << 24, "counters") ||
      !r.Count(rejected, 1 << 24, "counters") || !r.Count(hits, 1 << 24, "counters") ||
      !r.Stages(ckpt.stage_seconds, "stage seconds")) {
    return result;
  }
  ckpt.candidates_finetuned = static_cast<int>(finetuned);
  ckpt.candidates_filtered = static_cast<int>(filtered);
  ckpt.candidates_rejected = static_cast<int>(rejected);
  ckpt.cache_hits = static_cast<int>(hits);

  int64_t fp_count = 0;
  if (!r.Count(fp_count, 1 << 22, "fingerprint list")) {
    return result;
  }
  ckpt.fingerprints.resize(static_cast<size_t>(fp_count));
  for (std::string& fp : ckpt.fingerprints) {
    int64_t len = 0;
    if (!r.Count(len, 1 << 16, "fingerprint length")) {
      return result;
    }
    fp.resize(static_cast<size_t>(len));
    if (len > 0) {
      in.read(fp.data(), static_cast<std::streamsize>(len));
      if (!in) {
        r.Fail("ckpt.truncated", "file ended inside fingerprint");
        return result;
      }
    }
  }

  int64_t elite_count = 0;
  if (!r.Count(elite_count, 4096, "elite list")) {
    return result;
  }
  ckpt.elites.resize(static_cast<size_t>(elite_count));
  for (SearchCheckpoint::EliteRecord& e : ckpt.elites) {
    if (!r.Graph(in, e.graph, "elite graph") || !r.Pod(e.cost, "elite record") ||
        !r.Pod(e.accuracy_drop, "elite record")) {
      return result;
    }
  }

  int64_t sig_count = 0;
  if (!r.Count(sig_count, 1 << 20, "non-promising list")) {
    return result;
  }
  ckpt.non_promising.resize(static_cast<size_t>(sig_count));
  for (CapacitySignature& sig : ckpt.non_promising) {
    if (!r.Pod(sig.total, "capacity signature") || !r.Pod(sig.shared_total, "capacity signature") ||
        !r.Int64Vec(sig.per_task_total, "capacity signature") ||
        !r.Int64Vec(sig.per_task_specific, "capacity signature")) {
      return result;
    }
  }

  int64_t policy_iteration = 0;
  if (!r.Pod(policy_iteration, "policy state") || !r.Pod(ckpt.policy.last_drop, "policy state")) {
    return result;
  }
  if (policy_iteration < 0 || policy_iteration > (1 << 24)) {
    r.Fail("ckpt.bounds", "policy iteration " + std::to_string(policy_iteration));
    return result;
  }
  ckpt.policy.iteration = static_cast<int>(policy_iteration);

  result.checkpoint = std::move(ckpt);
  return result;
}

}  // namespace

bool SaveCheckpoint(const std::string& path, const SearchCheckpoint& ckpt) {
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out << kHeader << "\n";
    WritePod(out, ckpt.options_hash);
    WritePod(out, static_cast<int64_t>(ckpt.next_iteration));
    WritePod(out, ckpt.elapsed_seconds);

    WritePod(out, ckpt.original_latency_ms);
    WritePod(out, ckpt.original_flops);
    WriteScores(out, ckpt.teacher_scores);

    WriteBool(out, ckpt.found_improvement);
    if (!SaveGraph(out, ckpt.best_graph)) {
      return false;
    }
    WritePod(out, ckpt.best_latency_ms);
    WritePod(out, ckpt.best_flops);
    WritePod(out, ckpt.best_cost);
    WriteScores(out, ckpt.best_task_scores);

    WritePod(out, static_cast<int64_t>(ckpt.trace.size()));
    for (const IterationRecord& rec : ckpt.trace) {
      WritePod(out, static_cast<int64_t>(rec.iteration));
      WritePod(out, rec.candidate_latency_ms);
      WritePod(out, rec.candidate_flops);
      WritePod(out, rec.accuracy_drop);
      WriteBool(out, rec.met_target);
      WriteBool(out, rec.filtered_by_rule);
      WriteBool(out, rec.terminated_early);
      WriteBool(out, rec.duplicate);
      WriteBool(out, rec.rejected_by_verifier);
      WriteBool(out, rec.cache_hit);
      WritePod(out, rec.finetune_seconds);
      WritePod(out, rec.elapsed_seconds);
      WritePod(out, rec.best_latency_ms);
      WritePod(out, rec.best_flops);
      WriteStages(out, rec.stages);
    }

    WritePod(out, static_cast<int64_t>(ckpt.candidates_finetuned));
    WritePod(out, static_cast<int64_t>(ckpt.candidates_filtered));
    WritePod(out, static_cast<int64_t>(ckpt.candidates_rejected));
    WritePod(out, static_cast<int64_t>(ckpt.cache_hits));
    WriteStages(out, ckpt.stage_seconds);

    WritePod(out, static_cast<int64_t>(ckpt.fingerprints.size()));
    for (const std::string& fp : ckpt.fingerprints) {
      WritePod(out, static_cast<int64_t>(fp.size()));
      out.write(fp.data(), static_cast<std::streamsize>(fp.size()));
    }

    WritePod(out, static_cast<int64_t>(ckpt.elites.size()));
    for (const SearchCheckpoint::EliteRecord& e : ckpt.elites) {
      if (!SaveGraph(out, e.graph)) {
        return false;
      }
      WritePod(out, e.cost);
      WritePod(out, e.accuracy_drop);
    }

    WritePod(out, static_cast<int64_t>(ckpt.non_promising.size()));
    for (const CapacitySignature& sig : ckpt.non_promising) {
      WritePod(out, sig.total);
      WritePod(out, sig.shared_total);
      WriteInt64Vec(out, sig.per_task_total);
      WriteInt64Vec(out, sig.per_task_specific);
    }

    WritePod(out, static_cast<int64_t>(ckpt.policy.iteration));
    WritePod(out, ckpt.policy.last_drop);
    out.flush();
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

CheckpointLoadResult TryLoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    CheckpointLoadResult result;
    result.diagnostics.Error("ckpt.open", path) << "cannot open checkpoint file";
    return result;
  }
  return LoadFromStream(in, path);
}

DiagnosticList VerifyCheckpointFile(const std::string& path) {
  CheckpointLoadResult result = TryLoadCheckpoint(path);
  DiagnosticList diags = std::move(result.diagnostics);
  if (result.checkpoint.has_value()) {
    const SearchCheckpoint& ckpt = *result.checkpoint;
    diags.Note("ckpt.summary", path)
        << "checkpoint at iteration " << ckpt.next_iteration << ": " << ckpt.trace.size()
        << " trace records, " << ckpt.fingerprints.size() << " evaluated fingerprints, "
        << ckpt.elites.size() << " elites, " << ckpt.non_promising.size()
        << " non-promising signatures";
  }
  return diags;
}

}  // namespace gmorph
