#include "src/core/eval_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/artifact_header.h"
#include "src/core/graph_io.h"

namespace gmorph {
namespace {

const std::string kHeader = ArtifactHeaderLine(kEvalCacheArtifact);

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips IEEE doubles exactly, keeping cached drops/latencies
  // bit-identical to the run that produced them.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatHex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string EntryLine(const std::string& fingerprint, const EvaluationCache::Entry& e) {
  std::ostringstream os;
  os << "entry met=" << (e.met_target ? 1 : 0) << " early=" << (e.terminated_early ? 1 : 0)
     << " epochs=" << e.epochs_run << " flops=" << e.flops
     << " drop=" << FormatDouble(e.accuracy_drop) << " lat=" << FormatDouble(e.latency_ms)
     << " ftsec=" << FormatDouble(e.finetune_seconds) << " scores=";
  for (size_t i = 0; i < e.task_scores.size(); ++i) {
    os << (i > 0 ? "," : "") << FormatDouble(e.task_scores[i]);
  }
  if (e.task_scores.empty()) {
    os << "-";
  }
  os << " graph=" << (e.graph_file.empty() ? "-" : e.graph_file) << " fp=" << fingerprint;
  return os.str();
}

// Parses "key=value" where value ends at the next space. Returns false (and
// does not advance) on key mismatch or malformed token.
bool TakeField(std::istringstream& in, const char* key, std::string& value) {
  std::string token;
  if (!(in >> token)) {
    return false;
  }
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) {
    return false;
  }
  value = token.substr(prefix.size());
  return !value.empty();
}

bool ParseBoolField(std::istringstream& in, const char* key, bool& out) {
  std::string v;
  if (!TakeField(in, key, v) || (v != "0" && v != "1")) {
    return false;
  }
  out = v == "1";
  return true;
}

template <typename T>
bool ParseNumField(std::istringstream& in, const char* key, T& out) {
  std::string v;
  if (!TakeField(in, key, v)) {
    return false;
  }
  std::istringstream vs(v);
  vs >> out;
  return static_cast<bool>(vs) && vs.eof();
}

// Parses one "entry ..." line (after the leading token). Returns false on any
// syntax problem; `fingerprint` receives everything after "fp=".
bool ParseEntryLine(const std::string& line, std::string& fingerprint,
                    EvaluationCache::Entry& e) {
  // The fingerprint contains spaces, so split it off first at " fp=".
  const size_t fp_pos = line.find(" fp=");
  if (fp_pos == std::string::npos) {
    return false;
  }
  fingerprint = line.substr(fp_pos + 4);
  if (fingerprint.empty()) {
    return false;
  }
  std::istringstream in(line.substr(0, fp_pos));
  std::string head;
  in >> head;
  if (head != "entry") {
    return false;
  }
  std::string scores;
  std::string graph;
  if (!ParseBoolField(in, "met", e.met_target) || !ParseBoolField(in, "early", e.terminated_early) ||
      !ParseNumField(in, "epochs", e.epochs_run) || !ParseNumField(in, "flops", e.flops) ||
      !ParseNumField(in, "drop", e.accuracy_drop) || !ParseNumField(in, "lat", e.latency_ms) ||
      !ParseNumField(in, "ftsec", e.finetune_seconds) || !TakeField(in, "scores", scores) ||
      !TakeField(in, "graph", graph)) {
    return false;
  }
  e.graph_file = graph == "-" ? "" : graph;
  e.task_scores.clear();
  if (scores != "-") {
    std::istringstream ss(scores);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      std::istringstream cs(cell);
      double v = 0.0;
      cs >> v;
      if (!cs || !cs.eof()) {
        return false;
      }
      e.task_scores.push_back(v);
    }
    if (e.task_scores.empty()) {
      return false;
    }
  }
  return true;
}

// Shared scan over one index file. `expected_options` null = accept any
// options hash (the lint path); entries land in `out` keyed by fingerprint.
void ScanIndexFile(const std::string& path, const uint64_t* expected_options,
                   std::map<std::string, EvaluationCache::Entry>* out, DiagnosticList& diags) {
  std::ifstream in(path);
  if (!in) {
    diags.Error("cache.open", path) << "cannot open evaluation cache file";
    return;
  }
  std::string line;
  if (!std::getline(in, line)) {
    diags.Error("cache.header", path) << "empty evaluation cache file";
    return;
  }
  switch (CheckArtifactHeaderLine(line, kEvalCacheArtifact)) {
    case HeaderCheck::kMissing:
      diags.Error("cache.header", path) << "missing " << kEvalCacheArtifact.kind << " header";
      return;
    case HeaderCheck::kWrongVersion:
      diags.Error("cache.version", path) << "unsupported cache version '" << line << "'";
      return;
    case HeaderCheck::kOk:
      break;
  }
  int lineno = 1;
  bool saw_options = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string where = path + ":" + std::to_string(lineno);
    if (line.empty()) {
      continue;
    }
    if (line.rfind("options ", 0) == 0) {
      uint64_t hash = 0;
      std::istringstream os(line.substr(8));
      os >> std::hex >> hash;
      if (!os) {
        diags.Error("cache.options", where) << "malformed options hash";
        continue;
      }
      saw_options = true;
      if (expected_options != nullptr && hash != *expected_options) {
        diags.Error("cache.options", where)
            << "options hash " << FormatHex(hash) << " does not match expected "
            << FormatHex(*expected_options);
      }
      continue;
    }
    if (line.rfind("entry", 0) == 0) {
      std::string fingerprint;
      EvaluationCache::Entry e;
      if (!ParseEntryLine(line, fingerprint, e)) {
        diags.Error("cache.entry", where) << "malformed cache entry";
        continue;
      }
      if (e.met_target && e.graph_file.empty()) {
        diags.Error("cache.entry", where) << "met-target entry without a trained graph file";
        continue;
      }
      if (out != nullptr) {
        (*out)[fingerprint] = std::move(e);
      }
      continue;
    }
    diags.Error("cache.entry", where) << "unrecognized line";
  }
  if (!saw_options) {
    diags.Error("cache.options", path) << "missing options line";
  }
}

}  // namespace

uint64_t Fnv1aHash(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string EvaluationCache::ResolveDir(const std::string& override_dir) {
  if (!override_dir.empty()) {
    return override_dir;
  }
  const char* env = std::getenv("GMORPH_CACHE_DIR");
  return env != nullptr && env[0] != '\0' ? env : "gmorph_bench_cache";
}

EvaluationCache::EvaluationCache(std::string dir, uint64_t options_hash)
    : dir_(std::move(dir)), options_hash_(options_hash) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  index_path_ = dir_ + "/evalcache_" + FormatHex(options_hash_) + ".txt";
  if (std::filesystem::exists(index_path_, ec)) {
    ScanIndexFile(index_path_, &options_hash_, &entries_, load_diagnostics_);
    header_written_ = load_diagnostics_.ok() || !entries_.empty();
  }
}

std::optional<EvaluationCache::CachedEval> EvaluationCache::Lookup(
    const std::string& fingerprint) {
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  CachedEval hit;
  hit.entry = it->second;
  if (hit.entry.met_target) {
    // The trained weights are required to (re)build the elite. Reloading runs
    // the GraphVerifier; a stale, corrupt, or mismatching graph is a miss.
    GraphLoadResult loaded = TryLoadGraph(dir_ + "/" + hit.entry.graph_file);
    if (!loaded.ok() || loaded.graph->Fingerprint() != fingerprint) {
      return std::nullopt;
    }
    hit.trained_graph = std::move(loaded.graph);
  }
  return hit;
}

void EvaluationCache::Store(const std::string& fingerprint, const Entry& entry,
                            const AbsGraph* trained_graph) {
  Entry stored = entry;
  stored.graph_file.clear();
  if (trained_graph != nullptr) {
    stored.graph_file = "evalgraph_" + FormatHex(options_hash_) + "_" +
                        FormatHex(Fnv1aHash(fingerprint)) + ".gmorph";
    if (!SaveGraph(dir_ + "/" + stored.graph_file, *trained_graph)) {
      stored.graph_file.clear();
      if (stored.met_target) {
        return;  // an elite entry without weights would be unusable; skip
      }
    }
  }
  std::ofstream out(index_path_, std::ios::app);
  if (!out) {
    return;
  }
  if (!header_written_) {
    out << kHeader << "\n" << "options " << FormatHex(options_hash_) << "\n";
    header_written_ = true;
  }
  out << EntryLine(fingerprint, stored) << "\n";
  out.flush();
  entries_[fingerprint] = std::move(stored);
}

DiagnosticList VerifyEvalCacheFile(const std::string& path) {
  DiagnosticList diags;
  std::map<std::string, EvaluationCache::Entry> entries;
  ScanIndexFile(path, /*expected_options=*/nullptr, &entries, diags);
  const std::string dir = std::filesystem::path(path).parent_path().string();
  for (const auto& [fingerprint, e] : entries) {
    if (e.graph_file.empty()) {
      continue;
    }
    const std::string graph_path = (dir.empty() ? "." : dir) + "/" + e.graph_file;
    GraphLoadResult loaded = TryLoadGraph(graph_path);
    if (!loaded.ok()) {
      diags.Error("cache.graph", graph_path) << "trained graph for cached entry fails to load";
      diags.Merge(loaded.diagnostics);
      continue;
    }
    if (loaded.graph->Fingerprint() != fingerprint) {
      diags.Error("cache.fingerprint", graph_path)
          << "trained graph fingerprint does not match its cache entry";
    }
  }
  if (diags.ok()) {
    diags.Note("cache.summary", path) << entries.size() << " cache entries verified";
  }
  return diags;
}

}  // namespace gmorph
