// Graphviz export of abstract graphs — the counterpart of the paper's Fig. 9
// multi-task-model visualizations. Nodes are colored per originating task;
// shared nodes (serving several tasks) are highlighted.
#ifndef GMORPH_SRC_CORE_DOT_EXPORT_H_
#define GMORPH_SRC_CORE_DOT_EXPORT_H_

#include <string>

#include "src/core/abs_graph.h"

namespace gmorph {

// Returns a `digraph` document; render with `dot -Tpng`.
std::string ToDot(const AbsGraph& graph, const std::string& title = "gmorph");

// Convenience: writes ToDot() to `path`. Returns false on I/O failure.
bool WriteDotFile(const std::string& path, const AbsGraph& graph,
                  const std::string& title = "gmorph");

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_DOT_EXPORT_H_
