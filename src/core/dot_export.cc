#include "src/core/dot_export.h"

#include <fstream>
#include <sstream>

namespace gmorph {
namespace {

// Pastel fill colors cycled per task id.
const char* TaskColor(int task_id) {
  static const char* kColors[] = {"#aec6e8", "#ffd8a8", "#c3e6cb", "#e8c6e6",
                                  "#ffe9a8", "#c6e2e8"};
  if (task_id < 0) {
    return "#eeeeee";
  }
  return kColors[static_cast<size_t>(task_id) % (sizeof(kColors) / sizeof(kColors[0]))];
}

std::string EscapeLabel(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ToDot(const AbsGraph& graph, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << EscapeLabel(title) << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, style=filled, fontsize=10];\n";
  for (const AbsNode& n : graph.nodes()) {
    if (n.IsRoot()) {
      os << "  n0 [label=\"input " << EscapeLabel(n.output_shape.ToString())
         << "\", shape=ellipse, fillcolor=\"#f5f5f5\"];\n";
      continue;
    }
    const std::set<int> served = graph.TasksServed(n.id);
    std::ostringstream label;
    label << n.spec.ToString() << "\\n" << n.output_shape.ToString();
    os << "  n" << n.id << " [label=\"" << EscapeLabel(label.str()) << "\", fillcolor=\""
       << TaskColor(n.task_id) << "\"";
    if (served.size() > 1) {
      os << ", penwidth=2.5";  // shared node: emphasized border
    }
    if (n.spec.type == BlockType::kRescale) {
      os << ", shape=parallelogram";
    }
    os << "];\n";
  }
  for (const AbsNode& n : graph.nodes()) {
    for (int c : n.children) {
      os << "  n" << n.id << " -> n" << c << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

bool WriteDotFile(const std::string& path, const AbsGraph& graph, const std::string& title) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToDot(graph, title);
  return static_cast<bool>(out);
}

}  // namespace gmorph
