// Input-shareable node pairs (paper Definition 2).
//
// A pair (host, guest) means the guest node reuses the host node's *input*
// features: the guest is re-parented under the host's parent (with a rescale
// adapter when shapes differ), and the guest's now-dead former ancestors are
// garbage-collected — that is the computation saving.
#ifndef GMORPH_SRC_CORE_SHAREABLE_H_
#define GMORPH_SRC_CORE_SHAREABLE_H_

#include <vector>

#include "src/core/abs_graph.h"

namespace gmorph {

struct SharePair {
  int host = -1;   // node n: its input features get reused
  int guest = -1;  // node m: re-reads the host's input
};

// The paper's similarity restriction (§2.2.1): GMorph proper only shares
// between similar input shapes; the Figure-1 study also samples dissimilar
// pairs to show why the restriction exists.
enum class ShapeSimilarity {
  kSimilar,     // same rank, at least one dimension equal
  kDissimilar,  // same rank, no dimension equal
  kAny,
};

// True under the kSimilar predicate.
bool ShapesSimilar(const Shape& a, const Shape& b);

// True if a rescale adapter can map features of shape `from` to `to`
// (identical shapes always qualify; otherwise same rank 2 or 3).
bool RescaleFeasible(const Shape& from, const Shape& to);

// True if applying `pair` to `g` is structurally legal (acyclic, rescalable,
// not a no-op).
bool PairValid(const AbsGraph& g, const SharePair& pair, ShapeSimilarity mode);

// All valid pairs in `g` under `mode`.
std::vector<SharePair> FindShareablePairs(const AbsGraph& g, ShapeSimilarity mode);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_SHAREABLE_H_
