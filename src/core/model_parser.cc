#include "src/core/model_parser.h"

#include "src/common/check.h"

namespace gmorph {
namespace {

AbsGraph BuildChains(const std::vector<const ModelSpec*>& specs,
                     const std::vector<const TaskModel*>* models) {
  GMORPH_CHECK(!specs.empty());
  const Shape input = specs[0]->input_shape;
  for (const ModelSpec* s : specs) {
    GMORPH_CHECK(s->input_shape == input,
                     "all task models must consume the same input; " << s->name << " expects "
                                                                     << s->input_shape.ToString()
                                                                     << " vs "
                                                                     << input.ToString());
  }
  AbsGraph g = AbsGraph::WithRoot(input, static_cast<int>(specs.size()));
  for (size_t t = 0; t < specs.size(); ++t) {
    int parent = g.root();
    for (size_t i = 0; i < specs[t]->blocks.size(); ++i) {
      std::vector<Tensor> weights;
      if (models != nullptr) {
        weights = (*models)[t]->block(i).ExportParameters();
      }
      parent = g.AddNode(parent, static_cast<int>(t), static_cast<int>(i),
                         specs[t]->blocks[i], std::move(weights));
    }
    GMORPH_CHECK(g.node(parent).IsHead(),
                     "model " << specs[t]->name << " must end in a Head block");
  }
  g.Validate();
  return g;
}

}  // namespace

AbsGraph ParseTaskModels(const std::vector<const TaskModel*>& models) {
  std::vector<const ModelSpec*> specs;
  specs.reserve(models.size());
  for (const TaskModel* m : models) {
    specs.push_back(&m->spec());
  }
  return BuildChains(specs, &models);
}

AbsGraph ParseModelSpecs(const std::vector<ModelSpec>& specs) {
  std::vector<const ModelSpec*> ptrs;
  ptrs.reserve(specs.size());
  for (const ModelSpec& s : specs) {
    ptrs.push_back(&s);
  }
  return BuildChains(ptrs, nullptr);
}

}  // namespace gmorph
