// Search-space sampling policies (paper §4.3.1).
//
// SimulatedAnnealingPolicy implements the paper's schedule: in iteration
// `iter` the base graph is an elite candidate with probability
//     p = (1 - exp(-(1 - delta) / (Tc * Ti))) * sqrt(Nc / Ni),
// where delta is the last observed accuracy drop, Tc = Ti * alpha^iter the
// current temperature, Nc the current and Ni the maximum elite count. Early
// on p ~ 0 (explore mutations of the original multi-DNNs); as the temperature
// decays p grows toward sqrt(Nc/Ni) (exploit elites).
//
// Note on constants: the paper lists alpha = 0.99, Ti = 90, Ni = 16. With
// Ti = 90 the exponent stays ~1e-4 for hundreds of iterations, so p never
// leaves zero; we default Ti to 2 so the published schedule actually switches
// from exploration to exploitation within a 200-iteration budget. Ti is
// configurable to reproduce the literal constants.
#ifndef GMORPH_SRC_CORE_SAMPLING_POLICY_H_
#define GMORPH_SRC_CORE_SAMPLING_POLICY_H_

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/core/history.h"

namespace gmorph {

// Serializable policy state for search checkpoint/resume: the annealing step
// (which fixes the current temperature) and the last observed drop. Policies
// without state leave the defaults.
struct PolicyState {
  int iteration = 0;
  double last_drop = 0.0;
};

class SamplingPolicy {
 public:
  virtual ~SamplingPolicy() = default;

  // Picks the base graph for the next mutation pass.
  virtual const AbsGraph& SampleBase(const AbsGraph& original, const HistoryDatabase& history,
                                     Rng& rng) = 0;

  // Feedback after a candidate was evaluated: the accuracy drop (fraction,
  // e.g. 0.015 = 1.5%).
  virtual void Observe(double accuracy_drop) = 0;

  virtual void AdvanceIteration() = 0;

  virtual PolicyState ExportState() const { return {}; }
  virtual void RestoreState(const PolicyState& state) { (void)state; }

  virtual std::string Name() const = 0;
};

struct AnnealingOptions {
  double alpha = 0.99;        // temperature decay per iteration
  double initial_temp = 2.0;  // Ti (paper: 90; see header comment)
  size_t max_elites = 16;     // Ni
};

class SimulatedAnnealingPolicy : public SamplingPolicy {
 public:
  explicit SimulatedAnnealingPolicy(const AnnealingOptions& options = {});

  const AbsGraph& SampleBase(const AbsGraph& original, const HistoryDatabase& history,
                             Rng& rng) override;
  void Observe(double accuracy_drop) override;
  void AdvanceIteration() override;
  PolicyState ExportState() const override { return {iteration_, last_drop_}; }
  void RestoreState(const PolicyState& state) override {
    iteration_ = state.iteration;
    last_drop_ = state.last_drop;
  }
  std::string Name() const override { return "SimulatedAnnealing"; }

  // Exposed for tests: the elite-sampling probability at the current state.
  double EliteProbability(size_t num_elites) const;

 private:
  AnnealingOptions options_;
  int iteration_ = 0;
  double last_drop_ = 0.0;
};

// Baseline policy from §6.4: always mutates the original multi-DNN graph.
class RandomPolicy : public SamplingPolicy {
 public:
  const AbsGraph& SampleBase(const AbsGraph& original, const HistoryDatabase& history,
                             Rng& rng) override;
  void Observe(double accuracy_drop) override;
  void AdvanceIteration() override {}
  std::string Name() const override { return "RandomSampling"; }
};

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_SAMPLING_POLICY_H_
