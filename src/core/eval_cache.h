// Content-addressed evaluation cache for the mutation search.
//
// Fine-tuning dominates search cost, yet repeated bench runs and the
// search-ablation experiments re-evaluate the very same candidates: the
// mutation streams are derived deterministically from the seed, so a rerun
// with identical options samples identical graphs. The cache keys each
// evaluation outcome by the candidate's structural fingerprint
// (AbsGraph::Fingerprint(), the same string the GraphVerifier round-trip
// checks) under a namespace derived from the eval-relevant options hash, and
// persists it as a "gmorph-evalcache v1" text file in the cache directory
// (GMORPH_CACHE_DIR, default "gmorph_bench_cache") so outcomes survive the
// process.
//
// Safety: a lookup only reuses an entry whose stored fingerprint matches the
// candidate's exactly (hash collisions cannot alias), and a stored trained
// graph is reloaded through graph_io — which re-runs the GraphVerifier — and
// must fingerprint-match the candidate, else the entry degrades to a miss.
// Corrupt cache files surface as cache.* diagnostics (see VerifyEvalCacheFile
// and `gmorph_cli --verify`), never as a crash or a poisoned search.
#ifndef GMORPH_SRC_CORE_EVAL_CACHE_H_
#define GMORPH_SRC_CORE_EVAL_CACHE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/abs_graph.h"

namespace gmorph {

// FNV-1a over bytes; used for cache keys and option-namespace hashes.
uint64_t Fnv1aHash(std::string_view bytes);

class EvaluationCache {
 public:
  struct Entry {
    bool met_target = false;
    bool terminated_early = false;
    int epochs_run = 0;
    double accuracy_drop = 0.0;
    double latency_ms = 0.0;
    int64_t flops = 0;
    double finetune_seconds = 0.0;
    std::vector<double> task_scores;
    std::string graph_file;  // relative to the cache dir; empty when none
  };

  struct CachedEval {
    Entry entry;
    std::optional<AbsGraph> trained_graph;  // engaged when entry.met_target
  };

  // Loads the index file for `options_hash` from `dir` (creating `dir` if
  // needed). Malformed lines are skipped and recorded in load_diagnostics().
  EvaluationCache(std::string dir, uint64_t options_hash);

  // Returns the cached outcome for a candidate with this fingerprint, or
  // nullopt. Entries whose trained graph is missing, fails verification, or
  // does not fingerprint-match the candidate are treated as misses.
  std::optional<CachedEval> Lookup(const std::string& fingerprint);

  // Appends the outcome to the index (and writes the trained graph beside it
  // when provided). Flushes immediately so interrupted runs keep entries.
  void Store(const std::string& fingerprint, const Entry& entry, const AbsGraph* trained_graph);

  size_t size() const { return entries_.size(); }
  const std::string& dir() const { return dir_; }
  const std::string& index_path() const { return index_path_; }
  const DiagnosticList& load_diagnostics() const { return load_diagnostics_; }

  // Resolves the cache directory: `override_dir` if non-empty, else
  // $GMORPH_CACHE_DIR, else "gmorph_bench_cache".
  static std::string ResolveDir(const std::string& override_dir);

 private:
  std::string dir_;
  uint64_t options_hash_ = 0;
  std::string index_path_;
  bool header_written_ = false;
  std::map<std::string, Entry> entries_;  // fingerprint -> outcome
  DiagnosticList load_diagnostics_;
};

// Lints one "gmorph-evalcache v1" file: header/entry syntax (cache.header,
// cache.version, cache.options, cache.entry), referenced trained-graph files
// (cache.graph), and the graph-fingerprint agreement (cache.fingerprint).
DiagnosticList VerifyEvalCacheFile(const std::string& path);

}  // namespace gmorph

#endif  // GMORPH_SRC_CORE_EVAL_CACHE_H_
