#include "src/core/finetune.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/obs/timing.h"
#include "src/core/filtering.h"
#include "src/data/eval.h"
#include "src/nn/loss.h"
#include "src/nn/optimizer.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {
namespace {

// Copies rows [start, start+count) out of a (N, K) tensor.
Tensor SliceRows(const Tensor& t, int64_t start, int64_t count) {
  const int64_t k = t.shape()[1];
  Tensor out(Shape{count, k});
  std::memcpy(out.data(), t.data() + start * k, static_cast<size_t>(count * k) * sizeof(float));
  return out;
}

// Worst per-task drop relative to the teachers.
double MaxDrop(const std::vector<double>& scores, const std::vector<double>& teacher_scores) {
  double max_drop = -1.0;
  for (size_t t = 0; t < scores.size(); ++t) {
    max_drop = std::max(max_drop, teacher_scores[t] - scores[t]);
  }
  return max_drop;
}

}  // namespace

std::vector<Tensor> PredictAllTasks(MultiTaskModel& model, const MultiTaskDataset& data,
                                    int64_t batch_size) {
  const int64_t n = data.size();
  std::vector<Tensor> all(static_cast<size_t>(model.num_tasks()));
  std::vector<int64_t> written(static_cast<size_t>(model.num_tasks()), 0);
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t count = std::min(batch_size, n - start);
    std::vector<Tensor> outs = model.Forward(data.InputBatch(start, count), /*training=*/false);
    for (size_t t = 0; t < outs.size(); ++t) {
      const int64_t k = outs[t].shape()[1];
      if (all[t].empty()) {
        all[t] = Tensor(Shape{n, k});
      }
      std::memcpy(all[t].data() + written[t] * k, outs[t].data(),
                  static_cast<size_t>(outs[t].size()) * sizeof(float));
      written[t] += count;
    }
  }
  return all;
}

std::vector<double> EvaluateMultiTask(MultiTaskModel& model, const MultiTaskDataset& test,
                                      int64_t batch_size) {
  std::vector<Tensor> logits = PredictAllTasks(model, test, batch_size);
  std::vector<double> scores(logits.size());
  for (size_t t = 0; t < logits.size(); ++t) {
    scores[t] = ComputeMetric(logits[t], test.tasks[t]);
  }
  return scores;
}

FinetuneResult DistillFinetune(MultiTaskModel& student,
                               const std::vector<Tensor>& teacher_train_logits,
                               const MultiTaskDataset& train, const MultiTaskDataset& test,
                               const std::vector<double>& teacher_test_scores,
                               const FinetuneOptions& options) {
  const size_t num_tasks = static_cast<size_t>(student.num_tasks());
  GMORPH_CHECK(teacher_train_logits.size() == num_tasks);
  GMORPH_CHECK(teacher_test_scores.size() == num_tasks);
  std::vector<float> weights = options.task_loss_weights;
  if (weights.empty()) {
    weights.assign(num_tasks, 1.0f);
  }

  Timer timer;
  FinetuneResult result;
  Adam optimizer(student.Parameters(), options.lr);
  const int64_t n = train.size();

  // Measurement sequence for predictive termination: worst-task margin
  // (teacher score + allowed drop - student score flipped into a "score" that
  // should rise toward >= 0 as training converges).
  std::vector<double> margin_curve;
  const int total_evals =
      options.eval_interval > 0 ? options.max_epochs / options.eval_interval : 0;

  // A candidate that already meets the target (e.g. an unmutated graph still
  // carrying the teacher weights) needs no fine-tuning at all: check before
  // spending the first epoch.
  if (options.eval_interval > 0 && options.early_stop_on_target) {
    result.task_scores = EvaluateMultiTask(student, test);
    result.max_drop = MaxDrop(result.task_scores, teacher_test_scores);
    if (result.max_drop <= options.target_drop + 1e-9) {
      result.met_target = true;
      result.seconds = timer.Seconds();
      return result;
    }
  }

  for (int epoch = 1; epoch <= options.max_epochs; ++epoch) {
    for (int64_t start = 0; start < n; start += options.batch_size) {
      const int64_t count = std::min(options.batch_size, n - start);
      std::vector<Tensor> outs =
          student.Forward(train.InputBatch(start, count), /*training=*/true);
      std::vector<Tensor> grads(num_tasks);
      for (size_t t = 0; t < num_tasks; ++t) {
        Tensor g;
        L1Loss(outs[t], SliceRows(teacher_train_logits[t], start, count), g);
        if (weights[t] != 1.0f) {
          ScaleInPlace(g, weights[t]);
        }
        grads[t] = std::move(g);
      }
      student.Backward(grads);
      optimizer.Step();
    }
    result.epochs_run = epoch;

    const bool evaluate_now = options.eval_interval > 0 &&
                              (epoch % options.eval_interval == 0 ||
                               epoch == options.max_epochs);
    if (!evaluate_now) {
      continue;
    }
    result.task_scores = EvaluateMultiTask(student, test);
    result.max_drop = MaxDrop(result.task_scores, teacher_test_scores);
    constexpr double kEps = 1e-9;
    if (result.max_drop <= options.target_drop + kEps) {
      result.met_target = true;
      if (options.early_stop_on_target) {
        break;
      }
    }
    margin_curve.push_back(options.target_drop - result.max_drop);
    if (options.predictive_termination && !result.met_target && margin_curve.size() >= 4) {
      const int evals_done = static_cast<int>(margin_curve.size());
      const double predicted =
          ExtrapolateFinal(margin_curve, std::max(0, total_evals - evals_done));
      if (predicted < 0.0) {
        result.terminated_early = true;
        break;
      }
    }
  }
  if (result.task_scores.empty()) {
    result.task_scores = EvaluateMultiTask(student, test);
    result.max_drop = MaxDrop(result.task_scores, teacher_test_scores);
    result.met_target = result.max_drop <= options.target_drop + 1e-9;
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace gmorph
