#include "src/core/history.h"

#include <algorithm>

namespace gmorph {

bool HistoryDatabase::AlreadyEvaluated(const AbsGraph& g) const {
  return fingerprints_.count(g.Fingerprint()) > 0;
}

void HistoryDatabase::MarkEvaluated(const AbsGraph& g) {
  fingerprints_.insert(g.Fingerprint());
}

void HistoryDatabase::AddElite(AbsGraph graph, double latency_ms, double accuracy_drop) {
  elites_.push_back({std::move(graph), latency_ms, accuracy_drop});
  std::sort(elites_.begin(), elites_.end(),
            [](const EliteEntry& a, const EliteEntry& b) { return a.latency_ms < b.latency_ms; });
  if (elites_.size() > max_elites_) {
    elites_.resize(max_elites_);
  }
}

void HistoryDatabase::AddNonPromising(const CapacitySignature& signature) {
  non_promising_.push_back(signature);
}

bool HistoryDatabase::FilteredByRule(const CapacitySignature& signature) const {
  for (const CapacitySignature& bad : non_promising_) {
    if (signature.MoreAggressiveThan(bad)) {
      return true;
    }
  }
  return false;
}

}  // namespace gmorph
