#include "src/core/history.h"

#include <algorithm>
#include <utility>

namespace gmorph {

bool HistoryDatabase::AlreadyEvaluated(const AbsGraph& g) const {
  return fingerprints_.count(g.Fingerprint()) > 0;
}

void HistoryDatabase::MarkEvaluated(const AbsGraph& g) {
  fingerprints_.insert(g.Fingerprint());
}

void HistoryDatabase::MarkEvaluatedFingerprint(std::string fingerprint) {
  fingerprints_.insert(std::move(fingerprint));
}

void HistoryDatabase::AddElite(AbsGraph graph, double cost, double accuracy_drop) {
  elites_.push_back({std::move(graph), cost, accuracy_drop});
  // Stable: equal-cost elites keep insertion order, so eviction at capacity is
  // deterministic and checkpoint resume reproduces the list bit-for-bit.
  std::stable_sort(elites_.begin(), elites_.end(),
                   [](const EliteEntry& a, const EliteEntry& b) { return a.cost < b.cost; });
  if (elites_.size() > max_elites_) {
    elites_.resize(max_elites_);
  }
}

void HistoryDatabase::AddNonPromising(const CapacitySignature& signature) {
  non_promising_.push_back(signature);
}

bool HistoryDatabase::FilteredByRule(const CapacitySignature& signature) const {
  for (const CapacitySignature& bad : non_promising_) {
    if (signature.MoreAggressiveThan(bad)) {
      return true;
    }
  }
  return false;
}

}  // namespace gmorph
