// Dense kernels: elementwise arithmetic, GEMM variants, softmax, reductions.
//
// The three GEMM variants (NN / NT / TN) cover forward passes and both
// backward products without ever materializing a transposed matrix:
//   forward:   Y = X * W            -> MatmulNN
//   grad in:   dX = dY * W^T        -> MatmulNT
//   grad w:    dW = X^T * dY        -> MatmulTN
//
// Each variant dispatches by shape (see tensor_ops.cc):
//   - wide N:  register-tiled micro-kernel (6x32 / 4x32), either directly on
//     the operands when the working set is cache-resident or through the
//     cache-blocked MC/KC/NC path with panels packed into thread-local
//     scratch; row blocks run in parallel via ParallelFor.
//   - narrow N, deep K: a lane-vectorized dot-product kernel over a packed
//     B^T, parallel over output rows.
//   - tiny problems: the retained reference loops below.
// All paths produce results that are bitwise independent of the thread count.
#ifndef GMORPH_SRC_TENSOR_TENSOR_OPS_H_
#define GMORPH_SRC_TENSOR_TENSOR_OPS_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace gmorph {

// ---- Elementwise (shapes must match exactly) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
void AddInPlace(Tensor& a, const Tensor& b);    // a += b
void ScaleInPlace(Tensor& a, float s);          // a *= s
void AxpyInPlace(Tensor& y, float alpha, const Tensor& x);  // y += alpha * x
Tensor Scale(const Tensor& a, float s);

// ---- Raw GEMM cores (contiguous row-major) ----
// C[m,n] = A[m,k] * B[k,n]          (+= if accumulate)
void MatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate = false);
// C[m,k] = A[m,n] * B[k,n]^T
void MatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
              bool accumulate = false);
// C[k,n] = A[m,k]^T * B[m,n]
void MatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate = false);

// Naive reference GEMMs (the pre-blocking kernels). Retained as the oracle
// for the randomized cross-check tests, as the tiny-problem fast path, and as
// the baseline the micro_ops bench reports speedups against.
void RefMatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate = false);
void RefMatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
                 bool accumulate = false);
void RefMatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate = false);

// ---- Tensor-level matmul: a is (m,k), b is (k,n) ----
Tensor Matmul(const Tensor& a, const Tensor& b);

// Fused fully-connected forward for the execution planner: out = x * w (+ b)
// (+ ReLU), written into the preallocated `out`. x is (rows..., in) with
// leading dims flattened into rows; w is (in, out) row-major; b is (out) or
// empty. The bias/ReLU epilogue runs row-blocked while rows are cache-hot.
void LinearForwardInto(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out,
                       bool relu = false);

// ---- Softmax over the last dimension ----
Tensor SoftmaxLastDim(const Tensor& x);
// Given y = softmax(x) and dL/dy, returns dL/dx.
Tensor SoftmaxBackwardLastDim(const Tensor& y, const Tensor& grad_y);

// ---- Reductions / misc ----
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAbs(const Tensor& a);
// Row-wise argmax for a (rows, cols) tensor.
std::vector<int> ArgmaxRows(const Tensor& a);

}  // namespace gmorph

#endif  // GMORPH_SRC_TENSOR_TENSOR_OPS_H_
