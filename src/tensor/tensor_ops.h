// Dense kernels: elementwise arithmetic, GEMM variants, softmax, reductions.
//
// The three GEMM variants (NN / NT / TN) cover forward passes and both
// backward products without ever materializing a transposed matrix:
//   forward:   Y = X * W            -> MatmulNN
//   grad in:   dX = dY * W^T        -> MatmulNT
//   grad w:    dW = X^T * dY        -> MatmulTN
//
// Each variant resolves its implementation through the kernel solver
// registry (src/kernels/registry.h): the tuned winner when a tuning DB is
// loaded (GMORPH_TUNE_DB / gmorph_cli --autotune), otherwise a shape
// heuristic choosing among the registered solvers — the register-tiled
// direct path for wide cache-resident products, the cache-blocked packed
// path for large wide products, the lane-vectorized dot path for narrow N,
// and the reference loops for tiny problems. All solvers produce results
// that are bitwise independent of the thread count.
#ifndef GMORPH_SRC_TENSOR_TENSOR_OPS_H_
#define GMORPH_SRC_TENSOR_TENSOR_OPS_H_

#include <cstdint>

#include "src/kernels/solver.h"
#include "src/tensor/tensor.h"

namespace gmorph {

// ---- Elementwise (shapes must match exactly) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
void AddInPlace(Tensor& a, const Tensor& b);    // a += b
void ScaleInPlace(Tensor& a, float s);          // a *= s
void AxpyInPlace(Tensor& y, float alpha, const Tensor& x);  // y += alpha * x
Tensor Scale(const Tensor& a, float s);

// ---- Raw GEMM cores (contiguous row-major) ----
// C[m,n] = A[m,k] * B[k,n]          (+= if accumulate)
void MatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate = false);
// C[m,k] = A[m,n] * B[k,n]^T
void MatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
              bool accumulate = false);
// C[k,n] = A[m,k]^T * B[m,n]
void MatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate = false);

// Naive reference GEMMs (the pre-blocking kernels), now living in the solver
// registry as "gemm.ref". Re-exported here because tests and benches use them
// as the oracle for randomized cross-checks and as the speedup baseline.
using kernels::RefMatmulNN;
using kernels::RefMatmulNT;
using kernels::RefMatmulTN;

// ---- Tensor-level matmul: a is (m,k), b is (k,n) ----
Tensor Matmul(const Tensor& a, const Tensor& b);

// Fused fully-connected forward for the execution planner: out = x * w (+ b)
// (+ ReLU), written into the preallocated `out`. x is (rows..., in) with
// leading dims flattened into rows; w is (in, out) row-major; b is (out) or
// empty. The bias/ReLU epilogue runs row-blocked while rows are cache-hot.
// `solver` pins the GEMM solver (the fused engine caches the plan-time
// resolution per binding); nullptr resolves through the registry per call.
void LinearForwardInto(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out,
                       bool relu = false, const kernels::GemmSolver* solver = nullptr);

// ---- Softmax over the last dimension ----
Tensor SoftmaxLastDim(const Tensor& x);
// Given y = softmax(x) and dL/dy, returns dL/dx.
Tensor SoftmaxBackwardLastDim(const Tensor& y, const Tensor& grad_y);

// ---- Reductions / misc ----
float SumAll(const Tensor& a);
float MeanAll(const Tensor& a);
float MaxAbs(const Tensor& a);
// Row-wise argmax for a (rows, cols) tensor.
std::vector<int> ArgmaxRows(const Tensor& a);

}  // namespace gmorph

#endif  // GMORPH_SRC_TENSOR_TENSOR_OPS_H_
