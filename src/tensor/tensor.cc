#include "src/tensor/tensor.h"

#include <algorithm>
#include <atomic>

#include "src/common/check.h"

namespace gmorph {
namespace {

std::atomic<int64_t> g_tensor_bytes{0};

void CountAlloc(size_t elements) {
  g_tensor_bytes.fetch_add(static_cast<int64_t>(elements * sizeof(float)),
                           std::memory_order_relaxed);
}

}  // namespace

int64_t Tensor::TotalAllocatedBytes() { return g_tensor_bytes.load(std::memory_order_relaxed); }

Tensor::Tensor(const Shape& shape)
    : shape_(shape),
      data_(std::make_shared<std::vector<float>>(static_cast<size_t>(shape.NumElements()),
                                                 0.0f)) {
  GMORPH_CHECK(shape.NumElements() >= 0, "invalid shape " << shape.ToString());
  CountAlloc(data_->size());
}

Tensor Tensor::Full(const Shape& shape, float value) {
  Tensor t(shape);
  t.Fill(value);
  return t;
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values) {
  GMORPH_CHECK(static_cast<int64_t>(values.size()) == shape.NumElements(),
                   "vector size " << values.size() << " != shape " << shape.ToString());
  Tensor t;
  t.shape_ = shape;
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  CountAlloc(t.data_->size());
  return t;
}

Tensor Tensor::RandomGaussian(const Shape& shape, Rng& rng, float stddev) {
  Tensor t(shape);
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    p[i] = rng.NextGaussian() * stddev;
  }
  return t;
}

Tensor Tensor::RandomUniform(const Shape& shape, Rng& rng, float lo, float hi) {
  Tensor t(shape);
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    p[i] = lo + (hi - lo) * rng.NextFloat();
  }
  return t;
}

Tensor Tensor::Reshape(const Shape& new_shape) const {
  GMORPH_CHECK(new_shape.NumElements() == size(),
                   "reshape " << shape_.ToString() << " -> " << new_shape.ToString());
  Tensor t = *this;
  t.shape_ = new_shape;
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = std::make_shared<std::vector<float>>(*data_);
  CountAlloc(t.data_->size());
  return t;
}

void Tensor::Fill(float value) { std::fill(data_->begin(), data_->end(), value); }

}  // namespace gmorph
