#include "src/tensor/shape.h"

#include <sstream>

#include "src/common/check.h"

namespace gmorph {

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    n *= d;
  }
  return n;
}

int64_t Shape::Dim(int i) const {
  const int rank = Rank();
  if (i < 0) {
    i += rank;
  }
  GMORPH_CHECK(i >= 0 && i < rank, "dim " << i << " out of range for " << ToString());
  return dims_[static_cast<size_t>(i)];
}

Shape Shape::WithBatch(int64_t n) const {
  std::vector<int64_t> d;
  d.reserve(dims_.size() + 1);
  d.push_back(n);
  d.insert(d.end(), dims_.begin(), dims_.end());
  return Shape(std::move(d));
}

Shape Shape::WithoutBatch() const {
  GMORPH_CHECK(Rank() >= 1);
  return Shape(std::vector<int64_t>(dims_.begin() + 1, dims_.end()));
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << dims_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace gmorph
