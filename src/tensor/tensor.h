// Dense float32 tensor with shared, contiguous, row-major storage.
//
// Tensor is a cheap-to-copy handle (shape + shared_ptr to storage); Clone()
// makes a deep copy. All kernels in tensor_ops / conv_ops operate on
// contiguous data, which keeps them simple and fast on one core.
#ifndef GMORPH_SRC_TENSOR_TENSOR_H_
#define GMORPH_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/shape.h"

namespace gmorph {

class Tensor {
 public:
  // Default: empty tensor (rank 0, one element would be wrong — zero storage).
  Tensor() : shape_({0}), data_(std::make_shared<std::vector<float>>()) {}

  // Allocates zero-initialized storage for `shape`.
  explicit Tensor(const Shape& shape);

  static Tensor Zeros(const Shape& shape) { return Tensor(shape); }
  static Tensor Full(const Shape& shape, float value);
  static Tensor FromVector(const Shape& shape, std::vector<float> values);
  // I.i.d. N(0, stddev^2) entries.
  static Tensor RandomGaussian(const Shape& shape, Rng& rng, float stddev = 1.0f);
  // I.i.d. U(lo, hi) entries.
  static Tensor RandomUniform(const Shape& shape, Rng& rng, float lo, float hi);

  const Shape& shape() const { return shape_; }
  int64_t size() const { return shape_.NumElements(); }
  bool empty() const { return size() == 0; }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  float& at(int64_t i) { return (*data_)[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return (*data_)[static_cast<size_t>(i)]; }

  // View with a different shape over the same storage. Element count must match.
  Tensor Reshape(const Shape& new_shape) const;

  // Deep copy.
  Tensor Clone() const;

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // True if the two handles share storage.
  bool SharesStorageWith(const Tensor& other) const { return data_ == other.data_; }

  // Bytes of tensor storage allocated process-wide since start (monotonic;
  // deallocation is not subtracted). The micro-ops benchmark reports
  // per-op allocation as a delta of this plus the scratch-arena counter.
  static int64_t TotalAllocatedBytes();

 private:
  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_TENSOR_TENSOR_H_
