// Convolution and pooling kernels for NCHW tensors.
//
// Conv2d is implemented as im2col + GEMM, the standard CPU lowering: it turns
// the spatial gather into a dense matmul that the GEMM cores in tensor_ops can
// stream through. All functions take / return contiguous tensors.
#ifndef GMORPH_SRC_TENSOR_CONV_OPS_H_
#define GMORPH_SRC_TENSOR_CONV_OPS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace gmorph {

struct Conv2dArgs {
  int64_t stride = 1;
  int64_t padding = 0;
};

// Output spatial size for one dimension.
int64_t ConvOutDim(int64_t in, int64_t kernel, int64_t stride, int64_t padding);

// x: (N,C,H,W), w: (O,C,KH,KW), b: (O) or empty -> (N,O,OH,OW).
Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& b, const Conv2dArgs& args);

// Out-parameter variant used by the execution planner: writes into the
// preallocated `out` (N,O,OH,OW) and optionally fuses an epilogue into the
// per-sample loop — `skip` (same shape as out) is added to the conv result
// and `relu` clamps at zero, so residual tails and activations cost no extra
// pass over memory and no allocation.
void Conv2dForwardInto(const Tensor& x, const Tensor& w, const Tensor& b, const Conv2dArgs& args,
                       Tensor& out, const Tensor* skip = nullptr, bool relu = false);

// Gradients of the same convolution. `grad_w`/`grad_b` are accumulated into
// (caller zeroes them at the start of a step); returns grad_x.
Tensor Conv2dBackward(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                      const Conv2dArgs& args, Tensor& grad_w, Tensor& grad_b);

// Max pooling. `argmax` receives the flat input index of each selected element
// so the backward pass can scatter gradients exactly.
Tensor MaxPool2dForward(const Tensor& x, int64_t kernel, int64_t stride,
                        std::vector<int64_t>& argmax);
// Inference-only variant: no argmax bookkeeping, writes into preallocated out.
void MaxPool2dForwardInto(const Tensor& x, int64_t kernel, int64_t stride, Tensor& out);
Tensor MaxPool2dBackward(const Shape& input_shape, const Tensor& grad_out,
                         const std::vector<int64_t>& argmax);

// Average pooling over non-overlapping-or-strided windows.
Tensor AvgPool2dForward(const Tensor& x, int64_t kernel, int64_t stride);
Tensor AvgPool2dBackward(const Shape& input_shape, const Tensor& grad_out, int64_t kernel,
                         int64_t stride);

// Global average pooling: (N,C,H,W) -> (N,C).
Tensor GlobalAvgPoolForward(const Tensor& x);
void GlobalAvgPoolForwardInto(const Tensor& x, Tensor& out);
Tensor GlobalAvgPoolBackward(const Shape& input_shape, const Tensor& grad_out);

// Mean over tokens: (N,T,D) -> (N,D).
void MeanPoolTokensForwardInto(const Tensor& x, Tensor& out);

// Bilinear resize of spatial dims: (N,C,H,W) -> (N,C,out_h,out_w).
Tensor BilinearResizeForward(const Tensor& x, int64_t out_h, int64_t out_w);
// Target spatial size is taken from out's shape (N,C,out_h,out_w).
void BilinearResizeForwardInto(const Tensor& x, Tensor& out);
Tensor BilinearResizeBackward(const Shape& input_shape, const Tensor& grad_out);

// Linear interpolation along dim 1 of (N,T,D) -> (N,out_t,D); used by the
// rescale adapter to match transformer token counts.
Tensor LinearResizeTokensForward(const Tensor& x, int64_t out_t);
// Target token count is taken from out's shape (N,out_t,D).
void LinearResizeTokensForwardInto(const Tensor& x, Tensor& out);
Tensor LinearResizeTokensBackward(const Shape& input_shape, const Tensor& grad_out);

}  // namespace gmorph

#endif  // GMORPH_SRC_TENSOR_CONV_OPS_H_
