// Tensor shape: a small, value-semantic vector of dimensions.
//
// Convention used throughout GMorph:
//   - Runtime activations carry a leading batch dimension N.
//   - Graph-level bookkeeping (abstract graph nodes, shape dictionary) uses
//     *per-sample* shapes without the batch dimension, e.g. {C, H, W} for CNN
//     features and {T, D} for transformer features.
#ifndef GMORPH_SRC_TENSOR_SHAPE_H_
#define GMORPH_SRC_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gmorph {

class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int Rank() const { return static_cast<int>(dims_.size()); }
  int64_t NumElements() const;

  // Dimension accessor with negative indexing (-1 = last).
  int64_t Dim(int i) const;
  int64_t operator[](int i) const { return Dim(i); }

  const std::vector<int64_t>& dims() const { return dims_; }

  // Returns a copy with `n` prepended as the batch dimension.
  Shape WithBatch(int64_t n) const;
  // Returns a copy with the leading dimension removed.
  Shape WithoutBatch() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }
  // Lexicographic order so Shape can key ordered maps (the shape dictionary D).
  bool operator<(const Shape& other) const { return dims_ < other.dims_; }

  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_TENSOR_SHAPE_H_
