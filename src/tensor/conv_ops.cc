#include "src/tensor/conv_ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/kernels/registry.h"
#include "src/kernels/scratch.h"
#include "src/kernels/solver.h"
#include "src/tensor/tensor_ops.h"

namespace gmorph {
namespace {

// Batch/plane loops split work so each chunk covers at least this many output
// elements; smaller plans run serially.
int64_t ItemGrain(int64_t per_item) {
  return std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, per_item));
}

// Expands one sample (C,H,W) into a (C*KH*KW, OH*OW) column matrix.
void Im2Col(const float* x, int64_t c, int64_t h, int64_t w, int64_t kernel, int64_t stride,
            int64_t padding, int64_t oh, int64_t ow, float* col) {
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        float* col_row = col + ((ch * kernel + kh) * kernel + kw) * (oh * ow);
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + kh - padding;
          float* dst = col_row + oy * ow;
          if (iy < 0 || iy >= h) {
            std::fill(dst, dst + ow, 0.0f);
            continue;
          }
          const float* src_row = x + (ch * h + iy) * w;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kw - padding;
            dst[ox] = (ix >= 0 && ix < w) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

// Scatter-adds a column matrix back into a (C,H,W) gradient image.
void Col2Im(const float* col, int64_t c, int64_t h, int64_t w, int64_t kernel, int64_t stride,
            int64_t padding, int64_t oh, int64_t ow, float* x_grad) {
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t kh = 0; kh < kernel; ++kh) {
      for (int64_t kw = 0; kw < kernel; ++kw) {
        const float* col_row = col + ((ch * kernel + kh) * kernel + kw) * (oh * ow);
        for (int64_t oy = 0; oy < oh; ++oy) {
          const int64_t iy = oy * stride + kh - padding;
          if (iy < 0 || iy >= h) {
            continue;
          }
          float* dst_row = x_grad + (ch * h + iy) * w;
          const float* src = col_row + oy * ow;
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t ix = ox * stride + kw - padding;
            if (ix >= 0 && ix < w) {
              dst_row[ix] += src[ox];
            }
          }
        }
      }
    }
  }
}

}  // namespace

int64_t ConvOutDim(int64_t in, int64_t kernel, int64_t stride, int64_t padding) {
  const int64_t out = (in + 2 * padding - kernel) / stride + 1;
  GMORPH_CHECK(out > 0, "conv output dim <= 0 (in=" << in << " k=" << kernel << " s="
                                                        << stride << " p=" << padding << ")");
  return out;
}

Tensor Conv2dForward(const Tensor& x, const Tensor& w, const Tensor& b, const Conv2dArgs& args) {
  const int64_t kernel = w.shape()[2];
  const int64_t oh = ConvOutDim(x.shape()[2], kernel, args.stride, args.padding);
  const int64_t ow = ConvOutDim(x.shape()[3], kernel, args.stride, args.padding);
  Tensor out(Shape{x.shape()[0], w.shape()[0], oh, ow});
  Conv2dForwardInto(x, w, b, args, out);
  return out;
}

void Conv2dForwardInto(const Tensor& x, const Tensor& w, const Tensor& b, const Conv2dArgs& args,
                       Tensor& out, const Tensor* skip, bool relu) {
  GMORPH_CHECK(x.shape().Rank() == 4 && w.shape().Rank() == 4);
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t wd = x.shape()[3];
  const int64_t o = w.shape()[0];
  const int64_t kernel = w.shape()[2];
  GMORPH_CHECK(w.shape()[1] == c, "conv channels: x " << x.shape().ToString() << " w "
                                                          << w.shape().ToString());
  GMORPH_CHECK(w.shape()[3] == kernel);
  const int64_t oh = ConvOutDim(h, kernel, args.stride, args.padding);
  const int64_t ow = ConvOutDim(wd, kernel, args.stride, args.padding);
  GMORPH_CHECK(out.shape() == Shape({n, o, oh, ow}),
                   "conv out buffer " << out.shape().ToString() << " want "
                                      << Shape({n, o, oh, ow}).ToString());
  GMORPH_CHECK(skip == nullptr || skip->shape() == out.shape());

  const int64_t ckk = c * kernel * kernel;
  const int64_t plane = o * oh * ow;
  // Samples are independent: parallelize over the batch, with the im2col
  // buffer reused from each worker's scratch arena. The epilogue (bias, skip
  // add, ReLU) runs on the sample's output while it is still cache-hot.
  ParallelFor(0, n, ItemGrain(plane), [&](int64_t lo, int64_t hi) {
    ScratchScope scope;
    float* col = scope.AllocFloats(static_cast<size_t>(ckk * oh * ow));
    for (int64_t i = lo; i < hi; ++i) {
      Im2Col(x.data() + i * c * h * wd, c, h, wd, kernel, args.stride, args.padding, oh, ow, col);
      float* y = out.data() + i * plane;
      MatmulNN(w.data(), col, y, o, ckk, oh * ow);
      if (!b.empty()) {
        for (int64_t oc = 0; oc < o; ++oc) {
          const float bias = b.at(oc);
          float* yo = y + oc * oh * ow;
          for (int64_t s = 0; s < oh * ow; ++s) {
            yo[s] += bias;
          }
        }
      }
      if (skip != nullptr) {
        const float* ps = skip->data() + i * plane;
        for (int64_t s = 0; s < plane; ++s) {
          y[s] += ps[s];
        }
      }
      if (relu) {
        for (int64_t s = 0; s < plane; ++s) {
          y[s] = y[s] > 0.0f ? y[s] : 0.0f;
        }
      }
    }
  });
}

Tensor Conv2dBackward(const Tensor& x, const Tensor& w, const Tensor& grad_out,
                      const Conv2dArgs& args, Tensor& grad_w, Tensor& grad_b) {
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t wd = x.shape()[3];
  const int64_t o = w.shape()[0];
  const int64_t kernel = w.shape()[2];
  const int64_t oh = grad_out.shape()[2];
  const int64_t ow = grad_out.shape()[3];
  GMORPH_CHECK(grad_out.shape()[0] == n && grad_out.shape()[1] == o);
  GMORPH_CHECK(grad_w.shape() == w.shape());

  const int64_t ckk = c * kernel * kernel;
  Tensor grad_x(x.shape());
  // grad_x rows are per-sample disjoint, but grad_w / grad_b accumulate across
  // the whole batch: each sample's contribution goes into its own slot and is
  // reduced in sample order afterwards, so the result does not depend on how
  // samples were distributed over threads.
  std::vector<float> partial_w(static_cast<size_t>(n * o * ckk));
  std::vector<float> partial_b(grad_b.empty() ? 0 : static_cast<size_t>(n * o));
  ParallelFor(0, n, ItemGrain(o * oh * ow), [&](int64_t lo, int64_t hi) {
    ScratchScope scope;
    float* col = scope.AllocFloats(static_cast<size_t>(ckk * oh * ow));
    float* dcol = scope.AllocFloats(static_cast<size_t>(ckk * oh * ow));
    for (int64_t i = lo; i < hi; ++i) {
      const float* xi = x.data() + i * c * h * wd;
      const float* dy = grad_out.data() + i * o * oh * ow;

      Im2Col(xi, c, h, wd, kernel, args.stride, args.padding, oh, ow, col);
      // dW_i[o, ckk] = dY[o, ohow] * col[ckk, ohow]^T
      MatmulNT(dy, col, partial_w.data() + i * o * ckk, o, oh * ow, ckk);
      // dcol[ckk, ohow] = W[o, ckk]^T * dY[o, ohow]
      MatmulTN(w.data(), dy, dcol, o, ckk, oh * ow);
      Col2Im(dcol, c, h, wd, kernel, args.stride, args.padding, oh, ow,
             grad_x.data() + i * c * h * wd);

      if (!grad_b.empty()) {
        for (int64_t oc = 0; oc < o; ++oc) {
          const float* dyo = dy + oc * oh * ow;
          float acc = 0.0f;
          for (int64_t s = 0; s < oh * ow; ++s) {
            acc += dyo[s];
          }
          partial_b[static_cast<size_t>(i * o + oc)] = acc;
        }
      }
    }
  });
  float* gw = grad_w.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* pw = partial_w.data() + i * o * ckk;
    for (int64_t j = 0; j < o * ckk; ++j) {
      gw[j] += pw[j];
    }
  }
  if (!grad_b.empty()) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t oc = 0; oc < o; ++oc) {
        grad_b.at(oc) += partial_b[static_cast<size_t>(i * o + oc)];
      }
    }
  }
  return grad_x;
}

Tensor MaxPool2dForward(const Tensor& x, int64_t kernel, int64_t stride,
                        std::vector<int64_t>& argmax) {
  GMORPH_CHECK(x.shape().Rank() == 4);
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t w = x.shape()[3];
  const int64_t oh = ConvOutDim(h, kernel, stride, 0);
  const int64_t ow = ConvOutDim(w, kernel, stride, 0);

  Tensor out(Shape{n, c, oh, ow});
  argmax.assign(static_cast<size_t>(out.size()), 0);
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, n * c, ItemGrain(oh * ow), [&](int64_t lo, int64_t hi) {
    for (int64_t p = lo; p < hi; ++p) {
      const float* plane = px + p * h * w;
      const int64_t plane_base = p * h * w;
      int64_t oi = p * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            const int64_t iy = oy * stride + ky;
            for (int64_t kx = 0; kx < kernel; ++kx) {
              const int64_t ix = ox * stride + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          po[oi] = best;
          argmax[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  });
  return out;
}

void MaxPool2dForwardInto(const Tensor& x, int64_t kernel, int64_t stride, Tensor& out) {
  GMORPH_CHECK(x.shape().Rank() == 4);
  const int64_t h = x.shape()[2];
  const int64_t w = x.shape()[3];
  const int64_t oh = ConvOutDim(h, kernel, stride, 0);
  const int64_t ow = ConvOutDim(w, kernel, stride, 0);
  GMORPH_CHECK(out.shape() == Shape({x.shape()[0], x.shape()[1], oh, ow}));
  // Inference pooling routes through the solver registry (pool.generic /
  // pool.2x2s2); the training path above keeps its argmax-tracking loop.
  const kernels::ProblemDesc desc =
      kernels::PoolProblem(x.shape()[0] * x.shape()[1], h, w, kernel, stride);
  const kernels::PoolSolver* solver = kernels::SolverRegistry::Global().ResolvePool(desc);
  solver->Run(desc, kernels::PoolCall{x.data(), out.data()});
}

Tensor MaxPool2dBackward(const Shape& input_shape, const Tensor& grad_out,
                         const std::vector<int64_t>& argmax) {
  GMORPH_CHECK(static_cast<int64_t>(argmax.size()) == grad_out.size());
  Tensor grad_x(input_shape);
  float* gx = grad_x.data();
  const float* go = grad_out.data();
  // Each output element scatters into its own (sample, channel) input plane,
  // so chunking on plane boundaries keeps writes disjoint across threads.
  const int64_t planes = input_shape[0] * input_shape[1];
  const int64_t plane_out = grad_out.size() / std::max<int64_t>(1, planes);
  ParallelFor(0, planes, ItemGrain(plane_out), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo * plane_out; i < hi * plane_out; ++i) {
      gx[argmax[static_cast<size_t>(i)]] += go[i];
    }
  });
  return grad_x;
}

Tensor AvgPool2dForward(const Tensor& x, int64_t kernel, int64_t stride) {
  GMORPH_CHECK(x.shape().Rank() == 4);
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t w = x.shape()[3];
  const int64_t oh = ConvOutDim(h, kernel, stride, 0);
  const int64_t ow = ConvOutDim(w, kernel, stride, 0);
  Tensor out(Shape{n, c, oh, ow});
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  ParallelFor(0, n * c, ItemGrain(oh * ow), [&](int64_t lo, int64_t hi) {
    for (int64_t plane = lo; plane < hi; ++plane) {
      const float* src = px + plane * h * w;
      float* dst = po + plane * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0f;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            for (int64_t kx = 0; kx < kernel; ++kx) {
              acc += src[(oy * stride + ky) * w + ox * stride + kx];
            }
          }
          dst[oy * ow + ox] = acc * inv;
        }
      }
    }
  });
  return out;
}

Tensor AvgPool2dBackward(const Shape& input_shape, const Tensor& grad_out, int64_t kernel,
                         int64_t stride) {
  GMORPH_CHECK(input_shape.Rank() == 4 && grad_out.shape().Rank() == 4);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t h = input_shape[2];
  const int64_t w = input_shape[3];
  const int64_t oh = grad_out.shape()[2];
  const int64_t ow = grad_out.shape()[3];
  Tensor grad_x(input_shape);
  float* gx = grad_x.data();
  const float* go = grad_out.data();
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  ParallelFor(0, n * c, ItemGrain(oh * ow), [&](int64_t lo, int64_t hi) {
    for (int64_t plane = lo; plane < hi; ++plane) {
      float* dst = gx + plane * h * w;
      const float* src = go + plane * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = src[oy * ow + ox] * inv;
          for (int64_t ky = 0; ky < kernel; ++ky) {
            for (int64_t kx = 0; kx < kernel; ++kx) {
              dst[(oy * stride + ky) * w + ox * stride + kx] += g;
            }
          }
        }
      }
    }
  });
  return grad_x;
}

Tensor GlobalAvgPoolForward(const Tensor& x) {
  GMORPH_CHECK(x.shape().Rank() == 4);
  Tensor out(Shape{x.shape()[0], x.shape()[1]});
  GlobalAvgPoolForwardInto(x, out);
  return out;
}

void GlobalAvgPoolForwardInto(const Tensor& x, Tensor& out) {
  GMORPH_CHECK(x.shape().Rank() == 4);
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t spatial = x.shape()[2] * x.shape()[3];
  GMORPH_CHECK(out.size() == n * c);
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0f / static_cast<float>(spatial);
  ParallelFor(0, n * c, ItemGrain(spatial), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* plane = px + i * spatial;
      float acc = 0.0f;
      for (int64_t s = 0; s < spatial; ++s) {
        acc += plane[s];
      }
      po[i] = acc * inv;
    }
  });
}

void MeanPoolTokensForwardInto(const Tensor& x, Tensor& out) {
  GMORPH_CHECK(x.shape().Rank() == 3);
  const int64_t n = x.shape()[0];
  const int64_t t = x.shape()[1];
  const int64_t d = x.shape()[2];
  GMORPH_CHECK(out.size() == n * d);
  const float* px = x.data();
  float* po = out.data();
  const float inv = 1.0f / static_cast<float>(t);
  ParallelFor(0, n, ItemGrain(t * d), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      float* row = po + i * d;
      std::fill(row, row + d, 0.0f);
      for (int64_t tt = 0; tt < t; ++tt) {
        const float* src = px + (i * t + tt) * d;
        for (int64_t j = 0; j < d; ++j) {
          row[j] += src[j];
        }
      }
      for (int64_t j = 0; j < d; ++j) {
        row[j] *= inv;
      }
    }
  });
}

Tensor GlobalAvgPoolBackward(const Shape& input_shape, const Tensor& grad_out) {
  GMORPH_CHECK(input_shape.Rank() == 4 && grad_out.shape().Rank() == 2);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t spatial = input_shape[2] * input_shape[3];
  Tensor grad_x(input_shape);
  float* gx = grad_x.data();
  const float* go = grad_out.data();
  const float inv = 1.0f / static_cast<float>(spatial);
  ParallelFor(0, n * c, ItemGrain(spatial), [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float g = go[i] * inv;
      float* plane = gx + i * spatial;
      for (int64_t s = 0; s < spatial; ++s) {
        plane[s] = g;
      }
    }
  });
  return grad_x;
}

namespace {

// Precomputed 1-D interpolation: out index -> (lo index, hi index, hi weight).
struct InterpAxis {
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
  std::vector<float> t;
};

InterpAxis MakeAxis(int64_t in, int64_t out) {
  InterpAxis axis;
  axis.lo.resize(static_cast<size_t>(out));
  axis.hi.resize(static_cast<size_t>(out));
  axis.t.resize(static_cast<size_t>(out));
  // align_corners=false mapping, matching common framework semantics.
  const float scale = static_cast<float>(in) / static_cast<float>(out);
  for (int64_t i = 0; i < out; ++i) {
    float src = (static_cast<float>(i) + 0.5f) * scale - 0.5f;
    src = std::max(0.0f, std::min(src, static_cast<float>(in - 1)));
    const int64_t lo = static_cast<int64_t>(src);
    const int64_t hi = std::min(lo + 1, in - 1);
    axis.lo[static_cast<size_t>(i)] = lo;
    axis.hi[static_cast<size_t>(i)] = hi;
    axis.t[static_cast<size_t>(i)] = src - static_cast<float>(lo);
  }
  return axis;
}

}  // namespace

Tensor BilinearResizeForward(const Tensor& x, int64_t out_h, int64_t out_w) {
  GMORPH_CHECK(x.shape().Rank() == 4);
  Tensor out(Shape{x.shape()[0], x.shape()[1], out_h, out_w});
  BilinearResizeForwardInto(x, out);
  return out;
}

void BilinearResizeForwardInto(const Tensor& x, Tensor& out) {
  GMORPH_CHECK(x.shape().Rank() == 4 && out.shape().Rank() == 4);
  GMORPH_CHECK(out.shape()[0] == x.shape()[0] && out.shape()[1] == x.shape()[1]);
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t w = x.shape()[3];
  const int64_t out_h = out.shape()[2];
  const int64_t out_w = out.shape()[3];
  const InterpAxis ay = MakeAxis(h, out_h);
  const InterpAxis ax = MakeAxis(w, out_w);
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, n * c, ItemGrain(out_h * out_w), [&](int64_t lo, int64_t hi) {
    for (int64_t plane = lo; plane < hi; ++plane) {
      const float* src = px + plane * h * w;
      float* dst = po + plane * out_h * out_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        const int64_t y0 = ay.lo[static_cast<size_t>(oy)];
        const int64_t y1 = ay.hi[static_cast<size_t>(oy)];
        const float ty = ay.t[static_cast<size_t>(oy)];
        for (int64_t ox = 0; ox < out_w; ++ox) {
          const int64_t x0 = ax.lo[static_cast<size_t>(ox)];
          const int64_t x1 = ax.hi[static_cast<size_t>(ox)];
          const float tx = ax.t[static_cast<size_t>(ox)];
          const float v00 = src[y0 * w + x0];
          const float v01 = src[y0 * w + x1];
          const float v10 = src[y1 * w + x0];
          const float v11 = src[y1 * w + x1];
          dst[oy * out_w + ox] = (1 - ty) * ((1 - tx) * v00 + tx * v01) +
                                 ty * ((1 - tx) * v10 + tx * v11);
        }
      }
    }
  });
}

Tensor BilinearResizeBackward(const Shape& input_shape, const Tensor& grad_out) {
  GMORPH_CHECK(input_shape.Rank() == 4 && grad_out.shape().Rank() == 4);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t h = input_shape[2];
  const int64_t w = input_shape[3];
  const int64_t out_h = grad_out.shape()[2];
  const int64_t out_w = grad_out.shape()[3];
  const InterpAxis ay = MakeAxis(h, out_h);
  const InterpAxis ax = MakeAxis(w, out_w);
  Tensor grad_x(input_shape);
  float* gx = grad_x.data();
  const float* go = grad_out.data();
  ParallelFor(0, n * c, ItemGrain(out_h * out_w), [&](int64_t lo, int64_t hi) {
    for (int64_t plane = lo; plane < hi; ++plane) {
      float* dst = gx + plane * h * w;
      const float* src = go + plane * out_h * out_w;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        const int64_t y0 = ay.lo[static_cast<size_t>(oy)];
        const int64_t y1 = ay.hi[static_cast<size_t>(oy)];
        const float ty = ay.t[static_cast<size_t>(oy)];
        for (int64_t ox = 0; ox < out_w; ++ox) {
          const int64_t x0 = ax.lo[static_cast<size_t>(ox)];
          const int64_t x1 = ax.hi[static_cast<size_t>(ox)];
          const float tx = ax.t[static_cast<size_t>(ox)];
          const float g = src[oy * out_w + ox];
          dst[y0 * w + x0] += (1 - ty) * (1 - tx) * g;
          dst[y0 * w + x1] += (1 - ty) * tx * g;
          dst[y1 * w + x0] += ty * (1 - tx) * g;
          dst[y1 * w + x1] += ty * tx * g;
        }
      }
    }
  });
  return grad_x;
}

Tensor LinearResizeTokensForward(const Tensor& x, int64_t out_t) {
  GMORPH_CHECK(x.shape().Rank() == 3);
  Tensor out(Shape{x.shape()[0], out_t, x.shape()[2]});
  LinearResizeTokensForwardInto(x, out);
  return out;
}

void LinearResizeTokensForwardInto(const Tensor& x, Tensor& out) {
  GMORPH_CHECK(x.shape().Rank() == 3 && out.shape().Rank() == 3);
  GMORPH_CHECK(out.shape()[0] == x.shape()[0] && out.shape()[2] == x.shape()[2]);
  const int64_t n = x.shape()[0];
  const int64_t t = x.shape()[1];
  const int64_t d = x.shape()[2];
  const int64_t out_t = out.shape()[1];
  const InterpAxis axis = MakeAxis(t, out_t);
  const float* px = x.data();
  float* po = out.data();
  ParallelFor(0, n, ItemGrain(out_t * d), [&](int64_t b_lo, int64_t b_hi) {
    for (int64_t i = b_lo; i < b_hi; ++i) {
      const float* src = px + i * t * d;
      float* dst = po + i * out_t * d;
      for (int64_t ot = 0; ot < out_t; ++ot) {
        const float* lo = src + axis.lo[static_cast<size_t>(ot)] * d;
        const float* hi = src + axis.hi[static_cast<size_t>(ot)] * d;
        const float tt = axis.t[static_cast<size_t>(ot)];
        float* row = dst + ot * d;
        for (int64_t j = 0; j < d; ++j) {
          row[j] = (1 - tt) * lo[j] + tt * hi[j];
        }
      }
    }
  });
}

Tensor LinearResizeTokensBackward(const Shape& input_shape, const Tensor& grad_out) {
  GMORPH_CHECK(input_shape.Rank() == 3 && grad_out.shape().Rank() == 3);
  const int64_t n = input_shape[0];
  const int64_t t = input_shape[1];
  const int64_t d = input_shape[2];
  const int64_t out_t = grad_out.shape()[1];
  const InterpAxis axis = MakeAxis(t, out_t);
  Tensor grad_x(input_shape);
  float* gx = grad_x.data();
  const float* go = grad_out.data();
  ParallelFor(0, n, ItemGrain(out_t * d), [&](int64_t b_lo, int64_t b_hi) {
    for (int64_t i = b_lo; i < b_hi; ++i) {
      float* dst = gx + i * t * d;
      const float* src = go + i * out_t * d;
      for (int64_t ot = 0; ot < out_t; ++ot) {
        float* lo = dst + axis.lo[static_cast<size_t>(ot)] * d;
        float* hi = dst + axis.hi[static_cast<size_t>(ot)] * d;
        const float tt = axis.t[static_cast<size_t>(ot)];
        const float* row = src + ot * d;
        for (int64_t j = 0; j < d; ++j) {
          lo[j] += (1 - tt) * row[j];
          hi[j] += tt * row[j];
        }
      }
    }
  });
  return grad_x;
}

}  // namespace gmorph
