#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/tensor/scratch.h"

namespace gmorph {
namespace {

#define GMORPH_RESTRICT __restrict__

void CheckSameShape(const Tensor& a, const Tensor& b) {
  GMORPH_CHECK(a.shape() == b.shape(), "shape mismatch " << a.shape().ToString() << " vs "
                                                             << b.shape().ToString());
}

// Elementwise kernels only split work above this many elements.
constexpr int64_t kElementwiseGrain = 1 << 15;

// ---------------------------------------------------------------------------
// GEMM. All three public variants map onto one logical product
//   C[M,N] (+)= sum_p A(i,p) * B(p,j)
// where A and B are strided views over the caller's row-major arrays.
// ---------------------------------------------------------------------------

// Element (i,j) lives at data[i * rs + j * cs].
struct MatView {
  const float* data;
  int64_t rs;
  int64_t cs;
  const float* at(int64_t i, int64_t j) const { return data + i * rs + j * cs; }
};

// Register tile of the wide-N micro-kernel: MR x 32 accumulators held in
// registers; the j-loop over kNR auto-vectorizes (no branches, restrict
// pointers, fixed trip count).
constexpr int64_t kNR = 32;
constexpr int64_t kPackMR = 6;  // packed path: panels are zero-padded to kPackMR
// Direct path: 8-row tiles (16 accumulator vectors on 8-wide FMA units), then
// 4-row, then single-row for the tail.
constexpr int64_t kDirectMR = 8;
// Cache blocking for the packed path.
constexpr int64_t kMC = 96;
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 1024;
// Dot-product tile: kLanes partial sums vectorize over K; kJB output columns
// share one pass over the A row.
constexpr int64_t kLanes = 16;
constexpr int64_t kJB = 4;
// Dispatch thresholds.
constexpr int64_t kTinyFlops = 8192;       // below: reference loops win
constexpr int64_t kWideMinN = 24;          // wide tile needs most of a kNR strip
constexpr int64_t kDotMinK = 24;           // dot path needs k >= ~kLanes to win
constexpr int64_t kDirectMaxFloats = 48 * 1024;  // working set for the no-pack path
constexpr int64_t kRowGrain = 16;          // ParallelFor grain over output rows

// ---- Direct (unpacked) wide path -----------------------------------------

// MR rows x kNR cols; A is read through scalar broadcasts so any strides work,
// B rows must be contiguous (cs == 1).
template <int MR>
void DirectTile(int64_t k, const float* GMORPH_RESTRICT a, int64_t ars, int64_t acs,
                const float* GMORPH_RESTRICT b, int64_t ldb, float* GMORPH_RESTRICT c,
                int64_t ldc, bool accumulate) {
  float acc[MR * kNR];
  std::memset(acc, 0, sizeof(acc));
  for (int64_t p = 0; p < k; ++p) {
    const float* GMORPH_RESTRICT bp = b + p * ldb;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * ars + p * acs];
      float* GMORPH_RESTRICT accr = acc + r * kNR;
      for (int j = 0; j < kNR; ++j) {
        accr[j] += av * bp[j];
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* GMORPH_RESTRICT cr = c + r * ldc;
    const float* GMORPH_RESTRICT ar = acc + r * kNR;
    if (accumulate) {
      for (int j = 0; j < kNR; ++j) {
        cr[j] += ar[j];
      }
    } else {
      for (int j = 0; j < kNR; ++j) {
        cr[j] = ar[j];
      }
    }
  }
}

// Column tail (nr < kNR), one row at a time with a runtime-bound j loop.
void DirectRowStrip(int64_t k, const float* a, int64_t ars, int64_t acs, const float* b,
                    int64_t ldb, int64_t jr, int64_t nr, float* c, bool accumulate) {
  float acc[kNR];
  std::memset(acc, 0, sizeof(acc));
  for (int64_t p = 0; p < k; ++p) {
    const float av = a[ars * 0 + p * acs];
    const float* bp = b + p * ldb + jr;
    for (int64_t j = 0; j < nr; ++j) {
      acc[j] += av * bp[j];
    }
  }
  float* cr = c + jr;
  if (accumulate) {
    for (int64_t j = 0; j < nr; ++j) {
      cr[j] += acc[j];
    }
  } else {
    for (int64_t j = 0; j < nr; ++j) {
      cr[j] = acc[j];
    }
  }
}

// C[M,N] over a B whose rows are contiguous; no packing, so only worthwhile
// when the working set is cache-resident.
void GemmWideDirect(int64_t m, int64_t k, int64_t n, const MatView& a, const float* b,
                    int64_t ldb, float* c, bool accumulate) {
  ParallelFor(0, m, kRowGrain, [&](int64_t row_lo, int64_t row_hi) {
    const int64_t n_full = n - n % kNR;
    for (int64_t jr = 0; jr < n_full; jr += kNR) {
      int64_t ir = row_lo;
      for (; ir + kDirectMR <= row_hi; ir += kDirectMR) {
        DirectTile<kDirectMR>(k, a.at(ir, 0), a.rs, a.cs, b + jr, ldb, c + ir * n + jr, n,
                              accumulate);
      }
      for (; ir + 4 <= row_hi; ir += 4) {
        DirectTile<4>(k, a.at(ir, 0), a.rs, a.cs, b + jr, ldb, c + ir * n + jr, n, accumulate);
      }
      for (; ir < row_hi; ++ir) {
        DirectTile<1>(k, a.at(ir, 0), a.rs, a.cs, b + jr, ldb, c + ir * n + jr, n, accumulate);
      }
    }
    if (n_full < n) {
      for (int64_t ir = row_lo; ir < row_hi; ++ir) {
        DirectRowStrip(k, a.at(ir, 0), a.rs, a.cs, b, ldb, n_full, n - n_full, c + ir * n,
                       accumulate);
      }
    }
  });
}

// ---- Packed (cache-blocked) wide path ------------------------------------

// Packs A block [i0, i0+mc) x [p0, p0+kc) into kPackMR-row panels, zero-padded
// so the micro-kernel never sees a partial panel.
void PackA(const MatView& a, int64_t i0, int64_t mc, int64_t p0, int64_t kc, float* dst) {
  for (int64_t ir = 0; ir < mc; ir += kPackMR) {
    const int64_t mr = std::min(kPackMR, mc - ir);
    for (int64_t p = 0; p < kc; ++p) {
      float* out = dst + p * kPackMR;
      const float* src = a.at(i0 + ir, p0 + p);
      for (int64_t r = 0; r < mr; ++r) {
        out[r] = src[r * a.rs];
      }
      for (int64_t r = mr; r < kPackMR; ++r) {
        out[r] = 0.0f;
      }
    }
    dst += kc * kPackMR;
  }
}

// Packs B block [p0, p0+kc) x [j0, j0+nc) into kNR-column panels, zero-padded.
void PackB(const MatView& b, int64_t p0, int64_t kc, int64_t j0, int64_t nc, float* dst) {
  for (int64_t jr = 0; jr < nc; jr += kNR) {
    const int64_t nr = std::min(kNR, nc - jr);
    if (b.cs == 1) {
      for (int64_t p = 0; p < kc; ++p) {
        float* out = dst + p * kNR;
        const float* src = b.at(p0 + p, j0 + jr);
        for (int64_t j = 0; j < nr; ++j) {
          out[j] = src[j];
        }
        for (int64_t j = nr; j < kNR; ++j) {
          out[j] = 0.0f;
        }
      }
    } else {
      // Transposed source (the NT variant): walk columns so reads stay
      // contiguous in the caller's array.
      for (int64_t j = 0; j < nr; ++j) {
        const float* src = b.at(p0, j0 + jr + j);
        float* out = dst + j;
        for (int64_t p = 0; p < kc; ++p) {
          out[p * kNR] = src[p * b.rs];
        }
      }
      for (int64_t j = nr; j < kNR; ++j) {
        float* out = dst + j;
        for (int64_t p = 0; p < kc; ++p) {
          out[p * kNR] = 0.0f;
        }
      }
    }
    dst += kc * kNR;
  }
}

// kPackMR x kNR micro-kernel over packed panels.
void PackedMicroKernel(int64_t kc, const float* GMORPH_RESTRICT pa,
                       const float* GMORPH_RESTRICT pb, float* GMORPH_RESTRICT acc) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* GMORPH_RESTRICT ap = pa + p * kPackMR;
    const float* GMORPH_RESTRICT bp = pb + p * kNR;
    for (int r = 0; r < kPackMR; ++r) {
      const float av = ap[r];
      float* GMORPH_RESTRICT accr = acc + r * kNR;
      for (int j = 0; j < kNR; ++j) {
        accr[j] += av * bp[j];
      }
    }
  }
}

// C[M,N] with A/B packed into scratch. Row blocks run in parallel; B panels
// are packed once up front and shared read-only across workers.
void GemmWidePacked(int64_t m, int64_t k, int64_t n, const MatView& a, const MatView& b,
                    float* c, bool accumulate) {
  ScratchScope scope;
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t col_panels = (nc + kNR - 1) / kNR;
    // Panel layout: all KC-blocks of packed B, back to back.
    float* pb_all = scope.AllocFloats(static_cast<size_t>(col_panels * kNR * k));
    {
      float* dst = pb_all;
      for (int64_t pc = 0; pc < k; pc += kKC) {
        const int64_t kc = std::min(kKC, k - pc);
        PackB(b, pc, kc, jc, nc, dst);
        dst += col_panels * kNR * kc;
      }
    }
    const int64_t row_blocks = (m + kMC - 1) / kMC;
    ParallelFor(0, row_blocks, 1, [&](int64_t blk_lo, int64_t blk_hi) {
      ScratchScope worker_scope;  // workers run on other threads: own arena
      float* pa = worker_scope.AllocFloats(static_cast<size_t>(kMC * kKC));
      float acc[kPackMR * kNR];
      for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
        const int64_t ic = blk * kMC;
        const int64_t mc = std::min(kMC, m - ic);
        const float* pb_block = pb_all;
        for (int64_t pc = 0; pc < k; pc += kKC) {
          const int64_t kc = std::min(kKC, k - pc);
          PackA(a, ic, mc, pc, kc, pa);
          const bool first = pc == 0 && !accumulate;
          for (int64_t jr = 0; jr < nc; jr += kNR) {
            const int64_t nr = std::min(kNR, nc - jr);
            const float* pb_panel = pb_block + (jr / kNR) * kc * kNR;
            for (int64_t ir = 0; ir < mc; ir += kPackMR) {
              const int64_t mr = std::min(kPackMR, mc - ir);
              std::memset(acc, 0, sizeof(acc));
              PackedMicroKernel(kc, pa + ir * kc, pb_panel, acc);
              float* ctile = c + (ic + ir) * n + jc + jr;
              for (int64_t r = 0; r < mr; ++r) {
                float* cr = ctile + r * n;
                const float* ar = acc + r * kNR;
                if (first) {
                  for (int64_t j = 0; j < nr; ++j) {
                    cr[j] = ar[j];
                  }
                } else {
                  for (int64_t j = 0; j < nr; ++j) {
                    cr[j] += ar[j];
                  }
                }
              }
            }
          }
          pb_block += col_panels * kNR * kc;
        }
      }
    });
  }
}

// ---- Narrow-N dot-product path -------------------------------------------

// C[i, j..j+JB) = dot(A row i, B^T rows j..j+JB). The lane accumulators
// vectorize over K; the scalar tail covers K % kLanes.
template <int JB>
void DotTile(int64_t k, const float* GMORPH_RESTRICT a, const float* GMORPH_RESTRICT bt,
             int64_t ldbt, float* GMORPH_RESTRICT c, bool accumulate) {
  float acc[JB][kLanes];
  std::memset(acc, 0, sizeof(acc));
  int64_t p = 0;
  for (; p + kLanes <= k; p += kLanes) {
    const float* GMORPH_RESTRICT ap = a + p;
    for (int jj = 0; jj < JB; ++jj) {
      const float* GMORPH_RESTRICT bp = bt + jj * ldbt + p;
      float* GMORPH_RESTRICT lane = acc[jj];
      for (int l = 0; l < kLanes; ++l) {
        lane[l] += ap[l] * bp[l];
      }
    }
  }
  for (int jj = 0; jj < JB; ++jj) {
    float s = 0.0f;
    for (int l = 0; l < kLanes; ++l) {
      s += acc[jj][l];
    }
    for (int64_t pt = p; pt < k; ++pt) {
      s += a[pt] * bt[jj * ldbt + pt];
    }
    c[jj] = accumulate ? c[jj] + s : s;
  }
}

// C[M,N] for narrow N: needs contiguous A rows and contiguous B^T rows, so
// either operand with the wrong layout is transposed into scratch first.
void GemmDot(int64_t m, int64_t k, int64_t n, const MatView& a, const MatView& b, float* c,
             bool accumulate) {
  ScratchScope scope;
  const float* arows = a.data;
  int64_t lda = a.rs;
  if (a.cs != 1) {
    float* packed = scope.AllocFloats(static_cast<size_t>(m * k));
    // Source columns are contiguous (rs == 1 for the TN view).
    for (int64_t i = 0; i < m; ++i) {
      const float* src = a.at(i, 0);
      float* dst = packed + i * k;
      for (int64_t p = 0; p < k; ++p) {
        dst[p] = src[p * a.cs];
      }
    }
    arows = packed;
    lda = k;
  }
  const float* btrows = b.data;
  int64_t ldbt = b.cs;
  if (b.rs != 1) {
    float* packed = scope.AllocFloats(static_cast<size_t>(n * k));
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b.at(p, 0);
      for (int64_t j = 0; j < n; ++j) {
        packed[j * k + p] = src[j * b.cs];
      }
    }
    btrows = packed;
    ldbt = k;
  }
  ParallelFor(0, m, kRowGrain, [&](int64_t row_lo, int64_t row_hi) {
    for (int64_t i = row_lo; i < row_hi; ++i) {
      const float* ai = arows + i * lda;
      float* ci = c + i * n;
      int64_t j = 0;
      for (; j + kJB <= n; j += kJB) {
        DotTile<kJB>(k, ai, btrows + j * ldbt, ldbt, ci + j, accumulate);
      }
      for (; j < n; ++j) {
        DotTile<1>(k, ai, btrows + j * ldbt, ldbt, ci + j, accumulate);
      }
    }
  });
}

// ---- Dispatch -------------------------------------------------------------

void GemmDispatch(int64_t m, int64_t k, int64_t n, const MatView& a, const MatView& b, float* c,
                  bool accumulate) {
  if (n >= kWideMinN) {
    const int64_t footprint = m * k + k * n + m * n;
    if (footprint <= kDirectMaxFloats) {
      if (b.cs == 1) {
        GemmWideDirect(m, k, n, a, b.data, b.rs, c, accumulate);
        return;
      }
      // NT with a small working set: materialize row-major B once, then run
      // the direct kernel over it.
      ScratchScope scope;
      float* bmat = scope.AllocFloats(static_cast<size_t>(k * n));
      for (int64_t j = 0; j < n; ++j) {
        const float* src = b.at(0, j);
        for (int64_t p = 0; p < k; ++p) {
          bmat[p * n + j] = src[p * b.rs];
        }
      }
      GemmWideDirect(m, k, n, a, bmat, n, c, accumulate);
      return;
    }
    GemmWidePacked(m, k, n, a, b, c, accumulate);
    return;
  }
  GemmDot(m, k, n, a, b, c, accumulate);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pa[i] + pb[i];
    }
  });
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pa[i] - pb[i];
    }
  });
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pa[i] * pb[i];
    }
  });
  return out;
}

void AddInPlace(Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pa[i] += pb[i];
    }
  });
}

void ScaleInPlace(Tensor& a, float s) {
  float* pa = a.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pa[i] *= s;
    }
  });
}

void AxpyInPlace(Tensor& y, float alpha, const Tensor& x) {
  CheckSameShape(y, x);
  float* py = y.data();
  const float* px = x.data();
  ParallelFor(0, y.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      py[i] += alpha * px[i];
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a.Clone();
  ScaleInPlace(out, s);
  return out;
}

void RefMatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  }
  // i-k-j order: the inner loop streams over contiguous rows of B and C.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) {
        continue;
      }
      const float* bp = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

void RefMatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
                 bool accumulate) {
  // C[i,p] = sum_j A[i,j] * B[p,j]; the dot product runs over contiguous rows.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * n;
    float* ci = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* bp = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        acc += ai[j] * bp[j];
      }
      ci[p] = accumulate ? ci[p] + acc : acc;
    }
  }
}

void RefMatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                 bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(k * n) * sizeof(float));
  }
  // C[p,j] += A[i,p] * B[i,j]; rank-1 updates keep the inner loop contiguous.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    const float* bi = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) {
        continue;
      }
      float* cp = c + p * n;
      for (int64_t j = 0; j < n; ++j) {
        cp[j] += av * bi[j];
      }
    }
  }
}

void MatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate) {
  if (2 * m * k * n <= kTinyFlops || (n < kWideMinN && k < kDotMinK)) {
    RefMatmulNN(a, b, c, m, k, n, accumulate);
    return;
  }
  GemmDispatch(m, k, n, MatView{a, k, 1}, MatView{b, n, 1}, c, accumulate);
}

void MatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
              bool accumulate) {
  // Logical product: M = m, K = n, N = k.
  if (2 * m * n * k <= kTinyFlops || (k < kWideMinN && n < kDotMinK)) {
    RefMatmulNT(a, b, c, m, n, k, accumulate);
    return;
  }
  GemmDispatch(m, n, k, MatView{a, n, 1}, MatView{b, 1, n}, c, accumulate);
}

void MatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate) {
  // Logical product: M = k, K = m, N = n.
  if (2 * m * k * n <= kTinyFlops || (n < kWideMinN && m < kDotMinK)) {
    RefMatmulTN(a, b, c, m, k, n, accumulate);
    return;
  }
  GemmDispatch(k, m, n, MatView{a, 1, k}, MatView{b, n, 1}, c, accumulate);
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  GMORPH_CHECK(a.shape().Rank() == 2 && b.shape().Rank() == 2);
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  GMORPH_CHECK(b.shape()[0] == k, "matmul inner dims " << a.shape().ToString() << " x "
                                                           << b.shape().ToString());
  const int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  MatmulNN(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

void LinearForwardInto(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out,
                       bool relu) {
  GMORPH_CHECK(w.shape().Rank() == 2);
  const int64_t in_features = w.shape()[0];
  const int64_t out_features = w.shape()[1];
  GMORPH_CHECK(x.shape()[-1] == in_features,
                   "linear in features: x " << x.shape().ToString() << " w "
                                            << w.shape().ToString());
  const int64_t rows = x.size() / in_features;
  GMORPH_CHECK(out.size() == rows * out_features);
  MatmulNN(x.data(), w.data(), out.data(), rows, in_features, out_features);
  if (b.empty() && !relu) {
    return;
  }
  float* po = out.data();
  const float* pb = b.empty() ? nullptr : b.data();
  const int64_t grain = std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, out_features));
  ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* row = po + r * out_features;
      if (pb != nullptr) {
        for (int64_t j = 0; j < out_features; ++j) {
          row[j] += pb[j];
        }
      }
      if (relu) {
        for (int64_t j = 0; j < out_features; ++j) {
          row[j] = row[j] > 0.0f ? row[j] : 0.0f;
        }
      }
    }
  });
}

Tensor SoftmaxLastDim(const Tensor& x) {
  GMORPH_CHECK(x.shape().Rank() >= 1);
  const int64_t cols = x.shape()[-1];
  const int64_t rows = x.size() / cols;
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, cols));
  ParallelFor(0, rows, grain, [&](int64_t row_lo, int64_t row_hi) {
    for (int64_t r = row_lo; r < row_hi; ++r) {
      const float* xr = px + r * cols;
      float* orow = po + r * cols;
      float mx = xr[0];
      for (int64_t j = 1; j < cols; ++j) {
        mx = std::max(mx, xr[j]);
      }
      float sum = 0.0f;
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] = std::exp(xr[j] - mx);
        sum += orow[j];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] *= inv;
      }
    }
  });
  return out;
}

Tensor SoftmaxBackwardLastDim(const Tensor& y, const Tensor& grad_y) {
  CheckSameShape(y, grad_y);
  const int64_t cols = y.shape()[-1];
  const int64_t rows = y.size() / cols;
  Tensor out(y.shape());
  const float* py = y.data();
  const float* pg = grad_y.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, cols));
  ParallelFor(0, rows, grain, [&](int64_t row_lo, int64_t row_hi) {
    for (int64_t r = row_lo; r < row_hi; ++r) {
      const float* yr = py + r * cols;
      const float* gr = pg + r * cols;
      float* orow = po + r * cols;
      float dot = 0.0f;
      for (int64_t j = 0; j < cols; ++j) {
        dot += yr[j] * gr[j];
      }
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] = yr[j] * (gr[j] - dot);
      }
    }
  });
  return out;
}

float SumAll(const Tensor& a) {
  double s = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    s += p[i];
  }
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  GMORPH_CHECK(a.size() > 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float MaxAbs(const Tensor& a) {
  float m = 0.0f;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(p[i]));
  }
  return m;
}

std::vector<int> ArgmaxRows(const Tensor& a) {
  GMORPH_CHECK(a.shape().Rank() == 2);
  const int64_t rows = a.shape()[0];
  const int64_t cols = a.shape()[1];
  std::vector<int> out(static_cast<size_t>(rows));
  const float* p = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    int best = 0;
    for (int64_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) {
        best = static_cast<int>(j);
      }
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

}  // namespace gmorph
