#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/kernels/registry.h"
#include "src/kernels/solver.h"

namespace gmorph {
namespace {

#define GMORPH_RESTRICT __restrict__

void CheckSameShape(const Tensor& a, const Tensor& b) {
  GMORPH_CHECK(a.shape() == b.shape(), "shape mismatch " << a.shape().ToString() << " vs "
                                                             << b.shape().ToString());
}

// Elementwise kernels only split work above this many elements.
constexpr int64_t kElementwiseGrain = 1 << 15;

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pa[i] + pb[i];
    }
  });
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pa[i] - pb[i];
    }
  });
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      po[i] = pa[i] * pb[i];
    }
  });
  return out;
}

void AddInPlace(Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pa[i] += pb[i];
    }
  });
}

void ScaleInPlace(Tensor& a, float s) {
  float* pa = a.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pa[i] *= s;
    }
  });
}

void AxpyInPlace(Tensor& y, float alpha, const Tensor& x) {
  CheckSameShape(y, x);
  float* py = y.data();
  const float* px = x.data();
  ParallelFor(0, y.size(), kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      py[i] += alpha * px[i];
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a.Clone();
  ScaleInPlace(out, s);
  return out;
}

// The three public GEMMs are thin shims over the solver registry: build the
// logical descriptor, resolve (tuned winner if a tuning DB is loaded, else
// the shape heuristic), run. No dispatch thresholds live here anymore.
void MatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate) {
  const kernels::ProblemDesc desc = kernels::GemmProblem(kernels::OpFamily::kGemmNN, m, k, n);
  const kernels::GemmSolver* solver = kernels::SolverRegistry::Global().ResolveGemm(desc);
  solver->Run(desc, kernels::MakeGemmCall(desc, a, b, c, accumulate));
}

void MatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
              bool accumulate) {
  // Logical product: M = m, K = n, N = k.
  const kernels::ProblemDesc desc = kernels::GemmProblem(kernels::OpFamily::kGemmNT, m, n, k);
  const kernels::GemmSolver* solver = kernels::SolverRegistry::Global().ResolveGemm(desc);
  solver->Run(desc, kernels::MakeGemmCall(desc, a, b, c, accumulate));
}

void MatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate) {
  // Logical product: M = k, K = m, N = n.
  const kernels::ProblemDesc desc = kernels::GemmProblem(kernels::OpFamily::kGemmTN, k, m, n);
  const kernels::GemmSolver* solver = kernels::SolverRegistry::Global().ResolveGemm(desc);
  solver->Run(desc, kernels::MakeGemmCall(desc, a, b, c, accumulate));
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  GMORPH_CHECK(a.shape().Rank() == 2 && b.shape().Rank() == 2);
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  GMORPH_CHECK(b.shape()[0] == k, "matmul inner dims " << a.shape().ToString() << " x "
                                                           << b.shape().ToString());
  const int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  MatmulNN(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

void LinearForwardInto(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& out,
                       bool relu, const kernels::GemmSolver* solver) {
  GMORPH_CHECK(w.shape().Rank() == 2);
  const int64_t in_features = w.shape()[0];
  const int64_t out_features = w.shape()[1];
  GMORPH_CHECK(x.shape()[-1] == in_features,
                   "linear in features: x " << x.shape().ToString() << " w "
                                            << w.shape().ToString());
  const int64_t rows = x.size() / in_features;
  GMORPH_CHECK(out.size() == rows * out_features);
  if (solver != nullptr) {
    const kernels::ProblemDesc desc =
        kernels::GemmProblem(kernels::OpFamily::kGemmNN, rows, in_features, out_features);
    solver->Run(desc, kernels::MakeGemmCall(desc, x.data(), w.data(), out.data(),
                                            /*accumulate=*/false));
  } else {
    MatmulNN(x.data(), w.data(), out.data(), rows, in_features, out_features);
  }
  if (b.empty() && !relu) {
    return;
  }
  float* po = out.data();
  const float* pb = b.empty() ? nullptr : b.data();
  const int64_t grain = std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, out_features));
  ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* row = po + r * out_features;
      if (pb != nullptr) {
        for (int64_t j = 0; j < out_features; ++j) {
          row[j] += pb[j];
        }
      }
      if (relu) {
        for (int64_t j = 0; j < out_features; ++j) {
          row[j] = row[j] > 0.0f ? row[j] : 0.0f;
        }
      }
    }
  });
}

Tensor SoftmaxLastDim(const Tensor& x) {
  GMORPH_CHECK(x.shape().Rank() >= 1);
  const int64_t cols = x.shape()[-1];
  const int64_t rows = x.size() / cols;
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, cols));
  ParallelFor(0, rows, grain, [&](int64_t row_lo, int64_t row_hi) {
    for (int64_t r = row_lo; r < row_hi; ++r) {
      const float* xr = px + r * cols;
      float* orow = po + r * cols;
      float mx = xr[0];
      for (int64_t j = 1; j < cols; ++j) {
        mx = std::max(mx, xr[j]);
      }
      float sum = 0.0f;
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] = std::exp(xr[j] - mx);
        sum += orow[j];
      }
      const float inv = 1.0f / sum;
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] *= inv;
      }
    }
  });
  return out;
}

Tensor SoftmaxBackwardLastDim(const Tensor& y, const Tensor& grad_y) {
  CheckSameShape(y, grad_y);
  const int64_t cols = y.shape()[-1];
  const int64_t rows = y.size() / cols;
  Tensor out(y.shape());
  const float* py = y.data();
  const float* pg = grad_y.data();
  float* po = out.data();
  const int64_t grain = std::max<int64_t>(1, kElementwiseGrain / std::max<int64_t>(1, cols));
  ParallelFor(0, rows, grain, [&](int64_t row_lo, int64_t row_hi) {
    for (int64_t r = row_lo; r < row_hi; ++r) {
      const float* yr = py + r * cols;
      const float* gr = pg + r * cols;
      float* orow = po + r * cols;
      float dot = 0.0f;
      for (int64_t j = 0; j < cols; ++j) {
        dot += yr[j] * gr[j];
      }
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] = yr[j] * (gr[j] - dot);
      }
    }
  });
  return out;
}

float SumAll(const Tensor& a) {
  double s = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    s += p[i];
  }
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  GMORPH_CHECK(a.size() > 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float MaxAbs(const Tensor& a) {
  float m = 0.0f;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(p[i]));
  }
  return m;
}

std::vector<int> ArgmaxRows(const Tensor& a) {
  GMORPH_CHECK(a.shape().Rank() == 2);
  const int64_t rows = a.shape()[0];
  const int64_t cols = a.shape()[1];
  std::vector<int> out(static_cast<size_t>(rows));
  const float* p = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    int best = 0;
    for (int64_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) {
        best = static_cast<int>(j);
      }
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

}  // namespace gmorph
