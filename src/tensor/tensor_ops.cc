#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/check.h"

namespace gmorph {
namespace {

void CheckSameShape(const Tensor& a, const Tensor& b) {
  GMORPH_CHECK_MSG(a.shape() == b.shape(), "shape mismatch " << a.shape().ToString() << " vs "
                                                             << b.shape().ToString());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    po[i] = pa[i] + pb[i];
  }
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    po[i] = pa[i] - pb[i];
  }
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    po[i] = pa[i] * pb[i];
  }
  return out;
}

void AddInPlace(Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    pa[i] += pb[i];
  }
}

void ScaleInPlace(Tensor& a, float s) {
  float* pa = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    pa[i] *= s;
  }
}

void AxpyInPlace(Tensor& y, float alpha, const Tensor& x) {
  CheckSameShape(y, x);
  float* py = y.data();
  const float* px = x.data();
  for (int64_t i = 0; i < y.size(); ++i) {
    py[i] += alpha * px[i];
  }
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a.Clone();
  ScaleInPlace(out, s);
  return out;
}

void MatmulNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  }
  // i-k-j order: the inner loop streams over contiguous rows of B and C.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) {
        continue;
      }
      const float* bp = b + p * n;
      for (int64_t j = 0; j < n; ++j) {
        ci[j] += av * bp[j];
      }
    }
  }
}

void MatmulNT(const float* a, const float* b, float* c, int64_t m, int64_t n, int64_t k,
              bool accumulate) {
  // C[i,p] = sum_j A[i,j] * B[p,j]; the dot product runs over contiguous rows.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * n;
    float* ci = c + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float* bp = b + p * n;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        acc += ai[j] * bp[j];
      }
      ci[p] = accumulate ? ci[p] + acc : acc;
    }
  }
}

void MatmulTN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
              bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(k * n) * sizeof(float));
  }
  // C[p,j] += A[i,p] * B[i,j]; rank-1 updates keep the inner loop contiguous.
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    const float* bi = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) {
        continue;
      }
      float* cp = c + p * n;
      for (int64_t j = 0; j < n; ++j) {
        cp[j] += av * bi[j];
      }
    }
  }
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  GMORPH_CHECK(a.shape().Rank() == 2 && b.shape().Rank() == 2);
  const int64_t m = a.shape()[0];
  const int64_t k = a.shape()[1];
  GMORPH_CHECK_MSG(b.shape()[0] == k, "matmul inner dims " << a.shape().ToString() << " x "
                                                           << b.shape().ToString());
  const int64_t n = b.shape()[1];
  Tensor c(Shape{m, n});
  MatmulNN(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

Tensor SoftmaxLastDim(const Tensor& x) {
  GMORPH_CHECK(x.shape().Rank() >= 1);
  const int64_t cols = x.shape()[-1];
  const int64_t rows = x.size() / cols;
  Tensor out(x.shape());
  const float* px = x.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = px + r * cols;
    float* orow = po + r * cols;
    float mx = xr[0];
    for (int64_t j = 1; j < cols; ++j) {
      mx = std::max(mx, xr[j]);
    }
    float sum = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      orow[j] = std::exp(xr[j] - mx);
      sum += orow[j];
    }
    const float inv = 1.0f / sum;
    for (int64_t j = 0; j < cols; ++j) {
      orow[j] *= inv;
    }
  }
  return out;
}

Tensor SoftmaxBackwardLastDim(const Tensor& y, const Tensor& grad_y) {
  CheckSameShape(y, grad_y);
  const int64_t cols = y.shape()[-1];
  const int64_t rows = y.size() / cols;
  Tensor out(y.shape());
  const float* py = y.data();
  const float* pg = grad_y.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* yr = py + r * cols;
    const float* gr = pg + r * cols;
    float* orow = po + r * cols;
    float dot = 0.0f;
    for (int64_t j = 0; j < cols; ++j) {
      dot += yr[j] * gr[j];
    }
    for (int64_t j = 0; j < cols; ++j) {
      orow[j] = yr[j] * (gr[j] - dot);
    }
  }
  return out;
}

float SumAll(const Tensor& a) {
  double s = 0.0;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    s += p[i];
  }
  return static_cast<float>(s);
}

float MeanAll(const Tensor& a) {
  GMORPH_CHECK(a.size() > 0);
  return SumAll(a) / static_cast<float>(a.size());
}

float MaxAbs(const Tensor& a) {
  float m = 0.0f;
  const float* p = a.data();
  for (int64_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(p[i]));
  }
  return m;
}

std::vector<int> ArgmaxRows(const Tensor& a) {
  GMORPH_CHECK(a.shape().Rank() == 2);
  const int64_t rows = a.shape()[0];
  const int64_t cols = a.shape()[1];
  std::vector<int> out(static_cast<size_t>(rows));
  const float* p = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = p + r * cols;
    int best = 0;
    for (int64_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) {
        best = static_cast<int>(j);
      }
    }
    out[static_cast<size_t>(r)] = best;
  }
  return out;
}

}  // namespace gmorph
