#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace gmorph {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

float Rng::NextFloat() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f; }

int Rng::NextInt(int n) {
  GMORPH_CHECK(n > 0);
  return static_cast<int>(NextDouble() * n);
}

int Rng::NextIntRange(int lo, int hi) {
  GMORPH_CHECK(lo <= hi);
  return lo + NextInt(hi - lo + 1);
}

float Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on two uniforms; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 1e-12) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = static_cast<float>(r * std::sin(theta));
  has_cached_gaussian_ = true;
  return static_cast<float>(r * std::cos(theta));
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

uint64_t Rng::MixSeed(uint64_t seed, uint64_t stream, uint64_t substream) {
  uint64_t z = seed ^ (stream * 0xbf58476d1ce4e5b9ull) ^ (substream * 0x94d049bb133111ebull);
  return SplitMix64(z);
}

}  // namespace gmorph
