#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/obs/timing.h"
#include "src/obs/trace.h"

namespace gmorph {
namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("GMORPH_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(env, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(env, "off") == 0) {
    return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{LevelFromEnv()};

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

void AppendLogPrefix(std::ostream& os, const char* tag) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "[%10.3f t%02d %s] ",
                static_cast<double>(MonotonicNowNs()) * 1e-9, obs::CurrentThreadIndex(), tag);
  os << buf;
}

}  // namespace internal
}  // namespace gmorph
