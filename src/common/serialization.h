// Minimal binary serialization for tensor collections — used to checkpoint
// pre-trained teacher weights (the paper's .pt checkpoints stand-in) and to
// cache bench results across binaries.
#ifndef GMORPH_SRC_COMMON_SERIALIZATION_H_
#define GMORPH_SRC_COMMON_SERIALIZATION_H_

#include <string>
#include <vector>

#include "src/tensor/tensor.h"

namespace gmorph {

// Writes nested tensor lists (e.g. TaskModel::ExportWeights()) to `path`.
// Returns false on I/O failure.
bool SaveWeights(const std::string& path, const std::vector<std::vector<Tensor>>& weights);

// Reads a file written by SaveWeights. Returns false on I/O failure or format
// mismatch (leaving `weights` empty).
bool LoadWeights(const std::string& path, std::vector<std::vector<Tensor>>& weights);

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_SERIALIZATION_H_
