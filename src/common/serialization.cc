#include "src/common/serialization.h"

#include <algorithm>
#include <cstdint>
#include <fstream>

namespace gmorph {
namespace {

constexpr uint64_t kMagic = 0x474d4f5250485731ull;  // "GMORPHW1"

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveWeights(const std::string& path, const std::vector<std::vector<Tensor>>& weights) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint64_t>(weights.size()));
  for (const auto& group : weights) {
    WritePod(out, static_cast<uint64_t>(group.size()));
    for (const Tensor& t : group) {
      WritePod(out, static_cast<uint64_t>(t.shape().Rank()));
      for (int64_t d : t.shape().dims()) {
        WritePod(out, d);
      }
      out.write(reinterpret_cast<const char*>(t.data()),
                static_cast<std::streamsize>(t.size() * sizeof(float)));
    }
  }
  return static_cast<bool>(out);
}

bool LoadWeights(const std::string& path, std::vector<std::vector<Tensor>>& weights) {
  weights.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint64_t magic = 0;
  uint64_t groups = 0;
  if (!ReadPod(in, magic) || magic != kMagic || !ReadPod(in, groups)) {
    return false;
  }
  weights.resize(groups);
  for (auto& group : weights) {
    uint64_t count = 0;
    if (!ReadPod(in, count)) {
      weights.clear();
      return false;
    }
    group.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t rank = 0;
      if (!ReadPod(in, rank) || rank > 8) {
        weights.clear();
        return false;
      }
      std::vector<int64_t> dims(rank);
      int64_t elements = 1;
      for (auto& d : dims) {
        // Bound dimensions so corrupted files cannot trigger huge allocations.
        if (!ReadPod(in, d) || d < 0 || d > (1 << 24)) {
          weights.clear();
          return false;
        }
        elements *= std::max<int64_t>(d, 1);
        if (elements > (int64_t{1} << 28)) {
          weights.clear();
          return false;
        }
      }
      Tensor t{Shape(dims)};
      in.read(reinterpret_cast<char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
      if (!in) {
        weights.clear();
        return false;
      }
      group.push_back(std::move(t));
    }
  }
  return true;
}

}  // namespace gmorph
