// Lightweight precondition / invariant checking used across all GMorph libraries.
//
// GMORPH_CHECK(cond) / GMORPH_CHECK(cond, streamed << message) is always on
// (release included): the search mutates graphs programmatically and silent
// shape corruption is far more expensive than the branch. GMORPH_DCHECK takes
// the same forms and compiles out under NDEBUG for hot inner loops.
//
// A failed check throws CheckError carrying the failing expression, location
// and message as structured fields, so the static-analysis layer
// (src/analysis/diagnostics.h) can convert fatal checks into the same
// Diagnostic records the verifiers emit — one reporting path for both.
#ifndef GMORPH_SRC_COMMON_CHECK_H_
#define GMORPH_SRC_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace gmorph {

// Thrown on any failed runtime check. what() is the formatted one-line report;
// the individual fields stay accessible for structured consumers.
class CheckError : public std::runtime_error {
 public:
  CheckError(std::string expr, std::string file, int line, std::string message)
      : std::runtime_error(Format(expr, file, line, message)),
        expr_(std::move(expr)),
        file_(std::move(file)),
        line_(line),
        message_(std::move(message)) {}

  const std::string& expr() const { return expr_; }
  const std::string& file() const { return file_; }
  int line() const { return line_; }
  const std::string& message() const { return message_; }

 private:
  static std::string Format(const std::string& expr, const std::string& file, int line,
                            const std::string& message) {
    std::ostringstream os;
    os << "GMORPH_CHECK failed: " << expr << " at " << file << ":" << line;
    if (!message.empty()) {
      os << " — " << message;
    }
    return os.str();
  }

  std::string expr_;
  std::string file_;
  int line_;
  std::string message_;
};

namespace internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  throw CheckError(expr, file, line, msg);
}

}  // namespace internal
}  // namespace gmorph

#define GMORPH_CHECK_BARE_(cond)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::gmorph::internal::CheckFail(#cond, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (0)

#define GMORPH_CHECK_MSG_(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream gmorph_check_os_;                               \
      gmorph_check_os_ << msg;                                           \
      ::gmorph::internal::CheckFail(#cond, __FILE__, __LINE__,           \
                                    gmorph_check_os_.str());             \
    }                                                                    \
  } while (0)

// Dispatches GMORPH_CHECK(cond) / GMORPH_CHECK(cond, msg) on arity. The
// message may be a `<<` chain; parenthesized commas inside it are fine.
#define GMORPH_CHECK_SELECT_(_1, _2, NAME, ...) NAME
#define GMORPH_CHECK(...) \
  GMORPH_CHECK_SELECT_(__VA_ARGS__, GMORPH_CHECK_MSG_, GMORPH_CHECK_BARE_)(__VA_ARGS__)

#ifdef NDEBUG
#define GMORPH_DCHECK(...) \
  do {                     \
  } while (0)
#else
#define GMORPH_DCHECK(...) GMORPH_CHECK(__VA_ARGS__)
#endif

#endif  // GMORPH_SRC_COMMON_CHECK_H_
