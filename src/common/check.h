// Lightweight precondition / invariant checking used across all GMorph libraries.
//
// GMORPH_CHECK is always on (release included): the search mutates graphs
// programmatically and silent shape corruption is far more expensive than the
// branch. GMORPH_DCHECK compiles out under NDEBUG for hot inner loops.
#ifndef GMORPH_SRC_COMMON_CHECK_H_
#define GMORPH_SRC_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace gmorph {

// Thrown on any failed runtime check. Carries the failing expression and location.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "GMORPH_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace internal
}  // namespace gmorph

#define GMORPH_CHECK(cond)                                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::gmorph::internal::CheckFail(#cond, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (0)

#define GMORPH_CHECK_MSG(cond, msg)                                      \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream gmorph_check_os_;                               \
      gmorph_check_os_ << msg;                                           \
      ::gmorph::internal::CheckFail(#cond, __FILE__, __LINE__,           \
                                    gmorph_check_os_.str());             \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define GMORPH_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define GMORPH_DCHECK(cond) GMORPH_CHECK(cond)
#endif

#endif  // GMORPH_SRC_COMMON_CHECK_H_
