#include "src/common/parallel_for.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/obs/trace.h"

namespace gmorph {
namespace {

thread_local int t_parallel_depth = 0;

std::mutex g_pool_mutex;
int g_num_threads = 0;  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool;

int ResolveDefaultThreads() {
  if (const char* env = std::getenv("GMORPH_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

// Both locked by g_pool_mutex.
int KernelThreadsLocked() {
  if (g_num_threads == 0) {
    g_num_threads = ResolveDefaultThreads();
  }
  return g_num_threads;
}

ThreadPool* PoolLocked() {
  const int threads = KernelThreadsLocked();
  if (threads <= 1) {
    return nullptr;
  }
  if (g_pool == nullptr) {
    // The caller participates in every ParallelFor, so the pool only needs
    // threads - 1 workers to reach the configured parallelism.
    g_pool = std::make_unique<ThreadPool>(threads - 1, "kernel");
  }
  return g_pool.get();
}

}  // namespace

int KernelThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return KernelThreadsLocked();
}

void SetKernelThreads(int n) {
  GMORPH_CHECK(n >= 1, "kernel thread count must be >= 1, got " << n);
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_num_threads = n;
    old = std::move(g_pool);
  }
  // Joins outside the lock; the destructor drains remaining tasks.
}

bool InParallelRegion() { return t_parallel_depth > 0; }

ParallelRegionGuard::ParallelRegionGuard() { ++t_parallel_depth; }
ParallelRegionGuard::~ParallelRegionGuard() { --t_parallel_depth; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) {
    return;
  }
  if (grain < 1) {
    grain = 1;
  }
  const int64_t chunks = (end - begin + grain - 1) / grain;

  ThreadPool* pool = nullptr;
  if (chunks > 1 && !InParallelRegion()) {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    pool = PoolLocked();
  }
  if (pool == nullptr) {
    ParallelRegionGuard guard;
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t lo = begin + c * grain;
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  // Shared by the caller and the pool tasks; next_chunk hands out fixed
  // grain-sized chunks so the partition is identical for every pool size.
  struct State {
    std::atomic<int64_t> next_chunk{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr exception;
    int pending = 0;
  };
  auto state = std::make_shared<State>();

  auto worker = [state, begin, end, grain, chunks, &fn] {
    ParallelRegionGuard guard;
    obs::TraceSpan span("parallel_for", obs::TraceCat::kKernel);
    int64_t c;
    while ((c = state->next_chunk.fetch_add(1, std::memory_order_relaxed)) < chunks) {
      if (state->failed.load(std::memory_order_relaxed)) {
        break;
      }
      try {
        const int64_t lo = begin + c * grain;
        fn(lo, std::min(end, lo + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->exception == nullptr) {
          state->exception = std::current_exception();
        }
        state->failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int64_t helpers =
      std::min<int64_t>(pool->num_threads(), chunks - 1);
  state->pending = static_cast<int>(helpers);
  for (int64_t i = 0; i < helpers; ++i) {
    pool->Submit([state, worker] {
      worker();
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->pending == 0) {
        state->done.notify_all();
      }
    });
  }
  worker();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&state] { return state->pending == 0; });
    if (state->exception != nullptr) {
      std::rethrow_exception(state->exception);
    }
  }
}

}  // namespace gmorph
