// Fixed-size thread pool used by the parallel search mode (paper §7 suggests
// sampling multiple multi-task models in parallel to cut search time).
#ifndef GMORPH_SRC_COMMON_THREAD_POOL_H_
#define GMORPH_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gmorph {

class ThreadPool {
 public:
  // `num_threads` >= 1. Threads start immediately and idle on the queue.
  explicit ThreadPool(int num_threads);
  // Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw (exceptions would cross thread
  // boundaries); wrap fallible work and capture errors in the closure.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void WaitAll();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_THREAD_POOL_H_
