// Fixed-size thread pool used by the parallel search mode (paper §7 suggests
// sampling multiple multi-task models in parallel to cut search time) and as
// the backing pool for the kernel layer's ParallelFor.
#ifndef GMORPH_SRC_COMMON_THREAD_POOL_H_
#define GMORPH_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gmorph {

class ThreadPool {
 public:
  // `num_threads` >= 1. Threads start immediately and idle on the queue.
  // `name` labels the workers ("<name>-0", "<name>-1", ...) in trace exports.
  explicit ThreadPool(int num_threads, std::string name = "pool");
  // Drains the queue (including tasks submitted by running tasks), then joins
  // all workers. Exceptions still pending at destruction are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks may throw: the first exception is captured and
  // rethrown from the next WaitAll(); later ones are dropped. Running tasks
  // may Submit more work, even while the destructor is draining.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished, then rethrows the first
  // exception any of them raised (clearing it, so the pool stays usable).
  void WaitAll();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop(int worker_index);

  std::string name_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_exception_;
  int in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_THREAD_POOL_H_
