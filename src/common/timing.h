// Shared wall-clock measurement helper.
//
// Both the search-time latency estimator (src/core/latency.cc) and the
// engine benchmark path (src/runtime/engine.cc) report the median of N timed
// runs after a warmup; keeping the loop in one place guarantees the two
// measurements are taken identically.
#ifndef GMORPH_SRC_COMMON_TIMING_H_
#define GMORPH_SRC_COMMON_TIMING_H_

#include <functional>

namespace gmorph {

// Runs `fn` `warmup` times untimed, then `repeats` times timed, and returns
// the median wall-clock duration in milliseconds. `repeats` must be >= 1.
double MedianTimedMs(const std::function<void()>& fn, int warmup, int repeats);

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_TIMING_H_
