#include "src/common/artifact_header.h"

#include <cctype>

namespace gmorph {
namespace {

// The version token: "v<decimal>", nothing else.
bool ParseVersionToken(std::string_view token, int* version) {
  if (token.size() < 2 || token.size() > 10 || token[0] != 'v') {
    return false;
  }
  int value = 0;
  for (size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return false;
    }
    value = value * 10 + (token[i] - '0');
  }
  *version = value;
  return true;
}

}  // namespace

std::string ArtifactHeaderLine(const ArtifactHeaderSpec& spec) {
  return std::string(spec.kind) + " v" + std::to_string(spec.version);
}

HeaderCheck CheckArtifactHeaderLine(std::string_view line, const ArtifactHeaderSpec& spec) {
  const std::string_view kind(spec.kind);
  if (line.substr(0, kind.size()) != kind ||
      (line.size() > kind.size() && line[kind.size()] != ' ')) {
    return HeaderCheck::kMissing;
  }
  return line == ArtifactHeaderLine(spec) ? HeaderCheck::kOk : HeaderCheck::kWrongVersion;
}

bool ParseArtifactHeaderLine(std::string_view line, std::string* kind, int* version) {
  constexpr std::string_view kPrefix = "gmorph-";
  if (line.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  const size_t space = line.find(' ');
  if (space == std::string::npos || space == kPrefix.size()) {
    return false;
  }
  size_t end = line.find(' ', space + 1);
  if (end == std::string::npos) {
    end = line.size();
  }
  int v = 0;
  if (!ParseVersionToken(line.substr(space + 1, end - space - 1), &v)) {
    return false;
  }
  if (kind != nullptr) {
    kind->assign(line.substr(0, space));
  }
  if (version != nullptr) {
    *version = v;
  }
  return true;
}

}  // namespace gmorph
