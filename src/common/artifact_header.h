// Shared "gmorph-<kind> vN" header discipline for every text artifact the
// project persists (plans, tuning DBs, quant recipes, eval-cache indexes,
// search checkpoints). Each subsystem used to hand-roll the same three-way
// check (missing header / wrong kind / wrong version) in both its loader and
// its linter; routing all of them through this helper means the two can never
// drift, and the CLI can sniff any artifact's kind from its first line.
#ifndef GMORPH_SRC_COMMON_ARTIFACT_HEADER_H_
#define GMORPH_SRC_COMMON_ARTIFACT_HEADER_H_

#include <string>
#include <string_view>

namespace gmorph {

// Identity of one artifact format. `kind` is the full header word including
// the "gmorph-" prefix (e.g. "gmorph-tunedb"); `version` is the supported
// on-disk revision.
struct ArtifactHeaderSpec {
  const char* kind;
  int version;
};

// The canonical artifacts. The per-subsystem string constants that predate
// this helper (kernels::kTuneDbHeader, quant::kQuantRecipeHeader, ...) are
// asserted equal to ArtifactHeaderLine(<spec>) in the unit tests.
inline constexpr ArtifactHeaderSpec kPlanArtifact{"gmorph-plan", 1};
inline constexpr ArtifactHeaderSpec kTuneDbArtifact{"gmorph-tunedb", 1};
inline constexpr ArtifactHeaderSpec kQuantRecipeArtifact{"gmorph-quant", 1};
inline constexpr ArtifactHeaderSpec kEvalCacheArtifact{"gmorph-evalcache", 1};
inline constexpr ArtifactHeaderSpec kCheckpointArtifact{"gmorph-checkpoint", 1};
inline constexpr ArtifactHeaderSpec kMachineArtifact{"gmorph-machine", 1};

// "gmorph-tunedb v1" — what writers emit as the first line.
std::string ArtifactHeaderLine(const ArtifactHeaderSpec& spec);

enum class HeaderCheck {
  kOk,            // exact header line for this spec
  kMissing,       // does not start with the spec's kind word
  kWrongVersion,  // right kind, unsupported version (or malformed version)
};

// Classifies a first line against one spec. The kind word must be followed by
// end-of-line or whitespace, so "gmorph-plan2 v1" is kMissing, not a version
// error for "gmorph-plan".
HeaderCheck CheckArtifactHeaderLine(std::string_view line, const ArtifactHeaderSpec& spec);

// Generic sniffing: splits any "gmorph-<kind> v<N>" first line into its kind
// word and version. Returns false when the line is not a gmorph artifact
// header at all. Trailing content after the version token is tolerated (the
// per-spec check above is the strict one).
bool ParseArtifactHeaderLine(std::string_view line, std::string* kind, int* version);

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_ARTIFACT_HEADER_H_
