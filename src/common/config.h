// Key-value configuration files — the paper's §3 "configuration file for the
// graph mutation optimization" (metric, accuracy threshold, fine-tuning
// hyper-parameters, search budget).
//
// Format: `key = value` lines; `#` starts a comment; whitespace is trimmed.
// Typed getters fall back to a default when the key is absent and throw
// CheckError when a present value does not parse.
#ifndef GMORPH_SRC_COMMON_CONFIG_H_
#define GMORPH_SRC_COMMON_CONFIG_H_

#include <map>
#include <optional>
#include <string>

namespace gmorph {

class Config {
 public:
  Config() = default;

  // Parses `text`; throws CheckError on malformed lines.
  static Config FromString(const std::string& text);
  // Reads and parses a file; throws CheckError if unreadable.
  static Config FromFile(const std::string& path);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key, const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_CONFIG_H_
