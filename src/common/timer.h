// Monotonic wall-clock timer used by the latency estimator and search-time
// accounting.
#ifndef GMORPH_SRC_COMMON_TIMER_H_
#define GMORPH_SRC_COMMON_TIMER_H_

#include <chrono>

namespace gmorph {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_TIMER_H_
