#include "src/common/config.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "src/common/check.h"

namespace gmorph {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

Config Config::FromString(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) {
      continue;
    }
    const size_t eq = trimmed.find('=');
    GMORPH_CHECK(eq != std::string::npos,
                     "config line " << line_number << " is not 'key = value': " << trimmed);
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    GMORPH_CHECK(!key.empty(), "config line " << line_number << " has an empty key");
    config.entries_[key] = value;
  }
  return config;
}

Config Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  GMORPH_CHECK(static_cast<bool>(in), "cannot open config file " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromString(buffer.str());
}

bool Config::Has(const std::string& key) const { return entries_.count(key) > 0; }

std::string Config::GetString(const std::string& key, const std::string& default_value) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? default_value : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return default_value;
  }
  try {
    size_t pos = 0;
    const int64_t value = std::stoll(it->second, &pos);
    GMORPH_CHECK(pos == it->second.size(), "trailing characters in int '" << key << "'");
    return value;
  } catch (const std::logic_error&) {
    GMORPH_CHECK(false, "config key '" << key << "' is not an integer: " << it->second);
  }
  return default_value;
}

double Config::GetDouble(const std::string& key, double default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return default_value;
  }
  try {
    size_t pos = 0;
    const double value = std::stod(it->second, &pos);
    GMORPH_CHECK(pos == it->second.size(), "trailing characters in double '" << key << "'");
    return value;
  } catch (const std::logic_error&) {
    GMORPH_CHECK(false, "config key '" << key << "' is not a number: " << it->second);
  }
  return default_value;
}

bool Config::GetBool(const std::string& key, bool default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return default_value;
  }
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  GMORPH_CHECK(false, "config key '" << key << "' is not a boolean: " << it->second);
  return default_value;
}

}  // namespace gmorph
