// Intra-op parallelism for the kernel layer.
//
// ParallelFor splits [begin, end) into fixed-size chunks of at most `grain`
// elements and runs them on a process-wide lazily initialized thread pool.
// Chunk boundaries depend only on `grain` — never on the pool size — so any
// reduction that combines per-chunk partials in chunk order produces bitwise
// identical results for every thread count.
//
// Threading model:
//  - The pool is created on first parallel use with KernelThreads() - 1
//    workers; the calling thread always participates as the extra worker.
//  - KernelThreads() defaults to GMORPH_NUM_THREADS (env) or the hardware
//    concurrency. SetKernelThreads() overrides it (tests, CLI config).
//  - Nested calls run serially: a ParallelFor issued from inside another
//    ParallelFor task (or from a scope holding a ParallelRegionGuard, e.g.
//    GMorph's parallel candidate fine-tuning) stays on the calling thread
//    instead of oversubscribing the machine.
#ifndef GMORPH_SRC_COMMON_PARALLEL_FOR_H_
#define GMORPH_SRC_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace gmorph {

// Number of threads the kernel layer may use (>= 1). First call reads
// GMORPH_NUM_THREADS; an unset/invalid value falls back to the hardware
// concurrency.
int KernelThreads();

// Overrides the kernel thread count (n >= 1). Tears down the current global
// pool; the next parallel call rebuilds it. Must not race with in-flight
// kernels.
void SetKernelThreads(int n);

// True while the current thread executes inside a ParallelFor task or under a
// ParallelRegionGuard. Kernels use this to degrade to serial execution.
bool InParallelRegion();

// Marks the current thread as already-parallel for its lifetime. Placed in
// worker tasks that own their parallelism (e.g. per-candidate fine-tuning in
// the search) so nested kernels do not oversubscribe.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard();
  ~ParallelRegionGuard();
  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;
};

// Runs fn(chunk_begin, chunk_end) over [begin, end) in chunks of at most
// `grain` elements. Chunks may execute concurrently and in any order; the
// caller participates. Rethrows the first exception thrown by fn after all
// chunks finish or are abandoned. Serial when nested, when the configured
// thread count is 1, or when there is a single chunk.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_PARALLEL_FOR_H_
