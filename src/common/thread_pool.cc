#include "src/common/thread_pool.h"

#include "src/common/check.h"
#include "src/obs/trace.h"

namespace gmorph {

ThreadPool::ThreadPool(int num_threads, std::string name) : name_(std::move(name)) {
  GMORPH_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // A running task may keep submitting while the destructor drains
    // (in_flight_ > 0 covers the submitter itself); fresh external submissions
    // after shutdown are a bug.
    GMORPH_CHECK(!shutdown_ || in_flight_ > 0, "Submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr e = std::move(first_exception_);
    first_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  obs::SetCurrentThreadName(name_ + "-" + std::to_string(worker_index));
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Exit only when no task is queued *or running*: a running task may
      // still Submit more work, so an empty queue alone is not a safe exit
      // condition during shutdown.
      work_available_.wait(lock,
                           [this] { return !queue_.empty() || (shutdown_ && in_flight_ == 0); });
      if (queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr raised;
    try {
      obs::TraceSpan span("pool/task", obs::TraceCat::kPool);
      task();
    } catch (...) {
      raised = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (raised != nullptr && first_exception_ == nullptr) {
        first_exception_ = std::move(raised);
      }
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
        // Wake idle workers so they can observe the shutdown exit condition.
        if (shutdown_) {
          work_available_.notify_all();
        }
      }
    }
  }
}

}  // namespace gmorph
