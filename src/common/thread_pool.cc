#include "src/common/thread_pool.h"

#include "src/common/check.h"

namespace gmorph {

ThreadPool::ThreadPool(int num_threads) {
  GMORPH_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GMORPH_CHECK_MSG(!shutdown_, "Submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace gmorph
