// Minimal leveled logging to stderr. The search driver logs one line per
// iteration; everything else stays quiet unless the level is raised.
//
// Line prefix: "[<seconds since start> t<thread index> <level>] " — the
// timestamp shares the MonotonicNowNs anchor with trace exports and the
// thread index matches the trace's tid, so log lines correlate with spans.
// The initial level comes from GMORPH_LOG_LEVEL (debug|info|warn|error|off;
// default warn) and can be overridden with SetLogLevel().
#ifndef GMORPH_SRC_COMMON_LOGGING_H_
#define GMORPH_SRC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>

namespace gmorph {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

// Writes the "[<elapsed> t<idx> <tag>] " prefix for the calling thread.
void AppendLogPrefix(std::ostream& os, const char* tag);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* tag) : level_(level) { AppendLogPrefix(os_, tag); }

  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      os_ << "\n";
      std::cerr << os_.str();
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace gmorph

#define GMORPH_LOG_DEBUG ::gmorph::internal::LogMessage(::gmorph::LogLevel::kDebug, "debug")
#define GMORPH_LOG_INFO ::gmorph::internal::LogMessage(::gmorph::LogLevel::kInfo, "info")
#define GMORPH_LOG_WARN ::gmorph::internal::LogMessage(::gmorph::LogLevel::kWarn, "warn")
#define GMORPH_LOG_ERROR ::gmorph::internal::LogMessage(::gmorph::LogLevel::kError, "error")

#endif  // GMORPH_SRC_COMMON_LOGGING_H_
