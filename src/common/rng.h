// Deterministic, seedable pseudo-random number generation.
//
// All randomness in GMorph (weight init, synthetic data, search sampling) flows
// through Rng so experiments are reproducible from a single seed. The engine is
// xoshiro256++ seeded via SplitMix64, which is fast, high quality, and — unlike
// std::mt19937 + std::uniform_*_distribution — produces identical streams on
// every platform and standard library.
#ifndef GMORPH_SRC_COMMON_RNG_H_
#define GMORPH_SRC_COMMON_RNG_H_

#include <cstdint>

namespace gmorph {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [0, 1) as float.
  float NextFloat();

  // Uniform integer in [0, n). Requires n > 0.
  int NextInt(int n);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  int NextIntRange(int lo, int hi);

  // Standard normal via Box-Muller (cached second value).
  float NextGaussian();

  // Bernoulli(p).
  bool NextBool(double p);

  // Forks an independent stream (useful to decouple data / init / search RNG).
  Rng Fork();

  // Derives a seed for an independent named stream via SplitMix64-style
  // avalanching. The search gives every candidate its own stream keyed by
  // (seed, iteration, slot), so results do not depend on how draws interleave
  // across parallel rounds and a resumed search can re-derive the exact
  // stream from the iteration cursor alone.
  static uint64_t MixSeed(uint64_t seed, uint64_t stream, uint64_t substream = 0);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace gmorph

#endif  // GMORPH_SRC_COMMON_RNG_H_
