#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "src/common/check.h"
#include "src/obs/proc_stats.h"

namespace gmorph::obs {
namespace {

// CAS add/min/max on atomic<double> (fetch_add on floating atomics is spotty
// across standard libraries; the CAS loop is portable and contention here is
// negligible).
void AtomicAdd(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  GMORPH_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    GMORPH_CHECK(bounds_[i] > bounds_[i - 1], "histogram bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                          bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First observation seeds min/max (0-initialized atomics would otherwise
    // clamp all-positive samples at 0). Racy first-few observations still
    // converge: the seeding store is followed by the same CAS min/max below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::Min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const int64_t n = Count();
  return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  const std::vector<int64_t> counts = BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank with interpolation
  // inside the covering bucket).
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (rank <= static_cast<double>(cumulative)) {
      // Linear interpolation across the bucket's span, clamped to the
      // observed extremes so single-bucket distributions stay exact.
      const double lo = i == 0 ? Min() : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : Max();
      const double frac = (rank - before) / static_cast<double>(counts[i]);
      const double est = lo + (hi - lo) * frac;
      return std::clamp(est, Min(), Max());
    }
  }
  return Max();
}

void Histogram::Reset() {
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBucketsMs() {
  std::vector<double> bounds;
  for (double b = 0.001; b < 2e5; b *= 2.0) {
    bounds.push_back(b);
  }
  return bounds;
}

// ---- Registry ----

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: usable from atexit hooks
  return *impl;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto& slot = i.counters[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto& slot = i.gauges[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  auto& slot = i.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bounds.empty() ? DefaultLatencyBucketsMs()
                                                      : std::move(bounds));
  }
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  // Refresh the proc.* memory gauges first (GetGauge takes the registry
  // mutex, so this must happen before the snapshot lock below) — every
  // snapshot then carries current RSS figures without per-site wiring.
  if (this == &Global()) {
    UpdateProcessMemoryGauges();
  }
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : i.counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : i.gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += FormatDouble(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : i.histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(hist->Count());
    out += ",\"sum\":" + FormatDouble(hist->Sum());
    out += ",\"min\":" + FormatDouble(hist->Min());
    out += ",\"max\":" + FormatDouble(hist->Max());
    out += ",\"mean\":" + FormatDouble(hist->Mean());
    out += ",\"p50\":" + FormatDouble(hist->Quantile(0.50));
    out += ",\"p95\":" + FormatDouble(hist->Quantile(0.95));
    out += ",\"p99\":" + FormatDouble(hist->Quantile(0.99));
    out += '}';
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

void MetricsRegistry::Reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& [name, counter] : i.counters) {
    counter->Reset();
  }
  for (auto& [name, gauge] : i.gauges) {
    gauge->Reset();
  }
  for (auto& [name, hist] : i.histograms) {
    hist->Reset();
  }
}

namespace {

std::string g_exit_metrics_path;

void WriteMetricsAtExitHook() {
  if (!g_exit_metrics_path.empty()) {
    MetricsRegistry::Global().WriteJson(g_exit_metrics_path);
  }
}

}  // namespace

void WriteMetricsJsonAtExit(const std::string& path) {
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(WriteMetricsAtExitHook);
  }
  g_exit_metrics_path = path;
}

bool InitMetricsFromEnv() {
  static const bool armed = [] {
    const char* path = std::getenv("GMORPH_METRICS");
    if (path == nullptr || path[0] == '\0') {
      return false;
    }
    WriteMetricsJsonAtExit(path);
    return true;
  }();
  return armed;
}

}  // namespace gmorph::obs
