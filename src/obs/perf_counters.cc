#include "src/obs/perf_counters.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace gmorph::obs {

PerfCounts& PerfCounts::operator+=(const PerfCounts& o) {
  cycles += o.cycles;
  instructions += o.instructions;
  llc_loads += o.llc_loads;
  llc_misses += o.llc_misses;
  branch_misses += o.branch_misses;
  samples += o.samples;
  valid = valid || o.valid;
  return *this;
}

double PerfCounts::Ipc() const {
  return cycles > 0 ? static_cast<double>(instructions) / static_cast<double>(cycles) : 0.0;
}

double PerfCounts::LlcMissRate() const {
  return llc_loads > 0 ? static_cast<double>(llc_misses) / static_cast<double>(llc_loads)
                       : 0.0;
}

namespace {

bool PerfDisabledByEnv() {
  const char* env = std::getenv("GMORPH_NO_PERF");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

#if defined(__linux__)
// LLC (last-level cache) read access/miss as a PERF_TYPE_HW_CACHE config.
constexpr uint64_t HwCacheConfig(uint64_t cache, uint64_t op, uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

int OpenPerfEvent(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // leader starts disabled, armed below
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, group_fd, /*flags=*/0));
}
#endif  // __linux__

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
#if defined(__linux__)
  Open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
#else
  error_ = "perf_event_open: not supported on this platform";
#endif
}

PerfCounterGroup::PerfCounterGroup(uint32_t leader_type, uint64_t leader_config) {
#if defined(__linux__)
  Open(leader_type, leader_config);
#else
  (void)leader_type;
  (void)leader_config;
  error_ = "perf_event_open: not supported on this platform";
#endif
}

void PerfCounterGroup::Open(uint32_t leader_type, uint64_t leader_config) {
#if defined(__linux__)
  if (PerfDisabledByEnv()) {
    error_ = "perf_event_open: disabled by GMORPH_NO_PERF";
    return;
  }
  group_fd_ = OpenPerfEvent(leader_type, leader_config, /*group_fd=*/-1);
  if (group_fd_ < 0) {
    // EACCES/EPERM: perf_event_paranoid or seccomp; ENOENT/ENODEV/EOPNOTSUPP:
    // the PMU (or this event) does not exist; ENOSYS: kernel without perf.
    error_ = std::string("perf_event_open: ") + std::strerror(errno);
    return;
  }
  values_in_read_ = 1;  // the leader (cycles)
  const struct {
    uint32_t type;
    uint64_t config;
  } members[4] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HW_CACHE, HwCacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
      {PERF_TYPE_HW_CACHE, HwCacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                                         PERF_COUNT_HW_CACHE_RESULT_MISS)},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };
  for (int i = 0; i < 4; ++i) {
    member_fds_[i] = OpenPerfEvent(members[i].type, members[i].config, group_fd_);
    if (member_fds_[i] >= 0) {
      ++values_in_read_;
    }
    // A member that fails (e.g. no LLC events on this PMU) just stays absent;
    // the group keeps counting what it has.
  }
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#else
  (void)leader_type;
  (void)leader_config;
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int fd : member_fds_) {
    if (fd >= 0) {
      close(fd);
    }
  }
  if (group_fd_ >= 0) {
    close(group_fd_);
  }
#endif
}

bool PerfCounterGroup::Read(PerfCounts* out) const {
#if defined(__linux__)
  if (group_fd_ < 0) {
    return false;
  }
  // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }, values in the
  // order the events were opened, failed members absent.
  uint64_t buf[1 + 5] = {0};
  const ssize_t want =
      static_cast<ssize_t>((1 + static_cast<size_t>(values_in_read_)) * sizeof(uint64_t));
  if (read(group_fd_, buf, sizeof(buf)) < want) {
    return false;
  }
  int slot = 1;  // buf[1] is the leader's value
  out->cycles = static_cast<int64_t>(buf[slot++]);
  int64_t* fields[4] = {&out->instructions, &out->llc_loads, &out->llc_misses,
                        &out->branch_misses};
  for (int i = 0; i < 4; ++i) {
    *fields[i] = member_fds_[i] >= 0 ? static_cast<int64_t>(buf[slot++]) : -1;
  }
  out->samples = 0;
  out->valid = true;
  return true;
#else
  (void)out;
  return false;
#endif
}

namespace {

struct ProbeResult {
  bool available;
  std::string error;
};

const ProbeResult& ProbeOnce() {
  static const ProbeResult result = [] {
    PerfCounterGroup group;
    PerfCounts counts;
    const bool ok = group.available() && group.Read(&counts);
    return ProbeResult{ok, ok ? std::string() : group.error()};
  }();
  return result;
}

}  // namespace

bool PerfCountersAvailable() { return ProbeOnce().available; }

const std::string& PerfCountersError() { return ProbeOnce().error; }

namespace internal {
std::atomic<bool> g_step_counters_enabled{false};
}  // namespace internal

void EnableStepCounters() {
  internal::g_step_counters_enabled.store(true, std::memory_order_relaxed);
}

void DisableStepCounters() {
  internal::g_step_counters_enabled.store(false, std::memory_order_relaxed);
}

namespace {

// Per-thread group, opened the first time this thread runs a PerfStepScope
// while step counting is enabled. Counters are per-thread state, so each
// engine worker owns its own group for its whole lifetime.
const PerfCounterGroup* ThreadGroup() {
  static thread_local PerfCounterGroup group;
  return &group;
}

}  // namespace

PerfStepScope::PerfStepScope(PerfCounts* acc) {
  if (!StepCountersEnabled()) {
    return;
  }
  const PerfCounterGroup* group = ThreadGroup();
  if (!group->available() || !group->Read(&begin_)) {
    return;
  }
  acc_ = acc;
  group_ = group;
}

PerfStepScope::~PerfStepScope() {
  if (acc_ == nullptr) {
    return;
  }
  PerfCounts end;
  if (!group_->Read(&end)) {
    return;
  }
  PerfCounts delta;
  // A member that never opened reads -1 on both sides; its delta stays 0.
  delta.cycles = end.cycles - begin_.cycles;
  delta.instructions = end.instructions - begin_.instructions;
  delta.llc_loads = end.llc_loads - begin_.llc_loads;
  delta.llc_misses = end.llc_misses - begin_.llc_misses;
  delta.branch_misses = end.branch_misses - begin_.branch_misses;
  delta.samples = 1;
  delta.valid = true;
  *acc_ += delta;
}

}  // namespace gmorph::obs
