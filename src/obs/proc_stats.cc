#include "src/obs/proc_stats.h"

#include <cstdio>
#include <cstring>

#include "src/obs/metrics.h"

namespace gmorph::obs {

bool ReadProcessMemory(ProcessMemory* out) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return false;
  }
  bool saw_rss = false;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long kb = 0;
    if (std::sscanf(line, "VmRSS: %lld kB", &kb) == 1) {
      out->rss_bytes = static_cast<int64_t>(kb) * 1024;
      saw_rss = true;
    } else if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
      out->peak_rss_bytes = static_cast<int64_t>(kb) * 1024;
    }
  }
  std::fclose(f);
  return saw_rss;
}

bool UpdateProcessMemoryGauges() {
  ProcessMemory mem;
  if (!ReadProcessMemory(&mem)) {
    return false;
  }
  GetGauge("proc.rss_bytes").Set(static_cast<double>(mem.rss_bytes));
  GetGauge("proc.peak_rss_bytes").Set(static_cast<double>(mem.peak_rss_bytes));
  return true;
}

}  // namespace gmorph::obs
