#include "src/obs/timing.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"

namespace gmorph {

int64_t MonotonicNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point anchor = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - anchor).count();
}

double MedianTimedMs(const std::function<void()>& fn, int warmup, int repeats) {
  GMORPH_CHECK(repeats >= 1, "MedianTimedMs needs repeats >= 1, got " << repeats);
  for (int i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) {
    Timer timer;
    fn();
    samples.push_back(timer.Millis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace gmorph
