// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms with p50/p95/p99 quantile readout, feeding a JSON snapshot
// exporter.
//
// Naming scheme (DESIGN.md "Observability"): dot-separated
// "<area>.<metric>[_<unit>]" — e.g. "search.cache_hits",
// "serving.request_latency_ms", "engine.runs". Instruments are created on
// first lookup and live for the process lifetime, so hot paths should resolve
// the reference once and record through it (recording itself is atomic and
// lock-free; only the name lookup takes the registry mutex).
#ifndef GMORPH_SRC_OBS_METRICS_H_
#define GMORPH_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gmorph::obs {

class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the first
// N buckets (must be strictly increasing); one overflow bucket catches the
// rest. Observe() is lock-free (relaxed atomic adds plus CAS loops for
// sum/min/max); quantiles interpolate linearly inside the covering bucket and
// clamp to the observed min/max, so the estimate is never off by more than
// one bucket width.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;
  double Max() const;
  double Mean() const;
  // q in [0, 1]; returns 0 when empty.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<int64_t> BucketCounts() const;  // bounds().size() + 1 entries

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// Exponential latency buckets in milliseconds: 1us .. ~134s, factor 2.
std::vector<double> DefaultLatencyBucketsMs();

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Creates on first lookup; the returned reference is stable for the process
  // lifetime. A histogram's bucket layout is fixed by its first lookup.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds = {});

  // Single-line JSON snapshot:
  //   {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  //    "sum":..,"min":..,"max":..,"mean":..,"p50":..,"p95":..,"p99":..}}}
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  // Zeroes every registered instrument (tests; instruments stay registered).
  void Reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

// Shorthands resolving through the global registry.
inline Counter& GetCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge& GetGauge(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram& GetHistogram(const std::string& name, std::vector<double> bounds = {}) {
  return MetricsRegistry::Global().GetHistogram(name, std::move(bounds));
}

// If GMORPH_METRICS=<path> is set: registers an atexit hook writing the
// global registry's JSON snapshot there. Idempotent; returns true when armed.
bool InitMetricsFromEnv();

// Writes the snapshot to `path` at process exit (gmorph_cli --metrics).
void WriteMetricsJsonAtExit(const std::string& path);

}  // namespace gmorph::obs

#endif  // GMORPH_SRC_OBS_METRICS_H_
