#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "src/obs/timing.h"

namespace gmorph::obs {
namespace {

// One recorded complete event. Names are copied in (no lifetime coupling with
// the instrumented code); 47 chars cover every span name in the repo.
struct TraceEvent {
  char name[TraceSpan::kMaxName + 1];
  uint8_t name_len = 0;
  TraceCat cat = TraceCat::kOther;
  int32_t virtual_tid = -1;  // -1: use the owning ring's thread id
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
};

// Per-thread single-producer ring. The owning thread is the only writer; the
// exporter reads entries below the release-published cursor. Event storage is
// allocated lazily on the first record so naming a thread (which registers
// the ring) costs nothing while tracing is off.
struct ThreadRing {
  static constexpr size_t kCapacity = 1 << 15;  // per-thread events kept (newest win)

  int tid = 0;
  std::string name;
  std::vector<TraceEvent> events;        // size 0 until first record, then kCapacity
  std::atomic<uint64_t> cursor{0};       // total events ever written
  std::atomic<uint64_t> cleared_below{0};  // ClearTrace() high-water mark

  void Record(const char* name_chars, size_t len, TraceCat cat, int64_t start_ns,
              int64_t end_ns, int virtual_tid) {
    if (events.empty()) {
      events.resize(kCapacity);
    }
    const uint64_t at = cursor.load(std::memory_order_relaxed);
    TraceEvent& e = events[at % kCapacity];
    len = std::min(len, TraceSpan::kMaxName);
    std::memcpy(e.name, name_chars, len);
    e.name[len] = '\0';
    e.name_len = static_cast<uint8_t>(len);
    e.cat = cat;
    e.virtual_tid = virtual_tid;
    e.start_ns = start_ns;
    e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
    cursor.store(at + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadRing>> rings;  // owned; threads hold raw pointers
  std::map<int, std::string> virtual_lanes;
  std::atomic<int> next_tid{0};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives detached threads
  return *registry;
}

thread_local ThreadRing* t_ring = nullptr;
thread_local int t_thread_index = -1;

int AssignThreadIndex() {
  if (t_thread_index < 0) {
    t_thread_index = GetRegistry().next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_index;
}

ThreadRing* CurrentRing() {
  if (t_ring == nullptr) {
    auto ring = std::make_unique<ThreadRing>();
    ring->tid = AssignThreadIndex();
    t_ring = ring.get();
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.rings.push_back(std::move(ring));
  }
  return t_ring;
}

void AppendJsonEscaped(std::string& out, const char* s, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendMicros(std::string& out, double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  out += buf;
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{false};

void RecordComplete(const char* name, size_t name_len, TraceCat cat, int64_t start_ns,
                    int64_t end_ns, int virtual_tid) {
  CurrentRing()->Record(name, name_len, cat, start_ns, end_ns, virtual_tid);
}

}  // namespace internal

const char* TraceCatName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kSearch:
      return "search";
    case TraceCat::kEval:
      return "eval";
    case TraceCat::kEngine:
      return "engine";
    case TraceCat::kKernel:
      return "kernel";
    case TraceCat::kPool:
      return "pool";
    case TraceCat::kServing:
      return "serving";
    case TraceCat::kBench:
      return "bench";
    case TraceCat::kOther:
      return "other";
  }
  return "other";
}

void StartTracing() { internal::g_trace_enabled.store(true, std::memory_order_seq_cst); }

void StopTracing() { internal::g_trace_enabled.store(false, std::memory_order_seq_cst); }

void ClearTrace() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& ring : registry.rings) {
    ring->cleared_below.store(ring->cursor.load(std::memory_order_acquire),
                              std::memory_order_relaxed);
  }
}

int CurrentThreadIndex() { return AssignThreadIndex(); }

void SetCurrentThreadName(const std::string& name) {
  ThreadRing* ring = CurrentRing();
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  ring->name = name;
}

void SetVirtualLaneName(int virtual_tid, const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.virtual_lanes[virtual_tid] = name;
}

// ---- TraceSpan ----

void TraceSpan::Begin(const char* name, size_t len, TraceCat cat) {
  len = std::min(len, kMaxName);
  std::memcpy(name_, name, len);
  name_len_ = static_cast<uint8_t>(len);
  cat_ = cat;
  active_ = true;
}

TraceSpan::TraceSpan(const char* name, TraceCat cat) {
  if (!TraceEnabled()) {
    return;  // the whole disabled cost: one relaxed load
  }
  Begin(name, std::strlen(name), cat);
  start_ns_ = MonotonicNowNs();
}

TraceSpan::TraceSpan(const std::string& name, TraceCat cat) {
  if (!TraceEnabled()) {
    return;
  }
  Begin(name.data(), name.size(), cat);
  start_ns_ = MonotonicNowNs();
}

TraceSpan::TraceSpan(const std::string& name, TraceCat cat, double* accumulate_seconds)
    : accumulate_seconds_(accumulate_seconds) {
  // Always timed: the elapsed seconds feed a profile accumulator (engine step
  // profiles) independently of whether the span is also recorded.
  start_ns_ = MonotonicNowNs();
  if (!TraceEnabled()) {
    return;
  }
  Begin(name.data(), name.size(), cat);
}

TraceSpan::~TraceSpan() {
  if (!active_ && accumulate_seconds_ == nullptr) {
    return;
  }
  const int64_t end_ns = MonotonicNowNs();
  if (accumulate_seconds_ != nullptr) {
    *accumulate_seconds_ += static_cast<double>(end_ns - start_ns_) * 1e-9;
  }
  if (active_) {
    internal::RecordComplete(name_, name_len_, cat_, start_ns_, end_ns, /*virtual_tid=*/-1);
  }
}

void RecordManualSpan(const std::string& name, TraceCat cat, double ts_us, double dur_us,
                      int virtual_tid) {
  if (!TraceEnabled()) {
    return;
  }
  const int64_t start_ns = static_cast<int64_t>(ts_us * 1e3);
  internal::RecordComplete(name.data(), name.size(), cat, start_ns,
                           start_ns + static_cast<int64_t>(dur_us * 1e3), virtual_tid);
}

// ---- Export ----

namespace {

// Snapshot of one ring's live entries (oldest first).
void CollectRing(const ThreadRing& ring, std::vector<const TraceEvent*>& out, size_t& dropped) {
  const uint64_t cursor = ring.cursor.load(std::memory_order_acquire);
  const uint64_t cleared = ring.cleared_below.load(std::memory_order_relaxed);
  const uint64_t live = cursor - cleared;
  const uint64_t kept = std::min<uint64_t>(live, ThreadRing::kCapacity);
  dropped += static_cast<size_t>(live - kept);
  for (uint64_t i = cursor - kept; i < cursor; ++i) {
    out.push_back(&ring.events[i % ThreadRing::kCapacity]);
  }
}

}  // namespace

size_t TraceEventCount() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  size_t total = 0;
  for (const auto& ring : registry.rings) {
    const uint64_t cursor = ring->cursor.load(std::memory_order_acquire);
    const uint64_t cleared = ring->cleared_below.load(std::memory_order_relaxed);
    total += static_cast<size_t>(
        std::min<uint64_t>(cursor - cleared, ThreadRing::kCapacity));
  }
  return total;
}

size_t TraceDroppedCount() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  size_t dropped = 0;
  for (const auto& ring : registry.rings) {
    const uint64_t cursor = ring->cursor.load(std::memory_order_acquire);
    const uint64_t cleared = ring->cleared_below.load(std::memory_order_relaxed);
    const uint64_t live = cursor - cleared;
    if (live > ThreadRing::kCapacity) {
      dropped += static_cast<size_t>(live - ThreadRing::kCapacity);
    }
  }
  return dropped;
}

int NumRegisteredTraceThreads() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return static_cast<int>(registry.rings.size());
}

std::string TraceToJson() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);

  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"gmorph\"}}";

  // Thread-name metadata: named rings, unnamed rings that recorded anything,
  // and virtual lanes.
  for (const auto& ring : registry.rings) {
    const bool has_events = ring->cursor.load(std::memory_order_acquire) >
                            ring->cleared_below.load(std::memory_order_relaxed);
    if (ring->name.empty() && !has_events) {
      continue;
    }
    std::string name = ring->name.empty() ? "thread-" + std::to_string(ring->tid) : ring->name;
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(ring->tid);
    out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, name.data(), name.size());
    out += "\"}}";
  }
  for (const auto& [tid, name] : registry.virtual_lanes) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"";
    AppendJsonEscaped(out, name.data(), name.size());
    out += "\"}}";
  }

  for (const auto& ring : registry.rings) {
    std::vector<const TraceEvent*> events;
    size_t dropped = 0;
    CollectRing(*ring, events, dropped);
    for (const TraceEvent* e : events) {
      out += ",\n{\"name\":\"";
      AppendJsonEscaped(out, e->name, e->name_len);
      out += "\",\"cat\":\"";
      out += TraceCatName(e->cat);
      out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(e->virtual_tid >= 0 ? e->virtual_tid : ring->tid);
      out += ",\"ts\":";
      AppendMicros(out, static_cast<double>(e->start_ns) * 1e-3);
      out += ",\"dur\":";
      AppendMicros(out, static_cast<double>(e->dur_ns) * 1e-3);
      out += "}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool WriteTraceJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << TraceToJson();
  return static_cast<bool>(out);
}

namespace {

std::string g_exit_trace_path;  // set once before the atexit hook registers

void WriteTraceAtExitHook() {
  StopTracing();
  if (!g_exit_trace_path.empty()) {
    WriteTraceJson(g_exit_trace_path);
  }
}

}  // namespace

void WriteTraceJsonAtExit(const std::string& path) {
  static bool registered = false;
  if (!registered) {
    registered = true;
    std::atexit(WriteTraceAtExitHook);
  }
  g_exit_trace_path = path;
  if (t_ring == nullptr || t_ring->name.empty()) {
    SetCurrentThreadName("main");
  }
  StartTracing();
}

bool InitTracingFromEnv() {
  static const bool armed = [] {
    const char* path = std::getenv("GMORPH_TRACE");
    if (path == nullptr || path[0] == '\0') {
      return false;
    }
    WriteTraceJsonAtExit(path);
    return true;
  }();
  return armed;
}

}  // namespace gmorph::obs
