// Consolidated monotonic clocks for the whole repo (the former
// src/common/timer.h and src/common/timing.h, merged).
//
//  - MonotonicNowNs(): nanoseconds on the steady clock since a process-wide
//    anchor taken at first use. Every observability timestamp (trace spans,
//    log prefixes, engine step profiles) derives from this one origin so the
//    streams line up when viewed together.
//  - Timer: RAII-free stopwatch used by the latency estimator and search-time
//    accounting.
//  - MedianTimedMs(): the shared warmup+median measurement loop. Both the
//    search-time latency estimator (src/core/latency.cc) and the engine bench
//    path (src/runtime/engine.cc) report the median of N timed runs after a
//    warmup; keeping the loop in one place guarantees the two measurements
//    are taken identically.
#ifndef GMORPH_SRC_OBS_TIMING_H_
#define GMORPH_SRC_OBS_TIMING_H_

#include <chrono>
#include <cstdint>
#include <functional>

namespace gmorph {

// Nanoseconds since the process-wide monotonic anchor (first call wins; all
// later readings are relative to it, so values are small and trace-friendly).
int64_t MonotonicNowNs();

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction / last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Runs `fn` `warmup` times untimed, then `repeats` times timed, and returns
// the median wall-clock duration in milliseconds. `repeats` must be >= 1.
double MedianTimedMs(const std::function<void()>& fn, int warmup, int repeats);

}  // namespace gmorph

#endif  // GMORPH_SRC_OBS_TIMING_H_
