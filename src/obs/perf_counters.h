// Hardware performance counters via perf_event_open(2).
//
// A PerfCounterGroup opens one counter group for the calling thread — cycles
// (leader), instructions, LLC loads, LLC load misses, branch misses — and
// reads all members in a single read(2) with PERF_FORMAT_GROUP, so a
// before/after delta pair costs two syscalls and no drift between members.
//
// Unavailability is a fully supported steady state, not an error: containers
// and CI runners routinely deny the syscall (EACCES under a restrictive
// perf_event_paranoid, EPERM in seccomp sandboxes, ENOENT/ENOSYS without a
// PMU). The group then constructs with available() == false and a
// human-readable error(), Read() reports invalid counts, and every downstream
// feature (--profile, roofline reports) degrades to "counters unavailable"
// while still emitting its full report. GMORPH_NO_PERF=1 forces this path —
// the tests use it to pin the fallback behavior on machines where counters
// do work.
//
// Per-step accumulation (FusedEngine) goes through PerfStepScope, which
// follows the tracer's cost contract exactly: when step counting is disabled
// the constructor is a single relaxed atomic load — no syscall, no TLS group
// creation. EnableStepCounters() flips the flag; each executing thread then
// lazily opens its own group (counters are per-thread) and scopes accumulate
// deltas into the caller's PerfCounts, unsynchronized, mirroring the
// engine's per-step `seconds` contract (one thread per step at a time).
#ifndef GMORPH_SRC_OBS_PERF_COUNTERS_H_
#define GMORPH_SRC_OBS_PERF_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace gmorph::obs {

// One reading (or accumulated delta) of the counter group. A counter whose
// event failed to open individually (some PMUs lack LLC events) stays at -1
// in raw readings; accumulated deltas treat it as 0.
struct PerfCounts {
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t llc_loads = 0;
  int64_t llc_misses = 0;
  int64_t branch_misses = 0;
  // Number of PerfStepScope deltas folded in (0 for raw readings).
  int64_t samples = 0;
  // True when at least one real hardware reading contributed.
  bool valid = false;

  PerfCounts& operator+=(const PerfCounts& o);

  // Instructions per cycle; 0 when cycles were not measured.
  double Ipc() const;
  // LLC load miss rate in [0, 1]; 0 when loads were not measured.
  double LlcMissRate() const;
};

class PerfCounterGroup {
 public:
  // Opens the default hardware group for the calling thread. Never throws:
  // on failure available() is false and error() says why.
  PerfCounterGroup();
  // Opens a group whose leader is the given raw perf event (type, config).
  // Tests pass an invalid type to exercise the ENOENT path deterministically.
  PerfCounterGroup(uint32_t leader_type, uint64_t leader_config);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const { return group_fd_ >= 0; }
  // Why the group is unavailable ("perf_event_open: Permission denied ...");
  // empty when available.
  const std::string& error() const { return error_; }

  // Cumulative counts since open. Returns false (and *out stays invalid)
  // when the group is unavailable or the read fails.
  bool Read(PerfCounts* out) const;

 private:
  void Open(uint32_t leader_type, uint64_t leader_config);

  int group_fd_ = -1;
  // fds of the member events, -1 where a member failed to open; slot order
  // matches the PerfCounts fields after `cycles`.
  int member_fds_[4] = {-1, -1, -1, -1};
  int values_in_read_ = 0;  // events that contribute to the group read
  std::string error_;
};

// One-shot process-level probe: opens (and closes) a default group once and
// caches whether it worked. The roofline report header uses this; it is also
// what --profile prints as "counters unavailable: <reason>".
bool PerfCountersAvailable();
const std::string& PerfCountersError();

// ---- Per-step accumulation (FusedEngine) -----------------------------------

namespace internal {
extern std::atomic<bool> g_step_counters_enabled;
}  // namespace internal

// The single relaxed load gating every PerfStepScope.
inline bool StepCountersEnabled() {
  return internal::g_step_counters_enabled.load(std::memory_order_relaxed);
}

// Enables / disables per-step counter accumulation. Threads open their TLS
// group lazily on the first scope they execute while enabled.
void EnableStepCounters();
void DisableStepCounters();

// RAII delta accumulator: reads the calling thread's group at construction
// and destruction and folds the delta into *acc (samples++, valid = true).
// No-op when step counting is disabled or the thread's group is unavailable.
class PerfStepScope {
 public:
  explicit PerfStepScope(PerfCounts* acc);
  ~PerfStepScope();

  PerfStepScope(const PerfStepScope&) = delete;
  PerfStepScope& operator=(const PerfStepScope&) = delete;

 private:
  PerfCounts* acc_ = nullptr;
  const PerfCounterGroup* group_ = nullptr;
  PerfCounts begin_;
};

}  // namespace gmorph::obs

#endif  // GMORPH_SRC_OBS_PERF_COUNTERS_H_
