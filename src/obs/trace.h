// Process-wide tracing: RAII spans recorded into lock-free thread-local ring
// buffers, exported as Chrome trace-event JSON ("ph":"X" complete events plus
// thread-name metadata) loadable in Perfetto / chrome://tracing.
//
// Design:
//  - Recording is gated by one process-wide atomic flag. The disabled fast
//    path of a TraceSpan is a single relaxed atomic load — no clock read, no
//    allocation, no locking, no thread-local ring registration — so
//    instrumentation can stay in release hot paths unconditionally.
//  - Each recording thread owns a ring buffer (single producer, no locks on
//    the record path: one relaxed load of the enabled flag, a TLS lookup, an
//    in-place entry write, and a release store of the cursor). Rings register
//    themselves once under a mutex on first use; when a ring fills, the
//    oldest events are overwritten and a dropped counter is kept.
//  - Span names are copied into fixed-size entry slots at record time, so no
//    lifetime coupling exists between the tracer and the instrumented code.
//  - Export (TraceToJson / WriteTraceJson) walks all registered rings. It is
//    meant to run after StopTracing() with recording threads quiesced; a
//    straggler thread mid-record cannot corrupt the export (entries are
//    published with release/acquire on the cursor and a straggler never laps
//    the ring during the export window).
//
// Span taxonomy (DESIGN.md "Observability"): names are "<area>/<what>" with
// the area mirrored in the category — search/*, eval/*, engine/* (per-step
// labels), kernel/*, pool/*, serving/*.
#ifndef GMORPH_SRC_OBS_TRACE_H_
#define GMORPH_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace gmorph::obs {

// Category of a span; exported as the event's "cat" field.
enum class TraceCat : uint8_t {
  kSearch = 0,
  kEval,
  kEngine,
  kKernel,
  kPool,
  kServing,
  kBench,
  kOther,
};

const char* TraceCatName(TraceCat cat);

namespace internal {
extern std::atomic<bool> g_trace_enabled;
// Records a completed span [start_ns, end_ns] (MonotonicNowNs time base) into
// the calling thread's ring, creating/registering the ring on first use.
// `virtual_tid` >= 0 overrides the thread id in the export (virtual-time
// lanes, e.g. the serving simulator's request tracks).
void RecordComplete(const char* name, size_t name_len, TraceCat cat, int64_t start_ns,
                    int64_t end_ns, int virtual_tid);
}  // namespace internal

// The single relaxed load gating every record path.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Enables / disables recording. Spans started before StopTracing() but ended
// after it are still recorded (they captured their start while enabled).
void StartTracing();
void StopTracing();

// Drops all recorded events (registered rings stay registered).
void ClearTrace();

// Small sequential id of the calling thread (assigned on first use; shared
// with the log prefix so log lines and trace tracks correlate).
int CurrentThreadIndex();

// Names the calling thread's trace track (exported as thread_name metadata).
// Safe to call whether or not tracing is enabled; the name survives
// ClearTrace().
void SetCurrentThreadName(const std::string& name);

// RAII span: records one complete ("ph":"X") event on destruction. The
// two-argument constructors are no-ops when tracing is disabled. The
// accumulate variant additionally *always* times the scope and adds the
// elapsed seconds to *accumulate_seconds on destruction — the FusedEngine per
// step profile is backed by these spans whether or not tracing is on.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceCat cat = TraceCat::kOther);
  TraceSpan(const std::string& name, TraceCat cat = TraceCat::kOther);
  TraceSpan(const std::string& name, TraceCat cat, double* accumulate_seconds);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  static constexpr size_t kMaxName = 47;

 private:
  void Begin(const char* name, size_t len, TraceCat cat);

  char name_[kMaxName + 1];
  uint8_t name_len_ = 0;
  bool active_ = false;
  TraceCat cat_ = TraceCat::kOther;
  double* accumulate_seconds_ = nullptr;
  int64_t start_ns_ = 0;
};

// Records a span with explicit timestamps (microseconds on the MonotonicNowNs
// time base) onto a virtual thread lane. Used for simulated timelines (the
// serving queue simulator) where wall-clock RAII scoping does not apply.
// No-op when tracing is disabled.
void RecordManualSpan(const std::string& name, TraceCat cat, double ts_us, double dur_us,
                      int virtual_tid);

// Names a virtual lane for the export's thread_name metadata.
void SetVirtualLaneName(int virtual_tid, const std::string& name);

// ---- Export / introspection ----

// Total events currently held across all rings / dropped due to ring wrap.
size_t TraceEventCount();
size_t TraceDroppedCount();
// Number of registered thread rings (test introspection: the disabled record
// path must never register one).
int NumRegisteredTraceThreads();

// Chrome trace-event JSON ({"traceEvents": [...]}). Call with recording
// stopped and threads quiesced for a complete snapshot.
std::string TraceToJson();
bool WriteTraceJson(const std::string& path);

// If GMORPH_TRACE=<path> is set: starts tracing now and registers an atexit
// hook that writes the trace to <path>. Idempotent. Returns true when tracing
// was (already) armed by the environment.
bool InitTracingFromEnv();

// Starts tracing and writes the trace to `path` at process exit (the
// explicit-flag counterpart of InitTracingFromEnv, used by gmorph_cli
// --trace). Idempotent per path.
void WriteTraceJsonAtExit(const std::string& path);

}  // namespace gmorph::obs

#endif  // GMORPH_SRC_OBS_TRACE_H_
