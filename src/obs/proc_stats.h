// Process memory gauges sourced from /proc/self/status.
//
// UpdateProcessMemoryGauges() refreshes `proc.rss_bytes` (VmRSS) and
// `proc.peak_rss_bytes` (VmHWM) in the global metrics registry. The registry
// snapshot path calls it, so every --metrics dump and every bench
// metrics_snapshot trailer carries current memory figures without per-site
// wiring. On systems without /proc the call is a no-op (returns false, no
// gauges registered).
#ifndef GMORPH_SRC_OBS_PROC_STATS_H_
#define GMORPH_SRC_OBS_PROC_STATS_H_

#include <cstdint>

namespace gmorph::obs {

struct ProcessMemory {
  int64_t rss_bytes = 0;       // VmRSS
  int64_t peak_rss_bytes = 0;  // VmHWM
};

// Reads /proc/self/status; false when unreadable (non-Linux, hardened mounts).
bool ReadProcessMemory(ProcessMemory* out);

// Reads current memory and stores it into the proc.* gauges. Returns false
// (leaving the gauges untouched and unregistered) when /proc is unavailable.
bool UpdateProcessMemoryGauges();

}  // namespace gmorph::obs

#endif  // GMORPH_SRC_OBS_PROC_STATS_H_
