#include "src/baselines/mtl_baselines.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/model_parser.h"
#include "src/core/multitask_model.h"
#include "src/data/teacher.h"

namespace gmorph {
namespace {

std::vector<const TaskModel*> AsConst(const std::vector<TaskModel*>& teachers) {
  return std::vector<const TaskModel*>(teachers.begin(), teachers.end());
}

// Shared state both baselines need: teacher logits/scores and the original
// (no-sharing) latency baseline.
struct BaselineContext {
  std::vector<Tensor> teacher_train_logits;
  std::vector<double> teacher_scores;
  double original_latency_ms = 0.0;
  int64_t original_flops = 0;
};

BaselineContext MakeContext(const std::vector<TaskModel*>& teachers,
                            const MultiTaskDataset& train, const MultiTaskDataset& test,
                            const MtlBaselineOptions& options, Rng& rng) {
  BaselineContext ctx;
  for (size_t t = 0; t < teachers.size(); ++t) {
    ctx.teacher_train_logits.push_back(PredictAll(*teachers[t], train));
    ctx.teacher_scores.push_back(EvaluateTeacher(*teachers[t], test, t));
  }
  AbsGraph original = ParseTaskModels(AsConst(teachers));
  MultiTaskModel original_model(original, rng);
  ctx.original_latency_ms = MeasureLatencyMs(original_model, options.latency);
  ctx.original_flops = original.TotalFlops();
  return ctx;
}

// Fine-tunes the branch-at-k candidate to convergence (no early stop) and
// fills in latency / drop.
MtlBaselineResult EvaluateCandidate(const AbsGraph& graph, const BaselineContext& ctx,
                                    const MultiTaskDataset& train, const MultiTaskDataset& test,
                                    const MtlBaselineOptions& options, int shared_blocks,
                                    Rng& rng) {
  MtlBaselineResult result;
  result.feasible = true;
  result.shared_blocks = shared_blocks;
  result.original_latency_ms = ctx.original_latency_ms;

  MultiTaskModel model(graph, rng);
  result.latency_ms = MeasureLatencyMs(model, options.latency);
  FinetuneOptions ft = options.finetune;
  ft.early_stop_on_target = false;  // baselines train to convergence (§6.3)
  ft.predictive_termination = false;
  FinetuneResult fr = DistillFinetune(model, ctx.teacher_train_logits, train, test,
                                      ctx.teacher_scores, ft);
  result.accuracy_drop = fr.max_drop;
  result.task_scores = fr.task_scores;
  result.graph = model.ExportTrainedGraph();
  result.speedup = result.latency_ms > 0.0 ? ctx.original_latency_ms / result.latency_ms : 1.0;
  result.original_flops = ctx.original_flops;
  result.flops = graph.TotalFlops();
  result.flops_speedup = result.flops > 0
                             ? static_cast<double>(ctx.original_flops) /
                                   static_cast<double>(result.flops)
                             : 1.0;
  return result;
}

}  // namespace

int CommonPrefixLength(const std::vector<const TaskModel*>& teachers) {
  GMORPH_CHECK(!teachers.empty());
  size_t limit = teachers[0]->spec().blocks.size();
  for (const TaskModel* m : teachers) {
    limit = std::min(limit, m->spec().blocks.size());
  }
  int k = 0;
  for (size_t i = 0; i < limit; ++i) {
    const BlockSpec& ref = teachers[0]->spec().blocks[i];
    if (ref.type == BlockType::kHead) {
      break;  // heads are always task-specific
    }
    bool all_equal = true;
    for (const TaskModel* m : teachers) {
      if (!SpecEquals(m->spec().blocks[i], ref)) {
        all_equal = false;
        break;
      }
    }
    if (!all_equal) {
      break;
    }
    ++k;
  }
  return k;
}

AbsGraph BuildSharedPrefixGraph(const std::vector<const TaskModel*>& teachers, int k) {
  GMORPH_CHECK(!teachers.empty());
  const Shape input = teachers[0]->spec().input_shape;
  AbsGraph g = AbsGraph::WithRoot(input, static_cast<int>(teachers.size()));
  // Shared trunk: blocks [0, k) with teacher 0's weights.
  int trunk = g.root();
  for (int i = 0; i < k; ++i) {
    trunk = g.AddNode(trunk, /*task_id=*/0, i, teachers[0]->spec().blocks[static_cast<size_t>(i)],
                      teachers[0]->block(static_cast<size_t>(i)).ExportParameters());
  }
  // Task-specific branches.
  for (size_t t = 0; t < teachers.size(); ++t) {
    int parent = trunk;
    const auto& blocks = teachers[t]->spec().blocks;
    for (size_t i = static_cast<size_t>(k); i < blocks.size(); ++i) {
      parent = g.AddNode(parent, static_cast<int>(t), static_cast<int>(i), blocks[i],
                         teachers[t]->block(i).ExportParameters());
    }
  }
  g.Validate();
  return g;
}

MtlBaselineResult RunAllShared(const std::vector<TaskModel*>& teachers,
                               const MultiTaskDataset& train, const MultiTaskDataset& test,
                               const MtlBaselineOptions& options) {
  Rng rng(options.seed);
  const int k = CommonPrefixLength(AsConst(teachers));
  if (k == 0) {
    return {};  // no identical layers: MTL is not applicable (B5-B7)
  }
  BaselineContext ctx = MakeContext(teachers, train, test, options, rng);
  AbsGraph graph = BuildSharedPrefixGraph(AsConst(teachers), k);
  return EvaluateCandidate(graph, ctx, train, test, options, k, rng);
}

MtlBaselineResult RunTreeMtl(const std::vector<TaskModel*>& teachers,
                             const MultiTaskDataset& train, const MultiTaskDataset& test,
                             const MtlBaselineOptions& options) {
  Rng rng(options.seed);
  const int max_k = CommonPrefixLength(AsConst(teachers));
  if (max_k == 0) {
    return {};
  }
  BaselineContext ctx = MakeContext(teachers, train, test, options, rng);

  // Enumerate branch points from most to least shared; probe-train each and
  // recommend the most-shared candidate whose *probe* drop clears the target
  // (an optimistic estimate — the recommendation can still miss after full
  // training, reproducing the over-sharing failure mode).
  int recommended = 1;
  for (int k = max_k; k >= 1; --k) {
    AbsGraph graph = BuildSharedPrefixGraph(AsConst(teachers), k);
    MultiTaskModel probe(graph, rng);
    FinetuneOptions ft = options.finetune;
    ft.max_epochs = options.probe_epochs;
    ft.eval_interval = options.probe_epochs;
    ft.early_stop_on_target = true;
    FinetuneResult fr =
        DistillFinetune(probe, ctx.teacher_train_logits, train, test, ctx.teacher_scores, ft);
    // Optimistic extrapolation: probe drop within 2x of target counts as
    // promising, favoring sharing as TreeMTL's affinity estimates do.
    if (fr.max_drop <= 2.0 * options.target_drop + 1e-9) {
      recommended = k;
      break;
    }
  }
  AbsGraph graph = BuildSharedPrefixGraph(AsConst(teachers), recommended);
  return EvaluateCandidate(graph, ctx, train, test, options, recommended, rng);
}

}  // namespace gmorph
