// Multi-task learning baselines (paper §6.3, Table 4).
//
// Both baselines share only layers that are *identical* across the input
// architectures — the fundamental MTL limitation the paper contrasts with
// GMorph's rescale-enabled sharing:
//   - All-shared: shares the entire common prefix (the classic hard-sharing
//     multi-task architecture).
//   - TreeMTL (stand-in for [77]): enumerates tree-structured branch points
//     over the common prefix, probe-trains each candidate briefly, and
//     recommends by a probe-accuracy/FLOPs trade-off; the recommendation is
//     then trained to convergence. Like the real system, the recommendation
//     can over-share and exceed the drop target.
// Since the paper's benchmarks lack joint task labels, both baselines are
// trained with GMorph's distillation objective (as the paper does).
#ifndef GMORPH_SRC_BASELINES_MTL_BASELINES_H_
#define GMORPH_SRC_BASELINES_MTL_BASELINES_H_

#include <vector>

#include "src/core/abs_graph.h"
#include "src/core/finetune.h"
#include "src/core/latency.h"
#include "src/data/dataset.h"
#include "src/models/task_model.h"

namespace gmorph {

struct MtlBaselineResult {
  bool feasible = false;  // false when the architectures share no prefix
  AbsGraph graph;
  double latency_ms = 0.0;
  double original_latency_ms = 0.0;
  double speedup = 1.0;        // wall-clock latency ratio
  int64_t original_flops = 0;
  int64_t flops = 0;
  double flops_speedup = 1.0;  // compute ratio (deterministic)
  double accuracy_drop = 0.0;  // worst task, fraction
  std::vector<double> task_scores;
  int shared_blocks = 0;
};

// Number of leading blocks identical across all specs (never includes heads).
int CommonPrefixLength(const std::vector<const TaskModel*>& teachers);

// Builds the branch-at-k tree: blocks [0, k) shared (weights from teacher 0),
// every task keeps its remaining blocks.
AbsGraph BuildSharedPrefixGraph(const std::vector<const TaskModel*>& teachers, int k);

struct MtlBaselineOptions {
  FinetuneOptions finetune;
  LatencyOptions latency;
  // TreeMTL: epochs for the probe training of each enumerated candidate.
  int probe_epochs = 2;
  double target_drop = 0.01;
  uint64_t seed = 42;
};

MtlBaselineResult RunAllShared(const std::vector<TaskModel*>& teachers,
                               const MultiTaskDataset& train, const MultiTaskDataset& test,
                               const MtlBaselineOptions& options);

MtlBaselineResult RunTreeMtl(const std::vector<TaskModel*>& teachers,
                             const MultiTaskDataset& train, const MultiTaskDataset& test,
                             const MtlBaselineOptions& options);

}  // namespace gmorph

#endif  // GMORPH_SRC_BASELINES_MTL_BASELINES_H_
