// The quantization recipe: the on-disk artifact calibration produces and the
// engine consumes. Text, one step per line ("gmorph-quant v1"):
//
//   gmorph-quant v1
//   step seq=0 kind=conv label=conv1 in_scale=0.0123 in_zp=14 w_scales=0.1,0.2
//   step seq=3 kind=linear label=head0 in_scale=0.2 in_zp=0 w_scales=0.05
//
// `seq` is the step's index in the engine's lowered plan, `kind` names the op
// family, `in_scale`/`in_zp` are the u8 asymmetric activation parameters and
// `w_scales` the per-output-channel symmetric s8 weight scales. The format
// mirrors the tunedb's key=value line discipline; the strict linter lives in
// src/analysis/quant_verifier so the loader here only needs to be tolerant of
// whitespace, not of corruption.
#ifndef GMORPH_SRC_QUANT_RECIPE_H_
#define GMORPH_SRC_QUANT_RECIPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/quant/qparams.h"

namespace gmorph::quant {

inline constexpr char kQuantRecipeHeaderPrefix[] = "gmorph-quant";
inline constexpr char kQuantRecipeHeader[] = "gmorph-quant v1";

struct StepQuantSpec {
  int64_t seq = -1;
  std::string kind;   // "conv" | "linear"
  std::string label;  // step label, informational (spaces are sanitized)
  ActQuant in_q;
  std::vector<float> w_scales;  // one per output channel
};

struct QuantRecipe {
  std::vector<StepQuantSpec> steps;

  // Spec for a plan step, or nullptr when the step is not quantized.
  const StepQuantSpec* FindSeq(int64_t seq) const;
};

// One step line, both directions; shared with the analysis-layer linter so
// writer and verifier cannot drift. Parse rejects malformed lines with a
// human-readable reason; it does not enforce cross-line rules (duplicates),
// which belong to the verifier.
bool ParseQuantStepLine(const std::string& line, StepQuantSpec* spec, std::string* error);
std::string FormatQuantStepLine(const StepQuantSpec& spec);

// Whole-file IO. Save is atomic (tmp + rename, the tunedb discipline). Load
// fails (returns false) on a missing file, bad header, or any malformed step
// line — a recipe drives numerics, so unlike the tunedb nothing is dropped
// silently.
bool SaveQuantRecipe(const QuantRecipe& recipe, const std::string& path, std::string* error);
bool LoadQuantRecipe(const std::string& path, QuantRecipe* recipe, std::string* error);

}  // namespace gmorph::quant

#endif  // GMORPH_SRC_QUANT_RECIPE_H_
