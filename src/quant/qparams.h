// Quantization parameters for int8 post-training quantization.
//
// The scheme follows the common CPU inference convention (oneDNN / FBGEMM):
// activations are quantized per-tensor to unsigned 8-bit with an asymmetric
// zero point (ReLU-heavy nets waste half the s8 range otherwise), weights are
// quantized per output channel to signed 8-bit symmetrically (zero point 0),
// clamped to ±127 so the u8·s8 product family never overflows the VNNI
// accumulation path. The integer GEMM then computes
//
//   acc[r][oc] = sum_k qa[r][k] * qw[k][oc]
//
// and the dequantized result is recovered in the epilogue as
//
//   y = a_scale * w_scale[oc] * (acc - a_zp * colsum[oc]) + bias[oc]
//
// where colsum[oc] = sum_k qw[k][oc] is precomputed at quantize time. All
// helpers here are pure value math; packing and epilogues live in quant_ops.
#ifndef GMORPH_SRC_QUANT_QPARAMS_H_
#define GMORPH_SRC_QUANT_QPARAMS_H_

#include <cstdint>
#include <vector>

namespace gmorph::quant {

// Asymmetric u8 quantization of one activation tensor: real 0.0 always maps
// exactly onto `zero_point`, so zero padding introduced by im2col stays exact.
struct ActQuant {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

// Observed value range of a tensor across calibration batches. Starts empty;
// Observe() widens it. The range is always forced to include 0 before scales
// are derived (padding and missing bias both rely on an exact zero).
struct TensorRange {
  float min_v = 0.0f;
  float max_v = 0.0f;
  bool seen = false;

  void Observe(const float* x, int64_t n);
  bool valid() const { return seen; }
};

// Derives u8 asymmetric parameters from an observed range. Degenerate ranges
// (constant tensors, never-observed steps) fall back to scale=1, zp=0.
ActQuant ActQuantFromRange(const TensorRange& range);

// clamp(round(x / scale) + zero_point, 0, 255)
uint8_t QuantizeValue(float x, const ActQuant& q);
void QuantizeActivations(const float* x, int64_t n, const ActQuant& q, uint8_t* out);

// Symmetric s8 weight scale for one output channel: max|w| / 127 (with a tiny
// floor so all-zero channels stay representable).
float SymmetricScale(float abs_max);
// clamp(round(w / scale), -127, 127) — note ±127, not -128, keeping the
// product magnitude bounded for the 4-way u8·s8 dot accumulation.
int8_t QuantizeWeight(float w, float scale);

// Per-row / per-column symmetric scales of a row-major (rows, cols) matrix.
// Conv weights (O, C*KH*KW) use rows = output channels; linear weights
// (in, out) use columns = output features.
std::vector<float> RowAbsMaxScales(const float* w, int64_t rows, int64_t cols);
std::vector<float> ColAbsMaxScales(const float* w, int64_t rows, int64_t cols);

}  // namespace gmorph::quant

#endif  // GMORPH_SRC_QUANT_QPARAMS_H_
