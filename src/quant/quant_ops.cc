#include "src/quant/quant_ops.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/parallel_for.h"
#include "src/kernels/registry.h"
#include "src/kernels/scratch.h"

namespace gmorph::quant {
namespace {

// Same chunking rule as the f32 conv/linear epilogues.
int64_t ItemGrain(int64_t per_item) {
  return std::max<int64_t>(1, (1 << 15) / std::max<int64_t>(1, per_item));
}

// Gathers the quantized image into the transposed column matrix: one row per
// output pixel, ckk bytes per row. Out-of-image taps get `pad_byte` — the
// u8 code of real 0.0, so padding dequantizes exactly to zero.
void QIm2ColRows(const uint8_t* qx, int64_t c, int64_t h, int64_t w, int64_t kernel,
                 int64_t stride, int64_t padding, int64_t oh, int64_t ow, uint8_t pad_byte,
                 uint8_t* col) {
  const int64_t ckk = c * kernel * kernel;
  for (int64_t oy = 0; oy < oh; ++oy) {
    for (int64_t ox = 0; ox < ow; ++ox) {
      uint8_t* row = col + (oy * ow + ox) * ckk;
      int64_t idx = 0;
      for (int64_t ch = 0; ch < c; ++ch) {
        for (int64_t kh = 0; kh < kernel; ++kh) {
          const int64_t iy = oy * stride + kh - padding;
          if (iy < 0 || iy >= h) {
            std::fill(row + idx, row + idx + kernel, pad_byte);
            idx += kernel;
            continue;
          }
          const uint8_t* src_row = qx + (ch * h + iy) * w;
          const int64_t base = ox * stride - padding;
          if (base >= 0 && base + kernel <= w) {
            std::copy(src_row + base, src_row + base + kernel, row + idx);
            idx += kernel;
            continue;
          }
          for (int64_t kw = 0; kw < kernel; ++kw, ++idx) {
            const int64_t ix = base + kw;
            row[idx] = (ix >= 0 && ix < w) ? src_row[ix] : pad_byte;
          }
        }
      }
    }
  }
}

}  // namespace

QLinearWeights PackLinearWeights(const Tensor& w, const Tensor& b, const ActQuant& in_q,
                                 const std::vector<float>& w_scales) {
  GMORPH_CHECK(w.shape().Rank() == 2);
  QLinearWeights qw;
  qw.in_features = w.shape()[0];
  qw.out_features = w.shape()[1];
  qw.in_q = in_q;
  GMORPH_CHECK(static_cast<int64_t>(w_scales.size()) == qw.out_features,
               "linear w_scales size " << w_scales.size() << " want " << qw.out_features);
  const int64_t in = qw.in_features;
  const int64_t out = qw.out_features;
  qw.w.resize(static_cast<size_t>(in * out));
  qw.colsum.assign(static_cast<size_t>(out), 0);
  qw.deq_scale.resize(static_cast<size_t>(out));
  const float* pw = w.data();
  for (int64_t k = 0; k < in; ++k) {
    for (int64_t j = 0; j < out; ++j) {
      const int8_t q = QuantizeWeight(pw[k * out + j], w_scales[static_cast<size_t>(j)]);
      qw.w[static_cast<size_t>(k * out + j)] = q;
      qw.colsum[static_cast<size_t>(j)] += q;
    }
  }
  for (int64_t j = 0; j < out; ++j) {
    qw.deq_scale[static_cast<size_t>(j)] = in_q.scale * w_scales[static_cast<size_t>(j)];
  }
  if (!b.empty()) {
    qw.bias.assign(b.data(), b.data() + b.size());
  }
  return qw;
}

QConvWeights PackConvWeights(const Tensor& w, const Tensor& b, const ActQuant& in_q,
                             const std::vector<float>& w_scales) {
  GMORPH_CHECK(w.shape().Rank() == 4);
  QConvWeights qw;
  qw.out_channels = w.shape()[0];
  qw.in_channels = w.shape()[1];
  qw.kernel = w.shape()[2];
  GMORPH_CHECK(w.shape()[3] == qw.kernel);
  qw.in_q = in_q;
  GMORPH_CHECK(static_cast<int64_t>(w_scales.size()) == qw.out_channels,
               "conv w_scales size " << w_scales.size() << " want " << qw.out_channels);
  const int64_t o = qw.out_channels;
  const int64_t ckk = qw.ckk();
  qw.wt.resize(static_cast<size_t>(ckk * o));
  qw.colsum.assign(static_cast<size_t>(o), 0);
  qw.deq_scale.resize(static_cast<size_t>(o));
  const float* pw = w.data();
  for (int64_t oc = 0; oc < o; ++oc) {
    const float scale = w_scales[static_cast<size_t>(oc)];
    int32_t sum = 0;
    for (int64_t k = 0; k < ckk; ++k) {
      const int8_t q = QuantizeWeight(pw[oc * ckk + k], scale);
      qw.wt[static_cast<size_t>(k * o + oc)] = q;
      sum += q;
    }
    qw.colsum[static_cast<size_t>(oc)] = sum;
    qw.deq_scale[static_cast<size_t>(oc)] = in_q.scale * scale;
  }
  if (!b.empty()) {
    qw.bias.assign(b.data(), b.data() + b.size());
  }
  return qw;
}

void QLinearForwardInto(const Tensor& x, const QLinearWeights& qw, Tensor& out, bool relu,
                        const kernels::QGemmSolver* solver) {
  const int64_t in = qw.in_features;
  const int64_t n = qw.out_features;
  GMORPH_CHECK(x.shape()[-1] == in, "qlinear in features: x " << x.shape().ToString()
                                                              << " want " << in);
  const int64_t rows = x.size() / in;
  GMORPH_CHECK(out.size() == rows * n);
  const kernels::ProblemDesc desc = kernels::QGemmProblem(rows, in, n);
  if (solver == nullptr) {
    solver = kernels::SolverRegistry::Global().ResolveQGemm(desc);
  }

  ScratchScope scope;
  uint8_t* qx = scope.Alloc<uint8_t>(static_cast<size_t>(rows * in));
  int32_t* acc = scope.Alloc<int32_t>(static_cast<size_t>(rows * n));
  {
    const float* px = x.data();
    const ActQuant q = qw.in_q;
    ParallelFor(0, rows, ItemGrain(in), [&](int64_t lo, int64_t hi) {
      QuantizeActivations(px + lo * in, (hi - lo) * in, q, qx + lo * in);
    });
  }
  solver->Run(desc, kernels::QGemmCall{qx, qw.w.data(), acc});

  float* po = out.data();
  const int32_t zp = qw.in_q.zero_point;
  const float* pb = qw.bias.empty() ? nullptr : qw.bias.data();
  const int32_t* colsum = qw.colsum.data();
  const float* ds = qw.deq_scale.data();
  ParallelFor(0, rows, ItemGrain(n), [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const int32_t* arow = acc + r * n;
      float* orow = po + r * n;
      for (int64_t j = 0; j < n; ++j) {
        float v = ds[j] * static_cast<float>(arow[j] - zp * colsum[j]);
        if (pb != nullptr) {
          v += pb[j];
        }
        orow[j] = relu && v < 0.0f ? 0.0f : v;
      }
    }
  });
}

void QConv2dForwardInto(const Tensor& x, const QConvWeights& qw, const Conv2dArgs& args,
                        Tensor& out, const Tensor* skip, bool relu,
                        const kernels::QGemmSolver* solver) {
  GMORPH_CHECK(x.shape().Rank() == 4);
  const int64_t n = x.shape()[0];
  const int64_t c = x.shape()[1];
  const int64_t h = x.shape()[2];
  const int64_t wd = x.shape()[3];
  GMORPH_CHECK(c == qw.in_channels, "qconv channels: x " << x.shape().ToString() << " want "
                                                         << qw.in_channels);
  const int64_t o = qw.out_channels;
  const int64_t kernel = qw.kernel;
  const int64_t oh = ConvOutDim(h, kernel, args.stride, args.padding);
  const int64_t ow = ConvOutDim(wd, kernel, args.stride, args.padding);
  GMORPH_CHECK(out.shape() == Shape({n, o, oh, ow}),
               "qconv out buffer " << out.shape().ToString() << " want "
                                   << Shape({n, o, oh, ow}).ToString());
  GMORPH_CHECK(skip == nullptr || skip->shape() == out.shape());

  const int64_t ckk = qw.ckk();
  const int64_t spatial = oh * ow;
  const int64_t plane = o * spatial;
  // The per-sample GEMM runs inside the batch loop, so it is keyed serial —
  // same regime as the f32 conv lowering.
  kernels::ProblemDesc desc = kernels::QGemmProblem(spatial, ckk, o);
  desc.threads = 1;
  if (solver == nullptr) {
    solver = kernels::SolverRegistry::Global().ResolveQGemm(desc);
  }
  const uint8_t pad_byte = static_cast<uint8_t>(std::clamp(qw.in_q.zero_point, 0, 255));
  const ActQuant in_q = qw.in_q;
  const int32_t zp = in_q.zero_point;

  ParallelFor(0, n, ItemGrain(plane), [&](int64_t lo, int64_t hi) {
    ScratchScope scope;
    uint8_t* qx = scope.Alloc<uint8_t>(static_cast<size_t>(c * h * wd));
    uint8_t* col = scope.Alloc<uint8_t>(static_cast<size_t>(spatial * ckk));
    int32_t* acc = scope.Alloc<int32_t>(static_cast<size_t>(spatial * o));
    for (int64_t i = lo; i < hi; ++i) {
      QuantizeActivations(x.data() + i * c * h * wd, c * h * wd, in_q, qx);
      QIm2ColRows(qx, c, h, wd, kernel, args.stride, args.padding, oh, ow, pad_byte, col);
      solver->Run(desc, kernels::QGemmCall{col, qw.wt.data(), acc});
      // Dequant + transpose (S,O) -> (O,S), folding zero-point correction,
      // bias, skip-add and ReLU into the single pass over the output plane.
      float* y = out.data() + i * plane;
      const float* ps = skip == nullptr ? nullptr : skip->data() + i * plane;
      for (int64_t oc = 0; oc < o; ++oc) {
        const float scale = qw.deq_scale[static_cast<size_t>(oc)];
        const int32_t corr = zp * qw.colsum[static_cast<size_t>(oc)];
        const float bias =
            qw.bias.empty() ? 0.0f : qw.bias[static_cast<size_t>(oc)];
        float* yo = y + oc * spatial;
        const float* so = ps == nullptr ? nullptr : ps + oc * spatial;
        for (int64_t s = 0; s < spatial; ++s) {
          float v = scale * static_cast<float>(acc[s * o + oc] - corr) + bias;
          if (so != nullptr) {
            v += so[s];
          }
          yo[s] = relu && v < 0.0f ? 0.0f : v;
        }
      }
    }
  });
}

}  // namespace gmorph::quant
