// Quantized inference ops: int8 conv / linear forward passes with the dequant
// epilogue (scale, zero-point correction, bias, skip-add, ReLU) fused into the
// same pass that the f32 `*ForwardInto` ops fuse their epilogues into.
//
// Weights are packed once at quantize time into the layouts the u8·s8 GEMM
// wants; the forward passes then touch only the thread-local scratch arena —
// no heap allocation in steady state, matching the execution planner's
// contract.
//
// Layouts. Linear keeps the f32 orientation: x (rows, in) · w (in, out), so
// the s8 weight matrix is the quantized weight as-is and per-output-channel
// scales run over columns. Conv flips the f32 orientation: instead of
// W[O,CKK] · col[CKK,S] the quantized path computes col_u8[S,CKK] · Wt_s8
// [CKK,O] — activations must be the *left* (unsigned) operand of the u8·s8
// product, so the im2col matrix is built row-per-output-pixel and the weight
// is stored transposed. The epilogue writes the (S,O) accumulator back to
// NCHW order while dequantizing.
#ifndef GMORPH_SRC_QUANT_QUANT_OPS_H_
#define GMORPH_SRC_QUANT_QUANT_OPS_H_

#include <cstdint>
#include <vector>

#include "src/kernels/solver.h"
#include "src/quant/qparams.h"
#include "src/tensor/conv_ops.h"
#include "src/tensor/tensor.h"

namespace gmorph::quant {

// Quantized linear layer: s8 weights in the original (in, out) row-major
// orientation plus everything the epilogue needs precomputed.
struct QLinearWeights {
  int64_t in_features = 0;
  int64_t out_features = 0;
  ActQuant in_q;
  std::vector<int8_t> w;          // (in, out) row-major
  std::vector<int32_t> colsum;    // sum_k w[k][j], per output feature
  std::vector<float> deq_scale;   // in_scale * w_scale[j]
  std::vector<float> bias;        // per output feature; empty = no bias
};

// Quantized conv layer: s8 weights transposed to (C*KH*KW, O).
struct QConvWeights {
  int64_t out_channels = 0;
  int64_t in_channels = 0;
  int64_t kernel = 0;
  ActQuant in_q;
  std::vector<int8_t> wt;         // (ckk, O) row-major — W[O, ckk] transposed
  std::vector<int32_t> colsum;    // sum_k wt[k][oc], per output channel
  std::vector<float> deq_scale;   // in_scale * w_scale[oc]
  std::vector<float> bias;        // per output channel; empty = no bias

  int64_t ckk() const { return in_channels * kernel * kernel; }
};

// One-time packing (heap allocation is fine here — this runs at quantize
// time, not per inference). `w_scales` has one entry per output feature /
// channel, as produced by ColAbsMaxScales / RowAbsMaxScales.
QLinearWeights PackLinearWeights(const Tensor& w, const Tensor& b, const ActQuant& in_q,
                                 const std::vector<float>& w_scales);
QConvWeights PackConvWeights(const Tensor& w, const Tensor& b, const ActQuant& in_q,
                             const std::vector<float>& w_scales);

// x (..., in) -> out (..., out). Quantizes x to u8 in scratch, runs the int8
// GEMM, dequantizes with bias + optional ReLU in one pass. `solver` is the
// pinned winner for QGemmProblem(rows, in, out); nullptr resolves per call.
void QLinearForwardInto(const Tensor& x, const QLinearWeights& qw, Tensor& out, bool relu,
                        const kernels::QGemmSolver* solver = nullptr);

// x (N,C,H,W) -> out (N,O,OH,OW); optional skip (same shape as out) and ReLU
// fused into the dequant transpose. `solver` is the pinned winner for
// QGemmProblem(OH*OW, ckk, O) at threads=1; nullptr resolves per call.
void QConv2dForwardInto(const Tensor& x, const QConvWeights& qw, const Conv2dArgs& args,
                        Tensor& out, const Tensor* skip = nullptr, bool relu = false,
                        const kernels::QGemmSolver* solver = nullptr);

}  // namespace gmorph::quant

#endif  // GMORPH_SRC_QUANT_QUANT_OPS_H_
