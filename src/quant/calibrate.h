// Calibration support: per-step activation range collection.
//
// During a calibration pass the engine runs its normal f32 plan and reports
// the input tensor of every quantizable step here; after all batches it asks
// for the derived u8 parameters per step. Owned by the caller, not by the
// engine, so a fresh observer means a fresh calibration.
#ifndef GMORPH_SRC_QUANT_CALIBRATE_H_
#define GMORPH_SRC_QUANT_CALIBRATE_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "src/quant/qparams.h"

namespace gmorph::quant {

class CalibrationObserver {
 public:
  // Widens the observed range of step `seq`'s input with n values. Thread-safe
  // (branch-parallel engine groups observe concurrently).
  void Observe(int64_t seq, const float* x, int64_t n);

  // Range for a step, or nullptr if that step was never observed.
  const TensorRange* Range(int64_t seq) const;

  // u8 asymmetric parameters for a step (identity scale when unobserved).
  ActQuant ActFor(int64_t seq) const;

  int64_t num_observed() const;

 private:
  mutable std::mutex mutex_;
  std::map<int64_t, TensorRange> ranges_;
};

}  // namespace gmorph::quant

#endif  // GMORPH_SRC_QUANT_CALIBRATE_H_
