#include "src/quant/calibrate.h"

#include <algorithm>

namespace gmorph::quant {

void CalibrationObserver::Observe(int64_t seq, const float* x, int64_t n) {
  // The scan itself runs outside the lock; only the merge is serialized.
  TensorRange local;
  local.Observe(x, n);
  if (!local.seen) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  TensorRange& r = ranges_[seq];
  if (!r.seen) {
    r = local;
  } else {
    r.min_v = std::min(r.min_v, local.min_v);
    r.max_v = std::max(r.max_v, local.max_v);
  }
}

const TensorRange* CalibrationObserver::Range(int64_t seq) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ranges_.find(seq);
  return it == ranges_.end() ? nullptr : &it->second;
}

ActQuant CalibrationObserver::ActFor(int64_t seq) const {
  const TensorRange* r = Range(seq);
  return r == nullptr ? ActQuant{} : ActQuantFromRange(*r);
}

int64_t CalibrationObserver::num_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(ranges_.size());
}

}  // namespace gmorph::quant
