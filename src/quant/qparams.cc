#include "src/quant/qparams.h"

#include <algorithm>
#include <cmath>

namespace gmorph::quant {

void TensorRange::Observe(const float* x, int64_t n) {
  if (n <= 0) {
    return;
  }
  float lo = seen ? min_v : x[0];
  float hi = seen ? max_v : x[0];
  for (int64_t i = 0; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  min_v = lo;
  max_v = hi;
  seen = true;
}

ActQuant ActQuantFromRange(const TensorRange& range) {
  ActQuant q;
  if (!range.seen) {
    return q;
  }
  // Force the range to cover 0 so the zero point is an exact u8 code.
  const float lo = std::min(range.min_v, 0.0f);
  const float hi = std::max(range.max_v, 0.0f);
  const float span = hi - lo;
  if (!(span > 0.0f) || !std::isfinite(span)) {
    return q;
  }
  q.scale = span / 255.0f;
  q.zero_point = static_cast<int32_t>(std::lround(-lo / q.scale));
  q.zero_point = std::clamp(q.zero_point, 0, 255);
  return q;
}

uint8_t QuantizeValue(float x, const ActQuant& q) {
  const int32_t v = static_cast<int32_t>(std::lround(x / q.scale)) + q.zero_point;
  return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

void QuantizeActivations(const float* x, int64_t n, const ActQuant& q, uint8_t* out) {
  const float inv = 1.0f / q.scale;
  const int32_t zp = q.zero_point;
  for (int64_t i = 0; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(std::lround(x[i] * inv)) + zp;
    out[i] = static_cast<uint8_t>(std::clamp(v, 0, 255));
  }
}

float SymmetricScale(float abs_max) {
  constexpr float kMinScale = 1e-12f;
  return std::max(abs_max / 127.0f, kMinScale);
}

int8_t QuantizeWeight(float w, float scale) {
  const int32_t v = static_cast<int32_t>(std::lround(w / scale));
  return static_cast<int8_t>(std::clamp(v, -127, 127));
}

std::vector<float> RowAbsMaxScales(const float* w, int64_t rows, int64_t cols) {
  std::vector<float> scales(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    float mx = 0.0f;
    const float* row = w + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      mx = std::max(mx, std::fabs(row[c]));
    }
    scales[static_cast<size_t>(r)] = SymmetricScale(mx);
  }
  return scales;
}

std::vector<float> ColAbsMaxScales(const float* w, int64_t rows, int64_t cols) {
  std::vector<float> mx(static_cast<size_t>(cols), 0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = w + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      mx[static_cast<size_t>(c)] = std::max(mx[static_cast<size_t>(c)], std::fabs(row[c]));
    }
  }
  std::vector<float> scales(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    scales[static_cast<size_t>(c)] = SymmetricScale(mx[static_cast<size_t>(c)]);
  }
  return scales;
}

}  // namespace gmorph::quant
