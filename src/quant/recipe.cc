#include "src/quant/recipe.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/artifact_header.h"

namespace gmorph::quant {
namespace {

// %.9g round-trips any float32 exactly through text.
std::string FormatFloat(float v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(v));
  return buf;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseFloat(const std::string& s, float* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const float v = std::strtof(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

std::string SanitizeLabel(const std::string& label) {
  std::string out = label.empty() ? std::string("-") : label;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '=') {
      c = '_';
    }
  }
  return out;
}

}  // namespace

const StepQuantSpec* QuantRecipe::FindSeq(int64_t seq) const {
  for (const StepQuantSpec& s : steps) {
    if (s.seq == seq) {
      return &s;
    }
  }
  return nullptr;
}

bool ParseQuantStepLine(const std::string& line, StepQuantSpec* spec, std::string* error) {
  std::istringstream is(line);
  std::string tok;
  is >> tok;
  if (tok != "step") {
    *error = "expected 'step'";
    return false;
  }
  StepQuantSpec s;
  bool have_seq = false, have_kind = false, have_scale = false, have_zp = false,
       have_w = false;
  while (is >> tok) {
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      *error = "bad token '" + tok + "'";
      return false;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    int64_t iv = 0;
    if (key == "seq" && ParseInt64(val, &s.seq) && s.seq >= 0) {
      have_seq = true;
    } else if (key == "kind" && !val.empty()) {
      s.kind = val;
      have_kind = true;
    } else if (key == "label" && !val.empty()) {
      s.label = val;
    } else if (key == "in_scale" && ParseFloat(val, &s.in_q.scale)) {
      have_scale = true;
    } else if (key == "in_zp" && ParseInt64(val, &iv) && iv >= 0 && iv <= 255) {
      s.in_q.zero_point = static_cast<int32_t>(iv);
      have_zp = true;
    } else if (key == "w_scales" && !val.empty()) {
      size_t pos = 0;
      while (pos <= val.size()) {
        const size_t comma = val.find(',', pos);
        const std::string item =
            val.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        float f = 0.0f;
        if (!ParseFloat(item, &f)) {
          *error = "bad w_scales item '" + item + "'";
          return false;
        }
        s.w_scales.push_back(f);
        if (comma == std::string::npos) {
          break;
        }
        pos = comma + 1;
      }
      have_w = true;
    } else {
      *error = "bad step field '" + tok + "'";
      return false;
    }
  }
  if (!have_seq || !have_kind || !have_scale || !have_zp || !have_w) {
    *error = "missing required field (need seq, kind, in_scale, in_zp, w_scales)";
    return false;
  }
  *spec = std::move(s);
  return true;
}

std::string FormatQuantStepLine(const StepQuantSpec& spec) {
  std::ostringstream os;
  os << "step seq=" << spec.seq << " kind=" << spec.kind
     << " label=" << SanitizeLabel(spec.label) << " in_scale=" << FormatFloat(spec.in_q.scale)
     << " in_zp=" << spec.in_q.zero_point << " w_scales=";
  for (size_t i = 0; i < spec.w_scales.size(); ++i) {
    if (i != 0) {
      os << ',';
    }
    os << FormatFloat(spec.w_scales[i]);
  }
  return os.str();
}

bool SaveQuantRecipe(const QuantRecipe& recipe, const std::string& path, std::string* error) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
  }
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) {
      *error = "cannot open '" + tmp.string() + "' for writing";
      return false;
    }
    os << kQuantRecipeHeader << "\n";
    for (const StepQuantSpec& s : recipe.steps) {
      os << FormatQuantStepLine(s) << "\n";
    }
    os.flush();
    if (!os) {
      *error = "write to '" + tmp.string() + "' failed";
      return false;
    }
  }
  fs::rename(tmp, target, ec);
  if (ec) {
    *error = "rename to '" + path + "' failed: " + ec.message();
    return false;
  }
  return true;
}

bool LoadQuantRecipe(const std::string& path, QuantRecipe* recipe, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::string line;
  if (!std::getline(is, line) ||
      CheckArtifactHeaderLine(line, kQuantRecipeArtifact) != HeaderCheck::kOk) {
    *error = "bad header (want '" + ArtifactHeaderLine(kQuantRecipeArtifact) + "')";
    return false;
  }
  QuantRecipe out;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) {
      continue;
    }
    StepQuantSpec spec;
    std::string why;
    if (!ParseQuantStepLine(line, &spec, &why)) {
      *error = "line " + std::to_string(lineno) + ": " + why;
      return false;
    }
    out.steps.push_back(std::move(spec));
  }
  *recipe = std::move(out);
  return true;
}

}  // namespace gmorph::quant
