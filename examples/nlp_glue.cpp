// General Language Understanding (paper Table 1 / B7): a CoLA-style
// acceptability task (Matthews correlation) on a BERT-Large-s and an
// SST-2-style sentiment task (accuracy) on a BERT-Base-s, both reading the
// same token stream. Demonstrates transformer fusion: token-length/hidden-
// size rescale adapters let heterogeneous encoders share layers.
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/gmorph.h"
#include "src/data/synthetic.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"

int main() {
  using namespace gmorph;
  Rng rng(31);

  std::vector<TextTaskSpec> tasks(2);
  tasks[0].metric = MetricKind::kMatthews;  // CoLA
  tasks[1].metric = MetricKind::kAccuracy;  // SST-2
  TextDataOptions data_opts;
  TextDatasetPair data = GenerateTextData(256, 128, tasks, data_opts, rng);

  TransformerModelOptions large = BertLargeOptions();
  large.classes = 2;
  TransformerModelOptions base = BertBaseOptions();
  base.classes = 2;
  TaskModel cola_net(MakeBert("BERT-Large-s", large), rng);
  TaskModel sst_net(MakeBert("BERT-Base-s", base), rng);

  TeacherTrainOptions topts;
  topts.epochs = 8;
  std::printf("CoLANet (BERT-Large-s) Matthews: %.3f\n",
              TrainTeacher(cola_net, data.train, data.test, 0, topts));
  std::printf("SSTNet  (BERT-Base-s)  accuracy: %.3f\n",
              TrainTeacher(sst_net, data.train, data.test, 1, topts));

  GMorphOptions options;
  options.accuracy_drop_threshold = 0.02;
  options.iterations = 12;
  options.finetune.max_epochs = 8;
  options.finetune.eval_interval = 2;
  options.seed = 13;
  GMorph gmorph({&cola_net, &sst_net}, &data.train, &data.test, options);
  GMorphResult result = gmorph.Run();

  std::printf("\ntransformer fusion: %.2f ms -> %.2f ms (%.2fx), %d candidates fine-tuned\n",
              result.original_latency_ms, result.best_latency_ms, result.speedup,
              result.candidates_finetuned);
  std::printf("CoLANet Matthews %.3f -> %.3f\n", result.teacher_scores[0],
              result.best_task_scores[0]);
  std::printf("SSTNet  accuracy %.3f -> %.3f\n", result.teacher_scores[1],
              result.best_task_scores[1]);
  std::printf("\nfused model:\n%s", result.best_graph.ToString().c_str());
  return 0;
}
