// Quickstart: fuse two pre-trained CNNs with GMorph.
//
// 1. Generate a two-task synthetic vision dataset (shared input stream).
// 2. Pre-train one VGG-11s teacher per task (independent, task-specific).
// 3. Run GMorph: graph mutation search + distillation fine-tuning.
// 4. Report the fused model, its speedup, and per-task accuracy.
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/gmorph.h"
#include "src/data/synthetic.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"

int main() {
  using namespace gmorph;
  Rng rng(7);

  // --- Data: two classification tasks on one image stream. ---
  std::vector<VisionTaskSpec> tasks(2);
  tasks[0].num_classes = 4;
  tasks[1].num_classes = 3;
  VisionDataOptions data_opts;
  VisionDatasetPair data = GenerateVisionData(256, 128, tasks, data_opts, rng);

  // --- Teachers: independently pre-trained task-specific DNNs. ---
  VisionModelOptions model_opts;
  model_opts.classes = 4;
  TaskModel teacher_a(MakeVgg11(model_opts), rng);
  model_opts.classes = 3;
  TaskModel teacher_b(MakeVgg11(model_opts), rng);

  TeacherTrainOptions train_opts;
  train_opts.epochs = 6;
  const double score_a = TrainTeacher(teacher_a, data.train, data.test, 0, train_opts);
  const double score_b = TrainTeacher(teacher_b, data.train, data.test, 1, train_opts);
  std::printf("teacher A (task 0) accuracy: %.3f\n", score_a);
  std::printf("teacher B (task 1) accuracy: %.3f\n", score_b);

  // --- GMorph search. ---
  GMorphOptions options;
  options.accuracy_drop_threshold = 0.02;  // allow up to 2% drop
  options.iterations = 10;
  options.finetune.max_epochs = 6;
  options.finetune.eval_interval = 2;
  options.seed = 11;

  GMorph gmorph({&teacher_a, &teacher_b}, &data.train, &data.test, options);
  GMorphResult result = gmorph.Run();

  std::printf("\noriginal latency: %.2f ms, fused latency: %.2f ms, speedup: %.2fx\n",
              result.original_latency_ms, result.best_latency_ms, result.speedup);
  std::printf("search time: %.1f s over %d fine-tuned candidates\n", result.search_seconds,
              result.candidates_finetuned);
  for (size_t t = 0; t < result.best_task_scores.size(); ++t) {
    std::printf("task %zu: teacher %.3f -> fused %.3f\n", t, result.teacher_scores[t],
                result.best_task_scores[t]);
  }
  std::printf("\nfused multi-task model:\n%s", result.best_graph.ToString().c_str());
  return 0;
}
