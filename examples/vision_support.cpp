// Vision Support (paper Table 1): four face-attribute tasks — age, gender,
// ethnicity, emotion — each with its own pre-trained CNN over one face-image
// stream, fused by GMorph into a single multi-task model. Demonstrates fusing
// *heterogeneous* architectures (VGG-13/11/13/16) and saving the result.
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/gmorph.h"
#include "src/core/graph_io.h"
#include "src/data/synthetic.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"

int main() {
  using namespace gmorph;
  Rng rng(2024);

  // Four classification tasks on one face stream.
  struct TaskDef {
    const char* name;
    int classes;
    ModelSpec (*make)(const VisionModelOptions&);
  };
  const TaskDef defs[] = {
      {"AgeNet", 5, MakeVgg13},
      {"GenderNet", 2, MakeVgg11},
      {"EthnicityNet", 4, MakeVgg13},
      {"EmotionNet", 7, MakeVgg16},
  };

  std::vector<VisionTaskSpec> data_tasks;
  for (const TaskDef& d : defs) {
    VisionTaskSpec t;
    t.num_classes = d.classes;
    data_tasks.push_back(t);
  }
  VisionDataOptions data_opts;
  data_opts.noise_stddev = 1.2f;
  VisionDatasetPair data = GenerateVisionData(192, 96, data_tasks, data_opts, rng);

  std::printf("pre-training four task-specific teachers...\n");
  std::vector<std::unique_ptr<TaskModel>> teachers;
  std::vector<TaskModel*> ptrs;
  for (size_t t = 0; t < std::size(defs); ++t) {
    VisionModelOptions opts;
    opts.classes = defs[t].classes;
    teachers.push_back(std::make_unique<TaskModel>(defs[t].make(opts), rng));
    TeacherTrainOptions topts;
    topts.epochs = 5;
    const double score = TrainTeacher(*teachers.back(), data.train, data.test, t, topts);
    std::printf("  %-13s %-9s accuracy %.3f\n", defs[t].name,
                teachers.back()->spec().name.c_str(), score);
    ptrs.push_back(teachers.back().get());
  }

  GMorphOptions options;
  options.accuracy_drop_threshold = 0.01;
  options.iterations = 12;
  options.finetune.max_epochs = 6;
  options.finetune.eval_interval = 2;
  options.seed = 5;
  GMorph gmorph(ptrs, &data.train, &data.test, options);
  GMorphResult result = gmorph.Run();

  std::printf("\n4-DNN vision support: %.2f ms -> %.2f ms (%.2fx), search %.0fs\n",
              result.original_latency_ms, result.best_latency_ms, result.speedup,
              result.search_seconds);
  for (size_t t = 0; t < std::size(defs); ++t) {
    std::printf("  %-13s teacher %.3f -> fused %.3f\n", defs[t].name, result.teacher_scores[t],
                result.best_task_scores[t]);
  }

  const char* path = "vision_support_fused.gmorph";
  if (SaveGraph(path, result.best_graph)) {
    AbsGraph reloaded;
    LoadGraph(path, reloaded);
    std::printf("\nfused model saved to %s (%d nodes) and reloaded successfully\n", path,
                reloaded.size());
  }
  return 0;
}
