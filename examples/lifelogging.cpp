// Lifelogging (paper Table 1): object detection (multi-label, mAP) plus
// salient-object counting on one camera stream, using cross-family backbones
// (ResNet-34 + VGG-16, the paper's B5). After fusion, the example deploys the
// model on both runtime engines and compares latency — the Table 3 workflow
// as a library user would run it.
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/gmorph.h"
#include "src/data/synthetic.h"
#include "src/data/teacher.h"
#include "src/models/zoo.h"
#include "src/runtime/engine.h"

int main() {
  using namespace gmorph;
  Rng rng(77);

  std::vector<VisionTaskSpec> tasks(2);
  tasks[0].num_classes = 8;  // object categories
  tasks[0].metric = MetricKind::kMeanAveragePrecision;
  tasks[1].num_classes = 5;  // salient-object count 0..4
  VisionDataOptions data_opts;
  data_opts.noise_stddev = 1.2f;
  VisionDatasetPair data = GenerateVisionData(192, 96, tasks, data_opts, rng);

  VisionModelOptions opts;
  opts.classes = 8;
  TaskModel object_net(MakeResNet34(opts), rng);
  opts.classes = 5;
  TaskModel salient_net(MakeVgg16(opts), rng);

  TeacherTrainOptions topts;
  topts.epochs = 5;
  std::printf("ObjectNet (ResNet-34s) mAP:       %.3f\n",
              TrainTeacher(object_net, data.train, data.test, 0, topts));
  std::printf("SalientNet (VGG-16s) accuracy:    %.3f\n",
              TrainTeacher(salient_net, data.train, data.test, 1, topts));

  GMorphOptions options;
  options.accuracy_drop_threshold = 0.02;
  options.iterations = 12;
  options.finetune.max_epochs = 6;
  options.finetune.eval_interval = 2;
  options.seed = 9;
  GMorph gmorph({&object_net, &salient_net}, &data.train, &data.test, options);
  GMorphResult result = gmorph.Run();

  std::printf("\ncross-family fusion: %.2f ms -> %.2f ms (%.2fx)\n", result.original_latency_ms,
              result.best_latency_ms, result.speedup);
  std::printf("ObjectNet  mAP      %.3f -> %.3f\n", result.teacher_scores[0],
              result.best_task_scores[0]);
  std::printf("SalientNet accuracy %.3f -> %.3f\n", result.teacher_scores[1],
              result.best_task_scores[1]);

  // Deploy the fused model on both engines.
  MultiTaskModel fused(result.best_graph, rng);
  const Shape input = result.best_graph.node(0).output_shape;
  auto eager = MakeEngine(EngineKind::kEager, &fused);
  auto optimized = MakeEngine(EngineKind::kFused, &fused);
  std::printf("\ndeployment latency: eager %.2f ms, graph-optimized %.2f ms\n",
              MeasureEngineLatencyMs(*eager, input), MeasureEngineLatencyMs(*optimized, input));
  std::printf("\nfused model:\n%s", result.best_graph.ToString().c_str());
  return 0;
}
