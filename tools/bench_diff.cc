// bench_diff: compares two bench JSON-lines transcripts (micro_ops,
// table3_engines, serving_throughput — anything emitted through
// bench::EmitJsonLine) and fails on performance regressions.
//
// Usage:
//   bench_diff [--threshold=<frac>] [--metrics=<k1,k2,...>] [--warn-only]
//              <baseline.jsonl> <current.jsonl>
//
// Each input line is one flat JSON object. Lines are matched across the two
// files by their identity fields — the values of `config`, `op`, `family`,
// `shape`, `dtype` and `solver`, whichever are present (duplicate identities
// keep their order of appearance, so repeated identical keys still pair up).
// For every matched pair, each compared metric (default: gflops, speedup —
// both higher-is-better) regressing by more than `threshold` (default 0.25,
// i.e. a 25% relative drop; benches on shared CI runners are noisy) is a
// regression. The `{"metrics_snapshot": ...}` trailer and lines missing an
// identity are ignored.
//
// Exit codes: 0 no regressions (or --warn-only), 1 regressions found,
// 2 unreadable input / bad flags. Baseline-only and current-only lines are
// reported as notes, never failures — shape sets are allowed to evolve.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

// One parsed line: identity string plus the numeric fields.
struct BenchLine {
  std::string identity;
  std::map<std::string, double> numbers;
  int line_number = 0;
};

// The fields whose values (in this order) form a line's identity.
constexpr const char* kIdentityKeys[] = {"config", "op", "family", "shape", "dtype", "solver"};

// Minimal parser for the flat single-line JSON objects the benches emit:
// string values, numeric values, and arrays (skipped). Returns false on lines
// that are not flat objects (e.g. the metrics_snapshot trailer).
bool ParseFlatJsonLine(const std::string& line, std::map<std::string, std::string>* strings,
                       std::map<std::string, double>* numbers) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '{') {
    return false;
  }
  ++i;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == ',')) {
      ++i;
    }
  };
  auto parse_string = [&](std::string* out) {
    // i sits on the opening quote.
    ++i;
    out->clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;  // keep the escaped character verbatim; identities only compare
      }
      out->push_back(line[i++]);
    }
    if (i >= line.size()) {
      return false;
    }
    ++i;  // closing quote
    return true;
  };
  while (true) {
    skip_ws();
    if (i >= line.size()) {
      return false;
    }
    if (line[i] == '}') {
      return true;
    }
    if (line[i] != '"') {
      return false;
    }
    std::string key;
    if (!parse_string(&key)) {
      return false;
    }
    skip_ws();
    if (i >= line.size() || line[i] != ':') {
      return false;
    }
    ++i;
    skip_ws();
    if (i >= line.size()) {
      return false;
    }
    if (line[i] == '"') {
      std::string value;
      if (!parse_string(&value)) {
        return false;
      }
      (*strings)[key] = value;
    } else if (line[i] == '[') {
      // Arrays carry no compared metrics; skip to the matching bracket.
      int depth = 0;
      while (i < line.size()) {
        if (line[i] == '[') {
          ++depth;
        } else if (line[i] == ']' && --depth == 0) {
          ++i;
          break;
        }
        ++i;
      }
    } else if (line[i] == '{') {
      return false;  // nested object: not a flat bench line
    } else {
      const size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        ++i;
      }
      char* end = nullptr;
      const std::string token = line.substr(start, i - start);
      const double value = std::strtod(token.c_str(), &end);
      if (end != token.c_str()) {
        (*numbers)[key] = value;
      }
    }
  }
}

// Loads every identifiable bench line of the file, in order.
bool LoadBenchLines(const std::string& path, std::vector<BenchLine>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;
    if (!ParseFlatJsonLine(line, &strings, &numbers)) {
      continue;
    }
    std::string identity;
    for (const char* key : kIdentityKeys) {
      const auto it = strings.find(key);
      if (it != strings.end()) {
        identity += key;
        identity += "=";
        identity += it->second;
        identity += " ";
      }
    }
    if (identity.empty()) {
      continue;
    }
    BenchLine bl;
    bl.identity = identity;
    bl.numbers = std::move(numbers);
    bl.line_number = line_number;
    out->push_back(std::move(bl));
  }
  return true;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string item = list.substr(start, comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.25;
  std::vector<std::string> metrics = {"gflops", "speedup"};
  bool warn_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg.c_str() + 12, &end);
      if (end == arg.c_str() + 12 || threshold < 0.0 || threshold >= 1.0) {
        std::fprintf(stderr, "bench_diff: --threshold wants a fraction in [0, 1)\n");
        return 2;
      }
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics = SplitCommas(arg.substr(10));
      if (metrics.empty()) {
        std::fprintf(stderr, "bench_diff: --metrics wants a comma-separated key list\n");
        return 2;
      }
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold=<frac>] [--metrics=<k1,k2,...>] [--warn-only]\n"
                 "                  <baseline.jsonl> <current.jsonl>\n");
    return 2;
  }

  std::vector<BenchLine> baseline;
  std::vector<BenchLine> current;
  if (!LoadBenchLines(paths[0], &baseline) || !LoadBenchLines(paths[1], &current)) {
    return 2;
  }

  // Pair lines by identity in order of appearance (a multimap of queues), so
  // files with repeated identities still compare positionally within the key.
  std::map<std::string, std::vector<const BenchLine*>> current_by_identity;
  for (const BenchLine& bl : current) {
    current_by_identity[bl.identity].push_back(&bl);
  }
  std::map<std::string, size_t> consumed;

  int compared = 0;
  int regressions = 0;
  int improvements = 0;
  int baseline_only = 0;
  for (const BenchLine& base : baseline) {
    auto it = current_by_identity.find(base.identity);
    const size_t next = consumed[base.identity];
    if (it == current_by_identity.end() || next >= it->second.size()) {
      std::printf("note: baseline-only line %d: %s\n", base.line_number, base.identity.c_str());
      ++baseline_only;
      continue;
    }
    const BenchLine& cur = *it->second[next];
    consumed[base.identity] = next + 1;
    for (const std::string& metric : metrics) {
      const auto b = base.numbers.find(metric);
      const auto c = cur.numbers.find(metric);
      if (b == base.numbers.end() || c == cur.numbers.end() || b->second <= 0.0) {
        continue;
      }
      ++compared;
      const double ratio = c->second / b->second;
      if (ratio < 1.0 - threshold) {
        std::printf("REGRESSION %s%s: %.3f -> %.3f (%.1f%% of baseline, floor %.1f%%)\n",
                    base.identity.c_str(), metric.c_str(), b->second, c->second, ratio * 100.0,
                    (1.0 - threshold) * 100.0);
        ++regressions;
      } else if (ratio > 1.0 + threshold) {
        std::printf("improvement %s%s: %.3f -> %.3f (%.1f%% of baseline)\n",
                    base.identity.c_str(), metric.c_str(), b->second, c->second, ratio * 100.0);
        ++improvements;
      }
    }
  }
  int current_only = 0;
  for (const auto& entry : current_by_identity) {
    const size_t used = consumed.count(entry.first) ? consumed[entry.first] : 0;
    for (size_t j = used; j < entry.second.size(); ++j) {
      std::printf("note: current-only line %d: %s\n", entry.second[j]->line_number,
                  entry.first.c_str());
      ++current_only;
    }
  }

  std::printf("bench_diff: %d metric(s) compared, %d regression(s), %d improvement(s), "
              "%d baseline-only, %d current-only (threshold %.0f%%)\n",
              compared, regressions, improvements, baseline_only, current_only,
              threshold * 100.0);
  if (regressions > 0) {
    return warn_only ? 0 : 1;
  }
  return 0;
}
