// gmorph_cli: run a GMorph fusion from a configuration file — the workflow
// the paper describes in §3 (well-trained DNNs + a config with the metric,
// accuracy threshold, fine-tuning hyper-parameters and search budget).
//
// Usage:
//   gmorph_cli <config-file>
//   gmorph_cli --print-default-config
//
// The config selects one of the built-in benchmarks (B1-B7), pre-trains its
// task-specific teachers on the synthetic datasets, runs the search, and
// writes the fused model (binary graph) and an optional Graphviz rendering.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/check.h"
#include "src/common/config.h"
#include "src/common/logging.h"
#include "src/common/parallel_for.h"
#include "src/core/dot_export.h"
#include "src/core/gmorph.h"
#include "src/core/graph_io.h"
#include "src/data/benchmarks.h"
#include "src/data/teacher.h"

namespace {

constexpr const char* kDefaultConfig = R"(# GMorph search configuration (paper §3)
benchmark = 1                 # built-in benchmark B1..B7 (Table 2)
metric = latency              # latency | flops
accuracy_drop_threshold = 0.01
iterations = 20               # graph mutation optimization rounds
max_mutations_per_pass = 2
policy = sa                   # sa | random
predictive_termination = true
rule_based_filtering = true

# Fine-tuning (accuracy estimator)
finetune_epochs = 6
eval_interval = 2             # the paper's delta
batch_size = 32
learning_rate = 0.001

# Data / model scale
train_size = 128
test_size = 64
cnn_width = 8
noise_stddev = 1.6
teacher_epochs = 6

seed = 42
verbose = true
output_graph = fused_model.gmorph
output_dot = fused_model.dot
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace gmorph;
  if (argc == 2 && std::strcmp(argv[1], "--print-default-config") == 0) {
    std::fputs(kDefaultConfig, stdout);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <config-file>\n       %s --print-default-config > gmorph.cfg\n",
                 argv[0], argv[0]);
    return 2;
  }

  Config config;
  try {
    config = Config::FromFile(argv[1]);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // kernel_threads overrides GMORPH_NUM_THREADS / hardware concurrency.
  // Validated before the (expensive) teacher pre-training below.
  if (config.Has("kernel_threads")) {
    const int kernel_threads = static_cast<int>(config.GetInt("kernel_threads", 0));
    if (kernel_threads < 1) {
      std::fprintf(stderr, "config error: kernel_threads must be >= 1, got %d\n",
                   kernel_threads);
      return 2;
    }
    SetKernelThreads(kernel_threads);
  }

  const int bench_index = static_cast<int>(config.GetInt("benchmark", 1));
  BenchmarkScale scale;
  scale.train_size = config.GetInt("train_size", 128);
  scale.test_size = config.GetInt("test_size", 64);
  scale.cnn_width = config.GetInt("cnn_width", 8);
  scale.noise_stddev = static_cast<float>(config.GetDouble("noise_stddev", 1.6));
  const uint64_t seed = static_cast<uint64_t>(config.GetInt("seed", 42));

  std::printf("building benchmark B%d and pre-training teachers...\n", bench_index);
  BenchmarkDef def = MakeBenchmark(bench_index, scale, seed);
  Rng rng(seed);
  std::vector<std::unique_ptr<TaskModel>> teachers;
  std::vector<TaskModel*> ptrs;
  for (size_t t = 0; t < def.tasks.size(); ++t) {
    teachers.push_back(std::make_unique<TaskModel>(def.tasks[t].model, rng));
    TeacherTrainOptions topts;
    topts.epochs = static_cast<int>(config.GetInt("teacher_epochs", 6));
    const double score = TrainTeacher(*teachers.back(), def.train, def.test, t, topts);
    std::printf("  %-13s %-13s %s = %.3f\n", def.tasks[t].name.c_str(),
                def.tasks[t].model.name.c_str(), MetricKindName(def.tasks[t].metric).c_str(),
                score);
    ptrs.push_back(teachers.back().get());
  }

  GMorphOptions options;
  options.accuracy_drop_threshold = config.GetDouble("accuracy_drop_threshold", 0.01);
  options.iterations = static_cast<int>(config.GetInt("iterations", 20));
  options.max_mutations_per_pass =
      static_cast<int>(config.GetInt("max_mutations_per_pass", 2));
  options.policy = config.GetString("policy", "sa") == "random" ? PolicyKind::kRandom
                                                                : PolicyKind::kSimulatedAnnealing;
  options.predictive_termination = config.GetBool("predictive_termination", true);
  options.rule_based_filtering = config.GetBool("rule_based_filtering", true);
  options.metric = config.GetString("metric", "latency") == "flops" ? OptimizeMetric::kFlops
                                                                    : OptimizeMetric::kLatency;
  options.finetune.max_epochs = static_cast<int>(config.GetInt("finetune_epochs", 6));
  options.finetune.eval_interval = static_cast<int>(config.GetInt("eval_interval", 2));
  options.finetune.batch_size = config.GetInt("batch_size", 32);
  options.finetune.lr = static_cast<float>(config.GetDouble("learning_rate", 1e-3));
  options.seed = seed;
  options.verbose = config.GetBool("verbose", true);
  if (options.verbose) {
    SetLogLevel(LogLevel::kInfo);
  }

  std::printf("searching (%d iterations, drop < %.1f%%)...\n", options.iterations,
              options.accuracy_drop_threshold * 100);
  GMorph gmorph(ptrs, &def.train, &def.test, options);
  GMorphResult result = gmorph.Run();

  std::printf("\nsearch finished in %.1fs: %.2f ms -> %.2f ms (%.2fx), FLOPs %.2fx\n",
              result.search_seconds, result.original_latency_ms, result.best_latency_ms,
              result.speedup,
              static_cast<double>(result.original_flops) /
                  static_cast<double>(std::max<int64_t>(1, result.best_flops)));
  for (size_t t = 0; t < def.tasks.size(); ++t) {
    std::printf("  %-13s teacher %.3f -> fused %.3f\n", def.tasks[t].name.c_str(),
                result.teacher_scores[t], result.best_task_scores[t]);
  }
  std::printf("\n%s", result.best_graph.ToString().c_str());

  const std::string graph_path = config.GetString("output_graph", "");
  if (!graph_path.empty()) {
    if (SaveGraph(graph_path, result.best_graph)) {
      std::printf("fused model written to %s\n", graph_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", graph_path.c_str());
    }
  }
  const std::string dot_path = config.GetString("output_dot", "");
  if (!dot_path.empty()) {
    if (WriteDotFile(dot_path, result.best_graph, def.id)) {
      std::printf("graphviz rendering written to %s (render: dot -Tpng %s)\n",
                  dot_path.c_str(), dot_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", dot_path.c_str());
    }
  }
  return 0;
}
